//! Cycle-driven list scheduling of one basic block.
//!
//! Operations are prioritised by critical-path height and placed at the
//! earliest cycle at which (a) all their dependences are satisfied (using
//! the latency descriptors of Fig. 3 and the chaining rule of §3.3) and
//! (b) a free issue slot and functional unit / memory port is available
//! (Table 2 resources).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vmv_isa::Op;
use vmv_machine::MachineConfig;

use crate::ddg::DepGraph;
use crate::restable::ReservationTable;

/// Schedule the operations of one basic block, returning one bundle (vector
/// of operations) per issue cycle.  The relative order of memory operations
/// and the block terminator is preserved by the dependence graph.
pub fn schedule_block(ops: &[Op], machine: &MachineConfig) -> Vec<Vec<Op>> {
    let n = ops.len();
    if n == 0 {
        return Vec::new();
    }
    let graph = DepGraph::build(ops, machine);
    let heights = graph.heights();
    let mut remaining_preds = graph.pred_counts();
    let mut earliest = vec![0u32; n];
    let mut table = ReservationTable::new(machine);
    let mut bundles: Vec<Vec<Op>> = Vec::new();
    let mut placed = 0usize;
    let mut cycle: u32 = 0;

    // Generous safety bound: a block can never need more cycles than
    // (ops × worst-case latency × occupancy).
    let safety_limit = (n as u32 + 4) * 64 + 1024;

    // Released operations (every dependence placed) that are not yet
    // eligible at the current cycle, keyed by their earliest-issue cycle.
    // An operation's `earliest` only changes when a predecessor is placed,
    // so it is *final* the moment its last predecessor places — the heap
    // key can never go stale.  Together with `ready` (eligible now) this
    // replaces the former O(cycles × n) rescan of every unplaced
    // operation: each operation is pushed and popped exactly once.
    let mut pending: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    for i in 0..n {
        if remaining_preds[i] == 0 {
            pending.push(Reverse((earliest[i], i)));
        }
    }
    // Operations eligible to issue at the current cycle, kept in placement
    // priority order: highest critical-path first, ties by program order —
    // the exact tie-break of the former full re-sort, so schedules are
    // byte-identical.
    let mut ready: Vec<usize> = Vec::with_capacity(n);
    // Telemetry is accumulated locally and folded into the recorder once
    // per block, keeping the cycle loop free of atomics.
    let mut ready_scans = 0u64;
    while placed < n {
        ready_scans += 1;
        assert!(
            cycle < safety_limit,
            "list scheduler failed to make progress (block of {n} ops, cycle {cycle})"
        );

        // Admit newly eligible operations; operations that failed a
        // resource check in an earlier cycle carry over, already sorted,
        // so a re-sort is only needed when the set grew.
        let mut grew = false;
        while let Some(&Reverse((t, i))) = pending.peek() {
            if t > cycle {
                break;
            }
            pending.pop();
            ready.push(i);
            grew = true;
        }
        if ready.is_empty() {
            // Nothing can issue before the next dependence-release time:
            // jump straight there instead of probing every empty cycle
            // (placements only ever happen when something is ready, so the
            // skipped cycles are provably empty).
            let next = pending
                .peek()
                .map(|&Reverse((t, _))| t)
                .unwrap_or(cycle + 1);
            cycle = next.max(cycle + 1);
            continue;
        }
        if grew {
            ready.sort_by_key(|&i| (Reverse(heights[i]), i));
        }

        // `retain` visits in order and keeps the relative order of the
        // survivors: placement order matches the sorted priority, and ops
        // blocked on resources stay for the next cycle.
        ready.retain(|&i| {
            if !table.can_place(&ops[i], cycle) {
                return true;
            }
            table.place(&ops[i], cycle);
            if bundles.len() <= cycle as usize {
                bundles.resize(cycle as usize + 1, Vec::new());
            }
            bundles[cycle as usize].push(ops[i].clone());
            placed += 1;
            for &eidx in &graph.succs[i] {
                let e = &graph.edges[eidx];
                remaining_preds[e.to] -= 1;
                earliest[e.to] = earliest[e.to].max(cycle + e.latency);
                if remaining_preds[e.to] == 0 {
                    pending.push(Reverse((earliest[e.to], e.to)));
                }
            }
            false
        });
        cycle += 1;
    }

    if vmv_obs::enabled() {
        use vmv_obs::Counter;
        vmv_obs::incr(Counter::SchedBlocks);
        vmv_obs::add(Counter::SchedReadyScans, ready_scans);
        vmv_obs::add(Counter::SchedOpsPlaced, n as u64);
        vmv_obs::add(Counter::SchedCyclesScheduled, bundles.len() as u64);
    }

    bundles
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::{BrCond, Elem, MemWidth, Op, Opcode, Reg, Sat, Sign};
    use vmv_machine::presets;

    fn movi(dst: u32, imm: i64) -> Op {
        Op::new(Opcode::MovI).with_dst(Reg::int(dst)).with_imm(imm)
    }

    fn add(dst: u32, a: u32, b: u32) -> Op {
        Op::new(Opcode::IAdd)
            .with_dst(Reg::int(dst))
            .with_srcs(&[Reg::int(a), Reg::int(b)])
    }

    #[test]
    fn independent_ops_fill_the_issue_width() {
        let machine = presets::vliw(4);
        let ops: Vec<Op> = (0..8).map(|i| movi(i, i as i64)).collect();
        let bundles = schedule_block(&ops, &machine);
        assert_eq!(
            bundles.len(),
            2,
            "8 independent ops on a 4-wide machine take 2 cycles"
        );
        assert_eq!(bundles[0].len(), 4);
        assert_eq!(bundles[1].len(), 4);
    }

    #[test]
    fn dependent_chain_respects_latency() {
        let machine = presets::vliw(4);
        // r1 = r0 * r0 (3 cycles); r2 = r1 + r0 (1 cycle); r3 = r2 + r0.
        let ops = vec![
            Op::new(Opcode::IMul)
                .with_dst(Reg::int(1))
                .with_srcs(&[Reg::int(0), Reg::int(0)]),
            add(2, 1, 0),
            add(3, 2, 0),
        ];
        let bundles = schedule_block(&ops, &machine);
        // mul at cycle 0, add at cycle 3, add at cycle 4 → 5 bundles.
        assert_eq!(bundles.len(), 5);
        assert!(bundles[1].is_empty() && bundles[2].is_empty());
    }

    #[test]
    fn narrow_machine_serialises_wide_parallelism() {
        let wide = presets::vliw(8);
        let narrow = presets::vliw(2);
        let ops: Vec<Op> = (0..8).map(|i| movi(i, 1)).collect();
        assert_eq!(schedule_block(&ops, &wide).len(), 1);
        assert_eq!(schedule_block(&ops, &narrow).len(), 4);
    }

    #[test]
    fn memory_port_limits_loads_per_cycle() {
        let machine = presets::vliw(2); // 1 L1 port
        let ops: Vec<Op> = (0..4)
            .map(|i| {
                Op::new(Opcode::Load(MemWidth::B4, Sign::Signed))
                    .with_dst(Reg::int(i + 1))
                    .with_srcs(&[Reg::int(0)])
                    .with_imm(4 * i as i64)
            })
            .collect();
        let bundles = schedule_block(&ops, &machine);
        assert_eq!(
            bundles.len(),
            4,
            "one load per cycle through a single L1 port"
        );
    }

    #[test]
    fn branch_is_scheduled_last() {
        let machine = presets::vliw(8);
        let ops = vec![
            movi(0, 1),
            movi(1, 2),
            add(2, 0, 1),
            Op::new(Opcode::Br(BrCond::Ne))
                .with_srcs(&[Reg::int(2), Reg::int(0)])
                .with_target("x"),
        ];
        let bundles = schedule_block(&ops, &machine);
        let last_nonempty = bundles.iter().rev().find(|b| !b.is_empty()).unwrap();
        assert!(last_nonempty.iter().any(|o| o.opcode.is_branch()));
        // and no op is scheduled after the branch's cycle
        let branch_cycle = bundles
            .iter()
            .position(|b| b.iter().any(|o| o.opcode.is_branch()))
            .unwrap();
        assert_eq!(branch_cycle, bundles.len() - 1);
    }

    #[test]
    fn vector_code_uses_fewer_issue_cycles_than_usimd_equivalent() {
        // Emulate processing 16 packed words: the µSIMD machine needs 16
        // packed adds, the vector machine a single vector add of VL=16.
        let usimd_machine = presets::usimd(2);
        let usimd_ops: Vec<Op> = (0..16)
            .map(|i| {
                Op::new(Opcode::PAdd(Elem::B, Sat::Wrap))
                    .with_dst(Reg::simd(i))
                    .with_srcs(&[Reg::simd(16 + i), Reg::simd(32 + i)])
            })
            .collect();
        let usimd_bundles = schedule_block(&usimd_ops, &usimd_machine);

        let vector_machine = presets::vector2(2);
        let mut vadd = Op::new(Opcode::VAdd(Elem::B, Sat::Wrap))
            .with_dst(Reg::vec(0))
            .with_srcs(&[Reg::vec(1), Reg::vec(2)]);
        vadd.vl_hint = Some(16);
        let vector_bundles = schedule_block(&[vadd], &vector_machine);

        assert!(vector_bundles.len() < usimd_bundles.len());
    }

    #[test]
    fn empty_block_schedules_to_nothing() {
        let machine = presets::vliw(2);
        assert!(schedule_block(&[], &machine).is_empty());
    }

    #[test]
    fn all_ops_appear_exactly_once() {
        let machine = presets::vliw(4);
        let ops: Vec<Op> = (0..6).map(|i| add(i + 10, i, i)).collect();
        let bundles = schedule_block(&ops, &machine);
        let total: usize = bundles.iter().map(|b| b.len()).sum();
        assert_eq!(total, ops.len());
    }
}
