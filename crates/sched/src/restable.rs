//! Resource reservation table used by the list scheduler.
//!
//! Resources are modeled at the granularity the paper's Table 2 specifies:
//! issue slots (the VLIW width), integer units, µSIMD units, vector units,
//! L1 data-cache ports and the L2 vector-cache port.  On the Vector
//! configurations (which have no dedicated µSIMD units) packed µSIMD
//! operations execute on the vector units, so they draw from the same pool.
//!
//! Vector operations occupy their functional unit (and vector memory
//! operations the L2 port) for several consecutive cycles — `1 + (VL-1)/LN`
//! — because only `LN` sub-operations can be initiated per cycle (Fig. 3b).

use vmv_isa::{FuClass, Op};
use vmv_machine::MachineConfig;

/// Physical resource pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    Issue,
    IntUnits,
    SimdUnits,
    VectorUnits,
    L1Ports,
    L2Ports,
}

const NUM_POOLS: usize = 6;

fn pool_index(p: Pool) -> usize {
    match p {
        Pool::Issue => 0,
        Pool::IntUnits => 1,
        Pool::SimdUnits => 2,
        Pool::VectorUnits => 3,
        Pool::L1Ports => 4,
        Pool::L2Ports => 5,
    }
}

/// Resource pool an operation's functional-unit requirement maps to on a
/// given machine.
pub fn unit_pool(op: &Op, machine: &MachineConfig) -> Pool {
    match op.opcode.fu_class() {
        FuClass::Int => Pool::IntUnits,
        FuClass::Simd => {
            if machine.simd_units > 0 {
                Pool::SimdUnits
            } else {
                // µSIMD operations run on the vector units (VL = 1) on the
                // Vector configurations.
                Pool::VectorUnits
            }
        }
        FuClass::Vector => Pool::VectorUnits,
        FuClass::MemL1 => Pool::L1Ports,
        FuClass::MemL2 => Pool::L2Ports,
    }
}

/// Capacity of each pool on a machine.
fn capacity(machine: &MachineConfig, pool: Pool) -> usize {
    match pool {
        Pool::Issue => machine.issue_width,
        Pool::IntUnits => machine.int_units,
        Pool::SimdUnits => machine.simd_units,
        Pool::VectorUnits => machine.vector_units,
        Pool::L1Ports => machine.l1_ports,
        Pool::L2Ports => machine.l2_ports,
    }
}

/// The reservation table: per-cycle usage counters for every pool.
#[derive(Debug, Clone)]
pub struct ReservationTable<'m> {
    machine: &'m MachineConfig,
    usage: Vec<[usize; NUM_POOLS]>,
}

impl<'m> ReservationTable<'m> {
    pub fn new(machine: &'m MachineConfig) -> Self {
        ReservationTable {
            machine,
            usage: Vec::new(),
        }
    }

    fn ensure(&mut self, cycle: usize) {
        if self.usage.len() <= cycle {
            self.usage.resize(cycle + 1, [0; NUM_POOLS]);
        }
    }

    /// Number of cycles an operation keeps its functional unit / memory port
    /// busy: the initiation occupancy of Fig. 3b.
    pub fn occupancy(&self, op: &Op) -> u32 {
        self.machine.latency_descriptor(op).occupancy()
    }

    /// Can `op` be issued at `cycle` without oversubscribing any resource?
    pub fn can_place(&self, op: &Op, cycle: u32) -> bool {
        let pool = unit_pool(op, self.machine);
        let issue_cap = capacity(self.machine, Pool::Issue);
        let unit_cap = capacity(self.machine, pool);
        if unit_cap == 0 {
            return false;
        }
        // Issue slot in the issue cycle.
        let issue_used = self
            .usage
            .get(cycle as usize)
            .map(|u| u[pool_index(Pool::Issue)])
            .unwrap_or(0);
        if issue_used >= issue_cap {
            return false;
        }
        // Functional unit / port for the whole occupancy window.
        let occ = self.occupancy(op);
        for c in cycle..cycle + occ {
            let used = self
                .usage
                .get(c as usize)
                .map(|u| u[pool_index(pool)])
                .unwrap_or(0);
            if used >= unit_cap {
                return false;
            }
        }
        true
    }

    /// Reserve the resources for `op` issued at `cycle`.  Panics if the
    /// placement is infeasible (callers check with [`Self::can_place`]).
    pub fn place(&mut self, op: &Op, cycle: u32) {
        assert!(
            self.can_place(op, cycle),
            "resource oversubscription placing {op}"
        );
        let pool = unit_pool(op, self.machine);
        let occ = self.occupancy(op);
        self.ensure((cycle + occ) as usize);
        self.usage[cycle as usize][pool_index(Pool::Issue)] += 1;
        for c in cycle..cycle + occ {
            self.usage[c as usize][pool_index(pool)] += 1;
        }
    }

    /// Number of operations issued in `cycle` (used by tests).
    pub fn issued_in(&self, cycle: u32) -> usize {
        self.usage
            .get(cycle as usize)
            .map(|u| u[pool_index(Pool::Issue)])
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::{Elem, Op, Opcode, Reg, Sat};
    use vmv_machine::presets;

    fn int_op() -> Op {
        Op::new(Opcode::IAdd)
            .with_dst(Reg::int(0))
            .with_srcs(&[Reg::int(1), Reg::int(2)])
    }

    fn vec_op(vl: u32) -> Op {
        let mut op = Op::new(Opcode::VAdd(Elem::H, Sat::Wrap))
            .with_dst(Reg::vec(0))
            .with_srcs(&[Reg::vec(1), Reg::vec(2)]);
        op.vl_hint = Some(vl);
        op
    }

    #[test]
    fn issue_width_limits_total_ops_per_cycle() {
        let machine = presets::vliw(2);
        let mut t = ReservationTable::new(&machine);
        let op = int_op();
        assert!(t.can_place(&op, 0));
        t.place(&op, 0);
        assert!(t.can_place(&op, 0));
        t.place(&op, 0);
        // issue width 2 reached even though the machine has 2 int units
        assert!(!t.can_place(&op, 0));
        assert!(t.can_place(&op, 1));
    }

    #[test]
    fn unsupported_pool_is_rejected() {
        let machine = presets::vliw(4);
        let t = ReservationTable::new(&machine);
        let vop = vec_op(8);
        assert!(!t.can_place(&vop, 0), "base VLIW has no vector units");
    }

    #[test]
    fn vector_occupancy_blocks_the_unit_for_several_cycles() {
        let machine = presets::vector1(2); // one vector unit, 4 lanes
        let mut t = ReservationTable::new(&machine);
        let vop = vec_op(16); // occupancy = 1 + 15/4 = 4 cycles
        assert_eq!(t.occupancy(&vop), 4);
        t.place(&vop, 0);
        // The single vector unit is busy during cycles 0..4.
        assert!(!t.can_place(&vec_op(16), 1));
        assert!(!t.can_place(&vec_op(16), 3));
        assert!(t.can_place(&vec_op(16), 4));
    }

    #[test]
    fn two_vector_units_allow_overlap() {
        let machine = presets::vector2(2); // two vector units
        let mut t = ReservationTable::new(&machine);
        t.place(&vec_op(16), 0);
        assert!(t.can_place(&vec_op(16), 1), "second vector unit is free");
    }

    #[test]
    fn usimd_ops_share_vector_units_on_vector_configs() {
        let machine = presets::vector1(2);
        let p_op = Op::new(Opcode::PAdd(Elem::B, Sat::Wrap))
            .with_dst(Reg::simd(0))
            .with_srcs(&[Reg::simd(1), Reg::simd(2)]);
        assert_eq!(unit_pool(&p_op, &machine), Pool::VectorUnits);
        let usimd_machine = presets::usimd(2);
        assert_eq!(unit_pool(&p_op, &usimd_machine), Pool::SimdUnits);
    }

    #[test]
    fn l1_port_contention() {
        let machine = presets::vliw(2); // one L1 port
        let mut t = ReservationTable::new(&machine);
        let ld = Op::new(Opcode::Load(vmv_isa::MemWidth::B4, vmv_isa::Sign::Signed))
            .with_dst(Reg::int(1))
            .with_srcs(&[Reg::int(0)])
            .with_imm(0);
        t.place(&ld, 0);
        assert!(
            !t.can_place(&ld, 0),
            "only one L1 port on the 2-issue machine"
        );
        assert!(t.can_place(&ld, 1));
    }
}
