//! Scheduled-program data structures: the output of the static scheduler and
//! the input of the cycle-level simulator.
//!
//! After scheduling, every basic block becomes a sequence of *VLIW
//! instructions* (bundles): each bundle groups the operations the compiler
//! placed in the same issue cycle.  Empty cycles are represented by empty
//! bundles so that the static schedule length of a block equals its bundle
//! count, matching the VLIW execution model where the fetch unit issues one
//! (possibly mostly-empty) instruction per cycle.

use std::collections::HashMap;

use vmv_isa::{Op, Program, RegionId, RegionInfo};

/// One operation placed in a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOp {
    pub op: Op,
    /// Issue cycle relative to the start of the block.
    pub cycle: u32,
}

/// A scheduled basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledBlock {
    pub label: String,
    pub region: RegionId,
    /// `bundles[c]` holds the operations issued in cycle `c` of the block.
    pub bundles: Vec<Vec<Op>>,
}

impl ScheduledBlock {
    /// Static schedule length of the block in cycles (at least 1 so that
    /// even an empty block consumes a cycle when executed).
    pub fn length(&self) -> u32 {
        self.bundles.len().max(1) as u32
    }

    /// Total number of operations in the block (excluding nops).
    pub fn op_count(&self) -> usize {
        self.bundles
            .iter()
            .map(|b| {
                b.iter()
                    .filter(|o| o.opcode != vmv_isa::Opcode::Nop)
                    .count()
            })
            .sum()
    }
}

/// A fully scheduled (and register-allocated) program.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledProgram {
    pub name: String,
    pub blocks: Vec<ScheduledBlock>,
    pub regions: Vec<RegionInfo>,
}

impl ScheduledProgram {
    /// Label → block index map.
    pub fn label_map(&self) -> HashMap<&str, usize> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.label.as_str(), i))
            .collect()
    }

    pub fn block_by_label(&self, label: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.label == label)
    }

    /// Total static operation count.
    pub fn static_op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.op_count()).sum()
    }

    /// Sum of static schedule lengths (a crude lower bound on execution time
    /// if every block executed exactly once with no stalls).
    pub fn static_schedule_length(&self) -> u64 {
        self.blocks.iter().map(|b| b.length() as u64).sum()
    }

    /// Region metadata lookup.
    pub fn region_info(&self, id: RegionId) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Carry over region metadata from the original program.
    pub fn from_program_shell(program: &Program) -> Self {
        ScheduledProgram {
            name: program.name.clone(),
            blocks: Vec::new(),
            regions: program.regions.clone(),
        }
    }

    /// Render the schedule as text (used by the motion-estimation example to
    /// show the Fig. 4-style schedule).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scheduled program {}\n", self.name));
        for block in &self.blocks {
            out.push_str(&format!("{}:  ; region {}\n", block.label, block.region.0));
            for (cycle, bundle) in block.bundles.iter().enumerate() {
                if bundle.is_empty() {
                    out.push_str(&format!("  {cycle:4} | (empty)\n"));
                } else {
                    let ops: Vec<String> = bundle.iter().map(|o| o.to_string()).collect();
                    out.push_str(&format!("  {cycle:4} | {}\n", ops.join("  ||  ")));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::{Op, Opcode, Reg};

    fn block_with(ops_per_cycle: &[usize]) -> ScheduledBlock {
        let bundles = ops_per_cycle
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|i| {
                        Op::new(Opcode::MovI)
                            .with_dst(Reg::int(i as u32))
                            .with_imm(0)
                    })
                    .collect()
            })
            .collect();
        ScheduledBlock {
            label: "b".into(),
            region: RegionId::SCALAR,
            bundles,
        }
    }

    #[test]
    fn lengths_and_counts() {
        let b = block_with(&[2, 0, 1]);
        assert_eq!(b.length(), 3);
        assert_eq!(b.op_count(), 3);
        let empty = ScheduledBlock {
            label: "e".into(),
            region: RegionId::SCALAR,
            bundles: vec![],
        };
        assert_eq!(empty.length(), 1);
    }

    #[test]
    fn program_level_aggregates() {
        let p = ScheduledProgram {
            name: "p".into(),
            blocks: vec![block_with(&[1, 1]), block_with(&[3])],
            regions: vec![RegionInfo {
                id: RegionId::SCALAR,
                name: "scalar".into(),
            }],
        };
        assert_eq!(p.static_op_count(), 5);
        assert_eq!(p.static_schedule_length(), 3);
        assert_eq!(p.block_by_label("b"), Some(0));
    }

    #[test]
    fn dump_contains_cycle_numbers() {
        let p = ScheduledProgram {
            name: "p".into(),
            blocks: vec![block_with(&[1, 0])],
            regions: vec![],
        };
        let s = p.dump();
        assert!(s.contains("0 |"));
        assert!(s.contains("(empty)"));
    }
}
