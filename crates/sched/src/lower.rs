//! Lowering: from the string-keyed [`ScheduledProgram`] to the executable
//! [`LoweredProgram`] the simulator's hot loop consumes.
//!
//! A scheduled program is still a *compiler* data structure: branch targets
//! are label strings, registers are `(class, index)` pairs that force the
//! simulator's scoreboard to be a hash map, and per-operation metadata
//! (read/write sets, latency class, lane counts, memory behaviour) has to be
//! re-derived on every dynamic execution.  Lowering resolves all of that
//! **once per schedule**:
//!
//! * labels become dense block indices (a branch to a missing label is a
//!   [`LowerError`] here, not a mid-run simulator error);
//! * every register is mapped to a flat slot index of the machine's
//!   [`SlotLayout`], so the run-time scoreboard is a plain `Vec<u64>`;
//! * the full read set (explicit sources plus the implicit `VL`/`VS` reads
//!   of vector operations) and the write slot are precomputed per operation;
//! * flow latency, effective lane count and the vector-memory flag are baked
//!   in, so the engine never consults opcode tables in its inner loop;
//! * bundles are flattened into one contiguous operation array with bundle
//!   boundary offsets, giving the fetch loop linear memory traffic.
//!
//! Lowering depends only on schedule-relevant machine fields (register file
//! sizes, latency table, lane/port widths) — exactly the fields of the sweep
//! crate's schedule fingerprint — so a lowered program can be cached once
//! per schedule and re-simulated across arbitrary memory-system variants.

use std::collections::HashMap;

use vmv_isa::{Op, Opcode, Reg, RegionId, RegionInfo, SlotLayout, NO_SLOT};
use vmv_machine::MachineConfig;

use crate::bundle::ScheduledProgram;

/// Maximum explicit source operands of any opcode (accumulator operations
/// read the accumulator plus two vector registers).
pub const MAX_SRCS: usize = 3;
/// Maximum read-set size: every explicit source plus the implicit `VL` and
/// `VS` control-register reads of vector memory operations.
pub const MAX_READS: usize = MAX_SRCS + 2;

/// Errors detected while lowering a scheduled program.  Everything reported
/// here used to surface only at run time (or panic) in the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// A branch targets a label no block carries.
    UnknownLabel { block: String, label: String },
    /// A branch operation has no target label at all.
    MissingTarget { block: String, op: String },
    /// A register index exceeds the machine's architectural register file.
    SlotOutOfRange { block: String, op: String, reg: Reg },
    /// An operation carries more explicit sources than any opcode defines.
    TooManySources { block: String, op: String },
    /// A machine parameter exceeds the range of the lowered operation's
    /// packed metadata fields (latencies are stored as `u16`, lane counts
    /// as `u8`) — silently saturating would diverge from the reference
    /// engine, so lowering refuses such machines up front.
    MachineOutOfRange {
        what: &'static str,
        value: u64,
        max: u64,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnknownLabel { block, label } => {
                write!(f, "block '{block}': branch to unknown label '{label}'")
            }
            LowerError::MissingTarget { block, op } => {
                write!(f, "block '{block}': branch '{op}' has no target")
            }
            LowerError::SlotOutOfRange { block, op, reg } => write!(
                f,
                "block '{block}': operation '{op}' uses register {reg} beyond \
                 the machine's register file"
            ),
            LowerError::TooManySources { block, op } => {
                write!(f, "block '{block}': operation '{op}' has too many sources")
            }
            LowerError::MachineOutOfRange { what, value, max } => write!(
                f,
                "machine parameter {what} = {value} exceeds the lowered \
                 representation's maximum of {max}"
            ),
        }
    }
}
impl std::error::Error for LowerError {}

/// One pre-resolved, array-indexed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredOp {
    pub opcode: Opcode,
    /// Destination register (functional write), if any.
    pub dst: Option<Reg>,
    /// Explicit source registers (functional reads); only `..n_srcs` valid.
    srcs: [Reg; MAX_SRCS],
    n_srcs: u8,
    /// Immediate operand (0 when absent — execution treats them the same).
    pub imm: i64,
    /// Pre-resolved branch-target block index (branches only).
    pub target: u32,
    /// Scoreboard slot written by this operation (`NO_SLOT` when none).
    pub dst_slot: u16,
    /// Scoreboard slots read, including the implicit `VL`/`VS` reads; only
    /// `..n_reads` valid.
    read_slots: [u16; MAX_READS],
    n_reads: u8,
    /// Flow latency of the operation's latency class on this machine
    /// (machines with latencies beyond u16 are rejected at lowering time).
    pub flow: u16,
    /// Effective lane count for the Fig. 3 vector latency formula (the L2
    /// port width in elements for vector memory operations; machines with
    /// lane counts beyond u8 are rejected at lowering time).
    pub lanes: u8,
    /// Whether latency depends on the run-time vector length.
    pub reads_vl: bool,
    /// Whether this operation occupies the single L2 vector-cache port.
    pub is_vector_memory: bool,
    /// Micro-operations per unit of vector length (`Opcode::micro_ops(1)`,
    /// at most 8); the dynamic count is `micro_ops_unit * VL` for
    /// VL-dependent operations and `micro_ops_unit` otherwise.
    pub micro_ops_unit: u16,
}

impl LoweredOp {
    /// Explicit source registers.
    #[inline]
    pub fn srcs(&self) -> &[Reg] {
        &self.srcs[..self.n_srcs as usize]
    }

    /// Scoreboard slots this operation waits on before issue.
    #[inline]
    pub fn read_slots(&self) -> &[u16] {
        &self.read_slots[..self.n_reads as usize]
    }
}

/// One lowered basic block: a range of bundles in the flattened arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoweredBlock {
    pub region: RegionId,
    /// First bundle index (into [`LoweredProgram::bundle_bounds`]).
    pub first_bundle: u32,
    /// Number of bundles (the static schedule length; may be 0).
    pub bundle_count: u32,
}

/// The lowered executable form of a scheduled program: what the simulator's
/// inner loop actually runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredProgram {
    pub name: String,
    pub blocks: Vec<LoweredBlock>,
    /// Bundle `b` holds `ops[bundle_bounds[b] as usize..bundle_bounds[b + 1] as usize]`.
    pub bundle_bounds: Vec<u32>,
    /// All operations, flattened block-major, bundle-major, in issue order.
    pub ops: Vec<LoweredOp>,
    pub regions: Vec<RegionInfo>,
    /// Slot layout the operations were resolved against.
    pub layout: SlotLayout,
}

impl LoweredProgram {
    /// Scoreboard length.
    pub fn total_slots(&self) -> usize {
        self.layout.total_slots()
    }

    /// The operations of one bundle.
    #[inline]
    pub fn bundle_ops(&self, bundle: u32) -> &[LoweredOp] {
        let lo = self.bundle_bounds[bundle as usize] as usize;
        let hi = self.bundle_bounds[bundle as usize + 1] as usize;
        &self.ops[lo..hi]
    }
}

/// Lower `program` for `machine`.  Only schedule-relevant machine fields are
/// read; memory-hierarchy parameters never influence the lowered form.
pub fn lower(
    program: &ScheduledProgram,
    machine: &MachineConfig,
) -> Result<LoweredProgram, LowerError> {
    // The packed per-op metadata stores latencies as u16 and lane counts as
    // u8; reject machines whose parameters cannot be represented exactly
    // (real configurations are orders of magnitude below these limits).
    let l = &machine.latencies;
    for (what, value) in [
        ("latencies.int_alu", l.int_alu),
        ("latencies.int_mul", l.int_mul),
        ("latencies.int_div", l.int_div),
        ("latencies.load_l1", l.load_l1),
        ("latencies.store", l.store),
        ("latencies.branch", l.branch),
        ("latencies.simd_alu", l.simd_alu),
        ("latencies.simd_mul", l.simd_mul),
        ("latencies.vec_alu", l.vec_alu),
        ("latencies.vec_mul", l.vec_mul),
        ("latencies.vec_mem", l.vec_mem),
    ] {
        if value > u16::MAX as u32 {
            return Err(LowerError::MachineOutOfRange {
                what,
                value: value as u64,
                max: u16::MAX as u64,
            });
        }
    }
    for (what, value) in [
        ("vector_lanes", machine.vector_lanes),
        ("l2_port_elems", machine.l2_port_elems),
    ] {
        if value > u8::MAX as u32 {
            return Err(LowerError::MachineOutOfRange {
                what,
                value: value as u64,
                max: u8::MAX as u64,
            });
        }
    }

    let layout = SlotLayout::new(&machine.regs);
    let labels: HashMap<&str, u32> = program
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.label.as_str(), i as u32))
        .collect();

    let total_ops: usize = program
        .blocks
        .iter()
        .map(|b| b.bundles.iter().map(Vec::len).sum::<usize>())
        .sum();
    let total_bundles: usize = program.blocks.iter().map(|b| b.bundles.len()).sum();

    let mut blocks = Vec::with_capacity(program.blocks.len());
    let mut bundle_bounds = Vec::with_capacity(total_bundles + 1);
    let mut ops = Vec::with_capacity(total_ops);
    bundle_bounds.push(0u32);

    for block in &program.blocks {
        let first_bundle = (bundle_bounds.len() - 1) as u32;
        for bundle in &block.bundles {
            for op in bundle {
                ops.push(lower_op(op, &block.label, &labels, &layout, machine)?);
            }
            bundle_bounds.push(ops.len() as u32);
        }
        blocks.push(LoweredBlock {
            region: block.region,
            first_bundle,
            bundle_count: block.bundles.len() as u32,
        });
    }

    Ok(LoweredProgram {
        name: program.name.clone(),
        blocks,
        bundle_bounds,
        ops,
        regions: program.regions.clone(),
        layout,
    })
}

fn lower_op(
    op: &Op,
    block: &str,
    labels: &HashMap<&str, u32>,
    layout: &SlotLayout,
    machine: &MachineConfig,
) -> Result<LoweredOp, LowerError> {
    let slot = |reg: Reg| {
        layout
            .slot_of(reg)
            .ok_or_else(|| LowerError::SlotOutOfRange {
                block: block.to_string(),
                op: op.to_string(),
                reg,
            })
    };

    if op.srcs.len() > MAX_SRCS {
        return Err(LowerError::TooManySources {
            block: block.to_string(),
            op: op.to_string(),
        });
    }
    let mut srcs = [Reg::int(0); MAX_SRCS];
    let mut read_slots = [NO_SLOT; MAX_READS];
    for (i, &r) in op.srcs.iter().enumerate() {
        srcs[i] = r;
        read_slots[i] = slot(r)?;
    }
    let mut n_reads = op.srcs.len();
    if op.opcode.reads_vl() {
        read_slots[n_reads] = layout.vl_slot();
        n_reads += 1;
    }
    if op.opcode.reads_vs() {
        read_slots[n_reads] = layout.vs_slot();
        n_reads += 1;
    }

    let dst_slot = match op.dst {
        Some(d) => slot(d)?,
        None => NO_SLOT,
    };

    let target = if op.opcode.is_branch() {
        let label = op
            .target
            .as_deref()
            .ok_or_else(|| LowerError::MissingTarget {
                block: block.to_string(),
                op: op.to_string(),
            })?;
        *labels.get(label).ok_or_else(|| LowerError::UnknownLabel {
            block: block.to_string(),
            label: label.to_string(),
        })?
    } else {
        0
    };

    Ok(LoweredOp {
        opcode: op.opcode,
        dst: op.dst,
        srcs,
        n_srcs: op.srcs.len() as u8,
        imm: op.imm.unwrap_or(0),
        target,
        dst_slot,
        read_slots,
        n_reads: n_reads as u8,
        flow: machine.latencies.flow_latency(op.opcode.lat_class()) as u16,
        lanes: machine.effective_lanes(op.opcode) as u8,
        reads_vl: op.opcode.reads_vl(),
        is_vector_memory: op.opcode.is_vector_memory(),
        micro_ops_unit: op.opcode.micro_ops(1) as u16,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ScheduledBlock;
    use vmv_machine::presets;

    fn machine() -> MachineConfig {
        presets::vector2(2)
    }

    fn shell(blocks: Vec<ScheduledBlock>) -> ScheduledProgram {
        ScheduledProgram {
            name: "t".into(),
            blocks,
            regions: vec![],
        }
    }

    #[test]
    fn labels_resolve_to_block_indices() {
        let p = shell(vec![
            ScheduledBlock {
                label: "entry".into(),
                region: RegionId::SCALAR,
                bundles: vec![vec![Op::new(Opcode::Jump).with_target("exit")]],
            },
            ScheduledBlock {
                label: "exit".into(),
                region: RegionId::SCALAR,
                bundles: vec![vec![Op::new(Opcode::Halt)]],
            },
        ]);
        let low = lower(&p, &machine()).unwrap();
        assert_eq!(low.blocks.len(), 2);
        assert_eq!(low.ops[0].target, 1);
        assert_eq!(low.bundle_ops(0)[0].opcode, Opcode::Jump);
    }

    #[test]
    fn unknown_label_fails_at_lowering_time() {
        let p = shell(vec![ScheduledBlock {
            label: "entry".into(),
            region: RegionId::SCALAR,
            bundles: vec![vec![Op::new(Opcode::Jump).with_target("nowhere")]],
        }]);
        let err = lower(&p, &machine()).unwrap_err();
        assert!(matches!(err, LowerError::UnknownLabel { ref label, .. } if label == "nowhere"));
    }

    #[test]
    fn branch_without_target_fails_at_lowering_time() {
        let p = shell(vec![ScheduledBlock {
            label: "entry".into(),
            region: RegionId::SCALAR,
            bundles: vec![vec![Op::new(Opcode::Jump)]],
        }]);
        assert!(matches!(
            lower(&p, &machine()).unwrap_err(),
            LowerError::MissingTarget { .. }
        ));
    }

    #[test]
    fn out_of_range_register_fails_at_lowering_time() {
        let m = machine();
        let bad = Reg::int(m.regs.int + 5);
        let p = shell(vec![ScheduledBlock {
            label: "entry".into(),
            region: RegionId::SCALAR,
            bundles: vec![vec![Op::new(Opcode::MovI).with_dst(bad).with_imm(1)]],
        }]);
        let err = lower(&p, &m).unwrap_err();
        assert!(matches!(err, LowerError::SlotOutOfRange { reg, .. } if reg == bad));
    }

    #[test]
    fn unrepresentable_machine_parameters_are_rejected() {
        // The packed metadata stores latencies as u16 and lanes as u8:
        // silently saturating would diverge from the reference engine, so
        // lowering must refuse such machines with a clear error instead.
        let p = shell(vec![ScheduledBlock {
            label: "entry".into(),
            region: RegionId::SCALAR,
            bundles: vec![vec![Op::new(Opcode::Halt)]],
        }]);
        let mut m = machine();
        m.latencies.vec_mem = 100_000;
        assert!(matches!(
            lower(&p, &m).unwrap_err(),
            LowerError::MachineOutOfRange {
                what: "latencies.vec_mem",
                ..
            }
        ));
        let mut m = machine();
        m.vector_lanes = 1000;
        assert!(matches!(
            lower(&p, &m).unwrap_err(),
            LowerError::MachineOutOfRange {
                what: "vector_lanes",
                ..
            }
        ));
    }

    #[test]
    fn implicit_vl_vs_reads_are_in_the_read_set() {
        let m = machine();
        let p = shell(vec![ScheduledBlock {
            label: "entry".into(),
            region: RegionId::SCALAR,
            bundles: vec![vec![Op::new(Opcode::VLoad)
                .with_dst(Reg::vec(0))
                .with_srcs(&[Reg::int(3)])]],
        }]);
        let low = lower(&p, &m).unwrap();
        let op = &low.ops[0];
        assert!(op.read_slots().contains(&low.layout.vl_slot()));
        assert!(op.read_slots().contains(&low.layout.vs_slot()));
        assert_eq!(op.read_slots().len(), 3);
        assert!(op.is_vector_memory);
        assert!(op.reads_vl);
        assert_eq!(u32::from(op.lanes), m.l2_port_elems);
        assert_eq!(u32::from(op.flow), m.latencies.vec_mem);
    }

    #[test]
    fn bundles_flatten_contiguously_with_empty_bundles_preserved() {
        let mk = |n: usize| {
            (0..n)
                .map(|i| {
                    Op::new(Opcode::MovI)
                        .with_dst(Reg::int(i as u32))
                        .with_imm(0)
                })
                .collect::<Vec<_>>()
        };
        let p = shell(vec![ScheduledBlock {
            label: "b".into(),
            region: RegionId::SCALAR,
            bundles: vec![mk(2), mk(0), mk(1)],
        }]);
        let low = lower(&p, &machine()).unwrap();
        assert_eq!(low.blocks[0].bundle_count, 3);
        assert_eq!(low.bundle_bounds, vec![0, 2, 2, 3]);
        assert_eq!(low.bundle_ops(0).len(), 2);
        assert_eq!(low.bundle_ops(1).len(), 0);
        assert_eq!(low.bundle_ops(2).len(), 1);
        assert_eq!(low.ops.len(), 3);
    }
}
