//! # vmv-sched — the static VLIW scheduler
//!
//! The "compiler back-end" of the reproduction: it takes a hand-written
//! program (`vmv-isa`) and a machine configuration (`vmv-machine`, Table 2)
//! and produces a static schedule — one VLIW instruction (bundle) per cycle
//! per basic block — honouring:
//!
//! * data dependences with HPL-PD-style latency descriptors (Fig. 3),
//! * the vector latency formula `Tlw = L + (VL-1)/LN` and the chaining rule
//!   of §3.3 for vector→vector dependences,
//! * the functional-unit, cache-port and issue-width resources of Table 2,
//! * the architectural register-file sizes (register allocation).
//!
//! After scheduling, [`lower`] resolves the schedule into the executable
//! [`LoweredProgram`] — labels to block indices, registers to flat slot
//! indices, per-op latency metadata baked in — which is what the simulator's
//! hot loop consumes.

#![forbid(unsafe_code)]

pub mod bundle;
pub mod ddg;
pub mod list;
pub mod lower;
pub mod pipeline;
pub mod regalloc;
pub mod restable;

pub use bundle::{ScheduledBlock, ScheduledOp, ScheduledProgram};
pub use ddg::{DepEdge, DepGraph, DepKind};
pub use lower::{lower, LowerError, LoweredBlock, LoweredOp, LoweredProgram};
pub use pipeline::{compile, CompileError, Compiled};
pub use regalloc::{allocate, Allocation, RegAllocError};
pub use restable::ReservationTable;
