//! Data-dependence graph (DDG) construction for one basic block.
//!
//! The scheduler operates per basic block (the hand-written kernels unroll
//! their hot loops, which plays the role of the superblock formation used by
//! the paper's Trimaran tool-chain).  Edges carry the minimum issue distance
//! between the two operations, derived from the HPL-PD latency descriptors
//! of Fig. 3 and, for vector RAW dependences, from the chaining rule of
//! §3.3.

use std::hash::BuildHasherDefault;

use vmv_isa::{Op, Reg, RegClass};
use vmv_machine::MachineConfig;

/// FNV-1a hasher for the small fixed-size `Reg` keys of the dependence
/// bookkeeping maps — the default SipHash is a measurable share of schedule
/// time on large blocks.
#[derive(Default)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xCBF2_9CE4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Why two operations are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write (true / flow dependence).
    Raw,
    /// Write-after-read (anti dependence).
    War,
    /// Write-after-write (output dependence).
    Waw,
    /// Conservative memory ordering (store↔store, store↔load).
    Mem,
    /// Ordering edge keeping control transfers at the end of the block.
    Control,
}

/// One dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    pub from: usize,
    pub to: usize,
    pub kind: DepKind,
    /// Minimum number of cycles between the issue of `from` and the issue of
    /// `to`.
    pub latency: u32,
}

/// The dependence graph of one basic block.
#[derive(Debug, Clone)]
pub struct DepGraph {
    pub num_ops: usize,
    pub edges: Vec<DepEdge>,
    /// `preds[i]` lists the indices of edges ending at op `i`.
    pub preds: Vec<Vec<usize>>,
    /// `succs[i]` lists the indices of edges starting at op `i`.
    pub succs: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Build the dependence graph of `ops` for the given machine.
    pub fn build(ops: &[Op], machine: &MachineConfig) -> Self {
        let mut edges: Vec<DepEdge> = Vec::new();

        // For RAW edges we need, for every register, the index of the last
        // writer; for WAR/WAW edges the last readers / writer as well.
        let mut last_writer: FnvMap<Reg, usize> = FnvMap::default();
        let mut last_readers: FnvMap<Reg, Vec<usize>> = FnvMap::default();
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();

        for (i, op) in ops.iter().enumerate() {
            let reads = op.reads();
            let writes = op.writes();

            // RAW: this op reads a register written earlier in the block.
            for r in &reads {
                if let Some(&w) = last_writer.get(r) {
                    let producer = &ops[w];
                    let latency = raw_latency(producer, op, *r, machine);
                    edges.push(DepEdge {
                        from: w,
                        to: i,
                        kind: DepKind::Raw,
                        latency,
                    });
                }
            }

            if let Some(dst) = writes {
                // WAW: ordered after the previous writer.
                if let Some(&w) = last_writer.get(&dst) {
                    edges.push(DepEdge {
                        from: w,
                        to: i,
                        kind: DepKind::Waw,
                        latency: 1,
                    });
                }
                // WAR: ordered after previous readers.
                if let Some(readers) = last_readers.get(&dst) {
                    for &r in readers {
                        if r != i {
                            edges.push(DepEdge {
                                from: r,
                                to: i,
                                kind: DepKind::War,
                                latency: 0,
                            });
                        }
                    }
                }
            }

            // Memory ordering: conservative (no alias analysis inside a
            // block; the kernels' memory disambiguation is achieved by
            // keeping independent accesses in separate registers/blocks).
            if op.opcode.is_store() {
                if let Some(s) = last_store {
                    edges.push(DepEdge {
                        from: s,
                        to: i,
                        kind: DepKind::Mem,
                        latency: 1,
                    });
                }
                for &l in &loads_since_store {
                    edges.push(DepEdge {
                        from: l,
                        to: i,
                        kind: DepKind::Mem,
                        latency: 0,
                    });
                }
                last_store = Some(i);
                loads_since_store.clear();
            } else if op.opcode.is_load() {
                if let Some(s) = last_store {
                    edges.push(DepEdge {
                        from: s,
                        to: i,
                        kind: DepKind::Mem,
                        latency: 1,
                    });
                }
                loads_since_store.push(i);
            }

            // Control transfers stay at the end of the block: every earlier
            // operation must issue no later than the branch.
            if op.opcode.is_branch() || op.opcode == vmv_isa::Opcode::Halt {
                for j in 0..i {
                    edges.push(DepEdge {
                        from: j,
                        to: i,
                        kind: DepKind::Control,
                        latency: 0,
                    });
                }
            }

            // Update bookkeeping.
            for r in &reads {
                last_readers.entry(*r).or_default().push(i);
            }
            if let Some(dst) = writes {
                last_writer.insert(dst, i);
                last_readers.entry(dst).or_default().clear();
            }
        }

        let mut preds = vec![Vec::new(); ops.len()];
        let mut succs = vec![Vec::new(); ops.len()];
        for (idx, e) in edges.iter().enumerate() {
            preds[e.to].push(idx);
            succs[e.from].push(idx);
        }
        DepGraph {
            num_ops: ops.len(),
            edges,
            preds,
            succs,
        }
    }

    /// Critical-path height of every operation: the longest latency path
    /// from the operation to the end of the block.  Used as the list
    /// scheduler's priority.
    pub fn heights(&self) -> Vec<u32> {
        let mut heights = vec![0u32; self.num_ops];
        // Operations are in program order, so a reverse sweep sees all
        // successors (edges always point forward) before their predecessors.
        for i in (0..self.num_ops).rev() {
            let mut h = 0;
            for &eidx in &self.succs[i] {
                let e = &self.edges[eidx];
                h = h.max(e.latency + heights[e.to]);
            }
            heights[i] = h;
        }
        heights
    }

    /// Number of unscheduled predecessors of each op (used to seed the ready
    /// list).
    pub fn pred_counts(&self) -> Vec<usize> {
        self.preds.iter().map(|p| p.len()).collect()
    }
}

/// Issue-to-issue latency of a RAW dependence from `producer` to `consumer`
/// through register `reg`.
fn raw_latency(producer: &Op, consumer: &Op, reg: Reg, machine: &MachineConfig) -> u32 {
    let desc = machine.latency_descriptor(producer);
    // Chaining (paper §3.3): a vector operation that reads a *vector
    // register* produced by another vector operation may be scheduled as
    // soon as the first elements are available, i.e. after the producer's
    // sub-operation flow latency rather than its full completion.
    let vector_chain = machine.chaining
        && reg.class == RegClass::Vec
        && producer.opcode.is_vector_op()
        && consumer.opcode.is_vector_op();
    if vector_chain {
        desc.chained_latency().max(1)
    } else {
        desc.result_latency().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::{Op, Opcode, Reg};
    use vmv_machine::presets;

    fn op_movi(dst: Reg, imm: i64) -> Op {
        Op::new(Opcode::MovI).with_dst(dst).with_imm(imm)
    }

    fn op_add(dst: Reg, a: Reg, b: Reg) -> Op {
        Op::new(Opcode::IAdd).with_dst(dst).with_srcs(&[a, b])
    }

    #[test]
    fn raw_dependence_has_producer_latency() {
        let machine = presets::vliw(2);
        let ops = vec![
            Op::new(Opcode::IMul)
                .with_dst(Reg::int(0))
                .with_srcs(&[Reg::int(1), Reg::int(2)]),
            op_add(Reg::int(3), Reg::int(0), Reg::int(1)),
        ];
        let g = DepGraph::build(&ops, &machine);
        let raw: Vec<_> = g.edges.iter().filter(|e| e.kind == DepKind::Raw).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].latency, machine.latencies.int_mul);
    }

    #[test]
    fn war_and_waw_edges_are_created() {
        let machine = presets::vliw(2);
        let ops = vec![
            op_add(Reg::int(2), Reg::int(0), Reg::int(1)), // reads r0
            op_movi(Reg::int(0), 5),                       // writes r0 -> WAR with op0
            op_movi(Reg::int(0), 6),                       // writes r0 -> WAW with op1
        ];
        let g = DepGraph::build(&ops, &machine);
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::War && e.from == 0 && e.to == 1));
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Waw && e.from == 1 && e.to == 2));
    }

    #[test]
    fn loads_may_reorder_but_not_across_stores() {
        let machine = presets::vliw(2);
        let addr = Reg::int(0);
        let ops = vec![
            Op::new(Opcode::Load(vmv_isa::MemWidth::B4, vmv_isa::Sign::Signed))
                .with_dst(Reg::int(1))
                .with_srcs(&[addr])
                .with_imm(0),
            Op::new(Opcode::Load(vmv_isa::MemWidth::B4, vmv_isa::Sign::Signed))
                .with_dst(Reg::int(2))
                .with_srcs(&[addr])
                .with_imm(4),
            Op::new(Opcode::Store(vmv_isa::MemWidth::B4))
                .with_srcs(&[addr, Reg::int(1)])
                .with_imm(8),
        ];
        let g = DepGraph::build(&ops, &machine);
        // no edge between the two loads
        assert!(!g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.from == 0 && e.to == 1));
        // both loads are ordered before the store
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.from == 0 && e.to == 2));
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.from == 1 && e.to == 2));
    }

    #[test]
    fn chaining_reduces_vector_raw_latency() {
        let chained = presets::vector2(2);
        let mut unchained = chained.clone();
        unchained.chaining = false;

        let mut vload = Op::new(Opcode::VLoad)
            .with_dst(Reg::vec(0))
            .with_srcs(&[Reg::int(0)]);
        vload.vl_hint = Some(16);
        let mut vsad = Op::new(Opcode::VSadAcc).with_dst(Reg::acc(0)).with_srcs(&[
            Reg::acc(0),
            Reg::vec(0),
            Reg::vec(1),
        ]);
        vsad.vl_hint = Some(16);
        let ops = vec![vload, vsad];

        let lat_chained = DepGraph::build(&ops, &chained)
            .edges
            .iter()
            .find(|e| e.kind == DepKind::Raw)
            .unwrap()
            .latency;
        let lat_unchained = DepGraph::build(&ops, &unchained)
            .edges
            .iter()
            .find(|e| e.kind == DepKind::Raw)
            .unwrap()
            .latency;
        assert!(
            lat_chained < lat_unchained,
            "{lat_chained} vs {lat_unchained}"
        );
        // Chained: the consumer waits only the 5-cycle flow latency of the
        // load, not 5 + (16-1)/4.
        assert_eq!(lat_chained, chained.latencies.vec_mem);
        assert_eq!(lat_unchained, chained.latencies.vec_mem + 3);
    }

    #[test]
    fn branch_is_ordered_after_every_op() {
        let machine = presets::vliw(2);
        let ops = vec![
            op_movi(Reg::int(0), 1),
            op_movi(Reg::int(1), 2),
            Op::new(Opcode::Br(vmv_isa::BrCond::Ne))
                .with_srcs(&[Reg::int(0), Reg::int(1)])
                .with_target("x"),
        ];
        let g = DepGraph::build(&ops, &machine);
        let ctrl: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Control)
            .collect();
        assert_eq!(ctrl.len(), 2);
    }

    #[test]
    fn heights_reflect_critical_path() {
        let machine = presets::vliw(2);
        let ops = vec![
            Op::new(Opcode::IMul)
                .with_dst(Reg::int(1))
                .with_srcs(&[Reg::int(0), Reg::int(0)]),
            op_add(Reg::int(2), Reg::int(1), Reg::int(0)),
            op_movi(Reg::int(3), 1),
        ];
        let g = DepGraph::build(&ops, &machine);
        let h = g.heights();
        assert!(h[0] > h[1]);
        assert_eq!(h[2], 0);
    }
}
