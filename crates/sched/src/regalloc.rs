//! Register allocation: mapping the builder's virtual registers onto the
//! architectural register files of Table 2.
//!
//! The allocator performs a control-flow aware liveness analysis followed by
//! a linear scan over live intervals, one register class at a time.  The
//! hand-written kernels are sized to fit the (large) register files of the
//! modeled machines, so spilling is not implemented; over-pressure is
//! reported as a structured error naming the class and the demand, which the
//! kernel test-suite turns into a hard failure.

use std::collections::{HashMap, HashSet};

use vmv_isa::{Program, Reg, RegClass};
use vmv_machine::MachineConfig;

/// Error returned when a program needs more registers of some class than the
/// machine provides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAllocError {
    pub class: RegClass,
    pub required: usize,
    pub available: usize,
    pub program: String,
}

impl std::fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "program '{}' needs {} live {:?} registers but the machine provides {}",
            self.program, self.required, self.class, self.available
        )
    }
}

impl std::error::Error for RegAllocError {}

/// Result of a successful allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Virtual register → physical register.
    pub mapping: HashMap<Reg, Reg>,
    /// Peak number of simultaneously live registers per class
    /// (int, simd, vec, acc) — reported in diagnostics and tests.
    pub peak_pressure: HashMap<RegClass, usize>,
}

/// Allocate the virtual registers of `program` onto the register files of
/// `machine`, returning a new program with every register renamed.
pub fn allocate(
    program: &Program,
    machine: &MachineConfig,
) -> Result<(Program, Allocation), RegAllocError> {
    let intervals = live_intervals(program);

    let mut mapping: HashMap<Reg, Reg> = HashMap::new();
    let mut peak_pressure: HashMap<RegClass, usize> = HashMap::new();

    for class in [RegClass::Int, RegClass::Simd, RegClass::Vec, RegClass::Acc] {
        let available = machine.regs.count(class) as usize;
        let mut class_intervals: Vec<(Reg, (usize, usize))> = intervals
            .iter()
            .filter(|(r, _)| r.class == class)
            .map(|(r, iv)| (*r, *iv))
            .collect();
        class_intervals.sort_by_key(|(r, (start, _))| (*start, r.index));

        // Linear scan.  The free list is a FIFO so that a just-released
        // physical register is not immediately reused: immediate reuse would
        // introduce tight WAR/WAW dependences that needlessly serialise the
        // schedule (the classic allocate-before-schedule phase-ordering
        // hazard); cycling round-robin through the large Table 2 register
        // files keeps the reuse distance long.
        let mut active: Vec<(usize, u32)> = Vec::new(); // (end, phys index)
        let mut free: std::collections::VecDeque<u32> = (0..available as u32).collect();
        let mut peak = 0usize;

        for (vreg, (start, end)) in &class_intervals {
            // Expire finished intervals.
            active.retain(|&(e, phys)| {
                if e < *start {
                    free.push_back(phys);
                    false
                } else {
                    true
                }
            });
            let phys = match free.pop_front() {
                Some(p) => p,
                None => {
                    return Err(RegAllocError {
                        class,
                        required: active.len() + 1,
                        available,
                        program: program.name.clone(),
                    })
                }
            };
            active.push((*end, phys));
            peak = peak.max(active.len());
            mapping.insert(*vreg, Reg::new(class, phys));
        }
        peak_pressure.insert(class, peak);
    }

    // Rewrite the program with the mapping (control registers unchanged).
    let mut out = program.clone();
    for block in &mut out.blocks {
        for op in &mut block.ops {
            if let Some(dst) = op.dst {
                if dst.class != RegClass::Ctrl {
                    op.dst = Some(mapping[&dst]);
                }
            }
            for src in &mut op.srcs {
                if src.class != RegClass::Ctrl {
                    *src = mapping[src];
                }
            }
        }
    }

    Ok((
        out,
        Allocation {
            mapping,
            peak_pressure,
        },
    ))
}

/// Compute a conservative live interval (over a linearisation of the blocks
/// in program order) for every virtual register.
///
/// The interval of a register spans from its first definition/use to its last
/// use, extended to cover every block in which the register is live-in or
/// live-out (which correctly handles values that live around loop back
/// edges).
fn live_intervals(program: &Program) -> HashMap<Reg, (usize, usize)> {
    // Block boundaries in the linearisation.
    let mut block_start = Vec::with_capacity(program.blocks.len());
    let mut block_end = Vec::with_capacity(program.blocks.len());
    let mut pos = 0usize;
    for block in &program.blocks {
        block_start.push(pos);
        pos += block.ops.len().max(1);
        block_end.push(pos - 1);
    }

    // Per-block use/def sets (uses before defs).
    let nblocks = program.blocks.len();
    let mut uses: Vec<HashSet<Reg>> = vec![HashSet::new(); nblocks];
    let mut defs: Vec<HashSet<Reg>> = vec![HashSet::new(); nblocks];
    for (b, block) in program.blocks.iter().enumerate() {
        for op in &block.ops {
            for r in op.reads() {
                if r.class != RegClass::Ctrl && !defs[b].contains(&r) {
                    uses[b].insert(r);
                }
            }
            if let Some(d) = op.writes() {
                if d.class != RegClass::Ctrl {
                    defs[b].insert(d);
                }
            }
        }
    }

    // CFG successors.
    let labels = program.label_map();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (b, block) in program.blocks.iter().enumerate() {
        let mut falls_through = true;
        if let Some(term) = block.ops.last() {
            if term.opcode.is_branch() {
                if let Some(target) = &term.target {
                    if let Some(&t) = labels.get(target.as_str()) {
                        succs[b].push(t);
                    }
                }
                falls_through = term.opcode.is_cond_branch();
            } else if term.opcode == vmv_isa::Opcode::Halt {
                falls_through = false;
            }
        }
        if falls_through && b + 1 < nblocks {
            succs[b].push(b + 1);
        }
    }

    // Iterative backward liveness.
    let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); nblocks];
    let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nblocks).rev() {
            let mut out: HashSet<Reg> = HashSet::new();
            for &s in &succs[b] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<Reg> = out.difference(&defs[b]).copied().collect();
            inn.extend(uses[b].iter().copied());
            if inn != live_in[b] || out != live_out[b] {
                live_in[b] = inn;
                live_out[b] = out;
                changed = true;
            }
        }
    }

    // Build intervals.
    let mut intervals: HashMap<Reg, (usize, usize)> = HashMap::new();
    let touch = |r: Reg, at: usize, map: &mut HashMap<Reg, (usize, usize)>| {
        map.entry(r)
            .and_modify(|iv| {
                iv.0 = iv.0.min(at);
                iv.1 = iv.1.max(at);
            })
            .or_insert((at, at));
    };
    for (b, block) in program.blocks.iter().enumerate() {
        for (i, op) in block.ops.iter().enumerate() {
            let at = block_start[b] + i;
            for r in op.reads() {
                if r.class != RegClass::Ctrl {
                    touch(r, at, &mut intervals);
                }
            }
            if let Some(d) = op.writes() {
                if d.class != RegClass::Ctrl {
                    touch(d, at, &mut intervals);
                }
            }
        }
        for &r in &live_in[b] {
            touch(r, block_start[b], &mut intervals);
        }
        for &r in &live_out[b] {
            touch(r, block_end[b], &mut intervals);
        }
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::ProgramBuilder;
    use vmv_machine::presets;

    #[test]
    fn simple_program_allocates_within_file_size() {
        let mut b = ProgramBuilder::new("simple");
        let x = b.imm(1);
        let y = b.imm(2);
        let z = b.ri();
        b.add(z, x, y);
        b.halt();
        let p = b.finish();
        let machine = presets::vliw(2);
        let (alloc_p, alloc) = allocate(&p, &machine).unwrap();
        // All registers are now physical (index < 64).
        for (_, op) in alloc_p.iter_ops() {
            for r in op.srcs.iter().chain(op.dst.iter()) {
                if r.class == RegClass::Int {
                    assert!(r.index < 64);
                }
            }
        }
        assert!(alloc.peak_pressure[&RegClass::Int] <= 3);
    }

    #[test]
    fn registers_are_reused_after_death() {
        // 100 short-lived temporaries must fit in 64 registers.
        let mut b = ProgramBuilder::new("reuse");
        let base = b.imm(0x1000);
        for i in 0..100 {
            let t = b.ri();
            b.ld32s(t, base, 4 * i);
            b.st32(base, 4 * i, t);
        }
        b.halt();
        let p = b.finish();
        let machine = presets::vliw(2);
        let (_, alloc) = allocate(&p, &machine).expect("temporaries die immediately");
        assert!(alloc.peak_pressure[&RegClass::Int] < 10);
    }

    #[test]
    fn loop_carried_values_stay_allocated_across_the_loop() {
        let mut b = ProgramBuilder::new("loop");
        let acc = b.ri();
        b.li(acc, 0);
        let step = b.imm(3);
        b.counted_loop("l", 10, |b, _cnt| {
            b.add(acc, acc, step);
        });
        let out = b.imm(0x2000);
        b.st32(out, 0, acc);
        b.halt();
        let p = b.finish();
        let machine = presets::vliw(2);
        let (alloc_p, alloc) = allocate(&p, &machine).unwrap();
        // acc and step must have distinct physical registers (both live
        // across the loop body).
        let acc_phys = alloc.mapping[&acc];
        let step_phys = alloc.mapping[&step];
        assert_ne!(acc_phys, step_phys);
        assert!(vmv_isa::verify_program(&alloc_p).is_empty());
    }

    #[test]
    fn over_pressure_is_reported_as_error() {
        // 70 registers all live at the same time cannot fit in a 64-entry file.
        let mut b = ProgramBuilder::new("pressure");
        let regs: Vec<_> = (0..70).map(|i| b.imm(i)).collect();
        let sum = b.ri();
        b.li(sum, 0);
        for r in &regs {
            b.add(sum, sum, *r);
        }
        b.halt();
        let p = b.finish();
        let machine = presets::vliw(2);
        let err = allocate(&p, &machine).unwrap_err();
        assert_eq!(err.class, RegClass::Int);
        assert!(err.required > 64);
        assert_eq!(err.available, 64);
    }

    #[test]
    fn vector_registers_fit_the_smaller_vector_file() {
        let mut b = ProgramBuilder::new("vec");
        let base = b.imm(0x1000);
        b.setvl(8);
        b.setvs(8);
        let vs: Vec<_> = (0..10).map(|_| b.rv()).collect();
        for (i, v) in vs.iter().enumerate() {
            b.vload(*v, base, (i * 64) as i64);
        }
        let acc = b.ra();
        b.acc_clear(acc);
        for pair in vs.chunks(2) {
            if pair.len() == 2 {
                b.vsad_acc(acc, pair[0], pair[1]);
            }
        }
        b.halt();
        let p = b.finish();
        let machine = presets::vector1(2); // 20 vector registers
        let (_, alloc) = allocate(&p, &machine).unwrap();
        assert!(alloc.peak_pressure[&RegClass::Vec] <= 20);
    }

    #[test]
    fn control_registers_are_left_untouched() {
        let mut b = ProgramBuilder::new("ctrl");
        b.setvl(4);
        b.setvs(8);
        let base = b.imm(0);
        let v = b.rv();
        b.vload(v, base, 0);
        b.halt();
        let p = b.finish();
        let machine = presets::vector2(2);
        let (alloc_p, _) = allocate(&p, &machine).unwrap();
        let setvl = alloc_p
            .iter_ops()
            .map(|(_, o)| o)
            .find(|o| o.opcode == vmv_isa::Opcode::SetVL)
            .unwrap();
        assert_eq!(setvl.dst, Some(Reg::vl()));
    }
}
