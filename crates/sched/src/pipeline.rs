//! The end-to-end "compiler back-end": verification → register allocation →
//! per-block list scheduling → bundle emission.
//!
//! This is the role the (modified) Trimaran/Elcor tool-chain plays in the
//! paper: it consumes the hand-written programs with µSIMD / Vector-µSIMD
//! emulation operations already expanded, assigns registers against the
//! Table 2 register files, and produces a static schedule for one concrete
//! machine configuration.

use vmv_isa::{verify_program, Program};
use vmv_machine::MachineConfig;

use crate::bundle::{ScheduledBlock, ScheduledProgram};
use crate::list::schedule_block;
use crate::regalloc::{allocate, Allocation, RegAllocError};

/// Errors produced by the compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The input program failed static verification.
    Malformed(Vec<vmv_isa::VerifyError>),
    /// The program uses operations the target machine does not implement
    /// (e.g. vector operations on a µSIMD-only configuration).
    UnsupportedOp { opcode: String, machine: String },
    /// Register pressure exceeds the architectural register file.
    RegAlloc(RegAllocError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Malformed(errs) => {
                write!(f, "program failed verification ({} problems)", errs.len())
            }
            CompileError::UnsupportedOp { opcode, machine } => {
                write!(
                    f,
                    "operation '{opcode}' is not supported by machine '{machine}'"
                )
            }
            CompileError::RegAlloc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Result of a successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub program: ScheduledProgram,
    pub allocation: Allocation,
}

/// Compile `program` for `machine`.
pub fn compile(program: &Program, machine: &MachineConfig) -> Result<Compiled, CompileError> {
    // 1. Static verification.
    let errors = verify_program(program);
    if !errors.is_empty() {
        return Err(CompileError::Malformed(errors));
    }

    // 2. ISA support check.
    for (_, op) in program.iter_ops() {
        if !machine.supports_op(op.opcode) {
            return Err(CompileError::UnsupportedOp {
                opcode: op.opcode.mnemonic(),
                machine: machine.name.clone(),
            });
        }
    }

    // 3. Register allocation.
    let (allocated, allocation) = allocate(program, machine).map_err(CompileError::RegAlloc)?;

    // 4. Per-block list scheduling.
    let mut scheduled = ScheduledProgram::from_program_shell(program);
    for block in &allocated.blocks {
        let bundles = schedule_block(&block.ops, machine);
        scheduled.blocks.push(ScheduledBlock {
            label: block.label.clone(),
            region: block.region,
            bundles,
        });
    }

    Ok(Compiled {
        program: scheduled,
        allocation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::ProgramBuilder;
    use vmv_machine::presets;

    fn vector_sad_program() -> Program {
        let mut b = ProgramBuilder::new("sad");
        let src_a = b.imm(0x1000);
        let src_b = b.imm(0x2000);
        let out = b.imm(0x3000);
        b.begin_region(1, "motion estimation");
        b.setvl(8);
        b.setvs(8);
        let v1 = b.rv();
        let v2 = b.rv();
        b.vload(v1, src_a, 0);
        b.vload(v2, src_b, 0);
        let acc = b.ra();
        b.acc_clear(acc);
        b.vsad_acc(acc, v1, v2);
        let sum = b.ri();
        b.acc_reduce(sum, acc);
        b.end_region();
        b.st32(out, 0, sum);
        b.halt();
        b.finish()
    }

    #[test]
    fn compiles_vector_code_on_vector_machines_only() {
        let p = vector_sad_program();
        assert!(compile(&p, &presets::vector2(2)).is_ok());
        assert!(compile(&p, &presets::vector1(4)).is_ok());
        let err = compile(&p, &presets::usimd(8)).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedOp { .. }));
        let err = compile(&p, &presets::vliw(2)).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedOp { .. }));
    }

    #[test]
    fn malformed_programs_are_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.imm(0);
        b.bne_i(x, 0, "no_such_label");
        let p = b.finish();
        let err = compile(&p, &presets::vliw(2)).unwrap_err();
        assert!(matches!(err, CompileError::Malformed(_)));
    }

    #[test]
    fn schedule_preserves_region_tags_and_op_counts() {
        let p = vector_sad_program();
        let compiled = compile(&p, &presets::vector2(2)).unwrap();
        assert_eq!(compiled.program.static_op_count(), p.static_op_count());
        let vector_blocks: Vec<_> = compiled
            .program
            .blocks
            .iter()
            .filter(|b| b.region == vmv_isa::RegionId(1))
            .collect();
        assert!(!vector_blocks.is_empty());
    }

    #[test]
    fn wider_machines_produce_denser_schedules() {
        let mut b = ProgramBuilder::new("ilp");
        let base = b.imm(0x1000);
        let mut temps = Vec::new();
        for i in 0..12 {
            let t = b.ri();
            b.ld32s(t, base, 4 * i);
            let u = b.ri();
            b.addi(u, t, 1);
            temps.push(u);
        }
        for (i, t) in temps.iter().enumerate() {
            b.st32(base, 256 + 4 * i as i64, *t);
        }
        b.halt();
        let p = b.finish();

        let narrow = compile(&p, &presets::vliw(2))
            .unwrap()
            .program
            .static_schedule_length();
        let wide = compile(&p, &presets::vliw(8))
            .unwrap()
            .program
            .static_schedule_length();
        assert!(
            wide < narrow,
            "8-wide should be shorter: {wide} vs {narrow}"
        );
    }
}
