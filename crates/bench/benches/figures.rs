//! Criterion benches: one group per table / figure of the paper.
//!
//! Each group measures the end-to-end pipeline (kernel construction, static
//! scheduling, cycle-level simulation) for the representative configuration
//! points of that figure, so `cargo bench` both exercises the reproduction
//! paths and reports how expensive each experiment is to regenerate.  The
//! complete artefacts themselves are produced by the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use vmv_core::run_one;
use vmv_kernels::Benchmark;
use vmv_machine::{presets, MachineConfig};
use vmv_mem::MemoryModel;

fn run(bench: Benchmark, machine: &MachineConfig, model: MemoryModel) -> u64 {
    let outcome = run_one(bench, machine, model).expect("run succeeds");
    assert!(outcome.check_failures.is_empty(), "functional checks must pass");
    outcome.stats.cycles()
}

/// Table 1: vectorisation percentage comes from the 2-issue µSIMD runs.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_vector_regions");
    g.sample_size(10);
    let machine = presets::usimd(2);
    for bench in [Benchmark::JpegEnc, Benchmark::GsmDec] {
        g.bench_function(bench.name(), |b| {
            b.iter(|| run(bench, &machine, MemoryModel::Realistic))
        });
    }
    g.finish();
}

/// Figure 1: scalability of the µSIMD machines (2/4/8-issue points).
fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_scalability");
    g.sample_size(10);
    for machine in [presets::usimd(2), presets::usimd(4), presets::usimd(8)] {
        g.bench_function(machine.name.clone(), |b| {
            b.iter(|| run(Benchmark::Mpeg2Dec, &machine, MemoryModel::Realistic))
        });
    }
    g.finish();
}

/// Figure 5: vector-region speed-ups, perfect vs realistic memory.
fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_vector_regions");
    g.sample_size(10);
    let vector = presets::vector2(2);
    g.bench_function("mpeg2_enc perfect", |b| {
        b.iter(|| run(Benchmark::Mpeg2Enc, &vector, MemoryModel::Perfect))
    });
    g.bench_function("mpeg2_enc realistic", |b| {
        b.iter(|| run(Benchmark::Mpeg2Enc, &vector, MemoryModel::Realistic))
    });
    let usimd = presets::usimd(8);
    g.bench_function("mpeg2_enc 8w usimd realistic", |b| {
        b.iter(|| run(Benchmark::Mpeg2Enc, &usimd, MemoryModel::Realistic))
    });
    g.finish();
}

/// Figure 6 / Table 3: whole-application runs on the three ISA families.
fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_applications");
    g.sample_size(10);
    for machine in [presets::vliw(2), presets::usimd(2), presets::vector1(2), presets::vector2(4)] {
        g.bench_function(machine.name.clone(), |b| {
            b.iter(|| run(Benchmark::JpegEnc, &machine, MemoryModel::Realistic))
        });
    }
    g.finish();
}

/// Figure 7: operation-count comparison only needs the 2-issue machines.
fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_operation_counts");
    g.sample_size(10);
    for machine in [presets::vliw(2), presets::usimd(2), presets::vector2(2)] {
        g.bench_function(machine.name.clone(), |b| {
            b.iter(|| run(Benchmark::GsmEnc, &machine, MemoryModel::Realistic))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1, bench_fig1, bench_fig5, bench_fig6, bench_fig7);
criterion_main!(benches);
