//! Ablation benches for the design choices called out in DESIGN.md:
//! number of vector lanes, width of the L2 vector-cache port, and vector
//! chaining.  Each point runs the motion-estimation-heavy MPEG-2 encoder on
//! a 2-issue Vector2 machine with one parameter varied.

use criterion::{criterion_group, criterion_main, Criterion};
use vmv_core::run_one;
use vmv_kernels::Benchmark;
use vmv_machine::presets;
use vmv_mem::MemoryModel;

fn bench_lanes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vector_lanes");
    g.sample_size(10);
    for lanes in [1u32, 2, 4, 8] {
        let mut machine = presets::vector2(2);
        machine.vector_lanes = lanes;
        machine.name = format!("2w +Vector2 lanes={lanes}");
        g.bench_function(machine.name.clone(), |b| {
            b.iter(|| {
                let o = run_one(Benchmark::JpegEnc, &machine, MemoryModel::Perfect).unwrap();
                assert!(o.check_failures.is_empty());
                o.stats.cycles()
            })
        });
    }
    g.finish();
}

fn bench_port_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_l2_port_width");
    g.sample_size(10);
    for elems in [1u32, 2, 4, 8] {
        let mut machine = presets::vector2(2);
        machine.l2_port_elems = elems;
        machine.name = format!("2w +Vector2 port={elems}x64b");
        g.bench_function(machine.name.clone(), |b| {
            b.iter(|| {
                let o = run_one(Benchmark::JpegDec, &machine, MemoryModel::Perfect).unwrap();
                assert!(o.check_failures.is_empty());
                o.stats.cycles()
            })
        });
    }
    g.finish();
}

fn bench_chaining(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_chaining");
    g.sample_size(10);
    for chaining in [true, false] {
        let mut machine = presets::vector2(2);
        machine.chaining = chaining;
        machine.name = format!("2w +Vector2 chaining={chaining}");
        g.bench_function(machine.name.clone(), |b| {
            b.iter(|| {
                let o = run_one(Benchmark::Mpeg2Enc, &machine, MemoryModel::Perfect).unwrap();
                assert!(o.check_failures.is_empty());
                o.stats.cycles()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lanes, bench_port_width, bench_chaining);
criterion_main!(benches);
