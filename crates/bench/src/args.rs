//! Minimal shared command-line argument helper for the three binaries.
//!
//! Convention: malformed input — a flag missing its value, a non-numeric
//! `--threads`, a `--shard` that is not `I/N` — prints one precise error
//! line and exits with status **2** (usage error), distinct from status 1
//! (runtime failure).  `--help`/`-h` print the binary's usage and exit 0.

use std::fmt::Display;

/// Print `error: <message>` and exit with the usage-error status (2).
pub fn fail(message: impl Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("(run with --help for usage)");
    std::process::exit(2)
}

/// The process arguments (excluding the program name) as a peekable stream
/// with precise-error extractors.
pub struct ArgStream {
    args: std::iter::Peekable<std::vec::IntoIter<String>>,
}

impl Default for ArgStream {
    fn default() -> Self {
        Self::new()
    }
}

impl ArgStream {
    pub fn new() -> ArgStream {
        ArgStream {
            args: std::env::args()
                .skip(1)
                .collect::<Vec<_>>()
                .into_iter()
                .peekable(),
        }
    }

    #[cfg(test)]
    fn from_vec(args: Vec<String>) -> ArgStream {
        ArgStream {
            args: args.into_iter().peekable(),
        }
    }

    pub fn peek(&mut self) -> Option<&str> {
        self.args.peek().map(String::as_str)
    }

    /// The value following `flag`, or exit 2 with a precise message.
    pub fn value(&mut self, flag: &str) -> String {
        match self.args.next() {
            Some(v) => v,
            None => fail(format!("{flag} needs a value")),
        }
    }

    /// The value following `flag` parsed as `T`, or exit 2 naming the flag,
    /// what it expects, and what it got.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str, expects: &str) -> T {
        let raw = self.value(flag);
        match raw.parse() {
            Ok(v) => v,
            Err(_) => fail(format!("{flag} expects {expects}, got '{raw}'")),
        }
    }

    /// The `I/N` shard assignment following `flag`, or exit 2.
    pub fn shard(&mut self, flag: &str) -> (usize, usize) {
        let raw = self.value(flag);
        match parse_shard(&raw) {
            Ok(s) => s,
            Err(e) => fail(format!("{flag}: {e}")),
        }
    }
}

impl Iterator for ArgStream {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        self.args.next()
    }
}

/// The one `I/N` shard-assignment parser, shared with the spec-file
/// `defaults.shard` field so the two syntaxes can never drift.
pub use vmv_sweep::parse_shard;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing_accepts_exactly_valid_assignments() {
        assert_eq!(parse_shard("0/1"), Ok((0, 1)));
        assert_eq!(parse_shard("3/8"), Ok((3, 8)));
        assert_eq!(parse_shard(" 1 / 2 "), Ok((1, 2)));
        for bad in [
            "", "1", "1/", "/2", "a/2", "1/b", "2/2", "3/2", "1/0", "-1/2",
        ] {
            let err = parse_shard(bad).expect_err(bad);
            assert!(err.contains(bad.trim()), "{err} should quote '{bad}'");
        }
    }

    #[test]
    fn stream_walks_values_in_order() {
        let mut s = ArgStream::from_vec(vec!["--out".into(), "x.jsonl".into(), "--demo".into()]);
        assert_eq!(s.next().as_deref(), Some("--out"));
        assert_eq!(s.peek(), Some("x.jsonl"));
        assert_eq!(s.value("--out"), "x.jsonl");
        assert_eq!(s.next().as_deref(), Some("--demo"));
        assert_eq!(s.next(), None);
    }
}
