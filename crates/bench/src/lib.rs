//! Helper routines shared by the `repro`/`sweep`/`bench` binaries and the
//! Criterion benches.

#![forbid(unsafe_code)]

pub mod args;

use vmv_core::Suite;
use vmv_mem::MemoryModel;

/// Run the complete ten-configuration measurement matrix for both memory
/// models and return (perfect, realistic).
pub fn run_both_suites() -> (Suite, Suite) {
    let perfect = Suite::run_all_configs(MemoryModel::Perfect).expect("perfect-memory suite");
    let realistic = Suite::run_all_configs(MemoryModel::Realistic).expect("realistic-memory suite");
    (perfect, realistic)
}

/// Render every table and figure of the paper from the two suites.
pub fn render_everything(perfect: &Suite, realistic: &Suite) -> String {
    let mut out = String::new();
    let t1 = vmv_core::table1(realistic);
    out.push_str(&vmv_core::render_table1(&t1));
    out.push('\n');

    let f1 = vmv_core::fig1(realistic);
    out.push_str(&vmv_core::render_fig1(&f1));
    let s = vmv_core::fig1_summary(&f1, &t1);
    out.push_str(&format!(
        "  section-2 aggregates: scalar 2->4w {:.2}x, scalar 4->8w {:.2}x, vector regions at 8w {:.2}x, avg vectorisation {:.1}%\n\n",
        s.scalar_2_to_4,
        s.scalar_4_to_8,
        s.vector_at_8,
        100.0 * s.avg_vectorization
    ));

    out.push_str("Figure 5a (perfect memory)\n");
    out.push_str(&vmv_core::render_chart(&vmv_core::fig5(perfect)));
    out.push('\n');
    out.push_str("Figure 5b (realistic memory)\n");
    out.push_str(&vmv_core::render_chart(&vmv_core::fig5(realistic)));
    out.push('\n');

    out.push_str("Figure 6 (complete applications, realistic memory)\n");
    out.push_str(&vmv_core::render_chart(&vmv_core::fig6(realistic)));
    out.push('\n');

    let f7 = vmv_core::fig7(realistic);
    out.push_str(&vmv_core::render_fig7(&f7));
    let s7 = vmv_core::fig7_summary(realistic);
    out.push_str(&format!(
        "  section-5.3 aggregates: vector executes {:.1}% fewer operations than uSIMD in the vector regions, {:.1}% fewer in the whole application\n\n",
        100.0 * s7.vector_region_reduction,
        100.0 * s7.application_reduction
    ));

    out.push_str(&vmv_core::render_table3(&vmv_core::table3(realistic)));
    out
}
