//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin repro            # everything
//! cargo run --release -p vmv-bench --bin repro -- fig6    # one artefact
//! ```
//!
//! Valid selectors: `table1`, `fig1`, `fig5a`, `fig5b`, `fig6`, `fig7`,
//! `table3`, `all` (default).

use vmv_core::Suite;
use vmv_mem::MemoryModel;

fn main() {
    let selector = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());

    let need_perfect = matches!(selector.as_str(), "all" | "fig5a");
    let need_realistic = selector != "fig5a";

    let perfect = if need_perfect {
        Some(Suite::run_all_configs(MemoryModel::Perfect).expect("perfect-memory suite"))
    } else {
        None
    };
    let realistic = if need_realistic {
        Some(Suite::run_all_configs(MemoryModel::Realistic).expect("realistic-memory suite"))
    } else {
        None
    };

    for suite in [perfect.as_ref(), realistic.as_ref()].into_iter().flatten() {
        let failed = suite.failed();
        if !failed.is_empty() {
            eprintln!("WARNING: {} runs failed their output checks", failed.len());
            for f in failed {
                eprintln!("  {} / {} / {:?}: {:?}", f.config, f.benchmark.name(), f.variant, f.check_failures);
            }
        }
    }

    match selector.as_str() {
        "all" => {
            let p = perfect.as_ref().unwrap();
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_bench::render_everything(p, r));
        }
        "table1" => {
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_core::render_table1(&vmv_core::table1(r)));
        }
        "fig1" => {
            let r = realistic.as_ref().unwrap();
            let f1 = vmv_core::fig1(r);
            println!("{}", vmv_core::render_fig1(&f1));
            let t1 = vmv_core::table1(r);
            let s = vmv_core::fig1_summary(&f1, &t1);
            println!(
                "section-2 aggregates: scalar 2->4w {:.2}x, scalar 4->8w {:.2}x, vector at 8w {:.2}x, avg vect {:.1}%",
                s.scalar_2_to_4, s.scalar_4_to_8, s.vector_at_8, 100.0 * s.avg_vectorization
            );
        }
        "fig5a" => {
            let p = perfect.as_ref().unwrap();
            println!("Figure 5a (perfect memory)");
            println!("{}", vmv_core::render_chart(&vmv_core::fig5(p)));
        }
        "fig5b" => {
            let r = realistic.as_ref().unwrap();
            println!("Figure 5b (realistic memory)");
            println!("{}", vmv_core::render_chart(&vmv_core::fig5(r)));
        }
        "fig6" => {
            let r = realistic.as_ref().unwrap();
            println!("Figure 6 (complete applications)");
            println!("{}", vmv_core::render_chart(&vmv_core::fig6(r)));
        }
        "fig7" => {
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_core::render_fig7(&vmv_core::fig7(r)));
            let s7 = vmv_core::fig7_summary(r);
            println!(
                "vector vs uSIMD operation reduction: {:.1}% (vector regions), {:.1}% (application)",
                100.0 * s7.vector_region_reduction,
                100.0 * s7.application_reduction
            );
        }
        "table3" => {
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_core::render_table3(&vmv_core::table3(r)));
        }
        other => {
            eprintln!("unknown selector '{other}' (use table1|fig1|fig5a|fig5b|fig6|fig7|table3|all)");
            std::process::exit(1);
        }
    }
}
