//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin repro            # everything
//! cargo run --release -p vmv-bench --bin repro -- fig6    # one artefact
//! cargo run --release -p vmv-bench --bin repro -- all --json BENCH_repro.json
//! ```
//!
//! Valid selectors: `table1`, `fig1`, `fig5a`, `fig5b`, `fig6`, `fig7`,
//! `table3`, `all` (default).  With `--json PATH`, a BENCH-style artifact
//! (suite wall-clock seconds plus per-run cycle counts) is also written.

use std::time::Instant;

use vmv_core::Suite;
use vmv_mem::MemoryModel;
use vmv_sweep::Json;

fn suite_json(label: &str, suite: &Suite, wall_seconds: f64) -> Json {
    Json::Obj(vec![
        ("model".into(), Json::str(label)),
        ("wall_seconds".into(), Json::Num(wall_seconds)),
        (
            "per_run".into(),
            Json::Arr(
                suite
                    .outcomes
                    .iter()
                    .map(|o| {
                        Json::Obj(vec![
                            ("config".into(), Json::str(&o.config)),
                            ("benchmark".into(), Json::str(o.benchmark.name())),
                            ("cycles".into(), Json::u64(o.stats.cycles())),
                            ("vector_cycles".into(), Json::u64(o.stats.vector().cycles)),
                            ("check_ok".into(), Json::Bool(o.check_failures.is_empty())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let mut selector: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut args = vmv_bench::args::ArgStream::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.value("--json")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [table1|fig1|fig5a|fig5b|fig6|fig7|table3|all] [--json PATH]"
                );
                return;
            }
            flag if flag.starts_with("--") => {
                vmv_bench::args::fail(format!("unknown argument '{flag}'"))
            }
            other => selector = Some(other.to_string()),
        }
    }
    let selector = selector.unwrap_or_else(|| "all".to_string());
    const SELECTORS: &[&str] = &[
        "all", "table1", "fig1", "fig5a", "fig5b", "fig6", "fig7", "table3",
    ];
    // Validate before running the (expensive) measurement matrix.
    if !SELECTORS.contains(&selector.as_str()) {
        vmv_bench::args::fail(format!(
            "unknown selector '{selector}' (use table1|fig1|fig5a|fig5b|fig6|fig7|table3|all)"
        ));
    }

    let need_perfect = matches!(selector.as_str(), "all" | "fig5a") || json_path.is_some();
    let need_realistic = selector != "fig5a" || json_path.is_some();

    let mut suites_json: Vec<Json> = Vec::new();
    let perfect = if need_perfect {
        let t = Instant::now();
        let suite = Suite::run_all_configs(MemoryModel::Perfect).expect("perfect-memory suite");
        suites_json.push(suite_json("perfect", &suite, t.elapsed().as_secs_f64()));
        Some(suite)
    } else {
        None
    };
    let realistic = if need_realistic {
        let t = Instant::now();
        let suite = Suite::run_all_configs(MemoryModel::Realistic).expect("realistic-memory suite");
        suites_json.push(suite_json("realistic", &suite, t.elapsed().as_secs_f64()));
        Some(suite)
    } else {
        None
    };

    for suite in [perfect.as_ref(), realistic.as_ref()].into_iter().flatten() {
        let failed = suite.failed();
        if !failed.is_empty() {
            eprintln!("WARNING: {} runs failed their output checks", failed.len());
            for f in failed {
                eprintln!(
                    "  {} / {} / {:?}: {:?}",
                    f.config,
                    f.benchmark.name(),
                    f.variant,
                    f.check_failures
                );
            }
        }
    }

    match selector.as_str() {
        "all" => {
            let p = perfect.as_ref().unwrap();
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_bench::render_everything(p, r));
        }
        "table1" => {
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_core::render_table1(&vmv_core::table1(r)));
        }
        "fig1" => {
            let r = realistic.as_ref().unwrap();
            let f1 = vmv_core::fig1(r);
            println!("{}", vmv_core::render_fig1(&f1));
            let t1 = vmv_core::table1(r);
            let s = vmv_core::fig1_summary(&f1, &t1);
            println!(
                "section-2 aggregates: scalar 2->4w {:.2}x, scalar 4->8w {:.2}x, vector at 8w {:.2}x, avg vect {:.1}%",
                s.scalar_2_to_4, s.scalar_4_to_8, s.vector_at_8, 100.0 * s.avg_vectorization
            );
        }
        "fig5a" => {
            let p = perfect.as_ref().unwrap();
            println!("Figure 5a (perfect memory)");
            println!("{}", vmv_core::render_chart(&vmv_core::fig5(p)));
        }
        "fig5b" => {
            let r = realistic.as_ref().unwrap();
            println!("Figure 5b (realistic memory)");
            println!("{}", vmv_core::render_chart(&vmv_core::fig5(r)));
        }
        "fig6" => {
            let r = realistic.as_ref().unwrap();
            println!("Figure 6 (complete applications)");
            println!("{}", vmv_core::render_chart(&vmv_core::fig6(r)));
        }
        "fig7" => {
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_core::render_fig7(&vmv_core::fig7(r)));
            let s7 = vmv_core::fig7_summary(r);
            println!(
                "vector vs uSIMD operation reduction: {:.1}% (vector regions), {:.1}% (application)",
                100.0 * s7.vector_region_reduction,
                100.0 * s7.application_reduction
            );
        }
        "table3" => {
            let r = realistic.as_ref().unwrap();
            println!("{}", vmv_core::render_table3(&vmv_core::table3(r)));
        }
        _ => unreachable!("selector validated above"),
    }

    if let Some(path) = json_path {
        let artifact = Json::Obj(vec![
            ("name".into(), Json::str("repro_table2_matrix")),
            ("suites".into(), Json::Arr(suites_json)),
        ]);
        if let Err(e) = std::fs::write(&path, artifact.render() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote benchmark artifact to {path}");
    }
}
