//! Design-space exploration driver.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin sweep -- --demo
//! cargo run --release -p vmv-bench --bin sweep -- --demo --threads 4 \
//!     --out sweep_results.jsonl --json BENCH_sweep.json
//! cargo run --release -p vmv-bench --bin sweep -- --merge shard1.jsonl \
//!     shard2.jsonl --out merged.jsonl
//! cargo run --release -p vmv-bench --bin sweep -- --compact --out merged.jsonl
//! ```
//!
//! `--demo` expands a built-in specification of well over 100 distinct
//! machine configurations (issue width × vector units × lanes × L2 size ×
//! memory latency, under a lane-budget constraint), runs the GSM pair on
//! every point in parallel, streams results to a JSONL store and prints the
//! cost/cycles Pareto frontier plus a per-axis sensitivity summary.
//! Re-running with the same `--out` file skips every completed run key.
//!
//! `--merge` unions JSONL shard files (e.g. from per-machine distributed
//! sweeps) into `--out` by content-derived run key; `--compact` drops
//! superseded duplicate keys from `--out` and rewrites it sorted by key.

use vmv_kernels::Benchmark;
use vmv_sweep::{
    pareto_report, render_pareto, render_sensitivity, schedule_fingerprint, sensitivity,
    shard_points, Axis, ExecOptions, Json, ResultStore, SweepSpec,
};

fn usage() -> ! {
    eprintln!(
        "usage: sweep --demo [--threads N] [--shard I/N] [--out RESULTS.jsonl]\n\
         \x20            [--json BENCH.json]\n\
         \x20      sweep --merge SHARD.jsonl [SHARD.jsonl ...] --out RESULTS.jsonl\n\
         \x20      sweep --compact --out RESULTS.jsonl\n\
         \n\
         --demo          run the built-in demonstration sweep\n\
         --shard I/N     run only design points with index = I (mod N) of the\n\
         \x20               deduplicated expansion (deterministic, so N\n\
         \x20               machines with I = 0..N-1 partition the sweep; the\n\
         \x20               per-shard result files compose with --merge)\n\
         --merge SHARDS  union shard files into --out by content-derived\n\
         \x20               run key (first occurrence of a key wins)\n\
         --compact       drop superseded duplicate keys from --out and\n\
         \x20               rewrite it sorted by key\n\
         --threads N     worker threads (default: one per core, max 16)\n\
         --out PATH      JSONL result store (default: sweep_results.jsonl);\n\
         \x20               completed run keys found there are skipped\n\
         --json PATH     also write a BENCH-style JSON artifact (wall clock,\n\
         \x20               cache counters, per-run cycles)"
    );
    std::process::exit(1)
}

/// Parse an `I/N` shard specification.
fn parse_shard(s: &str) -> Option<(usize, usize)> {
    let (i, n) = s.split_once('/')?;
    let i: usize = i.parse().ok()?;
    let n: usize = n.parse().ok()?;
    if n >= 1 && i < n {
        Some((i, n))
    } else {
        None
    }
}

/// The built-in demonstration sweep: 2 × 3 × 5 × 2 × 2 = 120 raw points,
/// 112 after the lane-budget constraint, all distinct.
fn demo_spec() -> SweepSpec {
    SweepSpec::new()
        .axis(Axis::issue_width(&[2, 4]))
        .axis(Axis::vector_units(&[1, 2, 4]))
        .axis(Axis::vector_lanes(&[1, 2, 4, 8, 16]))
        .axis(Axis::l2_size(&[128 * 1024, 256 * 1024]))
        .axis(Axis::mem_latency(&[100, 500]))
        .constraint("lane budget: units x lanes <= 32", |m, _| {
            m.vector_units as u32 * m.vector_lanes <= 32
        })
}

fn main() {
    let mut demo = false;
    let mut compact = false;
    let mut merge_shards: Option<Vec<String>> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut threads = 0usize;
    let mut out_path = "sweep_results.jsonl".to_string();
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--demo" => demo = true,
            "--compact" => compact = true,
            "--merge" => {
                let mut shards = Vec::new();
                while let Some(next) = args.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    shards.push(args.next().unwrap());
                }
                if shards.is_empty() {
                    usage();
                }
                merge_shards = Some(shards);
            }
            "--shard" => {
                shard = Some(
                    args.next()
                        .as_deref()
                        .and_then(parse_shard)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    if let Some(shards) = merge_shards {
        let store = ResultStore::open(&out_path);
        match store.merge_from(&shards) {
            Ok(stats) => {
                println!(
                    "merged {} shard files into {out_path}: {} records appended, \
                     {} duplicate keys skipped ({} scanned, {} already present)",
                    shards.len(),
                    stats.merged,
                    stats.duplicates,
                    stats.scanned,
                    stats.existing
                );
            }
            Err(e) => {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            }
        }
        if !demo && !compact {
            return;
        }
    }
    if compact {
        let store = ResultStore::open(&out_path);
        match store.compact() {
            Ok(stats) => println!(
                "compacted {out_path}: {} records kept (sorted by key), {} superseded \
                 duplicates dropped",
                stats.kept, stats.dropped
            ),
            Err(e) => {
                eprintln!("compact failed: {e}");
                std::process::exit(1);
            }
        }
        if !demo {
            return;
        }
    }
    if !demo {
        usage();
    }

    let spec = demo_spec();
    let expansion = spec.expand();
    let benchmarks = vec![Benchmark::GsmDec, Benchmark::GsmEnc];
    println!(
        "expanded {} design points ({} raw, {} rejected by constraints, {} duplicates)",
        expansion.points.len(),
        expansion.raw,
        expansion.rejected,
        expansion.duplicates
    );
    let points = match shard {
        Some((i, n)) => {
            let part = shard_points(&expansion.points, i, n);
            println!(
                "shard {i}/{n}: running {} of {} design points",
                part.len(),
                expansion.points.len()
            );
            part
        }
        None => expansion.points,
    };

    // How many schedules the compile cache should perform if it memoizes
    // perfectly: one per (benchmark, distinct schedule fingerprint).
    let distinct_schedule_keys: std::collections::HashSet<String> = points
        .iter()
        .map(|p| schedule_fingerprint(&p.machine))
        .collect();
    let expected_schedules = distinct_schedule_keys.len() * benchmarks.len();

    let store = ResultStore::open(&out_path);
    let opts = ExecOptions {
        benchmarks: benchmarks.clone(),
        workers: threads,
    };
    let report = match vmv_sweep::run_sweep(&points, &opts, Some(&store)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "ran {} simulations in {:.2}s ({} skipped as already completed in {})",
        report.records.len(),
        report.wall_seconds,
        report.skipped,
        out_path
    );
    println!(
        "compile cache: {} schedules, {} hits (expected at most {} schedules = \
         benchmarks x distinct schedule keys)",
        report.cache.misses, report.cache.hits, expected_schedules
    );
    if !report.records.is_empty() && report.wall_seconds > 0.0 {
        // Simulator throughput over this invocation's parallel phase: the
        // CI smoke step surfaces this line so hot-path regressions are
        // visible in plain build logs.
        let simulated: u64 = report.records.iter().map(|r| r.cycles).sum();
        println!(
            "sim throughput: {simulated} simulated cycles / {:.3} s = {:.0} \
             simulated-cycles-per-second",
            report.wall_seconds,
            simulated as f64 / report.wall_seconds
        );
    }
    if report.skipped == 0 && report.cache.misses as usize != expected_schedules {
        eprintln!(
            "WARNING: schedule count {} != expected {} — compile memoization regressed",
            report.cache.misses, expected_schedules
        );
    }
    for (job, err) in &report.errors {
        eprintln!("FAILED: {job}: {err}");
    }

    // Analyses run over the *whole* store, so an incremental invocation
    // still reports the full picture.  Filter by the expansion's run keys:
    // the store may also hold runs from other sweeps (or from older
    // parameter defaults) whose design points merely share a display name.
    let expected_keys: std::collections::HashSet<String> =
        vmv_sweep::store::point_key_index(&points, &benchmarks)
            .into_keys()
            .collect();
    let all_records: Vec<_> = match store.load() {
        Ok(r) => r
            .into_iter()
            .filter(|r| expected_keys.contains(&r.key))
            .collect(),
        Err(e) => {
            eprintln!("cannot re-read {out_path}: {e}");
            std::process::exit(1);
        }
    };
    let failed = all_records.iter().filter(|r| !r.check_ok).count();
    if failed > 0 {
        eprintln!("WARNING: {failed} stored runs failed their output checks");
    }

    println!(
        "\nPareto frontier (total cycles over {} benchmarks vs. hardware cost):",
        benchmarks.len()
    );
    let entries = pareto_report(&points, &all_records);
    print!("{}", render_pareto(&entries, 20));

    println!("\nPer-axis sensitivity (cycle swing with all other axes held fixed):");
    print!(
        "{}",
        render_sensitivity(&sensitivity(&points, &all_records))
    );

    if let Some(path) = json_path {
        let artifact = Json::Obj(vec![
            ("name".into(), Json::str("sweep_demo")),
            ("wall_seconds".into(), Json::Num(report.wall_seconds)),
            ("points".into(), Json::u64(points.len() as u64)),
            ("runs".into(), Json::u64(report.records.len() as u64)),
            ("skipped".into(), Json::u64(report.skipped as u64)),
            ("schedules".into(), Json::u64(report.cache.misses)),
            ("cache_hits".into(), Json::u64(report.cache.hits)),
            (
                "per_run".into(),
                Json::Arr(
                    all_records
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("key".into(), Json::str(&r.key)),
                                ("config".into(), Json::str(&r.config)),
                                ("benchmark".into(), Json::str(&r.benchmark)),
                                ("cycles".into(), Json::u64(r.cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Err(e) = std::fs::write(&path, artifact.render() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote benchmark artifact to {path}");
    }
}
