//! Design-space exploration driver, driven by declarative spec files.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin sweep -- --demo
//! cargo run --release -p vmv-bench --bin sweep -- --print-spec > demo.json
//! cargo run --release -p vmv-bench --bin sweep -- --spec demo.json \
//!     --threads 4 --out sweep_results.jsonl --json BENCH_sweep.json
//! cargo run --release -p vmv-bench --bin sweep -- \
//!     --spec examples/specs/latency_tolerance.json
//! cargo run --release -p vmv-bench --bin sweep -- --merge shard1.jsonl \
//!     shard2.jsonl --out merged.jsonl
//! cargo run --release -p vmv-bench --bin sweep -- --compact --out merged.jsonl
//! ```
//!
//! A sweep is described by a JSON **spec file** (axes, constraints,
//! execution defaults — see the `vmv_sweep::specfile` docs and
//! `examples/specs/`), not by Rust code: `--spec FILE` parses, validates and
//! runs it; `--print-spec` emits the canonical serialization (of `--spec
//! FILE` when given, of the built-in demo spec otherwise); `--fingerprint`
//! prints the 16-hex-digit content hash of the experiment definition; and
//! `--demo` is sugar for running the embedded demo spec (112 distinct
//! machines, GSM pair, lane-budget constraint).  Every spec-driven result
//! store opens with a spec-header line naming that fingerprint, so a JSONL
//! file alone says which experiment it answers; re-running with the same
//! `--out` skips every completed run key.
//!
//! `--merge` unions JSONL shard files (e.g. from per-machine distributed
//! sweeps) into `--out` by content-derived run key, warning when shard
//! spec headers disagree; `--compact` drops superseded duplicate keys from
//! `--out` and rewrites it sorted by key, preserving the header.

use vmv_bench::args::{fail, ArgStream};
use vmv_sweep::{
    pareto_report, render_pareto, render_sensitivity, schedule_fingerprint, sensitivity,
    shard_points, ExecOptions, Json, ResultStore, SpecFile,
};

fn usage() {
    eprintln!(
        "usage: sweep --spec FILE.json | --demo  [--threads N] [--shard I/N]\n\
         \x20            [--out RESULTS.jsonl] [--json BENCH.json]\n\
         \x20      sweep --spec FILE.json --check\n\
         \x20      sweep --print-spec [--spec FILE.json]\n\
         \x20      sweep --fingerprint [--spec FILE.json]\n\
         \x20      sweep --merge SHARD.jsonl [SHARD.jsonl ...] --out RESULTS.jsonl\n\
         \x20      sweep --compact --out RESULTS.jsonl\n\
         \n\
         --spec FILE     run the sweep described by a declarative JSON spec\n\
         \x20               file (axes + constraints + defaults; see\n\
         \x20               examples/specs/)\n\
         --demo          run the built-in demonstration spec\n\
         --check         lint the spec, then compile and statically certify\n\
         \x20               every distinct schedule it reaches — no execution;\n\
         \x20               exits 2 when any error diagnostic is found\n\
         --verify        certify every freshly compiled schedule with the\n\
         \x20               static verifier during the sweep (debug builds\n\
         \x20               always do)\n\
         --print-spec    print the canonical JSON serialization of the spec\n\
         \x20               (the demo spec without --spec) and exit\n\
         --fingerprint   print the spec's 16-hex content fingerprint and exit\n\
         --shard I/N     run only design points with index = I (mod N) of the\n\
         \x20               deduplicated expansion (deterministic, so N\n\
         \x20               machines with I = 0..N-1 partition the sweep; the\n\
         \x20               per-shard result files compose with --merge)\n\
         --merge SHARDS  union shard files into --out by content-derived\n\
         \x20               run key (first occurrence of a key wins; warns\n\
         \x20               when shard spec headers disagree)\n\
         --compact       drop superseded duplicate keys from --out and\n\
         \x20               rewrite it sorted by key (spec header preserved)\n\
         --threads N     worker threads (default: spec file, else one per\n\
         \x20               core, max 16)\n\
         --out PATH      JSONL result store (default: spec file, else\n\
         \x20               sweep_results.jsonl); completed run keys found\n\
         \x20               there are skipped\n\
         --json PATH     also write a BENCH-style JSON artifact (wall clock,\n\
         \x20               cache counters, per-run cycles)\n\
         --metrics PATH  enable the pipeline recorder and write its snapshot\n\
         \x20               (counters, span histograms, per-worker load) as\n\
         \x20               canonical JSON after the sweep\n\
         --profile [DIR] write one vmv-profile/1 cycle-attribution document\n\
         \x20               per completed run into DIR (default:\n\
         \x20               <out>.profiles/); render with `report profile`\n\
         --progress      ~1 Hz heartbeat on stderr: done/total runs, runs/s,\n\
         \x20               cache hit rate, ETA"
    );
}

fn main() {
    let mut demo = false;
    let mut spec_path: Option<String> = None;
    let mut print_spec = false;
    let mut print_fingerprint = false;
    let mut compact = false;
    let mut merge_shards: Option<Vec<String>> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut threads: Option<usize> = None;
    let mut out_flag: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut progress = false;
    let mut check = false;
    let mut verify = false;
    // None = off; Some(None) = default dir next to the store;
    // Some(Some(dir)) = explicit directory.
    let mut profile: Option<Option<String>> = None;

    let mut args = ArgStream::new();
    let mut any = false;
    while let Some(arg) = args.next() {
        any = true;
        match arg.as_str() {
            "--demo" => demo = true,
            "--spec" => spec_path = Some(args.value("--spec")),
            "--print-spec" => print_spec = true,
            "--fingerprint" => print_fingerprint = true,
            "--compact" => compact = true,
            "--merge" => {
                let mut shards = Vec::new();
                while let Some(next) = args.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    shards.push(args.next().unwrap());
                }
                if shards.is_empty() {
                    fail("--merge needs at least one shard file");
                }
                merge_shards = Some(shards);
            }
            "--shard" => shard = Some(args.shard("--shard")),
            "--threads" => threads = Some(args.parsed("--threads", "a non-negative thread count")),
            "--out" => out_flag = Some(args.value("--out")),
            "--json" => json_path = Some(args.value("--json")),
            "--metrics" => metrics_path = Some(args.value("--metrics")),
            "--profile" => {
                profile = Some(match args.peek() {
                    Some(next) if !next.starts_with("--") => Some(args.next().unwrap()),
                    _ => None,
                });
            }
            "--progress" => progress = true,
            "--check" => check = true,
            "--verify" => verify = true,
            "--help" | "-h" => {
                usage();
                return;
            }
            other => fail(format!("unknown argument '{other}'")),
        }
    }
    if !any {
        usage();
        std::process::exit(2);
    }

    // Resolve the spec: --spec and --demo are mutually exclusive; bare
    // --print-spec / --fingerprint use the embedded demo spec.
    if demo && spec_path.is_some() {
        fail("--demo and --spec are mutually exclusive (use one experiment definition)");
    }
    let spec: Option<SpecFile> = match &spec_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => fail(format!("cannot read spec file {path}: {e}")),
            };
            match SpecFile::parse(&text) {
                Ok(s) => Some(s),
                Err(e) => fail(format!("spec file {path}: {e}")),
            }
        }
        None if demo || print_spec || print_fingerprint => Some(SpecFile::demo()),
        None => None,
    };

    if print_spec || print_fingerprint {
        let spec = spec.expect("resolved above");
        if print_fingerprint {
            println!("{}", spec.fingerprint());
        } else {
            println!("{}", spec.canonical().render_pretty());
        }
        return;
    }

    let out_path = out_flag
        .or_else(|| spec.as_ref().and_then(|s| s.defaults.out.clone()))
        .unwrap_or_else(|| "sweep_results.jsonl".to_string());

    if let Some(shards) = merge_shards {
        let store = ResultStore::open(&out_path);
        match store.merge_from(&shards) {
            Ok(stats) => {
                // Name each disagreeing shard precisely: the merge itself
                // tracked them against the reference header it adopted.
                if let Some(reference) = &stats.reference_header {
                    for (path, shard_header) in &stats.mismatched_shards {
                        eprintln!(
                            "WARNING: {} was produced by spec '{}' (fingerprint {}), \
                             not '{}' ({})",
                            path.display(),
                            shard_header.name,
                            shard_header.fingerprint,
                            reference.name,
                            reference.fingerprint
                        );
                    }
                }
                println!(
                    "merged {} shard files into {out_path}: {} records appended, \
                     {} duplicate keys skipped ({} scanned, {} already present)",
                    shards.len(),
                    stats.merged,
                    stats.duplicates,
                    stats.scanned,
                    stats.existing
                );
            }
            Err(e) => {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            }
        }
        if spec.is_none() && !compact {
            return;
        }
    }
    if compact {
        let store = ResultStore::open(&out_path);
        match store.compact() {
            Ok(stats) => println!(
                "compacted {out_path}: {} records kept (sorted by key), {} superseded \
                 duplicates dropped",
                stats.kept, stats.dropped
            ),
            Err(e) => {
                eprintln!("compact failed: {e}");
                std::process::exit(1);
            }
        }
        if spec.is_none() {
            return;
        }
    }
    let spec = match spec {
        Some(s) => s,
        None => {
            usage();
            std::process::exit(2);
        }
    };

    // Pre-flight: lint + compile + static certification, no execution.
    if check {
        let result = vmv_sweep::check_spec(&spec);
        for d in &result.diagnostics {
            eprintln!("{d}");
        }
        println!(
            "checked spec '{}': {} design points, {} schedules certified, {} diagnostic(s)",
            spec.name,
            result.points,
            result.schedules,
            result.diagnostics.len()
        );
        if vmv_verify::has_errors(&result.diagnostics) {
            std::process::exit(2);
        }
        return;
    }

    let fingerprint = spec.fingerprint();
    let lowered = match spec.lower() {
        Ok(l) => l,
        Err(e) => fail(format!("spec: {e}")),
    };
    let threads = threads.or(spec.defaults.threads).unwrap_or(0);
    let shard = shard.or(spec.defaults.shard);
    let benchmarks = lowered.benchmarks.clone();

    println!("spec '{}' (fingerprint {fingerprint})", spec.name);
    let expansion = lowered.spec.expand();
    println!(
        "expanded {} design points ({} raw, {} rejected by constraints, {} duplicates)",
        expansion.points.len(),
        expansion.raw,
        expansion.rejected,
        expansion.duplicates
    );
    let points = match shard {
        Some((i, n)) => {
            let part = shard_points(&expansion.points, i, n);
            println!(
                "shard {i}/{n}: running {} of {} design points",
                part.len(),
                expansion.points.len()
            );
            part
        }
        None => expansion.points,
    };

    // How many schedules the compile cache should perform if it memoizes
    // perfectly: one per (benchmark, distinct schedule fingerprint).
    let distinct_schedule_keys: std::collections::HashSet<String> = points
        .iter()
        .map(|p| schedule_fingerprint(&p.machine))
        .collect();
    let expected_schedules = distinct_schedule_keys.len() * benchmarks.len();

    let store = ResultStore::with_header(&out_path, spec.store_header());
    match store.read_header() {
        Ok(Some(existing)) if existing.fingerprint != fingerprint => eprintln!(
            "WARNING: {out_path} was created by spec '{}' (fingerprint {}); runs of both \
             specs will coexist in it",
            existing.name, existing.fingerprint
        ),
        _ => {}
    }
    // The recorder is process-global and off by default; --metrics turns it
    // on for the whole sweep so the snapshot covers compile, simulate,
    // store appends and per-worker load.
    if metrics_path.is_some() {
        vmv_obs::set_enabled(true);
    }
    let mut opts = ExecOptions::for_spec(&lowered, threads);
    opts.progress = progress;
    opts.verify = verify;
    let profile_dir = profile.map(|dir| match dir {
        Some(d) => std::path::PathBuf::from(d),
        None => vmv_sweep::default_profile_dir(std::path::Path::new(&out_path)),
    });
    opts.profile_dir = profile_dir.clone();
    let report = match vmv_sweep::run_sweep(&points, &opts, Some(&store)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "ran {} simulations in {:.2}s ({} skipped as already completed in {})",
        report.records.len(),
        report.wall_seconds,
        report.skipped,
        out_path
    );
    println!(
        "compile cache: {} schedules, {} hits (expected at most {} schedules = \
         benchmarks x distinct schedule keys)",
        report.cache.misses, report.cache.hits, expected_schedules
    );
    if report.replays > 0 {
        println!(
            "trace replay: {} of {} runs re-timed from a recorded trace \
             (executed {}, {} batched walks)",
            report.replays,
            report.records.len(),
            report.records.len().saturating_sub(report.replays),
            report.replay_batches
        );
    }
    if let Some(dir) = &profile_dir {
        println!(
            "profiles: wrote {} cycle-attribution documents to {}",
            report.records.len(),
            dir.display()
        );
    }
    if !report.records.is_empty() && report.wall_seconds > 0.0 {
        // Simulator throughput over this invocation's parallel phase: the
        // CI smoke step surfaces this line so hot-path regressions are
        // visible in plain build logs.
        let simulated: u64 = report.records.iter().map(|r| r.cycles).sum();
        println!(
            "sim throughput: {simulated} simulated cycles / {:.3} s = {:.0} \
             simulated-cycles-per-second",
            report.wall_seconds,
            simulated as f64 / report.wall_seconds
        );
    }
    if report.skipped == 0 && report.cache.misses as usize != expected_schedules {
        eprintln!(
            "WARNING: schedule count {} != expected {} — compile memoization regressed",
            report.cache.misses, expected_schedules
        );
    }
    for (job, err) in &report.errors {
        eprintln!("FAILED: {job}: {err}");
    }

    // Analyses run over the *whole* store, so an incremental invocation
    // still reports the full picture.  Filter by the expansion's run keys:
    // the store may also hold runs from other sweeps (or from older
    // parameter defaults) whose design points merely share a display name.
    let expected_keys: std::collections::HashSet<String> =
        vmv_sweep::store::point_key_index(&points, &benchmarks)
            .into_keys()
            .collect();
    let all_records: Vec<_> = match store.load() {
        Ok(r) => r
            .into_iter()
            .filter(|r| expected_keys.contains(&r.key))
            .collect(),
        Err(e) => {
            eprintln!("cannot re-read {out_path}: {e}");
            std::process::exit(1);
        }
    };
    let failed = all_records.iter().filter(|r| !r.check_ok).count();
    if failed > 0 {
        eprintln!("WARNING: {failed} stored runs failed their output checks");
    }

    println!(
        "\nPareto frontier (total cycles over {} benchmarks vs. hardware cost):",
        benchmarks.len()
    );
    let entries = pareto_report(&points, &all_records);
    print!("{}", render_pareto(&entries, 20));

    println!("\nPer-axis sensitivity (cycle swing with all other axes held fixed):");
    print!(
        "{}",
        render_sensitivity(&sensitivity(&points, &all_records))
    );

    if let Some(path) = json_path {
        let artifact = Json::Obj(vec![
            ("name".into(), Json::str(format!("sweep_{}", spec.name))),
            ("spec_fingerprint".into(), Json::str(&fingerprint)),
            ("wall_seconds".into(), Json::Num(report.wall_seconds)),
            ("points".into(), Json::u64(points.len() as u64)),
            ("runs".into(), Json::u64(report.records.len() as u64)),
            ("skipped".into(), Json::u64(report.skipped as u64)),
            ("schedules".into(), Json::u64(report.cache.misses)),
            ("cache_hits".into(), Json::u64(report.cache.hits)),
            ("trace_replays".into(), Json::u64(report.replays as u64)),
            (
                "replay_batches".into(),
                Json::u64(report.replay_batches as u64),
            ),
            (
                "per_run".into(),
                Json::Arr(
                    all_records
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("key".into(), Json::str(&r.key)),
                                ("config".into(), Json::str(&r.config)),
                                ("benchmark".into(), Json::str(&r.benchmark)),
                                ("cycles".into(), Json::u64(r.cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Err(e) = std::fs::write(&path, artifact.render() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote benchmark artifact to {path}");
    }

    if let Some(path) = metrics_path {
        let snap = vmv_obs::snapshot();
        if let Err(e) = std::fs::write(&path, snap.to_json().render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        match snap.cache_hit_rate() {
            Some(rate) => println!(
                "wrote metrics snapshot to {path} (cache hit rate {:.1}%)",
                rate * 100.0
            ),
            None => println!("wrote metrics snapshot to {path}"),
        }
    }
}
