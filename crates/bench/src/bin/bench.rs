//! Dependency-free simulator benchmark harness.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin bench
//! cargo run --release -p vmv-bench --bin bench -- --json BENCH_sim.json \
//!     --min-scps 5000000
//! ```
//!
//! Times the three pipeline stages — **schedule** (`vmv_sched::compile`),
//! **lower** (`vmv_sched::lower`) and **simulate** (the lowered engine) —
//! separately, on two workloads:
//!
//! * the Table 2 suite: all ten paper configurations × six benchmarks ×
//!   both memory models, single-threaded;
//! * a large synthetic sweep: the `sweep --demo` design points (GSM pair,
//!   Realistic model), re-simulated from one compile per schedule key the
//!   same way the sweep executor does.
//!
//! A third **replay** stage runs the committed `latency_tolerance` memory-
//! axis sweep twice — once re-executing every run, once record-once/replay-
//! the-rest the way `vmv_core::simulate` does behind the sweep cache —
//! asserts the two strategies agree bit-for-bit, and records the speedup
//! (`--min-replay-speedup` gates it in CI).
//!
//! A fourth **replay_batch** stage retimes the same sweep's memory variants
//! twice more — once by serial per-variant replay, once by one fused
//! `vmv_core::simulate_batch` walk per schedule key — asserts bit-identical
//! statistics, and records the per-retimed-variant speedup of the batched
//! walk over serial replay (`--min-batch-speedup` gates it in CI).
//!
//! Reports simulated-cycles-per-second per stage-adjusted workload and
//! **appends** a host- and commit-stamped entry to the `BENCH_sim.json`
//! trajectory (a JSON array, newest last), so the perf history of the hot
//! path actually accumulates run over run instead of each run overwriting
//! the previous one.  A legacy single-object file is adopted as the first
//! trajectory entry.  `--min-scps` turns the harness into a CI gate: the
//! process exits non-zero when the synthetic-sweep simulation throughput
//! falls below the floor.

use std::time::Instant;

use vmv_core::{prepare, simulate, simulate_fresh, variant_for};
use vmv_kernels::Benchmark;
use vmv_machine::all_configs;
use vmv_mem::MemoryModel;
use vmv_sweep::{schedule_fingerprint, Json, SpecFile};

/// The committed memory-axis sweep the replay stage measures (chaining ×
/// L2 latency × memory latency on the GSM pair).
const LATENCY_TOLERANCE_SPEC: &str =
    include_str!("../../../../examples/specs/latency_tolerance.json");

fn usage() {
    eprintln!(
        "usage: bench [--json BENCH.json] [--min-scps N] [--repeat N]\n\
         \n\
         --json PATH     write a BENCH-style JSON artifact (default:\n\
         \x20               BENCH_sim.json)\n\
         --min-scps N    exit non-zero when the synthetic-sweep simulation\n\
         \x20               throughput is below N simulated-cycles-per-second\n\
         --min-replay-speedup X\n\
         \x20               exit non-zero when the replay stage's speedup over\n\
         \x20               re-execution is below X\n\
         --min-batch-speedup X\n\
         \x20               exit non-zero when the replay_batch stage's speedup\n\
         \x20               over serial replay is below X\n\
         --repeat N      run each whole workload N times (default 1); the\n\
         \x20               trajectory entry carries the median run plus\n\
         \x20               min/median/max wall seconds per stage"
    );
}

/// Wall-clock seconds of one closure invocation.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Best-effort host name for trajectory entries (the history spans
/// machines, and a 2x "regression" is usually just a slower host).
fn host_name() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| {
            std::fs::read_to_string("/proc/sys/kernel/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Best-effort commit id: CI env var first, then `git rev-parse`.
fn commit_id() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.trim().is_empty() {
            return sha.trim().chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `rustc -V` of the toolchain that built us, stamped into trajectory
/// entries: compiler upgrades move throughput as surely as code changes.
fn rustc_version() -> String {
    std::process::Command::new(std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string()))
        .arg("-V")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Append `entry` to the JSON-array trajectory at `path`.  A legacy
/// single-object file (the pre-trajectory format) becomes the first entry;
/// an unreadable or unparsable file starts a fresh trajectory.
fn append_to_trajectory(path: &str, entry: Json) -> Vec<Json> {
    let mut entries = match std::fs::read_to_string(path).map(|text| Json::parse(&text)) {
        Ok(Ok(Json::Arr(entries))) => entries,
        Ok(Ok(legacy @ Json::Obj(_))) => vec![legacy],
        _ => Vec::new(),
    };
    entries.push(entry);
    entries
}

struct StageTotals {
    schedule_s: f64,
    lower_s: f64,
    simulate_s: f64,
    schedules: u64,
    runs: u64,
    simulated_cycles: u64,
}

impl StageTotals {
    fn new() -> Self {
        StageTotals {
            schedule_s: 0.0,
            lower_s: 0.0,
            simulate_s: 0.0,
            schedules: 0,
            runs: 0,
            simulated_cycles: 0,
        }
    }

    /// Simulated cycles per second of *simulation* wall time.
    fn scps(&self) -> f64 {
        if self.simulate_s > 0.0 {
            self.simulated_cycles as f64 / self.simulate_s
        } else {
            0.0
        }
    }

    fn report(&self, name: &str) {
        println!(
            "{name}: {} schedules, {} runs, {} simulated cycles",
            self.schedules, self.runs, self.simulated_cycles
        );
        println!(
            "  schedule {:.3}s | lower {:.3}s | simulate {:.3}s | {:.0} simulated-cycles-per-second",
            self.schedule_s,
            self.lower_s,
            self.simulate_s,
            self.scps()
        );
    }

    fn json(&self, name: &str) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(name)),
            ("schedules".into(), Json::u64(self.schedules)),
            ("runs".into(), Json::u64(self.runs)),
            ("simulated_cycles".into(), Json::u64(self.simulated_cycles)),
            ("schedule_seconds".into(), Json::Num(self.schedule_s)),
            ("lower_seconds".into(), Json::Num(self.lower_s)),
            ("simulate_seconds".into(), Json::Num(self.simulate_s)),
            ("simulated_cycles_per_second".into(), Json::Num(self.scps())),
        ])
    }
}

/// Median of wall-second samples (averages the middle pair when even).
fn median(vs: &[f64]) -> f64 {
    let mut s = vs.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

/// `{"min": .., "median": .., "max": ..}` over wall-second samples.
fn spread_json(vs: &[f64]) -> Json {
    let mut s = vs.to_vec();
    s.sort_by(f64::total_cmp);
    Json::Obj(vec![
        ("min".into(), Json::Num(s[0])),
        ("median".into(), Json::Num(median(vs))),
        ("max".into(), Json::Num(s[s.len() - 1])),
    ])
}

fn walls(runs: &[(StageTotals, f64)]) -> Vec<f64> {
    runs.iter().map(|(_, w)| *w).collect()
}

/// The run with the median simulate time: the representative whose stage
/// totals become the trajectory entry's headline numbers.
fn median_run(runs: &[(StageTotals, f64)]) -> &StageTotals {
    let mut idx: Vec<usize> = (0..runs.len()).collect();
    idx.sort_by(|&a, &b| runs[a].0.simulate_s.total_cmp(&runs[b].0.simulate_s));
    &runs[idx[(runs.len() - 1) / 2]].0
}

/// The representative run's totals plus min/median/max wall seconds per
/// stage over all repeats (the spread collapses to one value at --repeat 1).
fn workload_json(name: &str, runs: &[(StageTotals, f64)]) -> Json {
    let mut obj = match median_run(runs).json(name) {
        Json::Obj(fields) => fields,
        _ => unreachable!(),
    };
    let stage =
        |f: fn(&StageTotals) -> f64| -> Vec<f64> { runs.iter().map(|(t, _)| f(t)).collect() };
    obj.push((
        "schedule_seconds_spread".into(),
        spread_json(&stage(|t| t.schedule_s)),
    ));
    obj.push((
        "lower_seconds_spread".into(),
        spread_json(&stage(|t| t.lower_s)),
    ));
    obj.push((
        "simulate_seconds_spread".into(),
        spread_json(&stage(|t| t.simulate_s)),
    ));
    obj.push(("wall_seconds_spread".into(), spread_json(&walls(runs))));
    Json::Obj(obj)
}

/// The Table 2 suite: ten paper configurations × six benchmarks × both
/// memory models, single-threaded, stages timed separately.
fn bench_table2() -> StageTotals {
    let mut t = StageTotals::new();
    for machine in &all_configs() {
        for bench in Benchmark::ALL {
            // prepare() = build + schedule + lower; time the schedule and
            // lowering stages individually to mirror it.
            let variant = variant_for(machine);
            let build = bench.build(variant);
            let (compiled, schedule_s) =
                timed(|| vmv_sched::compile(&build.program, machine).expect("schedules"));
            let (lowered, lower_s) =
                timed(|| vmv_sched::lower(&compiled.program, machine).expect("lowers"));
            t.schedule_s += schedule_s;
            t.lower_s += lower_s;
            t.schedules += 1;
            let prepared = vmv_core::Prepared::new(bench, variant, build, compiled, lowered);
            for model in [MemoryModel::Perfect, MemoryModel::Realistic] {
                // simulate_fresh: this workload measures the execution
                // engine itself; the replay stage measures the trace cache.
                let (outcome, sim_s) =
                    timed(|| simulate_fresh(&prepared, machine, model).expect("simulates"));
                assert!(
                    outcome.check_failures.is_empty(),
                    "{} on {}: {:?}",
                    bench.name(),
                    machine.name,
                    outcome.check_failures
                );
                t.simulate_s += sim_s;
                t.runs += 1;
                t.simulated_cycles += outcome.stats.cycles();
            }
        }
    }
    t
}

/// The synthetic sweep: the `sweep --demo` design points on the GSM pair,
/// Realistic model, one compile per distinct schedule key (exactly what the
/// sweep executor's compile cache achieves), re-simulated at every point.
fn bench_synthetic() -> StageTotals {
    let lowered = SpecFile::demo().lower().expect("demo spec lowers");
    let points = lowered.spec.expand().points;
    let mut t = StageTotals::new();
    let mut cache: std::collections::HashMap<String, std::sync::Arc<vmv_core::Prepared>> =
        std::collections::HashMap::new();
    for bench in lowered.benchmarks {
        for point in &points {
            let key = format!("{}|{}", bench.name(), schedule_fingerprint(&point.machine));
            let prepared = match cache.get(&key) {
                Some(p) => p.clone(),
                None => {
                    let variant = variant_for(&point.machine);
                    let build = bench.build(variant);
                    let (compiled, schedule_s) = timed(|| {
                        vmv_sched::compile(&build.program, &point.machine).expect("schedules")
                    });
                    let (lowered, lower_s) = timed(|| {
                        vmv_sched::lower(&compiled.program, &point.machine).expect("lowers")
                    });
                    t.schedule_s += schedule_s;
                    t.lower_s += lower_s;
                    t.schedules += 1;
                    let p = std::sync::Arc::new(vmv_core::Prepared::new(
                        bench, variant, build, compiled, lowered,
                    ));
                    cache.insert(key, p.clone());
                    p
                }
            };
            let (outcome, sim_s) = timed(|| {
                simulate_fresh(&prepared, &point.machine, MemoryModel::Realistic)
                    .expect("simulates")
            });
            assert!(outcome.check_failures.is_empty());
            t.simulate_s += sim_s;
            t.runs += 1;
            t.simulated_cycles += outcome.stats.cycles();
        }
    }
    t
}

/// Totals of the replay stage: the same memory-axis sweep priced by full
/// re-execution and by record-once/replay-the-rest.
struct ReplayTotals {
    execute_s: f64,
    replay_s: f64,
    /// The `execute_s` / `replay_s` shares spent on runs the adaptive
    /// strategy served by replay (the recording runs cost the same either
    /// way, so this pair isolates the per-variant win).
    execute_replayed_s: f64,
    replay_replayed_s: f64,
    runs: u64,
    recorded: u64,
    replayed: u64,
    simulated_cycles: u64,
}

impl ReplayTotals {
    /// Simulate-stage speedup of the replay strategy over re-execution,
    /// over the whole sweep (recording runs included).
    fn speedup(&self) -> f64 {
        if self.replay_s > 0.0 {
            self.execute_s / self.replay_s
        } else {
            0.0
        }
    }

    /// Per-replayed-run speedup: replay vs re-execution on just the runs
    /// that were actually replayed.
    fn marginal_speedup(&self) -> f64 {
        if self.replay_replayed_s > 0.0 {
            self.execute_replayed_s / self.replay_replayed_s
        } else {
            0.0
        }
    }

    fn report(&self) {
        println!(
            "replay stage (latency_tolerance sweep): {} runs, {} simulated cycles",
            self.runs, self.simulated_cycles
        );
        println!(
            "  execute {:.3}s | record+replay {:.3}s ({} recorded, {} replayed) | {:.2}x speedup ({:.2}x per replayed run)",
            self.execute_s,
            self.replay_s,
            self.recorded,
            self.replayed,
            self.speedup(),
            self.marginal_speedup()
        );
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str("replay")),
            ("runs".into(), Json::u64(self.runs)),
            ("recorded_runs".into(), Json::u64(self.recorded)),
            ("replayed_runs".into(), Json::u64(self.replayed)),
            ("simulated_cycles".into(), Json::u64(self.simulated_cycles)),
            ("execute_seconds".into(), Json::Num(self.execute_s)),
            ("replay_seconds".into(), Json::Num(self.replay_s)),
            ("speedup".into(), Json::Num(self.speedup())),
            (
                "marginal_speedup".into(),
                Json::Num(self.marginal_speedup()),
            ),
        ])
    }
}

/// The replay stage: run the committed `latency_tolerance` memory-axis
/// sweep both ways — every run fully executed vs each schedule key executed
/// once and replayed for the other memory variants — and verify the two
/// strategies produce bit-identical statistics while measuring the win.
fn bench_replay() -> ReplayTotals {
    let spec = SpecFile::parse(LATENCY_TOLERANCE_SPEC)
        .expect("committed spec parses")
        .lower()
        .expect("committed spec lowers");
    let points = spec.spec.expand().points;
    let mut t = ReplayTotals {
        execute_s: 0.0,
        replay_s: 0.0,
        execute_replayed_s: 0.0,
        replay_replayed_s: 0.0,
        runs: 0,
        recorded: 0,
        replayed: 0,
        simulated_cycles: 0,
    };
    let mut cache: std::collections::HashMap<String, std::sync::Arc<vmv_core::Prepared>> =
        std::collections::HashMap::new();
    for bench in spec.benchmarks {
        for point in &points {
            let key = format!("{}|{}", bench.name(), schedule_fingerprint(&point.machine));
            let prepared = cache
                .entry(key)
                .or_insert_with(|| {
                    std::sync::Arc::new(prepare(bench, &point.machine).expect("prepares"))
                })
                .clone();
            // Strategy A: full functional execution (what every memory
            // variant cost before the trace cache).
            let (executed, execute_s) = timed(|| {
                simulate_fresh(&prepared, &point.machine, point.model).expect("simulates")
            });
            // Strategy B: execute-and-record on first sight of the key,
            // replay for every other variant (what `simulate` does now).
            let replaying = prepared.has_trace();
            let (adaptive, replay_s) =
                timed(|| simulate(&prepared, &point.machine, point.model).expect("simulates"));
            assert_eq!(
                executed.stats,
                adaptive.stats,
                "replay must be bit-identical to execution ({} on {})",
                bench.name(),
                point.name
            );
            t.execute_s += execute_s;
            t.replay_s += replay_s;
            if replaying {
                t.replayed += 1;
                t.execute_replayed_s += execute_s;
                t.replay_replayed_s += replay_s;
            } else {
                t.recorded += 1;
            }
            t.runs += 1;
            t.simulated_cycles += executed.stats.cycles();
        }
    }
    t
}

/// Totals of the replay_batch stage: the same retimed variants priced by
/// serial per-variant replay and by one fused batched walk per schedule key.
struct BatchTotals {
    serial_s: f64,
    batch_s: f64,
    batches: u64,
    recorded: u64,
    retimed: u64,
    simulated_cycles: u64,
}

impl BatchTotals {
    /// Per-retimed-variant speedup of the batched walk over serial replay
    /// (both sides cover exactly the retimed variants, so the totals ratio
    /// *is* the per-variant ratio).
    fn speedup(&self) -> f64 {
        if self.batch_s > 0.0 {
            self.serial_s / self.batch_s
        } else {
            0.0
        }
    }

    fn report(&self) {
        println!(
            "replay_batch stage (latency_tolerance sweep): {} recorded, {} retimed in {} batches",
            self.recorded, self.retimed, self.batches
        );
        println!(
            "  serial replay {:.3}s | batched replay {:.3}s | {:.2}x speedup per retimed variant",
            self.serial_s,
            self.batch_s,
            self.speedup()
        );
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str("replay_batch")),
            ("batches".into(), Json::u64(self.batches)),
            ("recorded_runs".into(), Json::u64(self.recorded)),
            ("retimed_runs".into(), Json::u64(self.retimed)),
            ("simulated_cycles".into(), Json::u64(self.simulated_cycles)),
            ("serial_replay_seconds".into(), Json::Num(self.serial_s)),
            ("batch_replay_seconds".into(), Json::Num(self.batch_s)),
            ("speedup".into(), Json::Num(self.speedup())),
        ])
    }
}

/// The replay_batch stage: group the committed `latency_tolerance` sweep by
/// schedule key, execute-and-record each key once, then retime the
/// remaining memory variants twice — serially (one replay walk per variant)
/// and as one fused `simulate_batch` walk — verifying the two agree
/// bit-for-bit while measuring the batching win.
fn bench_replay_batch() -> BatchTotals {
    let spec = SpecFile::parse(LATENCY_TOLERANCE_SPEC)
        .expect("committed spec parses")
        .lower()
        .expect("committed spec lowers");
    let points = spec.spec.expand().points;
    let mut t = BatchTotals {
        serial_s: 0.0,
        batch_s: 0.0,
        batches: 0,
        recorded: 0,
        retimed: 0,
        simulated_cycles: 0,
    };
    // Group point indices by schedule key, preserving first-seen order.
    let mut groups: Vec<(std::sync::Arc<vmv_core::Prepared>, Vec<usize>)> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for bench in spec.benchmarks {
        for (i, point) in points.iter().enumerate() {
            let key = format!("{}|{}", bench.name(), schedule_fingerprint(&point.machine));
            match index.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    index.insert(key, groups.len());
                    let prepared =
                        std::sync::Arc::new(prepare(bench, &point.machine).expect("prepares"));
                    groups.push((prepared, vec![i]));
                }
            }
        }
    }
    for (prepared, group) in &groups {
        // Execute-and-record the first variant (cost identical for both
        // strategies, so it stays outside the timed sections).
        let first = &points[group[0]];
        let recorded = simulate(prepared, &first.machine, first.model).expect("records");
        assert!(prepared.has_trace());
        t.recorded += 1;
        t.simulated_cycles += recorded.stats.cycles();
        let rest = &group[1..];
        if rest.is_empty() {
            continue;
        }
        // Strategy A: serial replay, one full trace walk per variant.
        let (serial, serial_s) = timed(|| {
            rest.iter()
                .map(|&i| simulate(prepared, &points[i].machine, points[i].model).expect("replays"))
                .collect::<Vec<_>>()
        });
        // Strategy B: one fused walk retiming every variant together.
        let (batched, batch_s) = timed(|| {
            let variants: Vec<_> = rest
                .iter()
                .map(|&i| (&points[i].machine, points[i].model))
                .collect();
            vmv_core::simulate_batch(prepared, &variants).expect("batch replays")
        });
        for ((serial_run, batch_run), &i) in serial.iter().zip(&batched).zip(rest) {
            assert_eq!(
                serial_run.stats, batch_run.stats,
                "batched replay must be bit-identical to serial replay ({})",
                points[i].name
            );
            t.simulated_cycles += serial_run.stats.cycles();
        }
        t.serial_s += serial_s;
        t.batch_s += batch_s;
        t.batches += 1;
        t.retimed += rest.len() as u64;
    }
    t
}

fn main() {
    let mut json_path = "BENCH_sim.json".to_string();
    let mut min_scps: Option<f64> = None;
    let mut min_replay_speedup: Option<f64> = None;
    let mut min_batch_speedup: Option<f64> = None;
    let mut repeat = 1u32;
    let mut args = vmv_bench::args::ArgStream::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.value("--json"),
            "--min-scps" => {
                min_scps = Some(args.parsed("--min-scps", "a throughput floor in cycles/second"))
            }
            "--min-replay-speedup" => {
                min_replay_speedup =
                    Some(args.parsed("--min-replay-speedup", "a speedup floor over re-execution"))
            }
            "--min-batch-speedup" => {
                min_batch_speedup =
                    Some(args.parsed("--min-batch-speedup", "a speedup floor over serial replay"))
            }
            "--repeat" => {
                let n: u32 = args.parsed("--repeat", "a repeat count of at least 1");
                if n < 1 {
                    vmv_bench::args::fail("--repeat expects a repeat count of at least 1, got '0'");
                }
                repeat = n;
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => vmv_bench::args::fail(format!("unknown argument '{other}'")),
        }
    }

    // The recorder is near-free and its compact snapshot rides along in the
    // trajectory entry, so the history says *what ran*, not just how fast.
    vmv_obs::reset();
    vmv_obs::set_enabled(true);

    // Outer repeats: run each whole workload N times and keep every
    // stage's wall-second samples, so the entry records spread (min/
    // median/max) instead of a single roll of the scheduler-noise dice.
    let mut table2_runs: Vec<(StageTotals, f64)> = Vec::new();
    let mut synthetic_runs: Vec<(StageTotals, f64)> = Vec::new();
    let mut replay_runs: Vec<ReplayTotals> = Vec::new();
    let mut batch_runs: Vec<BatchTotals> = Vec::new();
    for i in 0..repeat {
        if repeat > 1 {
            println!("repeat {}/{repeat}", i + 1);
        }
        table2_runs.push(timed(bench_table2));
        synthetic_runs.push(timed(bench_synthetic));
        replay_runs.push(bench_replay());
        batch_runs.push(bench_replay_batch());
    }
    let table2 = median_run(&table2_runs);
    let synthetic = median_run(&synthetic_runs);
    // Median replay repeat by its record+replay wall time.
    let replay = {
        let mut idx: Vec<usize> = (0..replay_runs.len()).collect();
        idx.sort_by(|&a, &b| replay_runs[a].replay_s.total_cmp(&replay_runs[b].replay_s));
        &replay_runs[idx[(replay_runs.len() - 1) / 2]]
    };
    // Median batch repeat by its batched-replay wall time.
    let batch = {
        let mut idx: Vec<usize> = (0..batch_runs.len()).collect();
        idx.sort_by(|&a, &b| batch_runs[a].batch_s.total_cmp(&batch_runs[b].batch_s));
        &batch_runs[idx[(batch_runs.len() - 1) / 2]]
    };
    table2.report("table2 suite (10 configs x 6 benchmarks x 2 memory models)");
    synthetic.report("synthetic sweep (demo points, GSM pair, realistic model)");
    replay.report();
    batch.report();
    let table2_wall = median(&walls(&table2_runs));
    let synthetic_wall = median(&walls(&synthetic_runs));

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = Json::Obj(vec![
        ("name".into(), Json::str("bench_sim")),
        ("host".into(), Json::str(host_name())),
        ("commit".into(), Json::str(commit_id())),
        ("rustc".into(), Json::str(rustc_version())),
        ("unix_time".into(), Json::u64(unix_time)),
        ("repeat".into(), Json::u64(repeat as u64)),
        ("table2_wall_seconds".into(), Json::Num(table2_wall)),
        ("synthetic_wall_seconds".into(), Json::Num(synthetic_wall)),
        ("table2".into(), workload_json("table2", &table2_runs)),
        (
            "synthetic".into(),
            workload_json("synthetic", &synthetic_runs),
        ),
        ("replay".into(), replay.json()),
        ("replay_batch".into(), batch.json()),
        ("metrics".into(), vmv_obs::snapshot().to_json_compact()),
    ]);
    let trajectory = append_to_trajectory(&json_path, entry);
    // One entry per line between the array brackets: appends produce
    // one-line diffs, and the history stays greppable.
    let lines: Vec<String> = trajectory.iter().map(Json::render).collect();
    let rendered = format!("[\n{}\n]\n", lines.join(",\n"));
    if let Err(e) = std::fs::write(&json_path, rendered) {
        eprintln!("cannot write {json_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "\nappended trajectory entry {} to {json_path}",
        trajectory.len()
    );

    if let Some(floor) = min_scps {
        let scps = synthetic.scps();
        if scps < floor {
            eprintln!(
                "FAIL: synthetic-sweep simulation throughput {scps:.0} < floor {floor:.0} \
                 simulated-cycles-per-second"
            );
            std::process::exit(1);
        }
        println!("throughput floor ok: {scps:.0} >= {floor:.0} simulated-cycles-per-second");
    }
    if let Some(floor) = min_replay_speedup {
        let speedup = replay.speedup();
        if speedup < floor {
            eprintln!("FAIL: replay-stage speedup {speedup:.2}x < floor {floor:.2}x");
            std::process::exit(1);
        }
        println!("replay floor ok: {speedup:.2}x >= {floor:.2}x over re-execution");
    }
    if let Some(floor) = min_batch_speedup {
        let speedup = batch.speedup();
        if speedup < floor {
            eprintln!("FAIL: replay_batch-stage speedup {speedup:.2}x < floor {floor:.2}x");
            std::process::exit(1);
        }
        println!("batch floor ok: {speedup:.2}x >= {floor:.2}x over serial replay");
    }
}
