//! Analysis & reporting driver over JSONL result stores.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin report -- pareto \
//!     --store sweep_results.jsonl --md > pareto.md
//! cargo run --release -p vmv-bench --bin report -- sensitivity \
//!     --store sweep_results.jsonl --svg --out sensitivity.svg
//! cargo run --release -p vmv-bench --bin report -- compare \
//!     --store new.jsonl --baseline old.jsonl --max-regress 5
//! ```
//!
//! A headered store (written by `sweep --spec`/`--demo`) is self-contained:
//! the embedded spec is re-expanded into design points and every record is
//! decoded back to its axes by content-derived run key, so `pareto` and
//! `sensitivity` need nothing but the JSONL file.  `compare` joins two
//! stores by run key (works on legacy headerless stores too) and renders
//! the Table-2-style baseline-vs-variant view; `--max-regress PCT` turns it
//! into a CI gate that fails when any matched run is more than PCT percent
//! slower than the baseline.
//!
//! The report itself goes to stdout (or `--out`); diagnostics — malformed
//! store lines with line numbers, unmatched records, header warnings — go
//! to stderr, so redirected reports stay clean artifacts.

use std::collections::BTreeMap;
use std::path::Path;

use vmv_bench::args::{fail, ArgStream};
use vmv_report::{
    bench_trend_md, bench_trend_svg, compare, diff_specs, diff_specs_md, html, is_record_field,
    markdown, pareto_report, parse_filter, parse_trajectory, record_field, sensitivity,
    store_trend, svg, trend_md, trend_svg, BenchPoint, CompareRow, Filter, LoadedStore,
    ResolvedStore,
};

fn usage() {
    eprintln!(
        "usage: report pareto      --store X.jsonl [--md|--svg] [--filter axis=value ...]\n\
         \x20                       [--out PATH]\n\
         \x20      report sensitivity --store X.jsonl [--md|--svg] [--filter axis=value ...]\n\
         \x20                       [--out PATH]\n\
         \x20      report compare  --store X.jsonl --baseline Y.jsonl [--md]\n\
         \x20                       [--filter axis=value ...] [--group-by AXIS]\n\
         \x20                       [--max-regress PCT] [--out PATH]\n\
         \x20      report trend    --store A.jsonl --store B.jsonl ... and/or\n\
         \x20                       --bench BENCH_sim.json [--md|--svg] [--out PATH]\n\
         \x20      report diff-specs --store X.jsonl --baseline Y.jsonl [--out PATH]\n\
         \x20      report html     --store X.jsonl [--store ...] [--baseline Y.jsonl]\n\
         \x20                       [--bench BENCH_sim.json] [--profiles DIR] --out DIR\n\
         \x20      report profile  --store X.jsonl [--profiles DIR] [--run KEY]\n\
         \x20                       [--trace] [--out PATH]\n\
         \n\
         pareto          cost/cycles table (or scatter chart) with the Pareto\n\
         \x20               frontier marked; needs a headered store\n\
         sensitivity     per-axis cycle-swing table (or bar chart); needs a\n\
         \x20               headered store\n\
         compare         join --store against --baseline by content-derived\n\
         \x20               run key and report per-run speedups (headerless\n\
         \x20               stores work too)\n\
         trend           time series: per-run cycles across N stores of one\n\
         \x20               experiment (--store, repeatable, oldest first)\n\
         \x20               and/or the bench trajectory (--bench)\n\
         diff-specs      name the axis values the two store headers don't\n\
         \x20               share (why doesn't compare match my runs?)\n\
         html            one self-contained static page bundling pareto,\n\
         \x20               sensitivity, compare (with --baseline), trend\n\
         \x20               (with repeated --store / --bench); writes\n\
         \x20               DIR/index.html; picks up --profiles (or the\n\
         \x20               store's default profile directory) for a\n\
         \x20               Profile section\n\
         profile         cycle-attribution profiles from `sweep --profile`:\n\
         \x20               overview of every profiled run, one run's\n\
         \x20               worst-stall-first detail (--run KEY), or that\n\
         \x20               run's Chrome trace-event timeline (--run KEY\n\
         \x20               --trace; load at chrome://tracing or Perfetto)\n\
         --md / --svg    output format (default Markdown; compare is\n\
         \x20               Markdown-only)\n\
         --profiles DIR  profile directory (default: <store>.profiles)\n\
         --run KEY       one run key (16 hex digits, see the overview)\n\
         --trace         emit the Chrome trace JSON instead of Markdown\n\
         --filter a=v    keep only runs whose axis label or record field\n\
         \x20               matches (e.g. issue_width=2w, benchmark=GSM_DEC);\n\
         \x20               repeatable, conjunctive\n\
         --group-by AXIS group the compare summary by an axis instead of by\n\
         \x20               benchmark\n\
         --max-regress P exit 1 when any matched run is more than P percent\n\
         \x20               slower than the baseline\n\
         --bench PATH    bench trajectory JSON (BENCH_sim.json) for trend/html\n\
         --out PATH      write the report to PATH instead of stdout (a\n\
         \x20               directory for `report html`)"
    );
}

/// Load a store, printing its line diagnostics to stderr.
fn load(path: &str) -> LoadedStore {
    let loaded = match LoadedStore::from_path(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    for d in &loaded.diagnostics {
        eprintln!("{path}:{d}");
    }
    loaded
}

/// Resolve a loaded store, printing warnings; exit 1 with the loader's
/// actionable message otherwise.
fn resolve(loaded: &LoadedStore) -> ResolvedStore {
    match ResolvedStore::resolve(loaded) {
        Ok(r) => {
            for w in &r.warnings {
                eprintln!("WARNING: {}: {w}", loaded.path.display());
            }
            if r.unmatched > 0 {
                eprintln!(
                    "WARNING: {}: {} records match no run of the header spec \
                     (merged from another experiment?); excluded",
                    loaded.path.display(),
                    r.unmatched
                );
            }
            r
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Load and parse a bench trajectory file (`BENCH_sim.json`).
fn load_bench(path: &str) -> Vec<BenchPoint> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match vmv_sweep::Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    match parse_trajectory(&doc) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Header name if the store has one, file name otherwise.
fn display_name(loaded: &LoadedStore) -> String {
    match &loaded.header {
        Some(h) => h.name.clone(),
        None => loaded
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_string()),
    }
}

fn emit(out_path: &Option<String>, content: &str) {
    match out_path {
        None => print!("{content}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Md,
    Svg,
}

fn main() {
    let mut args = ArgStream::new();
    let command = match args.next() {
        Some(c) => c,
        None => {
            usage();
            std::process::exit(2);
        }
    };
    match command.as_str() {
        "--help" | "-h" => {
            usage();
            return;
        }
        "pareto" | "sensitivity" | "compare" | "trend" | "diff-specs" | "html" | "profile" => {}
        other => fail(format!(
            "unknown command '{other}' (expected pareto, sensitivity, compare, \
             trend, diff-specs, html or profile)"
        )),
    }

    let mut store_paths: Vec<String> = Vec::new();
    let mut baseline_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut format: Option<Format> = None;
    let mut filters: Vec<Filter> = Vec::new();
    let mut group_by: Option<String> = None;
    let mut max_regress: Option<f64> = None;
    let mut out_path: Option<String> = None;
    let mut profiles_path: Option<String> = None;
    let mut run_key: Option<String> = None;
    let mut trace = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_paths.push(args.value("--store")),
            "--baseline" => baseline_path = Some(args.value("--baseline")),
            "--bench" => bench_path = Some(args.value("--bench")),
            "--profiles" => profiles_path = Some(args.value("--profiles")),
            "--run" => run_key = Some(args.value("--run")),
            "--trace" => trace = true,
            "--md" => format = Some(Format::Md),
            "--svg" => format = Some(Format::Svg),
            "--filter" => {
                let raw = args.value("--filter");
                match parse_filter(&raw) {
                    Ok(f) => filters.push(f),
                    Err(e) => fail(e.message),
                }
            }
            "--group-by" => group_by = Some(args.value("--group-by")),
            "--max-regress" => {
                let pct: f64 = args.parsed("--max-regress", "a regression budget in percent");
                if !(0.0..=100.0).contains(&pct) {
                    fail(format!(
                        "--max-regress expects a percentage in 0..=100, got '{pct}'"
                    ));
                }
                max_regress = Some(pct);
            }
            "--out" => out_path = Some(args.value("--out")),
            "--help" | "-h" => {
                usage();
                return;
            }
            other => fail(format!("unknown argument '{other}'")),
        }
    }
    let single_store = |paths: &[String]| -> String {
        match paths {
            [one] => one.clone(),
            [] => fail("--store is required"),
            _ => fail(format!("`report {command}` takes exactly one --store")),
        }
    };
    if (run_key.is_some() || trace) && command != "profile" {
        fail("--run/--trace only apply to `report profile`");
    }
    if profiles_path.is_some() && command != "profile" && command != "html" {
        fail("--profiles only applies to `report profile` and `report html`");
    }
    // The profile directory a profiled sweep wrote: --profiles, or the
    // store's default `<store>.profiles`.
    let profile_dir = |store_path: &str| -> std::path::PathBuf {
        match &profiles_path {
            Some(p) => std::path::PathBuf::from(p),
            None => vmv_sweep::default_profile_dir(Path::new(store_path)),
        }
    };

    match command.as_str() {
        "pareto" | "sensitivity" => {
            let store_path = single_store(&store_paths);
            if baseline_path.is_some() || max_regress.is_some() || group_by.is_some() {
                fail("--baseline/--max-regress/--group-by only apply to `report compare`");
            }
            let loaded = load(&store_path);
            let resolved = resolve(&loaded);
            let records = match resolved.filter_records(&filters) {
                Ok(r) => r,
                Err(e) => fail(e.message),
            };
            let name = resolved.spec.name.clone();
            let fingerprint = resolved.spec.fingerprint();
            let content = match (command.as_str(), format.unwrap_or(Format::Md)) {
                ("pareto", Format::Md) => markdown::pareto_md(
                    &name,
                    &fingerprint,
                    &pareto_report(&resolved.points, &records),
                ),
                ("pareto", Format::Svg) => svg::pareto_svg(
                    &format!("{name} — cost vs cycles"),
                    &pareto_report(&resolved.points, &records),
                ),
                ("sensitivity", Format::Md) => markdown::sensitivity_md(
                    &name,
                    &fingerprint,
                    &sensitivity(&resolved.points, &records),
                ),
                ("sensitivity", Format::Svg) => svg::sensitivity_svg(
                    &format!("{name} — per-axis swing"),
                    &sensitivity(&resolved.points, &records),
                ),
                _ => unreachable!(),
            };
            emit(&out_path, &content);
        }
        "compare" => {
            if format == Some(Format::Svg) {
                fail("`report compare` renders Markdown only");
            }
            let store_path = single_store(&store_paths);
            let baseline_path =
                baseline_path.unwrap_or_else(|| fail("compare needs --baseline Y.jsonl"));
            let loaded = load(&store_path);
            let baseline = load(&baseline_path);
            let mut records = loaded.records.clone();
            let mut baseline_records = baseline.records.clone();

            // Record-field filters and group-bys (benchmark/variant/model/
            // config are right on the records and rows) keep working on
            // legacy headerless stores; spec-axis filters and group-bys
            // decode run keys, which needs the store's header spec.
            let needs_resolve = filters.iter().any(|f| !is_record_field(&f.axis))
                || group_by.as_deref().is_some_and(|g| !is_record_field(g));
            let resolved = needs_resolve.then(|| resolve(&loaded));
            if let Some(resolved) = &resolved {
                for f in &filters {
                    if let Err(e) = resolved.check_axis(&f.axis) {
                        fail(e.message);
                    }
                }
            }
            if !filters.is_empty() {
                let keep = |r: &vmv_sweep::RunRecord| {
                    filters.iter().all(|f| {
                        if is_record_field(&f.axis) {
                            record_field(r, &f.axis) == Some(f.value.as_str())
                        } else {
                            resolved
                                .as_ref()
                                .and_then(|res| res.key_axis_value(&r.key, &f.axis))
                                .as_deref()
                                == Some(f.value.as_str())
                        }
                    })
                };
                records.retain(|r| keep(r));
                baseline_records.retain(|r| keep(r));
            }

            let report = compare(&records, &baseline_records);
            let group_axis = group_by.unwrap_or_else(|| "benchmark".to_string());
            let groups: BTreeMap<String, Vec<CompareRow>> =
                match markdown::rows_by_field(&report.rows, &group_axis) {
                    Some(groups) => groups,
                    None => {
                        let resolved = resolved.as_ref().expect("resolved above for axis group-by");
                        if let Err(e) = resolved.check_axis(&group_axis) {
                            fail(e.message);
                        }
                        let mut groups: BTreeMap<String, Vec<CompareRow>> = BTreeMap::new();
                        for row in &report.rows {
                            if let Some(v) = resolved.key_axis_value(&row.key, &group_axis) {
                                groups.entry(v).or_default().push(row.clone());
                            }
                        }
                        groups
                    }
                };
            let content = markdown::compare_md(
                &display_name(&loaded),
                &display_name(&baseline),
                &report,
                &group_axis,
                &groups,
            );
            emit(&out_path, &content);

            if let Some(budget) = max_regress {
                let worst = report.worst_regression_pct();
                if worst > budget {
                    eprintln!(
                        "FAIL: worst regression {worst:.2}% exceeds --max-regress {budget:.2}% \
                         ({} of {} matched runs regressed)",
                        report.regressions,
                        report.rows.len()
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "regression gate ok: worst {worst:.2}% within --max-regress {budget:.2}% \
                     ({} matched runs)",
                    report.rows.len()
                );
            }
        }
        "trend" => {
            if baseline_path.is_some() || max_regress.is_some() || group_by.is_some() {
                fail("--baseline/--max-regress/--group-by only apply to `report compare`");
            }
            let points: Option<Vec<BenchPoint>> = bench_path.as_deref().map(load_bench);
            if store_paths.is_empty() && points.is_none() {
                fail("trend needs --store (repeatable, oldest first) and/or --bench");
            }
            if store_paths.len() == 1 {
                fail("a trend over stores needs at least two --store flags (oldest first)");
            }
            let loaded: Vec<LoadedStore> = store_paths.iter().map(|p| load(p)).collect();
            let refs: Vec<&LoadedStore> = loaded.iter().collect();
            let t = (!refs.is_empty()).then(|| store_trend(&refs));
            let content = match format.unwrap_or(Format::Md) {
                Format::Md => {
                    let mut content = String::new();
                    if let Some(t) = &t {
                        content.push_str(&trend_md(t));
                    }
                    if let Some(p) = &points {
                        if !content.is_empty() {
                            content.push('\n');
                        }
                        content.push_str(&bench_trend_md(p));
                    }
                    content
                }
                Format::Svg => match (&t, &points) {
                    (Some(t), None) => trend_svg(t),
                    (None, Some(p)) => bench_trend_svg(p),
                    _ => fail(
                        "--svg renders one chart: pass either --store flags or \
                         --bench, not both",
                    ),
                },
            };
            emit(&out_path, &content);
        }
        "diff-specs" => {
            if format == Some(Format::Svg) {
                fail("`report diff-specs` renders Markdown only");
            }
            let store_path = single_store(&store_paths);
            let baseline_path =
                baseline_path.unwrap_or_else(|| fail("diff-specs needs --baseline Y.jsonl"));
            let loaded = load(&store_path);
            let baseline = load(&baseline_path);
            fn header(l: &LoadedStore) -> &vmv_sweep::StoreHeader {
                l.header.as_ref().unwrap_or_else(|| {
                    fail(format!(
                        "{}: headerless store — diff-specs needs the spec header \
                         (rerun the sweep with --spec/--demo)",
                        l.path.display()
                    ))
                })
            }
            let d = diff_specs(header(&loaded), header(&baseline));
            emit(&out_path, &diff_specs_md(&d));
        }
        "profile" => {
            if format == Some(Format::Svg) {
                fail("`report profile` renders Markdown or --trace JSON");
            }
            let store_path = single_store(&store_paths);
            let dir = profile_dir(&store_path);
            if !dir.is_dir() {
                fail(format!(
                    "no profile directory {} — rerun the sweep with --profile",
                    dir.display()
                ));
            }
            let content = match &run_key {
                Some(key) => {
                    let doc = vmv_sweep::load_profile(&dir, key).unwrap_or_else(|e| fail(e));
                    if trace {
                        vmv_report::chrome_trace(&doc)
                    } else {
                        vmv_report::profile_detail_md(&doc)
                    }
                }
                None => {
                    if trace {
                        fail("--trace renders one run's timeline: pass --run KEY");
                    }
                    let docs = vmv_sweep::load_all_profiles(&dir).unwrap_or_else(|e| fail(e));
                    if docs.is_empty() {
                        fail(format!("{}: no profile documents", dir.display()));
                    }
                    let title = Path::new(&store_path)
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| store_path.clone());
                    vmv_report::profile_overview_md(&title, &docs)
                }
            };
            emit(&out_path, &content);
        }
        "html" => {
            let out_dir = out_path.unwrap_or_else(|| fail("`report html` needs --out DIR"));
            if store_paths.is_empty() {
                fail("--store is required");
            }
            let loaded: Vec<LoadedStore> = store_paths.iter().map(|p| load(p)).collect();
            // The newest store (last --store) drives pareto/sensitivity;
            // the full sequence drives the trend section.
            let newest = loaded.last().expect("non-empty checked above");
            let resolved = resolve(newest);
            let records = match resolved.filter_records(&filters) {
                Ok(r) => r,
                Err(e) => fail(e.message),
            };
            let name = resolved.spec.name.clone();
            let mut sections = Vec::new();
            sections.push(html::pareto_section(
                &name,
                &pareto_report(&resolved.points, &records),
            ));
            sections.push(html::sensitivity_section(
                &name,
                &sensitivity(&resolved.points, &records),
            ));
            if let Some(bp) = &baseline_path {
                let baseline = load(bp);
                let report = compare(&newest.records, &baseline.records);
                let groups = markdown::rows_by_field(&report.rows, "benchmark")
                    .expect("benchmark is a record field");
                sections.push(html::compare_section(
                    &display_name(&baseline),
                    &report,
                    &groups,
                ));
            }
            if loaded.len() >= 2 {
                let refs: Vec<&LoadedStore> = loaded.iter().collect();
                sections.push(html::trend_section(&store_trend(&refs)));
            }
            if let Some(bp) = bench_path.as_deref() {
                sections.push(html::bench_section(&load_bench(bp)));
            }
            // A profiled sweep left vmv-profile/1 documents next to the
            // newest store (or wherever --profiles points): add the
            // Profile section.
            let dir = profile_dir(store_paths.last().expect("non-empty checked above"));
            if dir.is_dir() {
                match vmv_sweep::load_all_profiles(&dir) {
                    Ok(docs) if !docs.is_empty() => sections.push(html::profile_section(&docs)),
                    Ok(_) => {}
                    Err(e) => eprintln!("WARNING: {e}"),
                }
            }
            let subtitle = format!("spec {name} — fingerprint {}", resolved.spec.fingerprint());
            let page = html::page(&format!("vmv observatory — {name}"), &subtitle, &sections);
            let dir = Path::new(&out_dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {out_dir}: {e}");
                std::process::exit(1);
            }
            let index = dir.join("index.html");
            if let Err(e) = std::fs::write(&index, &page) {
                eprintln!("cannot write {}: {e}", index.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", index.display());
        }
        _ => unreachable!(),
    }
}
