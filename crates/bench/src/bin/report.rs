//! Analysis & reporting driver over JSONL result stores.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin report -- pareto \
//!     --store sweep_results.jsonl --md > pareto.md
//! cargo run --release -p vmv-bench --bin report -- sensitivity \
//!     --store sweep_results.jsonl --svg --out sensitivity.svg
//! cargo run --release -p vmv-bench --bin report -- compare \
//!     --store new.jsonl --baseline old.jsonl --max-regress 5
//! ```
//!
//! A headered store (written by `sweep --spec`/`--demo`) is self-contained:
//! the embedded spec is re-expanded into design points and every record is
//! decoded back to its axes by content-derived run key, so `pareto` and
//! `sensitivity` need nothing but the JSONL file.  `compare` joins two
//! stores by run key (works on legacy headerless stores too) and renders
//! the Table-2-style baseline-vs-variant view; `--max-regress PCT` turns it
//! into a CI gate that fails when any matched run is more than PCT percent
//! slower than the baseline.
//!
//! The report itself goes to stdout (or `--out`); diagnostics — malformed
//! store lines with line numbers, unmatched records, header warnings — go
//! to stderr, so redirected reports stay clean artifacts.

use std::collections::BTreeMap;

use vmv_bench::args::{fail, ArgStream};
use vmv_report::{
    compare, is_record_field, markdown, pareto_report, parse_filter, record_field, sensitivity,
    svg, CompareRow, Filter, LoadedStore, ResolvedStore,
};

fn usage() {
    eprintln!(
        "usage: report pareto      --store X.jsonl [--md|--svg] [--filter axis=value ...]\n\
         \x20                       [--out PATH]\n\
         \x20      report sensitivity --store X.jsonl [--md|--svg] [--filter axis=value ...]\n\
         \x20                       [--out PATH]\n\
         \x20      report compare  --store X.jsonl --baseline Y.jsonl [--md]\n\
         \x20                       [--filter axis=value ...] [--group-by AXIS]\n\
         \x20                       [--max-regress PCT] [--out PATH]\n\
         \n\
         pareto          cost/cycles table (or scatter chart) with the Pareto\n\
         \x20               frontier marked; needs a headered store\n\
         sensitivity     per-axis cycle-swing table (or bar chart); needs a\n\
         \x20               headered store\n\
         compare         join --store against --baseline by content-derived\n\
         \x20               run key and report per-run speedups (headerless\n\
         \x20               stores work too)\n\
         --md / --svg    output format (default Markdown; compare is\n\
         \x20               Markdown-only)\n\
         --filter a=v    keep only runs whose axis label or record field\n\
         \x20               matches (e.g. issue_width=2w, benchmark=GSM_DEC);\n\
         \x20               repeatable, conjunctive\n\
         --group-by AXIS group the compare summary by an axis instead of by\n\
         \x20               benchmark\n\
         --max-regress P exit 1 when any matched run is more than P percent\n\
         \x20               slower than the baseline\n\
         --out PATH      write the report to PATH instead of stdout"
    );
}

/// Load a store, printing its line diagnostics to stderr.
fn load(path: &str) -> LoadedStore {
    let loaded = match LoadedStore::from_path(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    for d in &loaded.diagnostics {
        eprintln!("{path}:{d}");
    }
    loaded
}

/// Resolve a loaded store, printing warnings; exit 1 with the loader's
/// actionable message otherwise.
fn resolve(loaded: &LoadedStore) -> ResolvedStore {
    match ResolvedStore::resolve(loaded) {
        Ok(r) => {
            for w in &r.warnings {
                eprintln!("WARNING: {}: {w}", loaded.path.display());
            }
            if r.unmatched > 0 {
                eprintln!(
                    "WARNING: {}: {} records match no run of the header spec \
                     (merged from another experiment?); excluded",
                    loaded.path.display(),
                    r.unmatched
                );
            }
            r
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn emit(out_path: &Option<String>, content: &str) {
    match out_path {
        None => print!("{content}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Md,
    Svg,
}

fn main() {
    let mut args = ArgStream::new();
    let command = match args.next() {
        Some(c) => c,
        None => {
            usage();
            std::process::exit(2);
        }
    };
    match command.as_str() {
        "--help" | "-h" => {
            usage();
            return;
        }
        "pareto" | "sensitivity" | "compare" => {}
        other => fail(format!(
            "unknown command '{other}' (expected pareto, sensitivity or compare)"
        )),
    }

    let mut store_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut format: Option<Format> = None;
    let mut filters: Vec<Filter> = Vec::new();
    let mut group_by: Option<String> = None;
    let mut max_regress: Option<f64> = None;
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_path = Some(args.value("--store")),
            "--baseline" => baseline_path = Some(args.value("--baseline")),
            "--md" => format = Some(Format::Md),
            "--svg" => format = Some(Format::Svg),
            "--filter" => {
                let raw = args.value("--filter");
                match parse_filter(&raw) {
                    Ok(f) => filters.push(f),
                    Err(e) => fail(e.message),
                }
            }
            "--group-by" => group_by = Some(args.value("--group-by")),
            "--max-regress" => {
                let pct: f64 = args.parsed("--max-regress", "a regression budget in percent");
                if !(0.0..=100.0).contains(&pct) {
                    fail(format!(
                        "--max-regress expects a percentage in 0..=100, got '{pct}'"
                    ));
                }
                max_regress = Some(pct);
            }
            "--out" => out_path = Some(args.value("--out")),
            "--help" | "-h" => {
                usage();
                return;
            }
            other => fail(format!("unknown argument '{other}'")),
        }
    }
    let store_path = store_path.unwrap_or_else(|| fail("--store is required"));

    match command.as_str() {
        "pareto" | "sensitivity" => {
            if baseline_path.is_some() || max_regress.is_some() || group_by.is_some() {
                fail("--baseline/--max-regress/--group-by only apply to `report compare`");
            }
            let loaded = load(&store_path);
            let resolved = resolve(&loaded);
            let records = match resolved.filter_records(&filters) {
                Ok(r) => r,
                Err(e) => fail(e.message),
            };
            let name = resolved.spec.name.clone();
            let fingerprint = resolved.spec.fingerprint();
            let content = match (command.as_str(), format.unwrap_or(Format::Md)) {
                ("pareto", Format::Md) => markdown::pareto_md(
                    &name,
                    &fingerprint,
                    &pareto_report(&resolved.points, &records),
                ),
                ("pareto", Format::Svg) => svg::pareto_svg(
                    &format!("{name} — cost vs cycles"),
                    &pareto_report(&resolved.points, &records),
                ),
                ("sensitivity", Format::Md) => markdown::sensitivity_md(
                    &name,
                    &fingerprint,
                    &sensitivity(&resolved.points, &records),
                ),
                ("sensitivity", Format::Svg) => svg::sensitivity_svg(
                    &format!("{name} — per-axis swing"),
                    &sensitivity(&resolved.points, &records),
                ),
                _ => unreachable!(),
            };
            emit(&out_path, &content);
        }
        "compare" => {
            if format == Some(Format::Svg) {
                fail("`report compare` renders Markdown only");
            }
            let baseline_path =
                baseline_path.unwrap_or_else(|| fail("compare needs --baseline Y.jsonl"));
            let loaded = load(&store_path);
            let baseline = load(&baseline_path);
            let mut records = loaded.records.clone();
            let mut baseline_records = baseline.records.clone();

            // Record-field filters and group-bys (benchmark/variant/model/
            // config are right on the records and rows) keep working on
            // legacy headerless stores; spec-axis filters and group-bys
            // decode run keys, which needs the store's header spec.
            let needs_resolve = filters.iter().any(|f| !is_record_field(&f.axis))
                || group_by.as_deref().is_some_and(|g| !is_record_field(g));
            let resolved = needs_resolve.then(|| resolve(&loaded));
            if let Some(resolved) = &resolved {
                for f in &filters {
                    if let Err(e) = resolved.check_axis(&f.axis) {
                        fail(e.message);
                    }
                }
            }
            if !filters.is_empty() {
                let keep = |r: &vmv_sweep::RunRecord| {
                    filters.iter().all(|f| {
                        if is_record_field(&f.axis) {
                            record_field(r, &f.axis) == Some(f.value.as_str())
                        } else {
                            resolved
                                .as_ref()
                                .and_then(|res| res.key_axis_value(&r.key, &f.axis))
                                .as_deref()
                                == Some(f.value.as_str())
                        }
                    })
                };
                records.retain(|r| keep(r));
                baseline_records.retain(|r| keep(r));
            }

            let report = compare(&records, &baseline_records);
            let group_axis = group_by.unwrap_or_else(|| "benchmark".to_string());
            let groups: BTreeMap<String, Vec<CompareRow>> =
                match markdown::rows_by_field(&report.rows, &group_axis) {
                    Some(groups) => groups,
                    None => {
                        let resolved = resolved.as_ref().expect("resolved above for axis group-by");
                        if let Err(e) = resolved.check_axis(&group_axis) {
                            fail(e.message);
                        }
                        let mut groups: BTreeMap<String, Vec<CompareRow>> = BTreeMap::new();
                        for row in &report.rows {
                            if let Some(v) = resolved.key_axis_value(&row.key, &group_axis) {
                                groups.entry(v).or_default().push(row.clone());
                            }
                        }
                        groups
                    }
                };
            let display_name = |loaded: &LoadedStore| match &loaded.header {
                Some(h) => h.name.clone(),
                None => loaded
                    .path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "store".to_string()),
            };
            let content = markdown::compare_md(
                &display_name(&loaded),
                &display_name(&baseline),
                &report,
                &group_axis,
                &groups,
            );
            emit(&out_path, &content);

            if let Some(budget) = max_regress {
                let worst = report.worst_regression_pct();
                if worst > budget {
                    eprintln!(
                        "FAIL: worst regression {worst:.2}% exceeds --max-regress {budget:.2}% \
                         ({} of {} matched runs regressed)",
                        report.regressions,
                        report.rows.len()
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "regression gate ok: worst {worst:.2}% within --max-regress {budget:.2}% \
                     ({} matched runs)",
                    report.rows.len()
                );
            }
        }
        _ => unreachable!(),
    }
}
