//! Static verification driver: certify schedules without running them.
//!
//! ```text
//! cargo run --release -p vmv-bench --bin verify -- --all
//! cargo run --release -p vmv-bench --bin verify -- --spec examples/specs/latency_tolerance.json
//! ```
//!
//! `--all` compiles every benchmark on every preset machine and runs the
//! full static checker (`vmv_verify::verify_compiled`) over each: the
//! schedule-level hazard/latency/resource proofs, the lowered-level
//! layout/metadata/control-flow checks, and the replay slot-analysis
//! subset proof.  `--spec FILE` lints a sweep spec file and certifies every
//! distinct schedule its expansion reaches.  Exit status is 0 only when no
//! error diagnostic was found, so both forms gate CI.

use vmv_bench::args::{fail, ArgStream};
use vmv_kernels::Benchmark;
use vmv_sweep::SpecFile;

fn usage() {
    eprintln!(
        "usage: verify --all [--quiet]\n\
         \x20      verify --spec FILE.json\n\
         \n\
         --all           statically verify every (preset machine, benchmark)\n\
         \x20               schedule in the matrix\n\
         --spec FILE     lint a sweep spec file and certify every distinct\n\
         \x20               schedule it expands to\n\
         --quiet         print only the summary line and failures"
    );
}

fn main() {
    let mut all = false;
    let mut spec_paths: Vec<String> = Vec::new();
    let mut quiet = false;

    let mut args = ArgStream::new();
    let mut any = false;
    while let Some(arg) = args.next() {
        any = true;
        match arg.as_str() {
            "--all" => all = true,
            "--spec" => spec_paths.push(args.value("--spec")),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                usage();
                return;
            }
            other => fail(format!("unknown argument '{other}'")),
        }
    }
    if !any || (!all && spec_paths.is_empty()) {
        usage();
        std::process::exit(2);
    }

    let mut failures = 0usize;

    if all {
        let machines = vmv_machine::all_configs();
        let mut certified = 0usize;
        for machine in &machines {
            for &benchmark in Benchmark::ALL.iter() {
                let prepared = match vmv_core::prepare(benchmark, machine) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("FAILED: {} / {}: {e}", machine.name, benchmark.name());
                        failures += 1;
                        continue;
                    }
                };
                let diags = vmv_verify::verify_compiled(
                    &prepared.compiled.program,
                    &prepared.lowered,
                    machine,
                );
                if diags.is_empty() {
                    certified += 1;
                    if !quiet {
                        println!("ok: {} / {}", machine.name, benchmark.name());
                    }
                } else {
                    failures += 1;
                    eprintln!("FAILED: {} / {}:", machine.name, benchmark.name());
                    for d in &diags {
                        eprintln!("  {d}");
                    }
                }
            }
        }
        println!(
            "verified {certified}/{} schedules across {} machines x {} benchmarks \
             ({failures} failed)",
            machines.len() * Benchmark::ALL.len(),
            machines.len(),
            Benchmark::ALL.len()
        );
    }

    for path in &spec_paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(format!("cannot read spec file {path}: {e}")),
        };
        let spec = match SpecFile::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAILED: {path}: {e}");
                failures += 1;
                continue;
            }
        };
        let result = vmv_sweep::check_spec(&spec);
        for d in &result.diagnostics {
            eprintln!("{path}: {d}");
        }
        let errored = vmv_verify::has_errors(&result.diagnostics);
        if errored {
            failures += 1;
        }
        println!(
            "{}: spec '{}': {} design points, {} schedules certified, {} diagnostic(s)",
            path,
            spec.name,
            result.points,
            result.schedules,
            result.diagnostics.len()
        );
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
