//! MPEG-2 decoder benchmark (mpeg2dec).
//!
//! Vector regions (Table 1): R1 form-component prediction (motion
//! -compensated half-pel averaging), R2 inverse DCT, R3 add-block.  The
//! scalar region runs variable-length decoding of the input bit-stream.

use vmv_isa::ProgramBuilder;

use crate::common::{i16s_to_bytes, BenchmarkBuild, IsaVariant, Layout, OutputCheck};
use crate::data;
use crate::patterns::dct::{coef_pattern_tables, effective_coef_table, emit_dct, DctParams};
use crate::patterns::pixel::{emit_add_block, emit_average_u8};
use crate::patterns::scalar_regions::{emit_bitstream_parse, ref_bitstream_parse};
use crate::reference;

/// Pixels processed by the form-component prediction (multiple of 128).
const PRED_PIXELS: usize = 768;
/// 8×8 residual blocks pushed through the inverse DCT.
const BLOCKS: usize = 6;
/// Pixels reconstructed by the add-block region (multiple of 128, and equal
/// to the number of IDCT output samples so the residuals line up).
const ADD_PIXELS: usize = BLOCKS * 64;
/// Symbols parsed by the scalar VLD region.
const SYMBOLS: usize = 3072;

fn vld_table() -> [u16; 16] {
    std::array::from_fn(|i| 0x0400u16.wrapping_add((i as u16) * 17))
}

/// Build the MPEG-2 decoder benchmark in the requested ISA variant.
pub fn build(variant: IsaVariant) -> BenchmarkBuild {
    let mut layout = Layout::new();
    let ref1_addr = layout.alloc_bytes("ref_fwd", PRED_PIXELS);
    let ref2_addr = layout.alloc_bytes("ref_bwd", PRED_PIXELS);
    let pred_addr = layout.alloc_bytes("prediction", PRED_PIXELS);
    let coef_in = layout.alloc_bytes("coef_in", BLOCKS * 128);
    let idct_out = layout.alloc_bytes("idct_out", BLOCKS * 128);
    let dct_tmp = layout.alloc_bytes("dct_tmp", 128);
    let recon_addr = layout.alloc_bytes("reconstructed", ADD_PIXELS);
    let icoef_addr = layout.alloc_bytes("idct_coef", 128);
    let ipat_even = layout.alloc_bytes("ipat_even", 1024);
    let ipat_odd = layout.alloc_bytes("ipat_odd", 1024);
    let bits_addr = layout.alloc_bytes("bitstream", SYMBOLS);
    let table_addr = layout.alloc_bytes("vld_table", 32);
    let checksum_addr = layout.alloc_bytes("checksum", 16);

    // ------------------------------------------------------------ workload
    let fwd = data::synth_plane(PRED_PIXELS, 1, 0x4001);
    let bwd = data::synth_plane(PRED_PIXELS, 1, 0x4002);
    let coefs = data::synth_residual(BLOCKS * 64, 300, 0x4003);
    let bitstream = data::synth_plane(SYMBOLS, 1, 0x4004).data;
    let table = vld_table();

    // ----------------------------------------------------------- reference
    let ref_pred = reference::average_u8(&fwd.data, &bwd.data);
    let ref_idct = reference::dct_blocks(&coefs, true);
    let ref_recon = reference::add_block(&ref_pred[..ADD_PIXELS], &ref_idct[..ADD_PIXELS]);
    let ref_cs = ref_bitstream_parse(&bitstream, SYMBOLS, &table);

    // ------------------------------------------------------------- program
    let mut b = ProgramBuilder::new(format!("mpeg2_dec_{}", variant.name()));
    b.label("start");

    // Scalar region: variable-length decoding of the bit-stream.
    emit_bitstream_parse(&mut b, bits_addr, SYMBOLS, table_addr, checksum_addr);

    b.begin_region(1, "Form component prediction");
    emit_average_u8(
        &mut b,
        variant,
        ref1_addr,
        ref2_addr,
        pred_addr,
        PRED_PIXELS,
    );
    b.end_region();

    b.begin_region(2, "Inverse DCT");
    emit_dct(
        &mut b,
        variant,
        &DctParams {
            in_addr: coef_in,
            out_addr: idct_out,
            tmp_addr: dct_tmp,
            coef_addr: icoef_addr,
            pat_even_addr: ipat_even,
            pat_odd_addr: ipat_odd,
            blocks: BLOCKS,
            inverse: true,
        },
    );
    b.end_region();

    b.begin_region(3, "Add block");
    emit_add_block(&mut b, variant, pred_addr, idct_out, recon_addr, ADD_PIXELS);
    b.end_region();
    b.halt();

    // ------------------------------------------------------- initial memory
    let (ipe, ipo) = coef_pattern_tables(true);
    let init = vec![
        (ref1_addr, fwd.data.clone()),
        (ref2_addr, bwd.data.clone()),
        (coef_in, i16s_to_bytes(&coefs)),
        (icoef_addr, effective_coef_table(true)),
        (ipat_even, ipe),
        (ipat_odd, ipo),
        (bits_addr, bitstream),
        (
            table_addr,
            table.iter().flat_map(|v| v.to_le_bytes()).collect(),
        ),
    ];

    let checks = vec![
        OutputCheck::Bytes {
            name: "prediction".into(),
            addr: pred_addr,
            expect: ref_pred,
        },
        OutputCheck::Bytes {
            name: "inverse dct".into(),
            addr: idct_out,
            expect: i16s_to_bytes(&ref_idct),
        },
        OutputCheck::Bytes {
            name: "reconstructed block".into(),
            addr: recon_addr,
            expect: ref_recon,
        },
        OutputCheck::Word {
            name: "vld checksum".into(),
            addr: checksum_addr,
            expect: ref_cs,
        },
    ];

    BenchmarkBuild {
        program: b.finish(),
        init,
        checks,
        mem_size: (layout.footprint() as usize + 0xFFF) & !0xFFF,
    }
}
