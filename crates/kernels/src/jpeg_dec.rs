//! JPEG decoder benchmark (djpeg).
//!
//! Vector regions (Table 1): R1 YCbCr→RGB colour conversion, R2 h2v2 chroma
//! up-sampling.  The scalar region contains a Huffman/bit-stream parser and
//! the (non-vectorised in this benchmark, per Table 1) inverse DCT.

use vmv_isa::ProgramBuilder;

use crate::common::{i16s_to_bytes, BenchmarkBuild, IsaVariant, Layout, OutputCheck};
use crate::data;
use crate::patterns::dct::{coef_pattern_tables, effective_coef_table, emit_dct, DctParams};
use crate::patterns::pixel::{emit_color_mac3, Mac3Params};
use crate::patterns::scalar_regions::{emit_bitstream_parse, ref_bitstream_parse};
use crate::reference;

/// Luminance pixels; must be a multiple of 128.
const PIXELS: usize = 64 * 32;
/// Chroma samples up-sampled by the h2v2 region.
const CHROMA: usize = 512;
/// 8×8 blocks pushed through the scalar inverse DCT.
const IDCT_BLOCKS: usize = 8;
/// Symbols parsed by the scalar bit-stream region.
const SYMBOLS: usize = 2048;

const R_COEF: ([i32; 3], i32, u32) = ([256, 359, 0], 128 - 359 * 128, 8);
const G_COEF: ([i32; 3], i32, u32) = ([256, -88, -183], 128 + (88 + 183) * 128, 8);
const B_COEF: ([i32; 3], i32, u32) = ([256, 454, 0], 128 - 454 * 128, 8);
/// h2v2 up-sampling: out = (3·near + far + 2) >> 2.
const UP_COEF: ([i32; 3], i32, u32) = ([3, 1, 0], 2, 2);

fn vld_table() -> [u16; 16] {
    std::array::from_fn(|i| 0x0200u16.wrapping_add((i as u16) * 13))
}

/// Build the JPEG decoder benchmark in the requested ISA variant.
pub fn build(variant: IsaVariant) -> BenchmarkBuild {
    let mut layout = Layout::new();
    let y_addr = layout.alloc_bytes("y", PIXELS);
    let cb_addr = layout.alloc_bytes("cb", PIXELS + 64);
    let cr_addr = layout.alloc_bytes("cr", PIXELS + 64);
    let r_addr = layout.alloc_bytes("r", PIXELS);
    let g_addr = layout.alloc_bytes("g", PIXELS);
    let b_addr = layout.alloc_bytes("b", PIXELS);
    let up_out = layout.alloc_bytes("upsampled", CHROMA);
    let idct_in = layout.alloc_bytes("idct_in", IDCT_BLOCKS * 128);
    let idct_out = layout.alloc_bytes("idct_out", IDCT_BLOCKS * 128);
    let idct_tmp = layout.alloc_bytes("idct_tmp", 128);
    let coef_addr = layout.alloc_bytes("idct_coef", 128);
    let pat_even = layout.alloc_bytes("pat_even", 1024);
    let pat_odd = layout.alloc_bytes("pat_odd", 1024);
    let bits_addr = layout.alloc_bytes("bitstream", SYMBOLS);
    let table_addr = layout.alloc_bytes("vld_table", 32);
    let checksum_addr = layout.alloc_bytes("checksum", 16);

    // ------------------------------------------------------------ workload
    let y = data::synth_plane(64, 32, 0x2001);
    let cb = data::synth_plane(64, 33, 0x2002);
    let cr = data::synth_plane(64, 33, 0x2003);
    let resid = data::synth_residual(IDCT_BLOCKS * 64, 400, 0x2004);
    let bitstream = data::synth_plane(SYMBOLS, 1, 0x2005).data;
    let table = vld_table();

    // ----------------------------------------------------------- reference
    let cbp = &cb.data[..PIXELS];
    let crp = &cr.data[..PIXELS];
    let ref_r = reference::color_mac3(&y.data, crp, crp, R_COEF.0, R_COEF.1, R_COEF.2);
    let ref_g = reference::color_mac3(&y.data, cbp, crp, G_COEF.0, G_COEF.1, G_COEF.2);
    let ref_b = reference::color_mac3(&y.data, cbp, cbp, B_COEF.0, B_COEF.1, B_COEF.2);
    let ref_up = reference::color_mac3(
        &cb.data[..CHROMA],
        &cb.data[1..CHROMA + 1],
        &cb.data[..CHROMA],
        UP_COEF.0,
        UP_COEF.1,
        UP_COEF.2,
    );
    let ref_idct = reference::dct_blocks(&resid, true);
    let ref_cs = ref_bitstream_parse(&bitstream, SYMBOLS, &table);

    // ------------------------------------------------------------- program
    let mut b = ProgramBuilder::new(format!("jpeg_dec_{}", variant.name()));
    b.label("start");

    // Scalar region: bit-stream parsing (entropy decoding).
    emit_bitstream_parse(&mut b, bits_addr, SYMBOLS, table_addr, checksum_addr);

    // Scalar region: inverse DCT (not one of this benchmark's vector
    // regions, Table 1 — always the scalar implementation).
    emit_dct(
        &mut b,
        IsaVariant::Scalar,
        &DctParams {
            in_addr: idct_in,
            out_addr: idct_out,
            tmp_addr: idct_tmp,
            coef_addr,
            pat_even_addr: pat_even,
            pat_odd_addr: pat_odd,
            blocks: IDCT_BLOCKS,
            inverse: true,
        },
    );

    b.begin_region(1, "YCC to RGB color conversion");
    for (out, srcs, (coef, bias, shift)) in [
        (r_addr, (y_addr, cr_addr, cr_addr), R_COEF),
        (g_addr, (y_addr, cb_addr, cr_addr), G_COEF),
        (b_addr, (y_addr, cb_addr, cb_addr), B_COEF),
    ] {
        emit_color_mac3(
            &mut b,
            variant,
            &Mac3Params {
                a_addr: srcs.0,
                b_addr: srcs.1,
                c_addr: srcs.2,
                out_addr: out,
                n: PIXELS,
                coef,
                bias,
                shift,
            },
        );
    }
    b.end_region();

    b.begin_region(2, "H2v2 up-sample");
    emit_color_mac3(
        &mut b,
        variant,
        &Mac3Params {
            a_addr: cb_addr,
            b_addr: cb_addr + 1,
            c_addr: cb_addr,
            out_addr: up_out,
            n: CHROMA,
            coef: UP_COEF.0,
            bias: UP_COEF.1,
            shift: UP_COEF.2,
        },
    );
    b.end_region();
    b.halt();

    // ------------------------------------------------------- initial memory
    let (pat_even_bytes, pat_odd_bytes) = coef_pattern_tables(true);
    let init = vec![
        (y_addr, y.data.clone()),
        (cb_addr, cb.data.clone()),
        (cr_addr, cr.data.clone()),
        (idct_in, i16s_to_bytes(&resid)),
        (coef_addr, effective_coef_table(true)),
        (pat_even, pat_even_bytes),
        (pat_odd, pat_odd_bytes),
        (bits_addr, bitstream),
        (
            table_addr,
            table.iter().flat_map(|v| v.to_le_bytes()).collect(),
        ),
    ];

    let checks = vec![
        OutputCheck::Bytes {
            name: "red plane".into(),
            addr: r_addr,
            expect: ref_r,
        },
        OutputCheck::Bytes {
            name: "green plane".into(),
            addr: g_addr,
            expect: ref_g,
        },
        OutputCheck::Bytes {
            name: "blue plane".into(),
            addr: b_addr,
            expect: ref_b,
        },
        OutputCheck::Bytes {
            name: "upsampled chroma".into(),
            addr: up_out,
            expect: ref_up,
        },
        OutputCheck::Bytes {
            name: "inverse dct".into(),
            addr: idct_out,
            expect: i16s_to_bytes(&ref_idct),
        },
        OutputCheck::Word {
            name: "vld checksum".into(),
            addr: checksum_addr,
            expect: ref_cs,
        },
    ];

    BenchmarkBuild {
        program: b.finish(),
        init,
        checks,
        mem_size: (layout.footprint() as usize + 0xFFF) & !0xFFF,
    }
}
