//! Shared infrastructure for the benchmark kernels: ISA variants, memory
//! layout management, and the `BenchmarkBuild` bundle handed to the
//! experiment driver (program + initial memory image + output checks).

use vmv_isa::Program;

/// Which ISA a benchmark program is written in.  Each benchmark has three
/// versions of its *vector regions* (paper §4.1: the applications were
/// hand-written with µSIMD and Vector-µSIMD emulation libraries); the scalar
/// regions are identical across the three versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaVariant {
    /// Plain scalar VLIW code.
    Scalar,
    /// µSIMD (MMX/SSE-like packed) code.
    Usimd,
    /// Vector-µSIMD (MOM-like) code.
    Vector,
}

impl IsaVariant {
    pub const ALL: [IsaVariant; 3] = [IsaVariant::Scalar, IsaVariant::Usimd, IsaVariant::Vector];

    pub fn name(self) -> &'static str {
        match self {
            IsaVariant::Scalar => "scalar",
            IsaVariant::Usimd => "usimd",
            IsaVariant::Vector => "vector",
        }
    }
}

/// A simple bump allocator for laying benchmark data out in the simulator's
/// flat memory.  Every allocation is aligned and recorded by name so tests
/// and output checks can find it again.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    next: u64,
    symbols: Vec<(String, u64, usize)>,
}

impl Layout {
    /// Create a layout starting at a small offset (address 0 is kept
    /// unmapped to catch stray null-pointer style bugs in kernels).
    pub fn new() -> Self {
        Layout {
            next: 0x1000,
            symbols: Vec::new(),
        }
    }

    /// Allocate `size` bytes aligned to `align` and record it under `name`.
    pub fn alloc(&mut self, name: &str, size: usize, align: u64) -> u64 {
        let align = align.max(1);
        let addr = self.next.div_ceil(align) * align;
        self.next = addr + size as u64;
        self.symbols.push((name.to_string(), addr, size));
        addr
    }

    /// Allocate with the default 64-byte (cache line) alignment.
    pub fn alloc_bytes(&mut self, name: &str, size: usize) -> u64 {
        self.alloc(name, size, 64)
    }

    /// Address of a previously allocated symbol.
    pub fn addr(&self, name: &str) -> u64 {
        self.symbols
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, a, _)| *a)
            .unwrap_or_else(|| panic!("unknown layout symbol '{name}'"))
    }

    /// Size of a previously allocated symbol.
    pub fn size(&self, name: &str) -> usize {
        self.symbols
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, s)| *s)
            .unwrap_or_else(|| panic!("unknown layout symbol '{name}'"))
    }

    /// Total memory footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.next
    }
}

/// Expected contents of an output buffer after the program has run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputCheck {
    /// The bytes at `addr` must equal `expect` exactly.
    Bytes {
        name: String,
        addr: u64,
        expect: Vec<u8>,
    },
    /// The little-endian u32 at `addr` must equal `expect`.
    Word {
        name: String,
        addr: u64,
        expect: u32,
    },
}

impl OutputCheck {
    pub fn name(&self) -> &str {
        match self {
            OutputCheck::Bytes { name, .. } | OutputCheck::Word { name, .. } => name,
        }
    }
}

/// Everything needed to run one benchmark variant on the simulator.
#[derive(Debug, Clone)]
pub struct BenchmarkBuild {
    /// The (unscheduled) program; the experiment driver compiles it for each
    /// machine configuration.
    pub program: Program,
    /// Initial memory contents: (address, bytes).
    pub init: Vec<(u64, Vec<u8>)>,
    /// Output checks evaluated after the run.
    pub checks: Vec<OutputCheck>,
    /// Total memory footprint required.
    pub mem_size: usize,
}

impl BenchmarkBuild {
    /// Verify `checks` against a memory-reading closure, returning the names
    /// of the checks that failed.
    pub fn failed_checks(&self, read: impl Fn(u64, usize) -> Vec<u8>) -> Vec<String> {
        let mut failed = Vec::new();
        for check in &self.checks {
            let ok = match check {
                OutputCheck::Bytes { addr, expect, .. } => read(*addr, expect.len()) == *expect,
                OutputCheck::Word { addr, expect, .. } => {
                    let b = read(*addr, 4);
                    u32::from_le_bytes([b[0], b[1], b[2], b[3]]) == *expect
                }
            };
            if !ok {
                failed.push(check.name().to_string());
            }
        }
        failed
    }
}

/// Convert a slice of i16 to little-endian bytes (layout helper used by the
/// kernels and the reference implementations).
pub fn i16s_to_bytes(v: &[i16]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Convert a slice of i32 to little-endian bytes.
pub fn i32s_to_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_alignment_and_lookup() {
        let mut l = Layout::new();
        let a = l.alloc_bytes("a", 100);
        let b = l.alloc_bytes("b", 10);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert_eq!(l.addr("a"), a);
        assert_eq!(l.size("b"), 10);
        assert!(l.footprint() >= b + 10);
    }

    #[test]
    #[should_panic(expected = "unknown layout symbol")]
    fn unknown_symbol_panics() {
        Layout::new().addr("nope");
    }

    #[test]
    fn output_checks_detect_mismatches() {
        let build = BenchmarkBuild {
            program: Program::new("t"),
            init: vec![],
            checks: vec![
                OutputCheck::Word {
                    name: "sum".into(),
                    addr: 0,
                    expect: 42,
                },
                OutputCheck::Bytes {
                    name: "buf".into(),
                    addr: 8,
                    expect: vec![1, 2, 3],
                },
            ],
            mem_size: 64,
        };
        let mem = |addr: u64, len: usize| -> Vec<u8> {
            let mut m = [0u8; 64];
            m[0] = 42;
            m[8] = 1;
            m[9] = 2;
            m[10] = 9; // wrong
            m[addr as usize..addr as usize + len].to_vec()
        };
        let failed = build.failed_checks(mem);
        assert_eq!(failed, vec!["buf".to_string()]);
    }

    #[test]
    fn byte_conversions() {
        assert_eq!(i16s_to_bytes(&[-1, 2]), vec![0xFF, 0xFF, 2, 0]);
        assert_eq!(i32s_to_bytes(&[1]), vec![1, 0, 0, 0]);
    }
}
