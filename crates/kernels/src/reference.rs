//! Golden reference implementations of every vector-region kernel.
//!
//! Each function defines the *exact* integer arithmetic the scalar, µSIMD and
//! Vector-µSIMD program variants must reproduce bit-for-bit; the kernel test
//! suite and the experiment driver compare the simulator's memory contents
//! against these results after every run.

/// `out[i] = clamp_u8((c0*a[i] + c1*b[i] + c2*c[i] + bias) >> shift)`.
///
/// This is the shape of the JPEG colour conversions (RGB→YCbCr and
/// YCbCr→RGB, with the ±128 chroma offset folded into `bias`) and of the
/// h2v2 chroma up-sampling filter.
pub fn color_mac3(a: &[u8], b: &[u8], c: &[u8], coef: [i32; 3], bias: i32, shift: u32) -> Vec<u8> {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    a.iter()
        .zip(b)
        .zip(c)
        .map(|((&x, &y), &z)| {
            let v = (coef[0] * x as i32 + coef[1] * y as i32 + coef[2] * z as i32 + bias) >> shift;
            v.clamp(0, 255) as u8
        })
        .collect()
}

/// Sum of absolute differences between a 16×16 block of `cur` starting at
/// `cur_off` and a 16×16 block of `reference` starting at `ref_off`, both
/// stored row-major with row stride `stride`.
pub fn sad_16x16(
    cur: &[u8],
    reference: &[u8],
    stride: usize,
    cur_off: usize,
    ref_off: usize,
) -> u32 {
    let mut sum = 0u32;
    for row in 0..16 {
        for col in 0..16 {
            let c = cur[cur_off + row * stride + col] as i32;
            let r = reference[ref_off + row * stride + col] as i32;
            sum += (c - r).unsigned_abs();
        }
    }
    sum
}

/// Full-search motion estimation: SADs of the current block against every
/// candidate displacement in `candidates` (offsets into the reference
/// frame), plus the index of the best candidate.
pub fn motion_search(
    cur: &[u8],
    reference: &[u8],
    stride: usize,
    cur_off: usize,
    candidates: &[usize],
) -> (Vec<u32>, usize) {
    let sads: Vec<u32> = candidates
        .iter()
        .map(|&r| sad_16x16(cur, reference, stride, cur_off, r))
        .collect();
    let best = sads
        .iter()
        .enumerate()
        .min_by_key(|(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    (sads, best)
}

/// The 8×8 integer transform coefficient matrix used by the DCT kernels:
/// `C[u][k] = round(128 · c_u · cos((2k+1)uπ/16))` with `c_0 = √(1/8)` and
/// `c_u = 1/2` otherwise.
pub fn dct_coefficients() -> [[i16; 8]; 8] {
    let mut c = [[0i16; 8]; 8];
    for (u, row) in c.iter_mut().enumerate() {
        for (k, v) in row.iter_mut().enumerate() {
            let cu = if u == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 };
            let angle = (2.0 * k as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *v = (128.0 * cu * angle.cos()).round() as i16;
        }
    }
    c
}

fn clamp16(v: i32) -> i16 {
    v.clamp(i16::MIN as i32, i16::MAX as i32) as i16
}

/// Two-pass 8×8 integer DCT (forward) or IDCT (inverse) on one block of 64
/// signed 16-bit samples with 7-bit coefficient precision (truncating
/// arithmetic shift after each pass): the exact arithmetic every ISA variant
/// implements.
pub fn dct_8x8(input: &[i16], inverse: bool) -> [i16; 64] {
    assert_eq!(input.len(), 64);
    let c = dct_coefficients();
    let coef = |u: usize, k: usize| -> i32 {
        if inverse {
            c[k][u] as i32
        } else {
            c[u][k] as i32
        }
    };
    // Pass 1: tmp[u][x] = (Σ_k coef(u,k) · in[k][x]) >> 7.
    let mut tmp = [0i16; 64];
    for u in 0..8 {
        for x in 0..8 {
            let mut s = 0i32;
            for k in 0..8 {
                s += coef(u, k) * input[k * 8 + x] as i32;
            }
            tmp[u * 8 + x] = clamp16(s >> 7);
        }
    }
    // Pass 2: out[u][v] = (Σ_x tmp[u][x] · coef(v,x)) >> 7.
    let mut out = [0i16; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut s = 0i32;
            for x in 0..8 {
                s += tmp[u * 8 + x] as i32 * coef(v, x);
            }
            out[u * 8 + v] = clamp16(s >> 7);
        }
    }
    out
}

/// Apply [`dct_8x8`] to `n` consecutive blocks stored back to back.
pub fn dct_blocks(input: &[i16], inverse: bool) -> Vec<i16> {
    assert_eq!(input.len() % 64, 0);
    input
        .chunks(64)
        .flat_map(|blk| dct_8x8(blk, inverse))
        .collect()
}

/// JPEG-style quantisation by reciprocal multiplication:
/// `q[i] = (coef[i] · recip[i mod 64]) >> 16` (arithmetic shift).
pub fn quantize(coefs: &[i16], recips: &[i16; 64]) -> Vec<i16> {
    coefs
        .iter()
        .enumerate()
        .map(|(i, &c)| ((c as i32 * recips[i % 64] as i32) >> 16) as i16)
        .collect()
}

/// Cross-correlation: `out[k] = Σ_{i=0}^{n-1} a[i] · b[i+k]` for `k` in
/// `0..lags`.  With `a == b` this is the GSM autocorrelation; with `a` the
/// target window and `b` the reconstructed history it is the LTP search.
pub fn correlate(a: &[i16], b: &[i16], n: usize, lags: usize) -> Vec<i32> {
    assert!(a.len() >= n);
    assert!(b.len() >= n + lags - 1);
    (0..lags)
        .map(|k| (0..n).map(|i| a[i] as i32 * b[i + k] as i32).sum::<i32>())
        .collect()
}

/// Rounded unsigned byte average: `(a[i] + b[i] + 1) >> 1` — the MPEG-2
/// form-component prediction with half-pel interpolation.
pub fn average_u8(a: &[u8], b: &[u8]) -> Vec<u8> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x as u16 + y as u16 + 1) >> 1) as u8)
        .collect()
}

/// MPEG-2 "add block": prediction (unsigned bytes) plus residual (signed
/// 16-bit), saturated to 0..255.
pub fn add_block(pred: &[u8], resid: &[i16]) -> Vec<u8> {
    pred.iter()
        .zip(resid)
        .map(|(&p, &r)| (p as i32 + r as i32).clamp(0, 255) as u8)
        .collect()
}

/// GSM long-term filtering: `out[i] = sat16(err[i] + (gain · past[i]) >> 16)`.
pub fn long_term_filter(err: &[i16], past: &[i16], gain: i16) -> Vec<i16> {
    err.iter()
        .zip(past)
        .map(|(&e, &p)| {
            let contrib = (gain as i32 * p as i32) >> 16;
            (e as i32 + contrib).clamp(i16::MIN as i32, i16::MAX as i32) as i16
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_mac3_matches_manual_pixel() {
        let out = color_mac3(&[100], &[150], &[200], [77, 150, 29], 128, 8);
        let expect = ((77 * 100 + 150 * 150 + 29 * 200 + 128) >> 8).clamp(0, 255) as u8;
        assert_eq!(out, vec![expect]);
        // Saturation at both ends.
        assert_eq!(
            color_mac3(&[255], &[255], &[255], [200, 200, 200], 0, 0),
            vec![255]
        );
        assert_eq!(color_mac3(&[10], &[10], &[10], [-100, 0, 0], 0, 0), vec![0]);
    }

    #[test]
    fn dct_of_constant_block_concentrates_energy_in_dc() {
        let input = [100i16; 64];
        let out = dct_8x8(&input, false);
        assert!(out[0].abs() > 300, "DC term carries the energy: {}", out[0]);
        let ac_energy: i32 = out[1..].iter().map(|&x| (x as i32).abs()).sum();
        assert!(ac_energy < 64, "AC terms are nearly zero: {ac_energy}");
    }

    #[test]
    fn idct_approximately_inverts_dct() {
        let mut input = [0i16; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i as i16 * 7) % 200) - 100;
        }
        let freq = dct_8x8(&input, false);
        let back = dct_8x8(&freq, true);
        for i in 0..64 {
            let err = (back[i] as i32 - input[i] as i32).abs();
            assert!(
                err <= 8,
                "sample {i}: {} vs {} (err {err})",
                back[i],
                input[i]
            );
        }
    }

    #[test]
    fn dct_coefficient_table_is_symmetric_in_magnitude() {
        let c = dct_coefficients();
        // Row 0 is flat (all equal), row 4 alternates in sign.
        assert!(c[0].iter().all(|&v| v == c[0][0]));
        assert_eq!(c[4][0], -c[4][1]);
        assert!(c[1][0] > 0 && c[1][7] < 0);
    }

    #[test]
    fn quantize_shrinks_magnitudes() {
        let recips = crate::data::quant_reciprocals(50);
        let coefs: Vec<i16> = (0..64).map(|i| (i as i16 - 32) * 30).collect();
        let q = quantize(&coefs, &recips);
        for (i, (&c, &qv)) in coefs.iter().zip(&q).enumerate() {
            assert!(qv.abs() <= c.abs(), "index {i}");
        }
    }

    #[test]
    fn correlate_peaks_at_true_lag() {
        // b is a delayed copy of a: correlation peaks at that lag.
        let a: Vec<i16> = (0..64).map(|i| ((i * 37) % 101) as i16 - 50).collect();
        let mut b = vec![0i16; 80];
        b[5..5 + 64].copy_from_slice(&a);
        let c = correlate(&a, &b, 60, 10);
        let best = c.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        assert_eq!(best, 5);
    }

    #[test]
    fn average_and_add_block_saturate() {
        assert_eq!(average_u8(&[10, 255], &[11, 255]), vec![11, 255]);
        assert_eq!(add_block(&[250, 5], &[100, -100]), vec![255, 0]);
        assert_eq!(add_block(&[100], &[17]), vec![117]);
    }

    #[test]
    fn long_term_filter_matches_manual() {
        let out = long_term_filter(&[1000, -1000], &[20000, 20000], 16384);
        // (16384 * 20000) >> 16 = 5000
        assert_eq!(out, vec![6000, 4000]);
    }

    #[test]
    fn sad_is_zero_for_identical_blocks() {
        let frame: Vec<u8> = (0..48 * 48).map(|i| (i % 251) as u8).collect();
        assert_eq!(sad_16x16(&frame, &frame, 48, 100, 100), 0);
        assert!(sad_16x16(&frame, &frame, 48, 100, 101) > 0);
    }

    #[test]
    fn motion_search_finds_exact_match() {
        let reference: Vec<u8> = (0..48 * 48).map(|i| (i * 7 % 253) as u8).collect();
        let cur = reference.clone();
        let cur_off = 10 * 48 + 10;
        let candidates = vec![9 * 48 + 9, cur_off, 11 * 48 + 12];
        let (sads, best) = motion_search(&cur, &reference, 48, cur_off, &candidates);
        assert_eq!(best, 1);
        assert_eq!(sads[1], 0);
    }
}
