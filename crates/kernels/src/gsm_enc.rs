//! GSM full-rate encoder benchmark (gsm toast).
//!
//! Vector regions (Table 1): R1 long-term-prediction (LTP) parameter search
//! (cross-correlation against the reconstructed residual history), R2
//! autocorrelation of the windowed speech segment.  The scalar region runs
//! the Schur recursion (LPC reflection coefficients), which is a serial
//! first-order recurrence.

use vmv_isa::{BrCond, ProgramBuilder};

use crate::common::{
    i16s_to_bytes, i32s_to_bytes, BenchmarkBuild, IsaVariant, Layout, OutputCheck,
};
use crate::data;
use crate::patterns::correlate::{emit_correlate, CorrelateParams};
use crate::patterns::scalar_regions::{emit_recurrence, ref_recurrence};
use crate::reference;

/// Speech window length for the autocorrelation (multiple of 64).
const WINDOW: usize = 128;
/// Autocorrelation lags (GSM computes 9).
const ACF_LAGS: usize = 9;
/// LTP sub-segment length (multiple of 64).
const LTP_WINDOW: usize = 64;
/// LTP search lags.
const LTP_LAGS: usize = 32;
/// Schur recursion passes over the window.
const SCHUR_PASSES: usize = 8;

/// Build the GSM encoder benchmark in the requested ISA variant.
pub fn build(variant: IsaVariant) -> BenchmarkBuild {
    let mut layout = Layout::new();
    let speech_addr = layout.alloc_bytes("speech", 2 * (WINDOW + 16));
    let history_addr = layout.alloc_bytes("history", 2 * (LTP_WINDOW + LTP_LAGS + 16));
    let acf_addr = layout.alloc_bytes("acf", 4 * ACF_LAGS);
    let ltp_addr = layout.alloc_bytes("ltp_corr", 4 * LTP_LAGS);
    let best_lag_addr = layout.alloc_bytes("best_lag", 8);
    let schur_addr = layout.alloc_bytes("schur_checksum", 16);

    // ------------------------------------------------------------ workload
    let speech = data::synth_speech(WINDOW + 16, 500, 0x5001);
    let history = data::synth_speech(LTP_WINDOW + LTP_LAGS + 16, 500, 0x5002);

    // ----------------------------------------------------------- reference
    let ref_acf = reference::correlate(&speech, &speech, WINDOW, ACF_LAGS);
    let ref_ltp = reference::correlate(&speech, &history, LTP_WINDOW, LTP_LAGS);
    let ref_best = ref_ltp
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0) as u32;
    let ref_schur = ref_recurrence(&speech[..WINDOW], SCHUR_PASSES);

    // ------------------------------------------------------------- program
    let mut b = ProgramBuilder::new(format!("gsm_enc_{}", variant.name()));
    b.label("start");

    b.begin_region(2, "Autocorrelation");
    emit_correlate(
        &mut b,
        variant,
        &CorrelateParams {
            a_addr: speech_addr,
            b_addr: speech_addr,
            n: WINDOW,
            lags: ACF_LAGS,
            out_addr: acf_addr,
        },
    );
    b.end_region();

    b.begin_region(1, "LTP parameters");
    emit_correlate(
        &mut b,
        variant,
        &CorrelateParams {
            a_addr: speech_addr,
            b_addr: history_addr,
            n: LTP_WINDOW,
            lags: LTP_LAGS,
            out_addr: ltp_addr,
        },
    );
    // Scalar max-search over the lags is part of the LTP region (it is a
    // tiny loop compared with the correlations).
    {
        let best_val = b.imm(i32::MIN as i64);
        let best_idx = b.imm(0);
        let idx = b.ri();
        b.li(idx, 0);
        let ptr = b.imm(ltp_addr as i64);
        b.counted_loop("ltp_max", LTP_LAGS as i64, |b, _| {
            let v = b.ri();
            b.ld32s(v, ptr, 0);
            let skip = b.fresh_label("ltp_skip");
            b.br(BrCond::Le, v, best_val, skip.clone());
            b.auto_label("ltp_take");
            b.mov(best_val, v);
            b.mov(best_idx, idx);
            b.label(skip);
            b.addi(ptr, ptr, 4);
            b.addi(idx, idx, 1);
        });
        let out = b.imm(best_lag_addr as i64);
        b.st32(out, 0, best_idx);
    }
    b.end_region();

    // Scalar region: Schur recursion (LPC analysis).
    emit_recurrence(&mut b, speech_addr, WINDOW, SCHUR_PASSES, schur_addr);
    b.halt();

    // ------------------------------------------------------- initial memory
    let init = vec![
        (speech_addr, i16s_to_bytes(&speech)),
        (history_addr, i16s_to_bytes(&history)),
    ];

    let checks = vec![
        OutputCheck::Bytes {
            name: "autocorrelation".into(),
            addr: acf_addr,
            expect: i32s_to_bytes(&ref_acf),
        },
        OutputCheck::Bytes {
            name: "ltp correlations".into(),
            addr: ltp_addr,
            expect: i32s_to_bytes(&ref_ltp),
        },
        OutputCheck::Word {
            name: "best ltp lag".into(),
            addr: best_lag_addr,
            expect: ref_best,
        },
        OutputCheck::Word {
            name: "schur checksum".into(),
            addr: schur_addr,
            expect: ref_schur,
        },
    ];

    BenchmarkBuild {
        program: b.finish(),
        init,
        checks,
        mem_size: (layout.footprint() as usize + 0xFFF) & !0xFFF,
    }
}
