//! GSM full-rate decoder benchmark (gsm untoast).
//!
//! Vector region (Table 1): R1 long-term filtering (adding the scaled past
//! excitation to the decoded residual).  The scalar region runs the
//! short-term synthesis filter, a serial recurrence that dominates the
//! decoder's execution time — which is why the paper reports only 0.91 % of
//! vectorised execution time for this benchmark.

use vmv_isa::ProgramBuilder;

use crate::common::{i16s_to_bytes, BenchmarkBuild, IsaVariant, Layout, OutputCheck};
use crate::data;
use crate::patterns::pixel::emit_ltp_filter;
use crate::patterns::scalar_regions::{emit_recurrence, ref_recurrence};
use crate::reference;

/// Samples per long-term filtering call (multiple of 64).
const SAMPLES: usize = 128;
/// LTP gain in Q16 (≈ 0.34, a typical decoded b-parameter).
const GAIN: i16 = 22282;
/// Synthesis-filter passes (one per reflection coefficient).
const SYNTH_PASSES: usize = 8;
/// Samples fed through the synthesis filter.
const SYNTH_SAMPLES: usize = 256;

/// Build the GSM decoder benchmark in the requested ISA variant.
pub fn build(variant: IsaVariant) -> BenchmarkBuild {
    let mut layout = Layout::new();
    let err_addr = layout.alloc_bytes("residual", 2 * SAMPLES);
    let past_addr = layout.alloc_bytes("past_excitation", 2 * SAMPLES);
    let out_addr = layout.alloc_bytes("filtered", 2 * SAMPLES);
    let synth_in_addr = layout.alloc_bytes("synth_in", 2 * SYNTH_SAMPLES);
    let synth_addr = layout.alloc_bytes("synth_checksum", 16);

    // ------------------------------------------------------------ workload
    let err = data::synth_speech(SAMPLES, 400, 0x6001);
    let past = data::synth_speech(SAMPLES, 400, 0x6002);
    let synth_in = data::synth_speech(SYNTH_SAMPLES, 400, 0x6003);

    // ----------------------------------------------------------- reference
    let ref_filtered = reference::long_term_filter(&err, &past, GAIN);
    let ref_synth = ref_recurrence(&synth_in, SYNTH_PASSES);

    // ------------------------------------------------------------- program
    let mut b = ProgramBuilder::new(format!("gsm_dec_{}", variant.name()));
    b.label("start");

    b.begin_region(1, "Long term filtering");
    emit_ltp_filter(
        &mut b, variant, err_addr, past_addr, out_addr, GAIN, SAMPLES,
    );
    b.end_region();

    // Scalar region: short-term synthesis filter (serial recurrence).
    emit_recurrence(
        &mut b,
        synth_in_addr,
        SYNTH_SAMPLES,
        SYNTH_PASSES,
        synth_addr,
    );
    b.halt();

    // ------------------------------------------------------- initial memory
    let init = vec![
        (err_addr, i16s_to_bytes(&err)),
        (past_addr, i16s_to_bytes(&past)),
        (synth_in_addr, i16s_to_bytes(&synth_in)),
    ];

    let checks = vec![
        OutputCheck::Bytes {
            name: "long term filtered".into(),
            addr: out_addr,
            expect: i16s_to_bytes(&ref_filtered),
        },
        OutputCheck::Word {
            name: "synthesis checksum".into(),
            addr: synth_addr,
            expect: ref_synth,
        },
    ];

    BenchmarkBuild {
        program: b.finish(),
        init,
        checks,
        mem_size: (layout.footprint() as usize + 0xFFF) & !0xFFF,
    }
}
