//! JPEG encoder benchmark (cjpeg).
//!
//! Vector regions (Table 1): R1 RGB→YCbCr colour conversion, R2 forward DCT,
//! R3 quantisation.  The scalar region contains the level-shift glue and a
//! Huffman-style entropy encoder over the quantised coefficients.

use vmv_isa::ProgramBuilder;

use crate::common::{i16s_to_bytes, BenchmarkBuild, IsaVariant, Layout, OutputCheck};
use crate::data;
use crate::patterns::dct::{coef_pattern_tables, effective_coef_table, emit_dct, DctParams};
use crate::patterns::pixel::{emit_color_mac3, emit_quantize, Mac3Params, QuantParams};
use crate::patterns::scalar_regions::{emit_entropy_encode, ref_entropy_encode};
use crate::reference;

/// Image size (pixels); must be a multiple of 128.
const PIXELS: usize = 64 * 32;
/// Number of 8×8 luminance blocks pushed through the DCT and quantiser.
const BLOCKS: usize = 16;

/// Colour-conversion coefficient sets: (coef, bias, shift).
const Y_COEF: ([i32; 3], i32, u32) = ([77, 150, 29], 128, 8);
const CB_COEF: ([i32; 3], i32, u32) = ([-43, -85, 128], 128 + (128 << 8), 8);
const CR_COEF: ([i32; 3], i32, u32) = ([128, -107, -21], 128 + (128 << 8), 8);

/// Huffman-style code table used by the scalar entropy encoder.
fn huff_table() -> [u16; 16] {
    std::array::from_fn(|i| (0x0100u16).wrapping_add((i as u16) * 37))
}

/// Build the JPEG encoder benchmark in the requested ISA variant.
pub fn build(variant: IsaVariant) -> BenchmarkBuild {
    let mut layout = Layout::new();
    let r_addr = layout.alloc_bytes("r", PIXELS);
    let g_addr = layout.alloc_bytes("g", PIXELS);
    let bl_addr = layout.alloc_bytes("b", PIXELS);
    let y_addr = layout.alloc_bytes("y", PIXELS);
    let cb_addr = layout.alloc_bytes("cb", PIXELS);
    let cr_addr = layout.alloc_bytes("cr", PIXELS);
    let dct_in = layout.alloc_bytes("dct_in", BLOCKS * 128);
    let dct_out = layout.alloc_bytes("dct_out", BLOCKS * 128);
    let dct_tmp = layout.alloc_bytes("dct_tmp", 128);
    let quant_out = layout.alloc_bytes("quant_out", BLOCKS * 128);
    let coef_addr = layout.alloc_bytes("dct_coef", 128);
    let pat_even = layout.alloc_bytes("pat_even", 1024);
    let pat_odd = layout.alloc_bytes("pat_odd", 1024);
    let recip_addr = layout.alloc_bytes("recips", 128);
    let table_addr = layout.alloc_bytes("huff_table", 32);
    let checksum_addr = layout.alloc_bytes("checksum", 16);

    // ------------------------------------------------------------ workload
    let [r, g, bp] = data::synth_rgb(64, 32, 0x1001);
    let recips = data::quant_reciprocals(50);
    let table = huff_table();

    // ----------------------------------------------------------- reference
    let ref_y = reference::color_mac3(&r.data, &g.data, &bp.data, Y_COEF.0, Y_COEF.1, Y_COEF.2);
    let ref_cb = reference::color_mac3(&r.data, &g.data, &bp.data, CB_COEF.0, CB_COEF.1, CB_COEF.2);
    let ref_cr = reference::color_mac3(&r.data, &g.data, &bp.data, CR_COEF.0, CR_COEF.1, CR_COEF.2);
    let ref_dct_in: Vec<i16> = ref_y[..BLOCKS * 64]
        .iter()
        .map(|&v| v as i16 - 128)
        .collect();
    let ref_dct_out = reference::dct_blocks(&ref_dct_in, false);
    let ref_quant = reference::quantize(&ref_dct_out, &recips);
    let (ref_cs, ref_bits) = ref_entropy_encode(&ref_quant, &table);

    // ------------------------------------------------------------- program
    let mut b = ProgramBuilder::new(format!("jpeg_enc_{}", variant.name()));
    b.label("start");

    b.begin_region(1, "RGB to YCC color conversion");
    for (out, (coef, bias, shift)) in [(y_addr, Y_COEF), (cb_addr, CB_COEF), (cr_addr, CR_COEF)] {
        emit_color_mac3(
            &mut b,
            variant,
            &Mac3Params {
                a_addr: r_addr,
                b_addr: g_addr,
                c_addr: bl_addr,
                out_addr: out,
                n: PIXELS,
                coef,
                bias,
                shift,
            },
        );
    }
    b.end_region();

    // Scalar glue: level-shift the first BLOCKS*64 luminance samples into
    // the 16-bit DCT input buffer.
    {
        let y_ptr = b.imm(y_addr as i64);
        let d_ptr = b.imm(dct_in as i64);
        b.counted_loop("level_shift", (BLOCKS * 64) as i64, |b, _| {
            let t = b.ri();
            b.ld8u(t, y_ptr, 0);
            b.subi(t, t, 128);
            b.st16(d_ptr, 0, t);
            b.addi(y_ptr, y_ptr, 1);
            b.addi(d_ptr, d_ptr, 2);
        });
    }

    b.begin_region(2, "Forward DCT");
    emit_dct(
        &mut b,
        variant,
        &DctParams {
            in_addr: dct_in,
            out_addr: dct_out,
            tmp_addr: dct_tmp,
            coef_addr,
            pat_even_addr: pat_even,
            pat_odd_addr: pat_odd,
            blocks: BLOCKS,
            inverse: false,
        },
    );
    b.end_region();

    b.begin_region(3, "Quantification");
    emit_quantize(
        &mut b,
        variant,
        &QuantParams {
            coef_addr: dct_out,
            recip_addr,
            out_addr: quant_out,
            n: BLOCKS * 64,
        },
    );
    b.end_region();

    // Scalar region: entropy encoding of the quantised coefficients.
    emit_entropy_encode(&mut b, quant_out, BLOCKS * 64, table_addr, checksum_addr);
    b.halt();

    // ------------------------------------------------------- initial memory
    let (pat_even_bytes, pat_odd_bytes) = coef_pattern_tables(false);
    let init = vec![
        (r_addr, r.data.clone()),
        (g_addr, g.data.clone()),
        (bl_addr, bp.data.clone()),
        (coef_addr, effective_coef_table(false)),
        (pat_even, pat_even_bytes),
        (pat_odd, pat_odd_bytes),
        (recip_addr, i16s_to_bytes(&recips)),
        (
            table_addr,
            table.iter().flat_map(|v| v.to_le_bytes()).collect(),
        ),
    ];

    let checks = vec![
        OutputCheck::Bytes {
            name: "luma plane".into(),
            addr: y_addr,
            expect: ref_y,
        },
        OutputCheck::Bytes {
            name: "cb plane".into(),
            addr: cb_addr,
            expect: ref_cb,
        },
        OutputCheck::Bytes {
            name: "cr plane".into(),
            addr: cr_addr,
            expect: ref_cr,
        },
        OutputCheck::Bytes {
            name: "forward dct".into(),
            addr: dct_out,
            expect: i16s_to_bytes(&ref_dct_out),
        },
        OutputCheck::Bytes {
            name: "quantised coefficients".into(),
            addr: quant_out,
            expect: i16s_to_bytes(&ref_quant),
        },
        OutputCheck::Word {
            name: "entropy checksum".into(),
            addr: checksum_addr,
            expect: ref_cs,
        },
        OutputCheck::Word {
            name: "entropy bit count".into(),
            addr: checksum_addr + 4,
            expect: ref_bits,
        },
    ];

    BenchmarkBuild {
        program: b.finish(),
        init,
        checks,
        mem_size: (layout.footprint() as usize + 0xFFF) & !0xFFF,
    }
}
