//! Synthetic workload generation.
//!
//! The original Mediabench inputs (Lena-style photographs, video clips and
//! recorded speech) are not redistributable, so the workloads are generated
//! synthetically with statistics that exercise the same code paths: smooth
//! image gradients plus texture noise (so DCT coefficients are non-trivial),
//! translated frames with noise (so motion estimation finds real matches),
//! and band-limited speech-like waveforms (so LPC/LTP analysis has realistic
//! correlation structure).  All generators are deterministic (fixed seeds)
//! so every experiment is exactly reproducible.

use crate::rng::SmallRng;

/// A synthetic planar image (one byte per sample).
#[derive(Debug, Clone)]
pub struct Plane {
    pub width: usize,
    pub height: usize,
    pub data: Vec<u8>,
}

impl Plane {
    pub fn len(&self) -> usize {
        self.width * self.height
    }
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
    pub fn at(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }
}

/// Generate a smooth gradient plus texture noise image plane.
pub fn synth_plane(width: usize, height: usize, seed: u64) -> Plane {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let gradient = (x * 200 / width.max(1) + y * 55 / height.max(1)) as i32;
            let texture = ((x / 4 + y / 4) % 2) as i32 * 24;
            let noise: i32 = rng.gen_range_i64(-8, 8) as i32;
            data.push((gradient + texture + noise).clamp(0, 255) as u8);
        }
    }
    Plane {
        width,
        height,
        data,
    }
}

/// Generate the three planes of an RGB image (stored planar, R then G then B).
pub fn synth_rgb(width: usize, height: usize, seed: u64) -> [Plane; 3] {
    [
        synth_plane(width, height, seed),
        synth_plane(width, height, seed.wrapping_add(1)),
        synth_plane(width, height, seed.wrapping_add(2)),
    ]
}

/// Generate a "reference frame / current frame" pair for motion estimation:
/// the current frame is the reference shifted by (`dx`, `dy`) plus noise, so
/// a block-matching search has a well-defined best match.
pub fn synth_frame_pair(
    width: usize,
    height: usize,
    dx: isize,
    dy: isize,
    seed: u64,
) -> (Plane, Plane) {
    let reference = synth_plane(width, height, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let mut cur = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let sx = (x as isize + dx).clamp(0, width as isize - 1) as usize;
            let sy = (y as isize + dy).clamp(0, height as isize - 1) as usize;
            let noise: i32 = rng.gen_range_i64(-3, 3) as i32;
            cur[y * width + x] = (reference.at(sx, sy) as i32 + noise).clamp(0, 255) as u8;
        }
    }
    (
        reference,
        Plane {
            width,
            height,
            data: cur,
        },
    )
}

/// Generate `n` 16-bit speech-like samples: a sum of a few low-frequency
/// sinusoids (approximated with integer arithmetic) plus noise, scaled to the
/// given amplitude.
pub fn synth_speech(n: usize, amplitude: i16, seed: u64) -> Vec<i16> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    // Integer sine approximation via a second-order resonator.
    let mut s1: i64 = 0;
    let mut s2: i64 = amplitude as i64 / 2;
    let mut t1: i64 = amplitude as i64 / 3;
    let mut t2: i64 = 0;
    for _ in 0..n {
        // resonator 1 (slow), resonator 2 (faster)
        let next1 = (2 * 985 * s1) / 1000 - s2;
        s2 = s1;
        s1 = next1;
        let next2 = (2 * 870 * t1) / 1000 - t2;
        t2 = t1;
        t1 = next2;
        let noise: i64 = rng.gen_range_i64(-(amplitude as i64) / 16, (amplitude as i64) / 16);
        let v = (s1 / 2 + t1 / 3 + noise).clamp(-(amplitude as i64), amplitude as i64);
        out.push(v as i16);
    }
    out
}

/// Generate pseudo-random 16-bit residual coefficients for decoder add-block
/// style kernels (small values centred on zero, as after dequantisation).
pub fn synth_residual(n: usize, max_mag: i16, seed: u64) -> Vec<i16> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range_i64(-max_mag as i64, max_mag as i64) as i16)
        .collect()
}

/// Generate a JPEG-style quantisation reciprocal table: `recip[i] = 65536 /
/// q[i]` for a typical luminance quality table scaled by `quality_scale`.
pub fn quant_reciprocals(quality_scale: u32) -> [i16; 64] {
    // The standard JPEG luminance quantisation table.
    const BASE: [u16; 64] = [
        16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69,
        56, 14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81,
        104, 113, 92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
    ];
    let mut out = [0i16; 64];
    for (i, &b) in BASE.iter().enumerate() {
        let q = ((b as u32 * quality_scale.max(1)) / 50).clamp(1, 255);
        out[i] = (65536 / (q as i32 * 2)).min(i16::MAX as i32) as i16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_are_deterministic_and_in_range() {
        let a = synth_plane(32, 24, 7);
        let b = synth_plane(32, 24, 7);
        assert_eq!(a.data, b.data);
        assert_eq!(a.len(), 32 * 24);
        let c = synth_plane(32, 24, 8);
        assert_ne!(a.data, c.data, "different seeds give different images");
    }

    #[test]
    fn frame_pair_has_a_true_motion_vector() {
        let (reference, cur) = synth_frame_pair(48, 48, 2, 1, 99);
        // The SAD at the true displacement should be much smaller than at a
        // wrong displacement (for an interior block).
        let sad = |dx: usize, dy: usize| -> u32 {
            let mut s = 0u32;
            for y in 0..16 {
                for x in 0..16 {
                    let c = cur.at(16 + x, 16 + y) as i32;
                    let r = reference.at(16 + x + dx, 16 + y + dy) as i32;
                    s += (c - r).unsigned_abs();
                }
            }
            s
        };
        assert!(sad(2, 1) < sad(0, 0));
        assert!(sad(2, 1) < sad(4, 3));
    }

    #[test]
    fn speech_is_bounded_and_correlated() {
        let s = synth_speech(320, 512, 3);
        assert_eq!(s.len(), 320);
        assert!(s.iter().all(|&x| x.abs() <= 512));
        // Lag-1 autocorrelation should be strongly positive for a
        // band-limited signal.
        let c0: i64 = s.iter().map(|&x| x as i64 * x as i64).sum();
        let c1: i64 = s.windows(2).map(|w| w[0] as i64 * w[1] as i64).sum();
        assert!(c1 > c0 / 2, "c0={c0} c1={c1}");
    }

    #[test]
    fn quant_reciprocals_are_positive() {
        let r = quant_reciprocals(50);
        assert!(r.iter().all(|&x| x > 0));
        let finer = quant_reciprocals(25);
        assert!(finer[0] >= r[0]);
    }

    #[test]
    fn residuals_respect_magnitude() {
        let r = synth_residual(100, 64, 1);
        assert!(r.iter().all(|&x| x.abs() <= 64));
    }
}
