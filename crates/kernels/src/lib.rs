//! # vmv-kernels — the Mediabench-style media workloads
//!
//! The six benchmark programs of the paper's evaluation (Table 1): JPEG
//! encoder/decoder, MPEG-2 encoder/decoder and GSM encoder/decoder.  Every
//! *vector region* (colour conversion, DCT/IDCT, quantisation, up-sampling,
//! motion estimation, form-component prediction, add-block, autocorrelation,
//! LTP search, long-term filtering) is hand-written in three ISA variants —
//! scalar VLIW, µSIMD and Vector-µSIMD — over the `vmv-isa` builder, playing
//! the role of the paper's emulation libraries.  The scalar regions
//! (entropy coding, bit-stream parsing, LPC recurrences, ...) are shared by
//! all three variants.  Golden reference implementations and synthetic
//! workload generators allow every run to be checked bit-for-bit.

#![forbid(unsafe_code)]

pub mod common;
pub mod data;
pub mod patterns;
pub mod reference;
pub mod rng;

pub mod gsm_dec;
pub mod gsm_enc;
pub mod jpeg_dec;
pub mod jpeg_enc;
pub mod mpeg2_dec;
pub mod mpeg2_enc;

pub use common::{BenchmarkBuild, IsaVariant, Layout, OutputCheck};

/// The six benchmarks of Table 1, in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    JpegEnc,
    JpegDec,
    Mpeg2Enc,
    Mpeg2Dec,
    GsmEnc,
    GsmDec,
}

impl Benchmark {
    pub const ALL: [Benchmark; 6] = [
        Benchmark::JpegEnc,
        Benchmark::JpegDec,
        Benchmark::Mpeg2Enc,
        Benchmark::Mpeg2Dec,
        Benchmark::GsmEnc,
        Benchmark::GsmDec,
    ];

    /// Name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::JpegEnc => "JPEG_ENC",
            Benchmark::JpegDec => "JPEG_DEC",
            Benchmark::Mpeg2Enc => "MPEG2_ENC",
            Benchmark::Mpeg2Dec => "MPEG2_DEC",
            Benchmark::GsmEnc => "GSM_ENC",
            Benchmark::GsmDec => "GSM_DEC",
        }
    }

    /// Inverse of [`Benchmark::name`], case-insensitive — the lookup sweep
    /// spec files and result-store readers use to resolve benchmark names.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Human-readable names of the vector regions (Table 1), in region-id
    /// order (R1, R2, R3).
    pub fn vector_region_names(self) -> &'static [&'static str] {
        match self {
            Benchmark::JpegEnc => &[
                "RGB to YCC color conversion",
                "Forward DCT",
                "Quantification",
            ],
            Benchmark::JpegDec => &["YCC to RGB color conversion", "H2v2 up-sample"],
            Benchmark::Mpeg2Enc => &["Motion estimation", "Forward DCT", "Inverse DCT"],
            Benchmark::Mpeg2Dec => &["Form component prediction", "Inverse DCT", "Add block"],
            Benchmark::GsmEnc => &["LTP parameters", "Autocorrelation"],
            Benchmark::GsmDec => &["Long term filtering"],
        }
    }

    /// Build the benchmark program in the requested ISA variant, together
    /// with its initial memory image and output checks.
    pub fn build(self, variant: IsaVariant) -> BenchmarkBuild {
        match self {
            Benchmark::JpegEnc => jpeg_enc::build(variant),
            Benchmark::JpegDec => jpeg_dec::build(variant),
            Benchmark::Mpeg2Enc => mpeg2_enc::build(variant),
            Benchmark::Mpeg2Dec => mpeg2_dec::build(variant),
            Benchmark::GsmEnc => gsm_enc::build(variant),
            Benchmark::GsmDec => gsm_dec::build(variant),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(
                Benchmark::from_name(&b.name().to_ascii_lowercase()),
                Some(b),
                "lookup must be case-insensitive"
            );
        }
        assert_eq!(Benchmark::from_name("GSM"), None);
        assert_eq!(Benchmark::from_name(""), None);
    }
}
