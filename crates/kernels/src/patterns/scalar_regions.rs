//! The inherently scalar regions of the benchmarks (paper §2): entropy
//! coding, bit-stream parsing and first-order recurrences.  These regions
//! are identical across the three ISA variants — they carry the modest ILP
//! that limits whole-application speed-up once the DLP regions have been
//! accelerated (Amdahl's law, §5.2).
//!
//! Each emitter produces a 32-bit checksum in memory; the matching `ref_*`
//! function computes the same checksum in Rust so that every run can be
//! checked for functional correctness.

use vmv_isa::{BrCond, ProgramBuilder};

/// Emit a Huffman-style entropy encoder over `n` 16-bit coefficients:
/// for each coefficient, compute its magnitude category with a bit-length
/// loop, look up a code in `table` (16 entries of 16 bits), accumulate the
/// emitted bit count and mix everything into a running checksum.
pub fn emit_entropy_encode(
    b: &mut ProgramBuilder,
    coef_addr: u64,
    n: usize,
    table_addr: u64,
    checksum_addr: u64,
) {
    let coef_ptr = b.imm(coef_addr as i64);
    let table = b.imm(table_addr as i64);
    let checksum = b.ri();
    b.li(checksum, 0);
    let bitcount = b.ri();
    b.li(bitcount, 0);
    b.counted_loop("huff", n as i64, |b, _| {
        let v = b.ri();
        b.ld16s(v, coef_ptr, 0);
        let mag = b.ri();
        b.iabs(mag, v);
        // Magnitude category: number of bits needed to represent |v|.
        let size = b.ri();
        b.li(size, 0);
        let work = b.ri();
        b.mov(work, mag);
        let size_done = b.fresh_label("size_done");
        let size_head = b.fresh_label("size_head");
        b.label(size_head.clone());
        b.br_imm(BrCond::Eq, work, 0, size_done.clone());
        b.auto_label("size_body");
        b.srai(work, work, 1);
        b.addi(size, size, 1);
        b.jump(size_head);
        b.label(size_done);
        // Table lookup: code = table[size], length = size + 1.
        let entry_off = b.ri();
        b.shli(entry_off, size, 1);
        let entry_addr = b.ri();
        b.add(entry_addr, table, entry_off);
        let code = b.ri();
        b.ld16u(code, entry_addr, 0);
        let len = b.ri();
        b.addi(len, size, 1);
        b.add(bitcount, bitcount, len);
        b.add(bitcount, bitcount, size);
        // Mix into the checksum: checksum = checksum * 33 + code + size.
        let t = b.ri();
        b.muli(t, checksum, 33);
        b.add(t, t, code);
        b.add(t, t, size);
        b.andi(checksum, t, 0xFFFF_FFFF);
        b.addi(coef_ptr, coef_ptr, 2);
    });
    let out = b.imm(checksum_addr as i64);
    b.st32(out, 0, checksum);
    b.st32(out, 4, bitcount);
}

/// Rust reference of [`emit_entropy_encode`]: returns `(checksum, bitcount)`.
pub fn ref_entropy_encode(coefs: &[i16], table: &[u16; 16]) -> (u32, u32) {
    let mut checksum: i64 = 0;
    let mut bitcount: i64 = 0;
    for &v in coefs {
        let mag = (v as i64).abs();
        let mut size = 0i64;
        let mut work = mag;
        while work != 0 {
            work >>= 1;
            size += 1;
        }
        let code = table[size as usize] as i64;
        bitcount += size + 1 + size;
        checksum = (checksum * 33 + code + size) & 0xFFFF_FFFF;
    }
    (checksum as u32, bitcount as u32)
}

/// Emit a variable-length-decoder style bit-stream parser over `n_symbols`
/// nibbles of the byte buffer at `bits_addr`, with a 16-entry lookup table.
pub fn emit_bitstream_parse(
    b: &mut ProgramBuilder,
    bits_addr: u64,
    n_symbols: usize,
    table_addr: u64,
    checksum_addr: u64,
) {
    let bits_ptr = b.imm(bits_addr as i64);
    let table = b.imm(table_addr as i64);
    let checksum = b.ri();
    b.li(checksum, 0);
    let bitbuf = b.ri();
    b.li(bitbuf, 0);
    let bitcnt = b.ri();
    b.li(bitcnt, 0);
    b.counted_loop("vld", n_symbols as i64, |b, _| {
        // Refill the bit buffer when fewer than 4 bits remain.
        let have = b.fresh_label("have_bits");
        b.br_imm(BrCond::Ge, bitcnt, 4, have.clone());
        b.auto_label("refill");
        let byte = b.ri();
        b.ld8u(byte, bits_ptr, 0);
        b.addi(bits_ptr, bits_ptr, 1);
        b.shli(bitbuf, bitbuf, 8);
        b.or(bitbuf, bitbuf, byte);
        b.andi(bitbuf, bitbuf, 0xFFFF_FFFF);
        b.addi(bitcnt, bitcnt, 8);
        b.label(have);
        // Take 4 bits, look them up, fold into the checksum.
        b.subi(bitcnt, bitcnt, 4);
        let sym = b.ri();
        b.shr(sym, bitbuf, bitcnt);
        b.andi(sym, sym, 0xF);
        let off = b.ri();
        b.shli(off, sym, 1);
        let addr = b.ri();
        b.add(addr, table, off);
        let decoded = b.ri();
        b.ld16u(decoded, addr, 0);
        let t = b.ri();
        b.muli(t, checksum, 31);
        b.add(t, t, decoded);
        b.andi(checksum, t, 0xFFFF_FFFF);
    });
    let out = b.imm(checksum_addr as i64);
    b.st32(out, 0, checksum);
}

/// Rust reference of [`emit_bitstream_parse`].
pub fn ref_bitstream_parse(bits: &[u8], n_symbols: usize, table: &[u16; 16]) -> u32 {
    let mut checksum: i64 = 0;
    let mut bitbuf: i64 = 0;
    let mut bitcnt: i64 = 0;
    let mut pos = 0usize;
    for _ in 0..n_symbols {
        if bitcnt < 4 {
            let byte = bits[pos] as i64;
            pos += 1;
            bitbuf = ((bitbuf << 8) | byte) & 0xFFFF_FFFF;
            bitcnt += 8;
        }
        bitcnt -= 4;
        let sym = (bitbuf >> bitcnt) & 0xF;
        let decoded = table[sym as usize] as i64;
        checksum = (checksum * 31 + decoded) & 0xFFFF_FFFF;
    }
    checksum as u32
}

/// Emit a first-order recurrence (Schur recursion / short-term synthesis
/// filter style): `state = ((state * a) >> 15) + in[i]`, clamped to 16 bits,
/// repeated over `n` samples for `passes` passes with a different
/// coefficient per pass (`a = 29491 - 1024 * pass`).  The final state and a
/// running checksum are stored.
pub fn emit_recurrence(
    b: &mut ProgramBuilder,
    in_addr: u64,
    n: usize,
    passes: usize,
    checksum_addr: u64,
) {
    let checksum = b.ri();
    b.li(checksum, 0);
    let min16 = b.imm(i16::MIN as i64);
    let max16 = b.imm(i16::MAX as i64);
    for pass in 0..passes {
        let in_ptr = b.imm(in_addr as i64);
        let state = b.ri();
        b.li(state, 0);
        let coef = 29491 - 1024 * pass as i64;
        b.counted_loop("rec", n as i64, |b, _| {
            let x = b.ri();
            b.ld16s(x, in_ptr, 0);
            let t = b.ri();
            b.muli(t, state, coef);
            b.srai(t, t, 15);
            b.add(t, t, x);
            b.imax(t, t, min16);
            b.imin(t, t, max16);
            b.mov(state, t);
            b.addi(in_ptr, in_ptr, 2);
        });
        let folded = b.ri();
        b.muli(folded, checksum, 37);
        b.add(folded, folded, state);
        b.andi(checksum, folded, 0xFFFF_FFFF);
    }
    let out = b.imm(checksum_addr as i64);
    b.st32(out, 0, checksum);
}

/// Rust reference of [`emit_recurrence`].
pub fn ref_recurrence(input: &[i16], passes: usize) -> u32 {
    let mut checksum: i64 = 0;
    for pass in 0..passes {
        let coef = 29491 - 1024 * pass as i64;
        let mut state: i64 = 0;
        for &x in input {
            let t = ((state * coef) >> 15) + x as i64;
            state = t.clamp(i16::MIN as i64, i16::MAX as i64);
        }
        checksum = (checksum * 37 + state) & 0xFFFF_FFFF;
    }
    checksum as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_reference_is_order_sensitive() {
        let table: [u16; 16] = std::array::from_fn(|i| (i as u16) * 3 + 1);
        let a = ref_entropy_encode(&[1, -2, 300, 0], &table);
        let b = ref_entropy_encode(&[0, 300, -2, 1], &table);
        assert_ne!(a.0, b.0);
        assert_eq!(a.1, b.1, "bit count does not depend on order");
    }

    #[test]
    fn bitstream_reference_consumes_nibbles() {
        let table: [u16; 16] = std::array::from_fn(|i| (i as u16) << 2);
        let bits = vec![0xAB, 0xCD, 0xEF, 0x01];
        let one = ref_bitstream_parse(&bits, 2, &table);
        let two = ref_bitstream_parse(&bits, 4, &table);
        assert_ne!(one, two);
    }

    #[test]
    fn recurrence_reference_saturates() {
        let big = vec![i16::MAX; 64];
        let cs = ref_recurrence(&big, 2);
        // The state saturates at i16::MAX in both passes.
        let expect = ((i16::MAX as i64 * 37 + i16::MAX as i64) & 0xFFFF_FFFF) as u32;
        assert_eq!(cs, expect);
    }
}
