//! Reusable kernel patterns.
//!
//! The vector regions of the six Mediabench programs (Table 1) decompose
//! into a small number of computational patterns — per-pixel multiply
//! -accumulate, 8×8 transforms, block matching, correlations, element-wise
//! saturating arithmetic — plus a handful of inherently scalar patterns
//! (entropy coding, bit-stream parsing, first-order recurrences).  Each
//! pattern here provides three emitters (scalar VLIW, µSIMD, Vector-µSIMD)
//! that generate *bit-identical* results, so the benchmark compositions in
//! `jpeg_enc`, `mpeg2_dec`, … are thin wrappers that pick region boundaries,
//! workload sizes and memory layout.

pub mod correlate;
pub mod dct;
pub mod pixel;
pub mod sad;
pub mod scalar_regions;
