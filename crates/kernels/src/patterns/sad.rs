//! Block-matching motion estimation (the `dist1` kernel of the MPEG-2
//! encoder, used as the running example of paper §3.3.1 / Fig. 4).
//!
//! For every candidate displacement the kernel computes the sum of absolute
//! differences between the current 16×16 macroblock and the corresponding
//! reference block, then the (scalar) search loop keeps the minimum.  Rows
//! are `stride` bytes apart, so the vector variant issues vector loads with
//! a non-unit stride — exactly the access pattern that makes `mpeg2_enc`
//! degrade under the realistic memory system (Fig. 5b).

use vmv_isa::{BrCond, Elem, ProgramBuilder, Sat};

use crate::common::IsaVariant;

/// Parameters of the motion-estimation pattern.
#[derive(Debug, Clone)]
pub struct SadParams {
    /// Address of the current macroblock's top-left pixel.
    pub cur_addr: u64,
    /// Base address of the reference frame.
    pub ref_addr: u64,
    /// Row stride (frame width) in bytes.
    pub stride: usize,
    /// Byte offsets (into the reference frame) of each candidate block's
    /// top-left pixel.
    pub candidates: Vec<u64>,
    /// Output: one u32 SAD per candidate.
    pub sads_addr: u64,
    /// Output: index of the best (minimum-SAD) candidate, as u32.
    pub best_addr: u64,
}

/// Emit the motion-estimation pattern.
pub fn emit_motion_search(b: &mut ProgramBuilder, variant: IsaVariant, p: &SadParams) {
    // The candidate offsets are materialised as a table in the instruction
    // stream (one iteration per candidate with immediate offsets), matching
    // the unrolled search loops of the hand-optimised encoder.
    let best_sad = b.imm(i32::MAX as i64);
    let best_idx = b.imm(0);
    let sads_ptr = b.imm(p.sads_addr as i64);

    for (idx, &cand) in p.candidates.iter().enumerate() {
        let sad = emit_sad_16x16(b, variant, p.cur_addr, p.ref_addr + cand, p.stride);
        b.st32(sads_ptr, (4 * idx) as i64, sad);
        // Scalar min-tracking (identical in every variant).
        let skip = b.fresh_label("sad_skip");
        b.br(BrCond::Ge, sad, best_sad, skip.clone());
        b.auto_label("sad_take");
        b.mov(best_sad, sad);
        b.li(best_idx, idx as i64);
        b.label(skip);
    }
    let best_ptr = b.imm(p.best_addr as i64);
    b.st32(best_ptr, 0, best_idx);
}

/// Emit one 16×16 SAD and return the integer register holding the result.
pub fn emit_sad_16x16(
    b: &mut ProgramBuilder,
    variant: IsaVariant,
    cur_addr: u64,
    ref_addr: u64,
    stride: usize,
) -> vmv_isa::Reg {
    match variant {
        IsaVariant::Scalar => {
            let total = b.ri();
            b.li(total, 0);
            let cur_row = b.imm(cur_addr as i64);
            let ref_row = b.imm(ref_addr as i64);
            b.counted_loop("sad_row", 16, |b, _| {
                for col in 0..16 {
                    let c = b.ri();
                    let r = b.ri();
                    b.ld8u(c, cur_row, col);
                    b.ld8u(r, ref_row, col);
                    let d = b.ri();
                    b.sub(d, c, r);
                    b.iabs(d, d);
                    b.add(total, total, d);
                }
                b.addi(cur_row, cur_row, stride as i64);
                b.addi(ref_row, ref_row, stride as i64);
            });
            total
        }
        IsaVariant::Usimd => {
            let acc = b.rs();
            let zero = b.imm(0);
            b.int_to_simd(acc, zero);
            let cur_row = b.imm(cur_addr as i64);
            let ref_row = b.imm(ref_addr as i64);
            b.counted_loop("sad_row", 16, |b, _| {
                for half in 0..2 {
                    let c = b.rs();
                    let r = b.rs();
                    b.pload(c, cur_row, 8 * half);
                    b.pload(r, ref_row, 8 * half);
                    let s = b.rs();
                    b.psad(s, c, r);
                    b.padd(Elem::W, Sat::Wrap, acc, acc, s);
                }
                b.addi(cur_row, cur_row, stride as i64);
                b.addi(ref_row, ref_row, stride as i64);
            });
            let total = b.ri();
            b.simd_to_int(total, acc);
            total
        }
        IsaVariant::Vector => {
            // Fig. 4: two vector registers per block (left and right 8-pixel
            // columns), vector length 16 (one word per row), stride = the
            // image width.
            b.setvl(16);
            b.setvs(stride as i64);
            let cur_base = b.imm(cur_addr as i64);
            let ref_base = b.imm(ref_addr as i64);
            let v1 = b.rv();
            let v3 = b.rv();
            let v2 = b.rv();
            let v4 = b.rv();
            b.vload(v1, cur_base, 0);
            b.vload(v3, cur_base, 8);
            b.vload(v2, ref_base, 0);
            b.vload(v4, ref_base, 8);
            let a1 = b.ra();
            let a2 = b.ra();
            b.acc_clear(a1);
            b.acc_clear(a2);
            b.vsad_acc(a1, v1, v2);
            b.vsad_acc(a2, v3, v4);
            let s1 = b.ri();
            let s2 = b.ri();
            b.acc_reduce(s1, a1);
            b.acc_reduce(s2, a2);
            let total = b.ri();
            b.add(total, s1, s2);
            total
        }
    }
}
