//! The 8×8 two-pass integer DCT / IDCT pattern, shared by the JPEG encoder
//! (forward DCT), the MPEG-2 encoder (forward + inverse DCT) and the MPEG-2
//! decoder (inverse DCT).
//!
//! The transform is `out = clamp16((E · in) >> 7)` applied twice (rows then
//! columns), where `E` is the effective 7-bit coefficient matrix (`C` for
//! the forward transform, `Cᵀ` for the inverse; see
//! [`crate::reference::dct_8x8`]).  Blocks are stored back to back, row
//! -major, as signed 16-bit samples (128 bytes per block), which lets the
//! Vector-µSIMD variant hold an entire block in a single vector register
//! (16 words of 4 samples) and reduce over the rows with packed-accumulator
//! multiply-accumulates — the MOM-style two-dimensional vectorisation the
//! paper builds on.

use vmv_isa::{Elem, ProgramBuilder, Sat, Sign};

use crate::common::{i16s_to_bytes, IsaVariant};
use crate::reference::dct_coefficients;

/// Parameters of the DCT pattern.
#[derive(Debug, Clone, Copy)]
pub struct DctParams {
    /// Input blocks (i16, 128 bytes per block).
    pub in_addr: u64,
    /// Output blocks (i16, 128 bytes per block).
    pub out_addr: u64,
    /// Scratch buffer for the intermediate pass (128 bytes).
    pub tmp_addr: u64,
    /// Effective coefficient matrix (8×8 i16, row major, 128 bytes).
    pub coef_addr: u64,
    /// Per-row even-word coefficient patterns for the vector variant
    /// (8 × 128 bytes).
    pub pat_even_addr: u64,
    /// Per-row odd-word coefficient patterns (8 × 128 bytes).
    pub pat_odd_addr: u64,
    /// Number of 8×8 blocks to transform.
    pub blocks: usize,
    /// `false` = forward DCT, `true` = inverse DCT.
    pub inverse: bool,
}

/// The effective coefficient matrix (row-major bytes) for the given
/// direction: `C` for the forward DCT, `Cᵀ` for the inverse.
#[allow(clippy::needless_range_loop)] // indexes c[k][u] or c[u][k] by direction
pub fn effective_coef_table(inverse: bool) -> Vec<u8> {
    let c = dct_coefficients();
    let mut eff = Vec::with_capacity(64);
    for u in 0..8 {
        for k in 0..8 {
            eff.push(if inverse { c[k][u] } else { c[u][k] });
        }
    }
    i16s_to_bytes(&eff)
}

/// The per-output-row coefficient *pattern vectors* used by the vector
/// variant's first pass: for output row `u`, the even pattern has
/// `splat16(E[u][k])` in word `2k` and zero in word `2k+1`; the odd pattern
/// is the complement.  Multiply-accumulating a whole block (16 words) with
/// these patterns reduces over the 8 input rows while keeping the four
/// column lanes separate.
pub fn coef_pattern_tables(inverse: bool) -> (Vec<u8>, Vec<u8>) {
    let c = dct_coefficients();
    let eff = |u: usize, k: usize| if inverse { c[k][u] } else { c[u][k] };
    let mut even = Vec::with_capacity(8 * 64);
    let mut odd = Vec::with_capacity(8 * 64);
    for u in 0..8 {
        let mut even_words: Vec<i16> = Vec::with_capacity(64);
        let mut odd_words: Vec<i16> = Vec::with_capacity(64);
        for k in 0..8 {
            let coef = eff(u, k);
            even_words.extend_from_slice(&[coef; 4]);
            even_words.extend_from_slice(&[0; 4]);
            odd_words.extend_from_slice(&[0; 4]);
            odd_words.extend_from_slice(&[coef; 4]);
        }
        even.extend_from_slice(&i16s_to_bytes(&even_words));
        odd.extend_from_slice(&i16s_to_bytes(&odd_words));
    }
    (even, odd)
}

/// Emit the DCT pattern for `p.blocks` consecutive blocks.
pub fn emit_dct(b: &mut ProgramBuilder, variant: IsaVariant, p: &DctParams) {
    match variant {
        IsaVariant::Scalar => scalar_dct(b, p),
        IsaVariant::Usimd => usimd_dct(b, p),
        IsaVariant::Vector => vector_dct(b, p),
    }
}

fn scalar_dct(b: &mut ProgramBuilder, p: &DctParams) {
    let in_ptr = b.imm(p.in_addr as i64);
    let out_ptr = b.imm(p.out_addr as i64);
    let tmp = b.imm(p.tmp_addr as i64);
    let coef = b.imm(p.coef_addr as i64);
    let min16 = b.imm(i16::MIN as i64);
    let max16 = b.imm(i16::MAX as i64);
    b.counted_loop("dct_blk", p.blocks as i64, |b, _| {
        // Pass 1: tmp[u][x] = clamp16((Σ_k E[u][k] · in[k][x]) >> 7).
        for u in 0..8 {
            for x in 0..8 {
                let sum = b.ri();
                b.li(sum, 0);
                for k in 0..8 {
                    let cv = b.ri();
                    let iv = b.ri();
                    b.ld16s(cv, coef, (u * 16 + k * 2) as i64);
                    b.ld16s(iv, in_ptr, (k * 16 + x * 2) as i64);
                    let prod = b.ri();
                    b.mul(prod, cv, iv);
                    b.add(sum, sum, prod);
                }
                b.srai(sum, sum, 7);
                b.imax(sum, sum, min16);
                b.imin(sum, sum, max16);
                b.st16(tmp, (u * 16 + x * 2) as i64, sum);
            }
        }
        // Pass 2: out[u][v] = clamp16((Σ_x tmp[u][x] · E[v][x]) >> 7).
        for u in 0..8 {
            for v in 0..8 {
                let sum = b.ri();
                b.li(sum, 0);
                for x in 0..8 {
                    let tv = b.ri();
                    let cv = b.ri();
                    b.ld16s(tv, tmp, (u * 16 + x * 2) as i64);
                    b.ld16s(cv, coef, (v * 16 + x * 2) as i64);
                    let prod = b.ri();
                    b.mul(prod, tv, cv);
                    b.add(sum, sum, prod);
                }
                b.srai(sum, sum, 7);
                b.imax(sum, sum, min16);
                b.imin(sum, sum, max16);
                b.st16(out_ptr, (u * 16 + v * 2) as i64, sum);
            }
        }
        b.addi(in_ptr, in_ptr, 128);
        b.addi(out_ptr, out_ptr, 128);
    });
}

fn usimd_dct(b: &mut ProgramBuilder, p: &DctParams) {
    let in_ptr = b.imm(p.in_addr as i64);
    let out_ptr = b.imm(p.out_addr as i64);
    let tmp = b.imm(p.tmp_addr as i64);
    let coef = b.imm(p.coef_addr as i64);
    let min16 = b.imm(i16::MIN as i64);
    let max16 = b.imm(i16::MAX as i64);
    b.counted_loop("dct_blk", p.blocks as i64, |b, _| {
        // Pass 1: four columns at a time with widening multiplies.
        for u in 0..8 {
            // Broadcast the eight coefficients of output row u once.
            let coef_splats: Vec<_> = (0..8)
                .map(|k| {
                    let cv = b.ri();
                    b.ld16s(cv, coef, (u * 16 + k * 2) as i64);
                    let s = b.rs();
                    b.psplat(Elem::H, s, cv);
                    s
                })
                .collect();
            for xw in 0..2 {
                let acc_e = b.rs();
                let acc_o = b.rs();
                for (k, ck) in coef_splats.iter().enumerate() {
                    let row = b.rs();
                    b.pload(row, in_ptr, (k * 16 + xw * 8) as i64);
                    if k == 0 {
                        b.pmul_widen_even(Sign::Signed, acc_e, row, *ck);
                        b.pmul_widen_odd(Sign::Signed, acc_o, row, *ck);
                    } else {
                        let te = b.rs();
                        let to = b.rs();
                        b.pmul_widen_even(Sign::Signed, te, row, *ck);
                        b.pmul_widen_odd(Sign::Signed, to, row, *ck);
                        b.padd(Elem::W, Sat::Wrap, acc_e, acc_e, te);
                        b.padd(Elem::W, Sat::Wrap, acc_o, acc_o, to);
                    }
                }
                b.pshra(Elem::W, acc_e, acc_e, 7);
                b.pshra(Elem::W, acc_o, acc_o, 7);
                let lo = b.rs();
                let hi = b.rs();
                b.punpack_lo(Elem::W, lo, acc_e, acc_o);
                b.punpack_hi(Elem::W, hi, acc_e, acc_o);
                let packed = b.rs();
                b.ppack(Elem::W, Sign::Signed, packed, lo, hi);
                b.pstore(tmp, (u * 16 + xw * 8) as i64, packed);
            }
        }
        // Pass 2: per-output dot products over the row with pmadd.
        for u in 0..8 {
            let t0 = b.rs();
            let t1 = b.rs();
            b.pload(t0, tmp, (u * 16) as i64);
            b.pload(t1, tmp, (u * 16 + 8) as i64);
            for v in 0..8 {
                let c0 = b.rs();
                let c1 = b.rs();
                b.pload(c0, coef, (v * 16) as i64);
                b.pload(c1, coef, (v * 16 + 8) as i64);
                let s0 = b.rs();
                let s1 = b.rs();
                b.pmadd(s0, t0, c0);
                b.pmadd(s1, t1, c1);
                let s = b.rs();
                b.padd(Elem::W, Sat::Wrap, s, s0, s1);
                let e0 = b.ri();
                let e1 = b.ri();
                b.pextract(Elem::W, e0, s, 0);
                b.pextract(Elem::W, e1, s, 1);
                // pextract zero-extends; recover the signed 32-bit values.
                b.shli(e0, e0, 32);
                b.srai(e0, e0, 32);
                b.shli(e1, e1, 32);
                b.srai(e1, e1, 32);
                let sum = b.ri();
                b.add(sum, e0, e1);
                b.srai(sum, sum, 7);
                b.imax(sum, sum, min16);
                b.imin(sum, sum, max16);
                b.st16(out_ptr, (u * 16 + v * 2) as i64, sum);
            }
        }
        b.addi(in_ptr, in_ptr, 128);
        b.addi(out_ptr, out_ptr, 128);
    });
}

fn vector_dct(b: &mut ProgramBuilder, p: &DctParams) {
    let in_ptr = b.imm(p.in_addr as i64);
    let out_ptr = b.imm(p.out_addr as i64);
    let tmp = b.imm(p.tmp_addr as i64);
    let coef = b.imm(p.coef_addr as i64);
    let pat_even = b.imm(p.pat_even_addr as i64);
    let pat_odd = b.imm(p.pat_odd_addr as i64);
    let min16 = b.imm(i16::MIN as i64);
    let max16 = b.imm(i16::MAX as i64);
    b.counted_loop("vdct_blk", p.blocks as i64, |b, _| {
        // Pass 1: the whole 8×8 block lives in one vector register
        // (16 words); two packed-accumulator MACs per output row reduce
        // over the input rows while keeping four column lanes apart.
        b.setvl(16);
        b.setvs(8);
        let block = b.rv();
        b.vload(block, in_ptr, 0);
        for u in 0..8 {
            let pe = b.rv();
            let po = b.rv();
            b.vload(pe, pat_even, (u * 128) as i64);
            b.vload(po, pat_odd, (u * 128) as i64);
            let acc_lo = b.ra();
            let acc_hi = b.ra();
            b.acc_clear(acc_lo);
            b.acc_clear(acc_hi);
            b.vmac_acc(acc_lo, block, pe);
            b.vmac_acc(acc_hi, block, po);
            let w_lo = b.rs();
            let w_hi = b.rs();
            b.acc_pack_shr_h(w_lo, acc_lo, 7);
            b.acc_pack_shr_h(w_hi, acc_hi, 7);
            b.pstore(tmp, (u * 16) as i64, w_lo);
            b.pstore(tmp, (u * 16 + 8) as i64, w_hi);
        }
        // Pass 2: short-vector (VL=2) dot products of tmp rows against
        // coefficient rows, reduced through the packed accumulator.
        b.setvl(2);
        for u in 0..8 {
            let trow = b.rv();
            b.vload(trow, tmp, (u * 16) as i64);
            for v in 0..8 {
                let crow = b.rv();
                b.vload(crow, coef, (v * 16) as i64);
                let acc = b.ra();
                b.acc_clear(acc);
                b.vmac_acc(acc, trow, crow);
                let sum = b.ri();
                b.acc_reduce(sum, acc);
                b.srai(sum, sum, 7);
                b.imax(sum, sum, min16);
                b.imin(sum, sum, max16);
                b.st16(out_ptr, (u * 16 + v * 2) as i64, sum);
            }
        }
        b.addi(in_ptr, in_ptr, 128);
        b.addi(out_ptr, out_ptr, 128);
    });
}
