//! Per-pixel / per-sample element-wise patterns:
//!
//! * `emit_color_mac3` — `out[i] = clamp_u8((c0·a + c1·b + c2·c + bias) >> s)`
//!   (RGB↔YCC colour conversion, h2v2 up-sampling);
//! * `emit_quantize`   — `q[i] = (coef[i] · recip[i mod 64]) >> 16`;
//! * `emit_average_u8` — `out[i] = (a[i] + b[i] + 1) >> 1` (form component
//!   prediction);
//! * `emit_add_block`  — `out[i] = clamp_u8(pred[i] + resid[i])`;
//! * `emit_ltp_filter` — `out[i] = sat16(err[i] + (gain·past[i]) >> 16)`.
//!
//! Every emitter produces bit-identical results across the three ISA
//! variants (see `crate::reference`).

use vmv_isa::{Elem, ProgramBuilder, Sat, Sign};

use crate::common::IsaVariant;

/// Parameters of the 3-input multiply-accumulate pixel pattern.
#[derive(Debug, Clone, Copy)]
pub struct Mac3Params {
    pub a_addr: u64,
    pub b_addr: u64,
    pub c_addr: u64,
    pub out_addr: u64,
    /// Number of pixels; must be a multiple of 128 so all three variants
    /// process whole iterations.
    pub n: usize,
    pub coef: [i32; 3],
    pub bias: i32,
    pub shift: u32,
}

/// Emit the colour-conversion / up-sampling pattern.
pub fn emit_color_mac3(b: &mut ProgramBuilder, variant: IsaVariant, p: &Mac3Params) {
    assert!(
        p.n.is_multiple_of(128),
        "pixel count must be a multiple of 128"
    );
    match variant {
        IsaVariant::Scalar => scalar_mac3(b, p),
        IsaVariant::Usimd => usimd_mac3(b, p),
        IsaVariant::Vector => vector_mac3(b, p),
    }
}

fn scalar_mac3(b: &mut ProgramBuilder, p: &Mac3Params) {
    let a_ptr = b.imm(p.a_addr as i64);
    let b_ptr = b.imm(p.b_addr as i64);
    let c_ptr = b.imm(p.c_addr as i64);
    let o_ptr = b.imm(p.out_addr as i64);
    let zero = b.imm(0);
    let max255 = b.imm(255);
    b.counted_loop("mac3", p.n as i64, |b, _| {
        let x = b.ri();
        let y = b.ri();
        let z = b.ri();
        b.ld8u(x, a_ptr, 0);
        b.ld8u(y, b_ptr, 0);
        b.ld8u(z, c_ptr, 0);
        b.muli(x, x, p.coef[0] as i64);
        b.muli(y, y, p.coef[1] as i64);
        b.muli(z, z, p.coef[2] as i64);
        let s = b.ri();
        b.add(s, x, y);
        b.add(s, s, z);
        b.addi(s, s, p.bias as i64);
        b.srai(s, s, p.shift as i64);
        b.imax(s, s, zero);
        b.imin(s, s, max255);
        b.st8(o_ptr, 0, s);
        b.addi(a_ptr, a_ptr, 1);
        b.addi(b_ptr, b_ptr, 1);
        b.addi(c_ptr, c_ptr, 1);
        b.addi(o_ptr, o_ptr, 1);
    });
}

fn usimd_mac3(b: &mut ProgramBuilder, p: &Mac3Params) {
    let a_ptr = b.imm(p.a_addr as i64);
    let b_ptr = b.imm(p.b_addr as i64);
    let c_ptr = b.imm(p.c_addr as i64);
    let o_ptr = b.imm(p.out_addr as i64);
    let c0 = b.psplat_imm(Elem::H, p.coef[0] as i64);
    let c1 = b.psplat_imm(Elem::H, p.coef[1] as i64);
    let c2 = b.psplat_imm(Elem::H, p.coef[2] as i64);
    let bias = b.psplat_imm(Elem::W, p.bias as i64);
    let iterations = (p.n / 8) as i64;
    b.counted_loop("mac3", iterations, |b, _| {
        let wa = b.rs();
        let wb = b.rs();
        let wc = b.rs();
        b.pload(wa, a_ptr, 0);
        b.pload(wb, b_ptr, 0);
        b.pload(wc, c_ptr, 0);
        let mut halves = Vec::new();
        for hi in [false, true] {
            // Widen 4 pixels of each plane to 16 bits.
            let a16 = b.rs();
            let b16 = b.rs();
            let c16 = b.rs();
            if hi {
                b.pwiden_hi(Elem::B, Sign::Unsigned, a16, wa);
                b.pwiden_hi(Elem::B, Sign::Unsigned, b16, wb);
                b.pwiden_hi(Elem::B, Sign::Unsigned, c16, wc);
            } else {
                b.pwiden_lo(Elem::B, Sign::Unsigned, a16, wa);
                b.pwiden_lo(Elem::B, Sign::Unsigned, b16, wb);
                b.pwiden_lo(Elem::B, Sign::Unsigned, c16, wc);
            }
            // 32-bit products: even and odd 16-bit lanes separately.
            let acc_e = b.rs();
            let acc_o = b.rs();
            b.pmul_widen_even(Sign::Signed, acc_e, a16, c0);
            b.pmul_widen_odd(Sign::Signed, acc_o, a16, c0);
            for (plane, coef) in [(b16, c1), (c16, c2)] {
                let te = b.rs();
                let to = b.rs();
                b.pmul_widen_even(Sign::Signed, te, plane, coef);
                b.pmul_widen_odd(Sign::Signed, to, plane, coef);
                b.padd(Elem::W, Sat::Wrap, acc_e, acc_e, te);
                b.padd(Elem::W, Sat::Wrap, acc_o, acc_o, to);
            }
            b.padd(Elem::W, Sat::Wrap, acc_e, acc_e, bias);
            b.padd(Elem::W, Sat::Wrap, acc_o, acc_o, bias);
            b.pshra(Elem::W, acc_e, acc_e, p.shift as i64);
            b.pshra(Elem::W, acc_o, acc_o, p.shift as i64);
            // Restore pixel order: even/odd 32-bit lanes → 4 ordered 16-bit.
            let lo = b.rs();
            let hi32 = b.rs();
            b.punpack_lo(Elem::W, lo, acc_e, acc_o);
            b.punpack_hi(Elem::W, hi32, acc_e, acc_o);
            let h16 = b.rs();
            b.ppack(Elem::W, Sign::Signed, h16, lo, hi32);
            halves.push(h16);
        }
        let out = b.rs();
        b.ppack(Elem::H, Sign::Unsigned, out, halves[0], halves[1]);
        b.pstore(o_ptr, 0, out);
        b.addi(a_ptr, a_ptr, 8);
        b.addi(b_ptr, b_ptr, 8);
        b.addi(c_ptr, c_ptr, 8);
        b.addi(o_ptr, o_ptr, 8);
    });
}

fn vector_mac3(b: &mut ProgramBuilder, p: &Mac3Params) {
    let a_ptr = b.imm(p.a_addr as i64);
    let b_ptr = b.imm(p.b_addr as i64);
    let c_ptr = b.imm(p.c_addr as i64);
    let o_ptr = b.imm(p.out_addr as i64);
    b.setvl(16);
    b.setvs(8);
    let c0 = b.vsplat_imm(Elem::H, p.coef[0] as i64);
    let c1 = b.vsplat_imm(Elem::H, p.coef[1] as i64);
    let c2 = b.vsplat_imm(Elem::H, p.coef[2] as i64);
    let bias = b.vsplat_imm(Elem::W, p.bias as i64);
    // 16 words × 8 bytes = 128 pixels per iteration.
    let iterations = (p.n / 128) as i64;
    b.counted_loop("vmac3", iterations, |b, _| {
        let wa = b.rv();
        let wb = b.rv();
        let wc = b.rv();
        b.vload(wa, a_ptr, 0);
        b.vload(wb, b_ptr, 0);
        b.vload(wc, c_ptr, 0);
        let mut halves = Vec::new();
        for hi in [false, true] {
            let a16 = b.rv();
            let b16 = b.rv();
            let c16 = b.rv();
            if hi {
                b.vwiden_hi(Elem::B, Sign::Unsigned, a16, wa);
                b.vwiden_hi(Elem::B, Sign::Unsigned, b16, wb);
                b.vwiden_hi(Elem::B, Sign::Unsigned, c16, wc);
            } else {
                b.vwiden_lo(Elem::B, Sign::Unsigned, a16, wa);
                b.vwiden_lo(Elem::B, Sign::Unsigned, b16, wb);
                b.vwiden_lo(Elem::B, Sign::Unsigned, c16, wc);
            }
            let acc_e = b.rv();
            let acc_o = b.rv();
            b.vmul_widen_even(Sign::Signed, acc_e, a16, c0);
            b.vmul_widen_odd(Sign::Signed, acc_o, a16, c0);
            for (plane, coef) in [(b16, c1), (c16, c2)] {
                let te = b.rv();
                let to = b.rv();
                b.vmul_widen_even(Sign::Signed, te, plane, coef);
                b.vmul_widen_odd(Sign::Signed, to, plane, coef);
                b.vadd(Elem::W, Sat::Wrap, acc_e, acc_e, te);
                b.vadd(Elem::W, Sat::Wrap, acc_o, acc_o, to);
            }
            b.vadd(Elem::W, Sat::Wrap, acc_e, acc_e, bias);
            b.vadd(Elem::W, Sat::Wrap, acc_o, acc_o, bias);
            b.vshra(Elem::W, acc_e, acc_e, p.shift as i64);
            b.vshra(Elem::W, acc_o, acc_o, p.shift as i64);
            let lo = b.rv();
            let hi32 = b.rv();
            b.vunpack_lo(Elem::W, lo, acc_e, acc_o);
            b.vunpack_hi(Elem::W, hi32, acc_e, acc_o);
            let h16 = b.rv();
            b.vpack(Elem::W, Sign::Signed, h16, lo, hi32);
            halves.push(h16);
        }
        let out = b.rv();
        b.vpack(Elem::H, Sign::Unsigned, out, halves[0], halves[1]);
        b.vstore(o_ptr, 0, out);
        b.addi(a_ptr, a_ptr, 128);
        b.addi(b_ptr, b_ptr, 128);
        b.addi(c_ptr, c_ptr, 128);
        b.addi(o_ptr, o_ptr, 128);
    });
}

/// Parameters of the reciprocal-multiply quantisation pattern.
#[derive(Debug, Clone, Copy)]
pub struct QuantParams {
    pub coef_addr: u64,
    pub recip_addr: u64,
    pub out_addr: u64,
    /// Number of 16-bit coefficients; multiple of 64 (whole blocks).
    pub n: usize,
}

/// Emit the quantisation pattern: `q[i] = (coef[i]·recip[i mod 64]) >> 16`.
pub fn emit_quantize(b: &mut ProgramBuilder, variant: IsaVariant, p: &QuantParams) {
    assert!(p.n.is_multiple_of(64));
    match variant {
        IsaVariant::Scalar => {
            let c_ptr = b.imm(p.coef_addr as i64);
            let o_ptr = b.imm(p.out_addr as i64);
            let r_base = b.imm(p.recip_addr as i64);
            let blocks = (p.n / 64) as i64;
            b.counted_loop("quant_blk", blocks, |b, _| {
                let r_ptr = b.ri();
                b.mov(r_ptr, r_base);
                b.counted_loop("quant", 64, |b, _| {
                    let c = b.ri();
                    let r = b.ri();
                    b.ld16s(c, c_ptr, 0);
                    b.ld16s(r, r_ptr, 0);
                    let prod = b.ri();
                    b.mul(prod, c, r);
                    b.srai(prod, prod, 16);
                    b.st16(o_ptr, 0, prod);
                    b.addi(c_ptr, c_ptr, 2);
                    b.addi(r_ptr, r_ptr, 2);
                    b.addi(o_ptr, o_ptr, 2);
                });
            });
        }
        IsaVariant::Usimd => {
            let c_ptr = b.imm(p.coef_addr as i64);
            let o_ptr = b.imm(p.out_addr as i64);
            let r_base = b.imm(p.recip_addr as i64);
            let blocks = (p.n / 64) as i64;
            b.counted_loop("quant_blk", blocks, |b, _| {
                let r_ptr = b.ri();
                b.mov(r_ptr, r_base);
                b.counted_loop("quant", 16, |b, _| {
                    let c = b.rs();
                    let r = b.rs();
                    b.pload(c, c_ptr, 0);
                    b.pload(r, r_ptr, 0);
                    let q = b.rs();
                    b.pmulhi(Elem::H, q, c, r);
                    b.pstore(o_ptr, 0, q);
                    b.addi(c_ptr, c_ptr, 8);
                    b.addi(r_ptr, r_ptr, 8);
                    b.addi(o_ptr, o_ptr, 8);
                });
            });
        }
        IsaVariant::Vector => {
            let c_ptr = b.imm(p.coef_addr as i64);
            let o_ptr = b.imm(p.out_addr as i64);
            let r_base = b.imm(p.recip_addr as i64);
            b.setvl(16);
            b.setvs(8);
            let recips = b.rv();
            b.vload(recips, r_base, 0);
            let blocks = (p.n / 64) as i64;
            b.counted_loop("vquant", blocks, |b, _| {
                let c = b.rv();
                b.vload(c, c_ptr, 0);
                let q = b.rv();
                b.vmulhi(Elem::H, q, c, recips);
                b.vstore(o_ptr, 0, q);
                b.addi(c_ptr, c_ptr, 128);
                b.addi(o_ptr, o_ptr, 128);
            });
        }
    }
}

/// Element-wise rounded byte average of two buffers of `n` bytes
/// (`n` multiple of 128).
pub fn emit_average_u8(
    b: &mut ProgramBuilder,
    variant: IsaVariant,
    a_addr: u64,
    b_addr: u64,
    out_addr: u64,
    n: usize,
) {
    assert!(n.is_multiple_of(128));
    match variant {
        IsaVariant::Scalar => {
            let a_ptr = b.imm(a_addr as i64);
            let b_ptr = b.imm(b_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            b.counted_loop("avg", n as i64, |b, _| {
                let x = b.ri();
                let y = b.ri();
                b.ld8u(x, a_ptr, 0);
                b.ld8u(y, b_ptr, 0);
                let s = b.ri();
                b.add(s, x, y);
                b.addi(s, s, 1);
                b.srai(s, s, 1);
                b.st8(o_ptr, 0, s);
                b.addi(a_ptr, a_ptr, 1);
                b.addi(b_ptr, b_ptr, 1);
                b.addi(o_ptr, o_ptr, 1);
            });
        }
        IsaVariant::Usimd => {
            let a_ptr = b.imm(a_addr as i64);
            let b_ptr = b.imm(b_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            b.counted_loop("avg", (n / 8) as i64, |b, _| {
                let x = b.rs();
                let y = b.rs();
                b.pload(x, a_ptr, 0);
                b.pload(y, b_ptr, 0);
                let s = b.rs();
                b.pavg(Elem::B, s, x, y);
                b.pstore(o_ptr, 0, s);
                b.addi(a_ptr, a_ptr, 8);
                b.addi(b_ptr, b_ptr, 8);
                b.addi(o_ptr, o_ptr, 8);
            });
        }
        IsaVariant::Vector => {
            let a_ptr = b.imm(a_addr as i64);
            let b_ptr = b.imm(b_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            b.setvl(16);
            b.setvs(8);
            b.counted_loop("vavg", (n / 128) as i64, |b, _| {
                let x = b.rv();
                let y = b.rv();
                b.vload(x, a_ptr, 0);
                b.vload(y, b_ptr, 0);
                let s = b.rv();
                b.vavg(Elem::B, s, x, y);
                b.vstore(o_ptr, 0, s);
                b.addi(a_ptr, a_ptr, 128);
                b.addi(b_ptr, b_ptr, 128);
                b.addi(o_ptr, o_ptr, 128);
            });
        }
    }
}

/// MPEG-2 add-block: `out[i] = clamp_u8(pred[i] + resid[i])` where `pred` is
/// bytes and `resid` is 16-bit signed.  `n` must be a multiple of 128.
pub fn emit_add_block(
    b: &mut ProgramBuilder,
    variant: IsaVariant,
    pred_addr: u64,
    resid_addr: u64,
    out_addr: u64,
    n: usize,
) {
    assert!(n.is_multiple_of(128));
    match variant {
        IsaVariant::Scalar => {
            let p_ptr = b.imm(pred_addr as i64);
            let r_ptr = b.imm(resid_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            let zero = b.imm(0);
            let max255 = b.imm(255);
            b.counted_loop("addblk", n as i64, |b, _| {
                let p = b.ri();
                let r = b.ri();
                b.ld8u(p, p_ptr, 0);
                b.ld16s(r, r_ptr, 0);
                let s = b.ri();
                b.add(s, p, r);
                b.imax(s, s, zero);
                b.imin(s, s, max255);
                b.st8(o_ptr, 0, s);
                b.addi(p_ptr, p_ptr, 1);
                b.addi(r_ptr, r_ptr, 2);
                b.addi(o_ptr, o_ptr, 1);
            });
        }
        IsaVariant::Usimd => {
            let p_ptr = b.imm(pred_addr as i64);
            let r_ptr = b.imm(resid_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            b.counted_loop("addblk", (n / 8) as i64, |b, _| {
                let pred = b.rs();
                b.pload(pred, p_ptr, 0);
                let r_lo = b.rs();
                let r_hi = b.rs();
                b.pload(r_lo, r_ptr, 0);
                b.pload(r_hi, r_ptr, 8);
                let p_lo = b.rs();
                let p_hi = b.rs();
                b.pwiden_lo(Elem::B, Sign::Unsigned, p_lo, pred);
                b.pwiden_hi(Elem::B, Sign::Unsigned, p_hi, pred);
                let s_lo = b.rs();
                let s_hi = b.rs();
                b.padd(Elem::H, Sat::Signed, s_lo, p_lo, r_lo);
                b.padd(Elem::H, Sat::Signed, s_hi, p_hi, r_hi);
                let out = b.rs();
                b.ppack(Elem::H, Sign::Unsigned, out, s_lo, s_hi);
                b.pstore(o_ptr, 0, out);
                b.addi(p_ptr, p_ptr, 8);
                b.addi(r_ptr, r_ptr, 16);
                b.addi(o_ptr, o_ptr, 8);
            });
        }
        IsaVariant::Vector => {
            let p_ptr = b.imm(pred_addr as i64);
            let r_ptr = b.imm(resid_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            b.setvl(16);
            b.setvs(8);
            b.counted_loop("vaddblk", (n / 128) as i64, |b, _| {
                let pred = b.rv();
                b.vload(pred, p_ptr, 0);
                // The 16-bit residuals for the 8 pixels of prediction word w
                // live in residual words 2w (low 4 pixels) and 2w+1 (high 4
                // pixels), so gathering them into two vector registers needs
                // a 16-byte stride — one of the non-unit-stride accesses the
                // vector cache serves at one element per cycle (§3.2).
                let r_lo = b.rv();
                let r_hi = b.rv();
                b.setvs(16);
                b.vload(r_lo, r_ptr, 0);
                b.vload(r_hi, r_ptr, 8);
                b.setvs(8);
                let p_lo = b.rv();
                let p_hi = b.rv();
                b.vwiden_lo(Elem::B, Sign::Unsigned, p_lo, pred);
                b.vwiden_hi(Elem::B, Sign::Unsigned, p_hi, pred);
                let s_lo = b.rv();
                let s_hi = b.rv();
                b.vadd(Elem::H, Sat::Signed, s_lo, p_lo, r_lo);
                b.vadd(Elem::H, Sat::Signed, s_hi, p_hi, r_hi);
                let out = b.rv();
                b.vpack(Elem::H, Sign::Unsigned, out, s_lo, s_hi);
                b.vstore(o_ptr, 0, out);
                b.addi(p_ptr, p_ptr, 128);
                b.addi(r_ptr, r_ptr, 256);
                b.addi(o_ptr, o_ptr, 128);
            });
        }
    }
}

/// GSM long-term filter: `out[i] = sat16(err[i] + (gain·past[i]) >> 16)` over
/// `n` 16-bit samples (`n` multiple of 64).
pub fn emit_ltp_filter(
    b: &mut ProgramBuilder,
    variant: IsaVariant,
    err_addr: u64,
    past_addr: u64,
    out_addr: u64,
    gain: i16,
    n: usize,
) {
    assert!(n.is_multiple_of(64));
    match variant {
        IsaVariant::Scalar => {
            let e_ptr = b.imm(err_addr as i64);
            let p_ptr = b.imm(past_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            let min16 = b.imm(i16::MIN as i64);
            let max16 = b.imm(i16::MAX as i64);
            b.counted_loop("ltp", n as i64, |b, _| {
                let e = b.ri();
                let p = b.ri();
                b.ld16s(e, e_ptr, 0);
                b.ld16s(p, p_ptr, 0);
                let contrib = b.ri();
                b.muli(contrib, p, gain as i64);
                b.srai(contrib, contrib, 16);
                let s = b.ri();
                b.add(s, e, contrib);
                b.imax(s, s, min16);
                b.imin(s, s, max16);
                b.st16(o_ptr, 0, s);
                b.addi(e_ptr, e_ptr, 2);
                b.addi(p_ptr, p_ptr, 2);
                b.addi(o_ptr, o_ptr, 2);
            });
        }
        IsaVariant::Usimd => {
            let e_ptr = b.imm(err_addr as i64);
            let p_ptr = b.imm(past_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            let gain_s = b.psplat_imm(Elem::H, gain as i64);
            b.counted_loop("ltp", (n / 4) as i64, |b, _| {
                let e = b.rs();
                let p = b.rs();
                b.pload(e, e_ptr, 0);
                b.pload(p, p_ptr, 0);
                let contrib = b.rs();
                b.pmulhi(Elem::H, contrib, p, gain_s);
                let s = b.rs();
                b.padd(Elem::H, Sat::Signed, s, e, contrib);
                b.pstore(o_ptr, 0, s);
                b.addi(e_ptr, e_ptr, 8);
                b.addi(p_ptr, p_ptr, 8);
                b.addi(o_ptr, o_ptr, 8);
            });
        }
        IsaVariant::Vector => {
            let e_ptr = b.imm(err_addr as i64);
            let p_ptr = b.imm(past_addr as i64);
            let o_ptr = b.imm(out_addr as i64);
            b.setvl(16);
            b.setvs(8);
            let gain_i = b.imm(gain as i64);
            let gain_v = b.rv();
            b.vsplat(Elem::H, gain_v, gain_i);
            b.counted_loop("vltp", (n / 64) as i64, |b, _| {
                let e = b.rv();
                let p = b.rv();
                b.vload(e, e_ptr, 0);
                b.vload(p, p_ptr, 0);
                let contrib = b.rv();
                b.vmulhi(Elem::H, contrib, p, gain_v);
                let s = b.rv();
                b.vadd(Elem::H, Sat::Signed, s, e, contrib);
                b.vstore(o_ptr, 0, s);
                b.addi(e_ptr, e_ptr, 128);
                b.addi(p_ptr, p_ptr, 128);
                b.addi(o_ptr, o_ptr, 128);
            });
        }
    }
}
