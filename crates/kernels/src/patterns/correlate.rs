//! Correlation patterns: the GSM encoder's autocorrelation (`a == b`) and
//! long-term-prediction (LTP) parameter search (cross-correlation of the
//! current sub-segment against the reconstructed short-term residual
//! history), see Table 1.
//!
//! `out[k] = Σ_{i<n} a[i] · b[i+k]` for `k` in `0..lags`, with exact 32-bit
//! results (the workloads keep samples small enough that no intermediate
//! overflows in any variant).

use vmv_isa::{Elem, ProgramBuilder, Sat};

use crate::common::IsaVariant;

/// Parameters of the correlation pattern.
#[derive(Debug, Clone, Copy)]
pub struct CorrelateParams {
    pub a_addr: u64,
    pub b_addr: u64,
    /// Window length in samples; must be a multiple of 64.
    pub n: usize,
    /// Number of lags to evaluate.
    pub lags: usize,
    /// Output: `lags` 32-bit results.
    pub out_addr: u64,
}

/// Emit the correlation pattern.
pub fn emit_correlate(b: &mut ProgramBuilder, variant: IsaVariant, p: &CorrelateParams) {
    assert!(
        p.n.is_multiple_of(64),
        "window must be a multiple of 64 samples"
    );
    match variant {
        IsaVariant::Scalar => scalar_correlate(b, p),
        IsaVariant::Usimd => usimd_correlate(b, p),
        IsaVariant::Vector => vector_correlate(b, p),
    }
}

fn scalar_correlate(b: &mut ProgramBuilder, p: &CorrelateParams) {
    let a_base = b.imm(p.a_addr as i64);
    let b_base = b.imm(p.b_addr as i64);
    let out_ptr = b.imm(p.out_addr as i64);
    let lag_off = b.ri();
    b.li(lag_off, 0);
    b.counted_loop("corr_lag", p.lags as i64, |b, _| {
        let a_ptr = b.ri();
        let b_ptr = b.ri();
        b.mov(a_ptr, a_base);
        b.add(b_ptr, b_base, lag_off);
        let sum = b.ri();
        b.li(sum, 0);
        b.counted_loop("corr", p.n as i64, |b, _| {
            let x = b.ri();
            let y = b.ri();
            b.ld16s(x, a_ptr, 0);
            b.ld16s(y, b_ptr, 0);
            let prod = b.ri();
            b.mul(prod, x, y);
            b.add(sum, sum, prod);
            b.addi(a_ptr, a_ptr, 2);
            b.addi(b_ptr, b_ptr, 2);
        });
        b.st32(out_ptr, 0, sum);
        b.addi(out_ptr, out_ptr, 4);
        b.addi(lag_off, lag_off, 2);
    });
}

fn usimd_correlate(b: &mut ProgramBuilder, p: &CorrelateParams) {
    let a_base = b.imm(p.a_addr as i64);
    let b_base = b.imm(p.b_addr as i64);
    let out_ptr = b.imm(p.out_addr as i64);
    let lag_off = b.ri();
    b.li(lag_off, 0);
    b.counted_loop("corr_lag", p.lags as i64, |b, _| {
        let a_ptr = b.ri();
        let b_ptr = b.ri();
        b.mov(a_ptr, a_base);
        b.add(b_ptr, b_base, lag_off);
        let acc = b.rs();
        let zero = b.imm(0);
        b.int_to_simd(acc, zero);
        b.counted_loop("corr", (p.n / 4) as i64, |b, _| {
            let x = b.rs();
            let y = b.rs();
            b.pload(x, a_ptr, 0);
            b.pload(y, b_ptr, 0);
            let prod = b.rs();
            b.pmadd(prod, x, y);
            b.padd(Elem::W, Sat::Wrap, acc, acc, prod);
            b.addi(a_ptr, a_ptr, 8);
            b.addi(b_ptr, b_ptr, 8);
        });
        let e0 = b.ri();
        let e1 = b.ri();
        b.pextract(Elem::W, e0, acc, 0);
        b.pextract(Elem::W, e1, acc, 1);
        // Sign-extend the extracted 32-bit lanes before the final add.
        b.shli(e0, e0, 32);
        b.srai(e0, e0, 32);
        b.shli(e1, e1, 32);
        b.srai(e1, e1, 32);
        let sum = b.ri();
        b.add(sum, e0, e1);
        b.st32(out_ptr, 0, sum);
        b.addi(out_ptr, out_ptr, 4);
        b.addi(lag_off, lag_off, 2);
    });
}

fn vector_correlate(b: &mut ProgramBuilder, p: &CorrelateParams) {
    let a_base = b.imm(p.a_addr as i64);
    let b_base = b.imm(p.b_addr as i64);
    let out_ptr = b.imm(p.out_addr as i64);
    let lag_off = b.ri();
    b.li(lag_off, 0);
    b.setvl(16);
    b.setvs(8);
    b.counted_loop("vcorr_lag", p.lags as i64, |b, _| {
        let a_ptr = b.ri();
        let b_ptr = b.ri();
        b.mov(a_ptr, a_base);
        b.add(b_ptr, b_base, lag_off);
        let acc = b.ra();
        b.acc_clear(acc);
        b.counted_loop("vcorr", (p.n / 64) as i64, |b, _| {
            let x = b.rv();
            let y = b.rv();
            b.vload(x, a_ptr, 0);
            b.vload(y, b_ptr, 0);
            b.vmac_acc(acc, x, y);
            b.addi(a_ptr, a_ptr, 128);
            b.addi(b_ptr, b_ptr, 128);
        });
        let sum = b.ri();
        b.acc_reduce(sum, acc);
        b.st32(out_ptr, 0, sum);
        b.addi(out_ptr, out_ptr, 4);
        b.addi(lag_off, lag_off, 2);
    });
}
