//! MPEG-2 encoder benchmark (mpeg2enc).
//!
//! Vector regions (Table 1): R1 motion estimation (the `dist1` SAD kernel of
//! Fig. 4, with the image-width stride that causes the non-unit-stride
//! degradation of Fig. 5b), R2 forward DCT, R3 inverse DCT.  The scalar
//! region runs VLC entropy encoding and a rate-control recurrence.

use vmv_isa::ProgramBuilder;

use crate::common::{i16s_to_bytes, BenchmarkBuild, IsaVariant, Layout, OutputCheck};
use crate::data;
use crate::patterns::dct::{coef_pattern_tables, effective_coef_table, emit_dct, DctParams};
use crate::patterns::sad::{emit_motion_search, SadParams};
use crate::patterns::scalar_regions::{
    emit_entropy_encode, emit_recurrence, ref_entropy_encode, ref_recurrence,
};
use crate::reference;

/// Frame dimensions for the motion-estimation search.
const WIDTH: usize = 48;
const HEIGHT: usize = 48;
/// Top-left corner of the current macroblock.
const MB_X: usize = 16;
const MB_Y: usize = 16;
/// Search range (±RANGE pixels in both directions).
const RANGE: isize = 2;
/// 8×8 residual blocks pushed through the forward and inverse DCT.
const BLOCKS: usize = 4;

fn vlc_table() -> [u16; 16] {
    std::array::from_fn(|i| 0x0300u16.wrapping_add((i as u16) * 29))
}

/// Build the MPEG-2 encoder benchmark in the requested ISA variant.
pub fn build(variant: IsaVariant) -> BenchmarkBuild {
    let mut layout = Layout::new();
    let ref_addr = layout.alloc_bytes("ref_frame", WIDTH * HEIGHT);
    let cur_addr = layout.alloc_bytes("cur_frame", WIDTH * HEIGHT);
    let sads_addr = layout.alloc_bytes("sads", 4 * 32);
    let best_addr = layout.alloc_bytes("best", 8);
    let fdct_in = layout.alloc_bytes("fdct_in", BLOCKS * 128);
    let fdct_out = layout.alloc_bytes("fdct_out", BLOCKS * 128);
    let idct_out = layout.alloc_bytes("idct_out", BLOCKS * 128);
    let dct_tmp = layout.alloc_bytes("dct_tmp", 128);
    let fcoef_addr = layout.alloc_bytes("fdct_coef", 128);
    let icoef_addr = layout.alloc_bytes("idct_coef", 128);
    let fpat_even = layout.alloc_bytes("fpat_even", 1024);
    let fpat_odd = layout.alloc_bytes("fpat_odd", 1024);
    let ipat_even = layout.alloc_bytes("ipat_even", 1024);
    let ipat_odd = layout.alloc_bytes("ipat_odd", 1024);
    let vlc_addr = layout.alloc_bytes("vlc_table", 32);
    let checksum_addr = layout.alloc_bytes("checksum", 16);
    let rc_checksum_addr = layout.alloc_bytes("rc_checksum", 16);

    // ------------------------------------------------------------ workload
    let (reference_frame, current_frame) = data::synth_frame_pair(WIDTH, HEIGHT, 1, 1, 0x3001);
    let residual = data::synth_residual(BLOCKS * 64, 200, 0x3002);
    let table = vlc_table();

    // Candidate displacements: a (2·RANGE+1)² full search window.
    let mut candidates = Vec::new();
    for dy in -RANGE..=RANGE {
        for dx in -RANGE..=RANGE {
            let off = (MB_Y as isize + dy) * WIDTH as isize + (MB_X as isize + dx);
            candidates.push(off as u64);
        }
    }
    let cur_off = MB_Y * WIDTH + MB_X;

    // ----------------------------------------------------------- reference
    let cand_usize: Vec<usize> = candidates.iter().map(|&c| c as usize).collect();
    let (ref_sads, ref_best) = reference::motion_search(
        &current_frame.data,
        &reference_frame.data,
        WIDTH,
        cur_off,
        &cand_usize,
    );
    let ref_fdct = reference::dct_blocks(&residual, false);
    let ref_idct = reference::dct_blocks(&ref_fdct, true);
    let (ref_cs, ref_bits) = ref_entropy_encode(&ref_fdct, &table);
    let ref_rc = ref_recurrence(&residual[..128], 4);

    // ------------------------------------------------------------- program
    let mut b = ProgramBuilder::new(format!("mpeg2_enc_{}", variant.name()));
    b.label("start");

    b.begin_region(1, "Motion estimation");
    emit_motion_search(
        &mut b,
        variant,
        &SadParams {
            cur_addr: cur_addr + cur_off as u64,
            ref_addr,
            stride: WIDTH,
            candidates,
            sads_addr,
            best_addr,
        },
    );
    b.end_region();

    b.begin_region(2, "Forward DCT");
    emit_dct(
        &mut b,
        variant,
        &DctParams {
            in_addr: fdct_in,
            out_addr: fdct_out,
            tmp_addr: dct_tmp,
            coef_addr: fcoef_addr,
            pat_even_addr: fpat_even,
            pat_odd_addr: fpat_odd,
            blocks: BLOCKS,
            inverse: false,
        },
    );
    b.end_region();

    b.begin_region(3, "Inverse DCT");
    emit_dct(
        &mut b,
        variant,
        &DctParams {
            in_addr: fdct_out,
            out_addr: idct_out,
            tmp_addr: dct_tmp,
            coef_addr: icoef_addr,
            pat_even_addr: ipat_even,
            pat_odd_addr: ipat_odd,
            blocks: BLOCKS,
            inverse: true,
        },
    );
    b.end_region();

    // Scalar region: VLC entropy coding of the transform coefficients and a
    // rate-control style recurrence.
    emit_entropy_encode(&mut b, fdct_out, BLOCKS * 64, vlc_addr, checksum_addr);
    emit_recurrence(&mut b, fdct_in, 128, 4, rc_checksum_addr);
    b.halt();

    // ------------------------------------------------------- initial memory
    let (fpe, fpo) = coef_pattern_tables(false);
    let (ipe, ipo) = coef_pattern_tables(true);
    let init = vec![
        (ref_addr, reference_frame.data.clone()),
        (cur_addr, current_frame.data.clone()),
        (fdct_in, i16s_to_bytes(&residual)),
        (fcoef_addr, effective_coef_table(false)),
        (icoef_addr, effective_coef_table(true)),
        (fpat_even, fpe),
        (fpat_odd, fpo),
        (ipat_even, ipe),
        (ipat_odd, ipo),
        (
            vlc_addr,
            table.iter().flat_map(|v| v.to_le_bytes()).collect(),
        ),
    ];

    let sad_bytes: Vec<u8> = ref_sads.iter().flat_map(|s| s.to_le_bytes()).collect();
    let checks = vec![
        OutputCheck::Bytes {
            name: "sad values".into(),
            addr: sads_addr,
            expect: sad_bytes,
        },
        OutputCheck::Word {
            name: "best candidate".into(),
            addr: best_addr,
            expect: ref_best as u32,
        },
        OutputCheck::Bytes {
            name: "forward dct".into(),
            addr: fdct_out,
            expect: i16s_to_bytes(&ref_fdct),
        },
        OutputCheck::Bytes {
            name: "inverse dct".into(),
            addr: idct_out,
            expect: i16s_to_bytes(&ref_idct),
        },
        OutputCheck::Word {
            name: "vlc checksum".into(),
            addr: checksum_addr,
            expect: ref_cs,
        },
        OutputCheck::Word {
            name: "vlc bit count".into(),
            addr: checksum_addr + 4,
            expect: ref_bits,
        },
        OutputCheck::Word {
            name: "rate control checksum".into(),
            addr: rc_checksum_addr,
            expect: ref_rc,
        },
    ];

    BenchmarkBuild {
        program: b.finish(),
        init,
        checks,
        mem_size: (layout.footprint() as usize + 0xFFF) & !0xFFF,
    }
}
