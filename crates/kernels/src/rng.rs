//! A tiny deterministic pseudo-random number generator (splitmix64 /
//! xorshift-star based) so the synthetic workload generators need no
//! external crates.  Quality is far beyond what the generators require
//! (noise injection and residual coefficients); determinism across
//! platforms and runs is what actually matters here.

/// Deterministic 64-bit PRNG seeded from a `u64`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seed the generator.  Identical seeds yield identical streams on every
    /// platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One splitmix64 round so that small / similar seeds diverge.
        SmallRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        // Wrapping arithmetic keeps the span correct for any i64 pair
        // (two's complement), including the full `i64::MIN..=i64::MAX`.
        let span_minus_1 = hi.wrapping_sub(lo) as u64;
        if span_minus_1 == u64::MAX {
            return self.next_u64() as i64;
        }
        // Modulo bias is negligible for the tiny spans used by the
        // generators (span << 2^64) and irrelevant for synthetic noise.
        lo.wrapping_add((self.next_u64() % (span_minus_1 + 1)) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let _ = r.gen_range_i64(i64::MIN, i64::MAX);
            let v = r.gen_range_i64(i64::MIN, i64::MIN + 1);
            assert!(v == i64::MIN || v == i64::MIN + 1);
            assert_eq!(r.gen_range_i64(i64::MAX, i64::MAX), i64::MAX);
        }
    }

    #[test]
    fn ranges_are_inclusive_and_bounded() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "both endpoints should be reachable");
    }
}
