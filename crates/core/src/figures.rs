//! Reconstruction of every figure and table of the paper's evaluation from a
//! measurement [`Suite`](crate::experiment::Suite).
//!
//! * Table 1 — vector regions and the fraction of execution time they
//!   represent on the 2-issue µSIMD-VLIW machine;
//! * Figure 1 — scalability of scalar vs vector regions on µSIMD-VLIW
//!   machines (speed-up over the 2-issue µSIMD-VLIW);
//! * Figure 5 — speed-up of the vector regions over the 2-issue VLIW vector
//!   regions, for all ten configurations (perfect and realistic memory);
//! * Figure 6 — speed-up of complete applications over the 2-issue VLIW,
//!   plus the cross-benchmark average;
//! * Figure 7 — dynamic operation count normalised to the base VLIW, split
//!   per region;
//! * Table 3 — operations / micro-operations per cycle and speed-up for the
//!   scalar regions, vector regions and whole applications.

use std::collections::BTreeMap;

use vmv_isa::RegionId;
use vmv_kernels::Benchmark;

use crate::experiment::Suite;

// Geometric helpers --------------------------------------------------------

fn ratio(reference: u64, value: u64) -> f64 {
    if value == 0 {
        0.0
    } else {
        reference as f64 / value as f64
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub benchmark: Benchmark,
    /// Fraction (0..1) of execution time spent in the vector regions on the
    /// 2-issue µSIMD-VLIW configuration.
    pub vectorization: f64,
    pub regions: Vec<String>,
}

/// Compute Table 1 from a realistic-memory suite.
pub fn table1(suite: &Suite) -> Vec<Table1Row> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let outcome = suite.get("2w +uSIMD", bench);
            Table1Row {
                benchmark: bench,
                vectorization: outcome
                    .map(|o| o.stats.vectorization_fraction())
                    .unwrap_or(0.0),
                regions: bench
                    .vector_region_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            }
        })
        .collect()
}

/// Render Table 1 as text.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out =
        String::from("Table 1: vector regions and % of execution time (2-issue +uSIMD)\n");
    out.push_str(&format!(
        "{:<12} {:>8}  {}\n",
        "Benchmark", "%Vect", "Vector regions"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7.2}%  {}\n",
            r.benchmark.name(),
            100.0 * r.vectorization,
            r.regions.join(", ")
        ));
    }
    out
}

// --------------------------------------------------------------- Figure 1

/// Speed-ups of one benchmark on the 2/4/8-issue µSIMD machines relative to
/// the 2-issue µSIMD machine, split by application / scalar / vector
/// regions (one entry per issue width, in the order 2, 4, 8).
#[derive(Debug, Clone)]
pub struct Fig1Series {
    pub benchmark: Benchmark,
    pub application: Vec<f64>,
    pub scalar_regions: Vec<f64>,
    pub vector_regions: Vec<f64>,
}

/// Compute Figure 1.
pub fn fig1(suite: &Suite) -> Vec<Fig1Series> {
    let widths = ["2w +uSIMD", "4w +uSIMD", "8w +uSIMD"];
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let base = suite
                .get(widths[0], bench)
                .expect("2-issue µSIMD run present");
            let mut series = Fig1Series {
                benchmark: bench,
                application: Vec::new(),
                scalar_regions: Vec::new(),
                vector_regions: Vec::new(),
            };
            for w in widths {
                let o = suite.get(w, bench).expect("µSIMD run present");
                series
                    .application
                    .push(ratio(base.stats.cycles(), o.stats.cycles()));
                series
                    .scalar_regions
                    .push(ratio(base.stats.scalar().cycles, o.stats.scalar().cycles));
                series
                    .vector_regions
                    .push(ratio(base.stats.vector().cycles, o.stats.vector().cycles));
            }
            series
        })
        .collect()
}

/// Aggregate scalability statistics quoted in §2 of the paper.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Summary {
    /// Average scalar-region speed-up going from 2- to 4-issue.
    pub scalar_2_to_4: f64,
    /// Average scalar-region speed-up going from 4- to 8-issue.
    pub scalar_4_to_8: f64,
    /// Average vector-region speed-up of the 8-issue machine over 2-issue.
    pub vector_at_8: f64,
    /// Average vectorisation percentage (Table 1).
    pub avg_vectorization: f64,
}

/// Compute the §2 aggregate numbers from Figure 1 data plus Table 1.
pub fn fig1_summary(series: &[Fig1Series], t1: &[Table1Row]) -> Fig1Summary {
    let s24: Vec<f64> = series
        .iter()
        .map(|s| s.scalar_regions[1] / s.scalar_regions[0])
        .collect();
    let s48: Vec<f64> = series
        .iter()
        .map(|s| s.scalar_regions[2] / s.scalar_regions[1])
        .collect();
    let v8: Vec<f64> = series.iter().map(|s| s.vector_regions[2]).collect();
    Fig1Summary {
        scalar_2_to_4: mean(&s24),
        scalar_4_to_8: mean(&s48),
        vector_at_8: mean(&v8),
        avg_vectorization: mean(&t1.iter().map(|r| r.vectorization).collect::<Vec<_>>()),
    }
}

/// Render Figure 1 as text.
pub fn render_fig1(series: &[Fig1Series]) -> String {
    let mut out =
        String::from("Figure 1: scalability of scalar and vector regions on uSIMD-VLIW (speed-up over 2w +uSIMD)\n");
    out.push_str(&format!(
        "{:<12} {:>22} {:>22} {:>22}\n",
        "Benchmark", "application 2/4/8w", "scalar regions 2/4/8w", "vector regions 2/4/8w"
    ));
    for s in series {
        let f = |v: &Vec<f64>| format!("{:.2} / {:.2} / {:.2}", v[0], v[1], v[2]);
        out.push_str(&format!(
            "{:<12} {:>22} {:>22} {:>22}\n",
            s.benchmark.name(),
            f(&s.application),
            f(&s.scalar_regions),
            f(&s.vector_regions)
        ));
    }
    out
}

// ------------------------------------------------------------ Figures 5/6

/// Speed-up of every configuration over the 2-issue VLIW, per benchmark.
#[derive(Debug, Clone)]
pub struct SpeedupChart {
    /// What the speed-up is measured on (vector regions or whole
    /// application).
    pub scope: &'static str,
    /// Configuration names, in Table 2 order.
    pub configs: Vec<String>,
    /// `values[benchmark][config]` speed-ups.
    pub values: BTreeMap<Benchmark, Vec<f64>>,
}

fn speedup_chart(suite: &Suite, scope: &'static str, vector_only: bool) -> SpeedupChart {
    let configs: Vec<String> = vmv_machine::all_configs()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut values = BTreeMap::new();
    for &bench in &Benchmark::ALL {
        let base = suite.get("2w VLIW", bench).expect("baseline run present");
        let base_cycles = if vector_only {
            base.stats.vector().cycles
        } else {
            base.stats.cycles()
        };
        let mut row = Vec::new();
        for cfg in &configs {
            let o = suite.get(cfg, bench).expect("configuration run present");
            let cycles = if vector_only {
                o.stats.vector().cycles
            } else {
                o.stats.cycles()
            };
            row.push(ratio(base_cycles, cycles));
        }
        values.insert(bench, row);
    }
    SpeedupChart {
        scope,
        configs,
        values,
    }
}

/// Figure 5 (a or b depending on the suite's memory model): speed-up of the
/// vector regions over the 2-issue VLIW vector regions.
pub fn fig5(suite: &Suite) -> SpeedupChart {
    speedup_chart(suite, "vector regions", true)
}

/// Figure 6: speed-up of complete applications over the 2-issue VLIW.
pub fn fig6(suite: &Suite) -> SpeedupChart {
    speedup_chart(suite, "complete application", false)
}

/// Per-configuration average across benchmarks (the AVERAGE panel of
/// Figure 6).
pub fn chart_average(chart: &SpeedupChart) -> Vec<f64> {
    let n = chart.configs.len();
    (0..n)
        .map(|i| mean(&chart.values.values().map(|row| row[i]).collect::<Vec<_>>()))
        .collect()
}

/// Render a speed-up chart as text.
pub fn render_chart(chart: &SpeedupChart) -> String {
    let mut out = format!("Speed-up over 2w VLIW ({})\n", chart.scope);
    out.push_str(&format!("{:<12}", "Benchmark"));
    for c in &chart.configs {
        out.push_str(&format!("{:>13}", c));
    }
    out.push('\n');
    for (bench, row) in &chart.values {
        out.push_str(&format!("{:<12}", bench.name()));
        for v in row {
            out.push_str(&format!("{:>13.2}", v));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "AVERAGE"));
    for v in chart_average(chart) {
        out.push_str(&format!("{:>13.2}", v));
    }
    out.push('\n');
    out
}

// --------------------------------------------------------------- Figure 7

/// Normalised dynamic operation counts, split per region.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    pub benchmark: Benchmark,
    /// For each of the three ISAs (VLIW, +µSIMD, +Vector on the 2-issue
    /// machines): operation count per region (R0 scalar, then R1..),
    /// normalised to the total operation count of the base VLIW.
    pub per_isa: Vec<(String, Vec<(RegionId, f64)>)>,
}

/// Compute Figure 7 from a realistic-memory suite (2-issue machines).
pub fn fig7(suite: &Suite) -> Vec<Fig7Row> {
    let isas = ["2w VLIW", "2w +uSIMD", "2w +Vector2"];
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let base_ops = suite
                .get("2w VLIW", bench)
                .expect("baseline")
                .stats
                .total()
                .operations;
            let per_isa = isas
                .iter()
                .map(|cfg| {
                    let o = suite.get(cfg, bench).expect("run present");
                    let regions = o
                        .stats
                        .regions
                        .iter()
                        .map(|(id, st)| (*id, st.operations as f64 / base_ops.max(1) as f64))
                        .collect();
                    (cfg.to_string(), regions)
                })
                .collect();
            Fig7Row {
                benchmark: bench,
                per_isa,
            }
        })
        .collect()
}

/// §5.3 aggregates: operation-count reduction of the Vector ISA relative to
/// the µSIMD ISA, in the vector regions and in the whole application.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Summary {
    pub vector_region_reduction: f64,
    pub application_reduction: f64,
}

/// Compute the §5.3 aggregate numbers.
pub fn fig7_summary(suite: &Suite) -> Fig7Summary {
    let mut region_red = Vec::new();
    let mut app_red = Vec::new();
    for &bench in &Benchmark::ALL {
        let usimd = suite.get("2w +uSIMD", bench).expect("usimd run");
        let vector = suite.get("2w +Vector2", bench).expect("vector run");
        let u_vec = usimd.stats.vector().operations.max(1) as f64;
        let v_vec = vector.stats.vector().operations as f64;
        region_red.push(1.0 - v_vec / u_vec);
        let u_all = usimd.stats.total().operations.max(1) as f64;
        let v_all = vector.stats.total().operations as f64;
        app_red.push(1.0 - v_all / u_all);
    }
    Fig7Summary {
        vector_region_reduction: mean(&region_red),
        application_reduction: mean(&app_red),
    }
}

/// Render Figure 7 as text.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::from(
        "Figure 7: dynamic operation count normalised to the 2-issue VLIW (per region)\n",
    );
    for row in rows {
        out.push_str(&format!("{}\n", row.benchmark.name()));
        for (isa, regions) in &row.per_isa {
            let total: f64 = regions.iter().map(|(_, v)| v).sum();
            let detail: Vec<String> = regions
                .iter()
                .map(|(id, v)| format!("R{}={:.3}", id.0, v))
                .collect();
            out.push_str(&format!(
                "  {:<12} total={:.3}  {}\n",
                isa,
                total,
                detail.join(" ")
            ));
        }
    }
    out
}

// ---------------------------------------------------------------- Table 3

/// One row of Table 3 (one processor configuration).
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub config: String,
    pub scalar_opc: f64,
    pub scalar_speedup: f64,
    pub vector_opc: f64,
    pub vector_micro_opc: f64,
    pub vector_speedup: f64,
    pub app_opc: f64,
    pub app_micro_opc: f64,
    pub app_speedup: f64,
}

/// Compute Table 3: averages across the six benchmarks for every
/// configuration, with speed-ups relative to the 2-issue VLIW.
pub fn table3(suite: &Suite) -> Vec<Table3Row> {
    let configs: Vec<String> = vmv_machine::all_configs()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    configs
        .iter()
        .map(|cfg| {
            let mut scalar_opc = Vec::new();
            let mut scalar_sp = Vec::new();
            let mut vector_opc = Vec::new();
            let mut vector_uopc = Vec::new();
            let mut vector_sp = Vec::new();
            let mut app_opc = Vec::new();
            let mut app_uopc = Vec::new();
            let mut app_sp = Vec::new();
            for &bench in &Benchmark::ALL {
                let base = suite.get("2w VLIW", bench).expect("baseline");
                let o = suite.get(cfg, bench).expect("run present");
                scalar_opc.push(o.stats.scalar().opc());
                scalar_sp.push(ratio(base.stats.scalar().cycles, o.stats.scalar().cycles));
                vector_opc.push(o.stats.vector().opc());
                vector_uopc.push(o.stats.vector().micro_opc());
                vector_sp.push(ratio(base.stats.vector().cycles, o.stats.vector().cycles));
                app_opc.push(o.stats.total().opc());
                app_uopc.push(o.stats.total().micro_opc());
                app_sp.push(ratio(base.stats.cycles(), o.stats.cycles()));
            }
            Table3Row {
                config: cfg.clone(),
                scalar_opc: mean(&scalar_opc),
                scalar_speedup: mean(&scalar_sp),
                vector_opc: mean(&vector_opc),
                vector_micro_opc: mean(&vector_uopc),
                vector_speedup: mean(&vector_sp),
                app_opc: mean(&app_opc),
                app_micro_opc: mean(&app_uopc),
                app_speedup: mean(&app_sp),
            }
        })
        .collect()
}

/// Render Table 3 as text.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "Table 3: OPC / uOPC / speed-up per region class (averages over the six benchmarks)\n",
    );
    out.push_str(&format!(
        "{:<14} | {:>6} {:>6} | {:>6} {:>7} {:>6} | {:>6} {:>7} {:>6}\n",
        "Config", "s.OPC", "s.SP", "v.OPC", "v.uOPC", "v.SP", "a.OPC", "a.uOPC", "a.SP"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} | {:>6.2} {:>6.2} | {:>6.2} {:>7.2} {:>6.2} | {:>6.2} {:>7.2} {:>6.2}\n",
            r.config,
            r.scalar_opc,
            r.scalar_speedup,
            r.vector_opc,
            r.vector_micro_opc,
            r.vector_speedup,
            r.app_opc,
            r.app_micro_opc,
            r.app_speedup
        ));
    }
    out
}
