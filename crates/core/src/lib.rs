//! # vmv-core — reproduction of the paper's evaluation
//!
//! Drives the whole stack (kernels → static scheduler → cycle-level
//! simulator) across the ten processor configurations of Table 2 and
//! rebuilds every figure and table of the evaluation section:
//! Table 1 (vector regions / %vectorisation), Figure 1 (scalar vs vector
//! region scalability), Figures 5a/5b (vector-region speed-ups under
//! perfect and realistic memory), Figure 6 (whole-application speed-ups),
//! Figure 7 (normalised operation counts) and Table 3 (OPC / µOPC /
//! speed-up per region class).

#![forbid(unsafe_code)]

pub mod experiment;
pub mod figures;

pub use experiment::{
    default_workers, prepare, run_one, simulate, simulate_batch, simulate_batch_profiled,
    simulate_fresh, simulate_profiled, variant_for, variant_from_name, workers_capped,
    ExperimentError, Prepared, RunOutcome, Suite,
};
pub use figures::{
    chart_average, fig1, fig1_summary, fig5, fig6, fig7, fig7_summary, render_chart, render_fig1,
    render_fig7, render_table1, render_table3, table1, table3, Fig1Series, Fig1Summary, Fig7Row,
    Fig7Summary, SpeedupChart, Table1Row, Table3Row,
};

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_kernels::Benchmark;
    use vmv_machine::presets;
    use vmv_mem::MemoryModel;

    #[test]
    fn single_run_is_functionally_correct_on_every_isa() {
        for machine in [presets::vliw(2), presets::usimd(2), presets::vector2(2)] {
            let outcome = run_one(Benchmark::GsmDec, &machine, MemoryModel::Perfect).unwrap();
            assert!(
                outcome.check_failures.is_empty(),
                "{}: {:?}",
                machine.name,
                outcome.check_failures
            );
            assert!(outcome.stats.cycles() > 0);
        }
    }

    #[test]
    fn usimd_and_vector_outperform_the_same_width_vliw() {
        let vliw = run_one(Benchmark::GsmEnc, &presets::vliw(2), MemoryModel::Perfect).unwrap();
        let usimd = run_one(Benchmark::GsmEnc, &presets::usimd(2), MemoryModel::Perfect).unwrap();
        let vector = run_one(
            Benchmark::GsmEnc,
            &presets::vector2(2),
            MemoryModel::Perfect,
        )
        .unwrap();
        assert!(usimd.stats.cycles() < vliw.stats.cycles());
        assert!(vector.stats.cycles() < usimd.stats.cycles());
        // and the vector ISA fetches fewer operations (paper §5.3)
        assert!(vector.stats.total().operations < usimd.stats.total().operations);
    }

    #[test]
    fn variant_names_round_trip_through_the_decoder() {
        use vmv_kernels::IsaVariant;
        for v in IsaVariant::ALL {
            assert_eq!(variant_from_name(v.name()), Some(v));
            assert_eq!(variant_from_name(&v.name().to_ascii_uppercase()), Some(v));
        }
        assert_eq!(variant_from_name("mmx"), None);
        assert_eq!(variant_from_name(""), None);
    }

    #[test]
    fn small_suite_builds_figures() {
        let machines = vec![presets::vliw(2), presets::usimd(2), presets::vector2(2)];
        let suite = Suite::run(&machines, MemoryModel::Perfect).unwrap();
        assert!(suite.failed().is_empty());
        assert_eq!(suite.outcomes.len(), 3 * Benchmark::ALL.len());
        // The per-benchmark table-1 style fraction is well defined.
        for o in &suite.outcomes {
            let f = o.stats.vectorization_fraction();
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
