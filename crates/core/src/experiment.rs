//! The experiment driver: runs every benchmark on every processor
//! configuration of Table 2 and collects per-region statistics, exactly the
//! measurement matrix behind the paper's evaluation (§5).
//!
//! Each configuration executes the benchmark version written for its ISA
//! (§4.1): the plain-VLIW configurations run the scalar code, the
//! µSIMD-VLIW configurations the µSIMD code and the Vector-µSIMD-VLIW
//! configurations the Vector-µSIMD code.  Every run is checked against the
//! golden reference outputs, so a timing result is only reported for a
//! functionally correct execution.
//!
//! Compilation and simulation are exposed as *separate* steps ([`prepare`]
//! and [`simulate`]): the static schedule depends only on the
//! schedule-relevant machine parameters, so a design-space sweep (the
//! `vmv-sweep` crate) can schedule a program once and re-simulate it across
//! many memory-system variations.

use std::sync::{Arc, OnceLock};

use vmv_kernels::{Benchmark, BenchmarkBuild, IsaVariant};
use vmv_machine::{IsaSupport, MachineConfig};
use vmv_mem::MemoryModel;
use vmv_sim::{Profile, ProfileStatics, RunStats, SimOptions, Simulator, Trace};

/// Hard cap on simulated (or replayed) cycles per run.
const MAX_RUN_CYCLES: u64 = 2_000_000_000;

/// Result of one (benchmark, configuration) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Configuration name (e.g. "4w +Vector2").
    pub config: String,
    pub benchmark: Benchmark,
    pub variant: IsaVariant,
    pub memory_model: MemoryModel,
    pub stats: RunStats,
    /// Names of output checks that failed (empty = bit-exact).
    pub check_failures: Vec<String>,
}

/// Errors from the experiment driver.
#[derive(Debug)]
pub enum ExperimentError {
    Compile(String),
    Simulation(String),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "compile error: {e}"),
            ExperimentError::Simulation(e) => write!(f, "simulation error: {e}"),
        }
    }
}
impl std::error::Error for ExperimentError {}

/// ISA variant a machine configuration executes (paper §4.1).
pub fn variant_for(machine: &MachineConfig) -> IsaVariant {
    match machine.isa {
        IsaSupport::Vliw => IsaVariant::Scalar,
        IsaSupport::Usimd => IsaVariant::Usimd,
        IsaSupport::Vector => IsaVariant::Vector,
    }
}

/// Case-insensitive inverse of [`IsaVariant::name`]: decode the `variant`
/// column a result store records back to the enum.  Consumers that only
/// hold a JSONL file (e.g. the report loader) use this to validate that a
/// record's declared variant is one the stack can actually execute.
pub fn variant_from_name(name: &str) -> Option<IsaVariant> {
    IsaVariant::ALL
        .iter()
        .copied()
        .find(|v| v.name().eq_ignore_ascii_case(name))
}

/// A benchmark compiled for one machine: the static schedule, its lowered
/// executable form, and the initial memory image and output checks.
/// Immutable once built, so it can be shared (e.g. behind an `Arc`) and
/// re-simulated under many memory models without rescheduling *or*
/// re-lowering — the sweep crate's compile cache holds exactly this.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub benchmark: Benchmark,
    pub variant: IsaVariant,
    pub build: BenchmarkBuild,
    pub compiled: vmv_sched::Compiled,
    /// Pre-resolved executable form consumed by the simulator's hot loop.
    /// Lowering depends only on schedule-relevant machine fields, so one
    /// lowered program serves every memory-system variant.
    pub lowered: vmv_sched::LoweredProgram,
    /// Timing trace of one functional execution, filled by the first
    /// [`simulate`] call and replayed by every later one.  The trace is
    /// memory-model- and memory-geometry-independent (functional values
    /// never change with timing), so clones and `Arc`-shared copies of a
    /// `Prepared` — e.g. in the sweep compile cache — execute each program
    /// once and retime it for every memory variant.
    trace: OnceLock<Arc<Recorded>>,
    /// Cycle-attribution statics (bundle issue classes, op names, lanes),
    /// built on first profiled simulate.  Like the lowered program they
    /// depend only on schedule-relevant machine fields, so one table serves
    /// every memory variant.
    profile_statics: OnceLock<Arc<ProfileStatics>>,
}

/// What one execute-and-record run leaves behind: the timing trace plus the
/// output-check verdict (functional, hence identical for every variant).
#[derive(Debug)]
struct Recorded {
    trace: Trace,
    check_failures: Vec<String>,
}

impl Prepared {
    pub fn new(
        benchmark: Benchmark,
        variant: IsaVariant,
        build: BenchmarkBuild,
        compiled: vmv_sched::Compiled,
        lowered: vmv_sched::LoweredProgram,
    ) -> Prepared {
        Prepared {
            benchmark,
            variant,
            build,
            compiled,
            lowered,
            trace: OnceLock::new(),
            profile_statics: OnceLock::new(),
        }
    }

    /// Whether a recorded trace is available (later [`simulate`] calls will
    /// replay instead of executing).
    pub fn has_trace(&self) -> bool {
        self.trace.get().is_some()
    }

    /// The cycle-attribution statics for this program, built once per
    /// `Prepared` and shared across every profiled run.  `machine` must be
    /// schedule-compatible with the preparing configuration (the same
    /// contract as [`simulate`]).
    pub fn profile_statics(&self, machine: &MachineConfig) -> Arc<ProfileStatics> {
        self.profile_statics
            .get_or_init(|| Arc::new(ProfileStatics::build(&self.lowered, machine)))
            .clone()
    }
}

/// Build the benchmark program, compile (schedule) it for `machine`, and
/// lower the schedule to its executable form.
pub fn prepare(benchmark: Benchmark, machine: &MachineConfig) -> Result<Prepared, ExperimentError> {
    let variant = variant_for(machine);
    let build = benchmark.build(variant);
    let compiled = vmv_sched::compile(&build.program, machine)
        .map_err(|e| ExperimentError::Compile(format!("{}: {e}", machine.name)))?;
    let lowered = vmv_sched::lower(&compiled.program, machine)
        .map_err(|e| ExperimentError::Compile(format!("{}: {e}", machine.name)))?;
    Ok(Prepared::new(benchmark, variant, build, compiled, lowered))
}

/// Simulate an already-compiled benchmark on `machine` under `model`.
///
/// `machine` must agree with the configuration the program was scheduled
/// for in every schedule-relevant parameter; the memory-hierarchy
/// parameters (`machine.memory`) and the memory `model` are free to vary.
///
/// The first call on a `Prepared` executes the program functionally and
/// records its timing trace; every later call (any memory variant, any
/// model) *replays* that trace — bit-identical `RunStats`, proven by
/// `tests/lowered_differential.rs`, at a fraction of the cost.  Callers
/// that want to benchmark raw execution use [`simulate_fresh`].
pub fn simulate(
    prepared: &Prepared,
    machine: &MachineConfig,
    model: MemoryModel,
) -> Result<RunOutcome, ExperimentError> {
    if let Some(recorded) = prepared.trace.get() {
        let stats = vmv_sim::replay(
            &prepared.lowered,
            &recorded.trace,
            machine,
            model,
            MAX_RUN_CYCLES,
        )
        .map_err(|e| ExperimentError::Simulation(format!("{}: replay: {e}", machine.name)))?;
        return Ok(RunOutcome {
            config: machine.name.clone(),
            benchmark: prepared.benchmark,
            variant: prepared.variant,
            memory_model: model,
            stats,
            check_failures: recorded.check_failures.clone(),
        });
    }
    let mut sim = simulator_for(prepared, machine, model);
    let (stats, trace) = sim
        .run_lowered_recording(&prepared.lowered)
        .map_err(|e| ExperimentError::Simulation(format!("{}: {e}", machine.name)))?;
    let check_failures = prepared
        .build
        .failed_checks(|addr, len| sim.mem.read_u8_slice(addr, len));
    // A concurrent first-simulate may have won the race; either trace is
    // equivalent (functional state does not depend on memory timing).
    let _ = prepared.trace.set(Arc::new(Recorded {
        trace,
        check_failures: check_failures.clone(),
    }));
    Ok(RunOutcome {
        config: machine.name.clone(),
        benchmark: prepared.benchmark,
        variant: prepared.variant,
        memory_model: model,
        stats,
        check_failures,
    })
}

/// Retime an already-recorded benchmark against several memory variants in
/// one batched trace walk.  `variants` pairs a machine configuration with a
/// memory model under the same contract as [`simulate`]: every machine must
/// agree with the scheduled configuration in all schedule-relevant
/// parameters.  `outcomes[i]` is bit-identical to
/// `simulate(prepared, variants[i].0, variants[i].1)`.
///
/// Requires a recorded trace (some [`simulate`] call must have run first);
/// errors otherwise.  Any per-variant replay failure (e.g. a cycle limit)
/// fails the whole batch — callers wanting per-variant isolation fall back
/// to serial [`simulate`] calls.
pub fn simulate_batch(
    prepared: &Prepared,
    variants: &[(&MachineConfig, MemoryModel)],
) -> Result<Vec<RunOutcome>, ExperimentError> {
    let recorded = prepared.trace.get().ok_or_else(|| {
        ExperimentError::Simulation(
            "batched replay requires a recorded trace (simulate once first)".into(),
        )
    })?;
    let analysis = vmv_sim::ReplayAnalysis::build(&prepared.lowered);
    let mut states: Vec<vmv_sim::VariantState> = variants
        .iter()
        .map(|&(machine, model)| {
            vmv_sim::VariantState::new(&analysis, machine, model, MAX_RUN_CYCLES)
        })
        .collect();
    let all = vmv_sim::replay_batch(&recorded.trace, &analysis, &mut states)
        .map_err(|e| ExperimentError::Simulation(format!("batched replay: {e}")))?;
    Ok(all
        .into_iter()
        .zip(variants)
        .map(|(stats, &(machine, model))| RunOutcome {
            config: machine.name.clone(),
            benchmark: prepared.benchmark,
            variant: prepared.variant,
            memory_model: model,
            stats,
            check_failures: recorded.check_failures.clone(),
        })
        .collect())
}

/// [`simulate`] with cycle attribution: returns the outcome plus a
/// [`Profile`] explaining every simulated cycle.  `outcome.stats` is
/// bit-identical to the unprofiled [`simulate`] (enforced by
/// `tests/lowered_differential.rs`), and the profile satisfies the
/// sum-exactly contract `profile.check_against(&outcome.stats)`.
pub fn simulate_profiled(
    prepared: &Prepared,
    machine: &MachineConfig,
    model: MemoryModel,
) -> Result<(RunOutcome, Profile), ExperimentError> {
    let statics = prepared.profile_statics(machine);
    if let Some(recorded) = prepared.trace.get() {
        let (stats, profile) = vmv_sim::replay_profiled(
            &prepared.lowered,
            &recorded.trace,
            machine,
            model,
            MAX_RUN_CYCLES,
            &statics,
        )
        .map_err(|e| ExperimentError::Simulation(format!("{}: replay: {e}", machine.name)))?;
        let outcome = RunOutcome {
            config: machine.name.clone(),
            benchmark: prepared.benchmark,
            variant: prepared.variant,
            memory_model: model,
            stats,
            check_failures: recorded.check_failures.clone(),
        };
        return Ok((outcome, profile));
    }
    let mut sim = simulator_for(prepared, machine, model);
    let (stats, trace, profile) = sim
        .run_lowered_recording_profiled(&prepared.lowered, &statics)
        .map_err(|e| ExperimentError::Simulation(format!("{}: {e}", machine.name)))?;
    let check_failures = prepared
        .build
        .failed_checks(|addr, len| sim.mem.read_u8_slice(addr, len));
    let _ = prepared.trace.set(Arc::new(Recorded {
        trace,
        check_failures: check_failures.clone(),
    }));
    let outcome = RunOutcome {
        config: machine.name.clone(),
        benchmark: prepared.benchmark,
        variant: prepared.variant,
        memory_model: model,
        stats,
        check_failures,
    };
    Ok((outcome, profile))
}

/// [`simulate_batch`] with cycle attribution: the fused walk carries one
/// extra profiling pass (not K), and `profiles[i]` is bit-identical to the
/// profile [`simulate_profiled`] would produce for `variants[i]`.
pub fn simulate_batch_profiled(
    prepared: &Prepared,
    variants: &[(&MachineConfig, MemoryModel)],
) -> Result<(Vec<RunOutcome>, Vec<Profile>), ExperimentError> {
    let recorded = prepared.trace.get().ok_or_else(|| {
        ExperimentError::Simulation(
            "batched replay requires a recorded trace (simulate once first)".into(),
        )
    })?;
    let statics = match variants.first() {
        Some(&(machine, _)) => prepared.profile_statics(machine),
        None => return Ok((Vec::new(), Vec::new())),
    };
    let analysis = vmv_sim::ReplayAnalysis::build(&prepared.lowered);
    let mut states: Vec<vmv_sim::VariantState> = variants
        .iter()
        .map(|&(machine, model)| {
            vmv_sim::VariantState::new(&analysis, machine, model, MAX_RUN_CYCLES)
        })
        .collect();
    let (all, profiles) =
        vmv_sim::replay_batch_profiled(&recorded.trace, &analysis, &mut states, &statics)
            .map_err(|e| ExperimentError::Simulation(format!("batched replay: {e}")))?;
    let outcomes = all
        .into_iter()
        .zip(variants)
        .map(|(stats, &(machine, model))| RunOutcome {
            config: machine.name.clone(),
            benchmark: prepared.benchmark,
            variant: prepared.variant,
            memory_model: model,
            stats,
            check_failures: recorded.check_failures.clone(),
        })
        .collect();
    Ok((outcomes, profiles))
}

/// Simulate by full functional execution, never recording or replaying a
/// trace.  Results are identical to [`simulate`]; this entry point exists
/// for callers that specifically measure the execution engine (`bench`).
pub fn simulate_fresh(
    prepared: &Prepared,
    machine: &MachineConfig,
    model: MemoryModel,
) -> Result<RunOutcome, ExperimentError> {
    let mut sim = simulator_for(prepared, machine, model);
    let stats = sim
        .run_lowered(&prepared.lowered)
        .map_err(|e| ExperimentError::Simulation(format!("{}: {e}", machine.name)))?;
    let check_failures = prepared
        .build
        .failed_checks(|addr, len| sim.mem.read_u8_slice(addr, len));
    Ok(RunOutcome {
        config: machine.name.clone(),
        benchmark: prepared.benchmark,
        variant: prepared.variant,
        memory_model: model,
        stats,
        check_failures,
    })
}

/// A simulator with the benchmark's initial memory image written in.
fn simulator_for(prepared: &Prepared, machine: &MachineConfig, model: MemoryModel) -> Simulator {
    let mut sim = Simulator::new(
        machine,
        SimOptions {
            memory_model: model,
            mem_size: prepared.build.mem_size.max(1 << 20),
            max_cycles: MAX_RUN_CYCLES,
        },
    );
    for (addr, bytes) in &prepared.build.init {
        sim.mem.write_bytes(*addr, bytes);
    }
    sim
}

/// Compile and simulate one benchmark on one machine configuration.
pub fn run_one(
    benchmark: Benchmark,
    machine: &MachineConfig,
    model: MemoryModel,
) -> Result<RunOutcome, ExperimentError> {
    let prepared = prepare(benchmark, machine)?;
    simulate(&prepared, machine, model)
}

/// The complete measurement matrix for one memory model: every benchmark on
/// every configuration in `machines`.
#[derive(Debug, Clone)]
pub struct Suite {
    pub model: MemoryModel,
    pub outcomes: Vec<RunOutcome>,
}

impl Suite {
    /// Run all benchmarks on all configurations with an automatically chosen
    /// worker count.
    pub fn run(machines: &[MachineConfig], model: MemoryModel) -> Result<Suite, ExperimentError> {
        Suite::run_with_threads(machines, model, default_workers())
    }

    /// Run all benchmarks on all configurations, distributing the runs over
    /// `workers` threads (the simulator is single-threaded per run).
    ///
    /// The outcome order is deterministic and independent of the worker
    /// count: benchmark-major, then by position in `machines` (i.e. by
    /// Table 2 machine index when called with [`vmv_machine::all_configs`]),
    /// never by configuration-name string.
    pub fn run_with_threads(
        machines: &[MachineConfig],
        model: MemoryModel,
        workers: usize,
    ) -> Result<Suite, ExperimentError> {
        let mut jobs: Vec<(Benchmark, &MachineConfig)> = Vec::new();
        for &bench in &Benchmark::ALL {
            for m in machines {
                jobs.push((bench, m));
            }
        }
        // One pre-assigned slot per job: the collected results are ordered
        // by construction, no post-hoc sort needed.
        let slots: Vec<std::sync::Mutex<Option<Result<RunOutcome, ExperimentError>>>> =
            jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (bench, machine) = jobs[i];
                    *slots[i].lock().unwrap() = Some(run_one(bench, machine, model));
                });
            }
        });
        let mut outcomes = Vec::with_capacity(jobs.len());
        for slot in slots {
            match slot
                .into_inner()
                .unwrap()
                .expect("every job slot is filled")
            {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => return Err(e),
            }
        }
        Ok(Suite { model, outcomes })
    }

    /// Run the full ten-configuration matrix of Table 2.
    pub fn run_all_configs(model: MemoryModel) -> Result<Suite, ExperimentError> {
        Suite::run(&vmv_machine::all_configs(), model)
    }

    /// Look up the outcome for a configuration (by name) and benchmark.
    pub fn get(&self, config: &str, benchmark: Benchmark) -> Option<&RunOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.config == config && o.benchmark == benchmark)
    }

    /// All outcomes with failed correctness checks.
    pub fn failed(&self) -> Vec<&RunOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.check_failures.is_empty())
            .collect()
    }
}

/// Available parallelism clamped to `cap` (fallback 4 when the parallelism
/// cannot be queried).  Shared by every worker pool in the workspace.
pub fn workers_capped(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cap.max(1))
}

/// Worker-thread count used by [`Suite::run`]: the available parallelism,
/// capped at 8 (the matrix has at most 60 jobs; more threads only add
/// contention).
pub fn default_workers() -> usize {
    workers_capped(8)
}
