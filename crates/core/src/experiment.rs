//! The experiment driver: runs every benchmark on every processor
//! configuration of Table 2 and collects per-region statistics, exactly the
//! measurement matrix behind the paper's evaluation (§5).
//!
//! Each configuration executes the benchmark version written for its ISA
//! (§4.1): the plain-VLIW configurations run the scalar code, the
//! µSIMD-VLIW configurations the µSIMD code and the Vector-µSIMD-VLIW
//! configurations the Vector-µSIMD code.  Every run is checked against the
//! golden reference outputs, so a timing result is only reported for a
//! functionally correct execution.

use vmv_kernels::{Benchmark, IsaVariant};
use vmv_machine::{IsaSupport, MachineConfig};
use vmv_mem::MemoryModel;
use vmv_sim::{RunStats, SimOptions, Simulator};

/// Result of one (benchmark, configuration) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Configuration name (e.g. "4w +Vector2").
    pub config: String,
    pub benchmark: Benchmark,
    pub variant: IsaVariant,
    pub memory_model: MemoryModel,
    pub stats: RunStats,
    /// Names of output checks that failed (empty = bit-exact).
    pub check_failures: Vec<String>,
}

/// Errors from the experiment driver.
#[derive(Debug)]
pub enum ExperimentError {
    Compile(String),
    Simulation(String),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "compile error: {e}"),
            ExperimentError::Simulation(e) => write!(f, "simulation error: {e}"),
        }
    }
}
impl std::error::Error for ExperimentError {}

/// ISA variant a machine configuration executes (paper §4.1).
pub fn variant_for(machine: &MachineConfig) -> IsaVariant {
    match machine.isa {
        IsaSupport::Vliw => IsaVariant::Scalar,
        IsaSupport::Usimd => IsaVariant::Usimd,
        IsaSupport::Vector => IsaVariant::Vector,
    }
}

/// Compile and simulate one benchmark on one machine configuration.
pub fn run_one(
    benchmark: Benchmark,
    machine: &MachineConfig,
    model: MemoryModel,
) -> Result<RunOutcome, ExperimentError> {
    let variant = variant_for(machine);
    let build = benchmark.build(variant);
    let compiled = vmv_sched::compile(&build.program, machine)
        .map_err(|e| ExperimentError::Compile(format!("{}: {e}", machine.name)))?;
    let mut sim = Simulator::new(
        machine,
        SimOptions {
            memory_model: model,
            mem_size: build.mem_size.max(1 << 20),
            max_cycles: 2_000_000_000,
        },
    );
    for (addr, bytes) in &build.init {
        sim.mem.write_bytes(*addr, bytes);
    }
    let stats = sim
        .run(&compiled.program)
        .map_err(|e| ExperimentError::Simulation(format!("{}: {e}", machine.name)))?;
    let check_failures = build.failed_checks(|addr, len| sim.mem.read_u8_slice(addr, len));
    Ok(RunOutcome {
        config: machine.name.clone(),
        benchmark,
        variant,
        memory_model: model,
        stats,
        check_failures,
    })
}

/// The complete measurement matrix for one memory model: every benchmark on
/// every configuration in `machines`.
#[derive(Debug, Clone)]
pub struct Suite {
    pub model: MemoryModel,
    pub outcomes: Vec<RunOutcome>,
}

impl Suite {
    /// Run all benchmarks on all configurations.  Benchmarks are distributed
    /// across worker threads (the simulator is single-threaded per run).
    pub fn run(machines: &[MachineConfig], model: MemoryModel) -> Result<Suite, ExperimentError> {
        let mut jobs: Vec<(Benchmark, MachineConfig)> = Vec::new();
        for &bench in &Benchmark::ALL {
            for m in machines {
                jobs.push((bench, m.clone()));
            }
        }
        let results: std::sync::Mutex<Vec<RunOutcome>> = std::sync::Mutex::new(Vec::new());
        let errors: std::sync::Mutex<Vec<ExperimentError>> = std::sync::Mutex::new(Vec::new());
        let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (bench, machine) = &jobs[i];
                    match run_one(*bench, machine, model) {
                        Ok(outcome) => results.lock().unwrap().push(outcome),
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                });
            }
        })
        .expect("worker thread panicked");
        let errors = errors.into_inner().unwrap();
        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        let mut outcomes = results.into_inner().unwrap();
        outcomes.sort_by(|a, b| (a.benchmark, a.config.clone()).cmp(&(b.benchmark, b.config.clone())));
        Ok(Suite { model, outcomes })
    }

    /// Run the full ten-configuration matrix of Table 2.
    pub fn run_all_configs(model: MemoryModel) -> Result<Suite, ExperimentError> {
        Suite::run(&vmv_machine::all_configs(), model)
    }

    /// Look up the outcome for a configuration (by name) and benchmark.
    pub fn get(&self, config: &str, benchmark: Benchmark) -> Option<&RunOutcome> {
        self.outcomes.iter().find(|o| o.config == config && o.benchmark == benchmark)
    }

    /// All outcomes with failed correctness checks.
    pub fn failed(&self) -> Vec<&RunOutcome> {
        self.outcomes.iter().filter(|o| !o.check_failures.is_empty()).collect()
    }
}
