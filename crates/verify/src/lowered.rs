//! Lowered-program soundness: slot layout, packed per-op metadata and
//! control flow.
//!
//! The lowered form is what the hot engines actually execute, so every
//! pre-resolved field is re-derived here from the operation's semantics
//! and the machine tables and compared: a stale `flow` latency or a
//! mis-pointed branch target would silently corrupt timing (or walk off
//! the program) at run time.

use vmv_isa::NO_SLOT;
use vmv_machine::MachineConfig;
use vmv_sched::{LoweredOp, LoweredProgram};

use crate::diag::{Check, Diagnostic};

/// Verify the structural and metadata invariants of a lowered program.
pub fn verify_lowered(program: &LoweredProgram, machine: &MachineConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    verify_structure(program, &mut diags);
    for (bid, block) in program.blocks.iter().enumerate() {
        let end = block.first_bundle + block.bundle_count;
        if end as usize >= program.bundle_bounds.len() {
            continue; // already reported by verify_structure
        }
        for b in block.first_bundle..end {
            for op in program.bundle_ops(b) {
                verify_op(
                    op,
                    program,
                    machine,
                    bid,
                    b - block.first_bundle,
                    &mut diags,
                );
            }
        }
    }
    verify_control_flow(program, &mut diags);
    diags
}

fn loc(bid: usize, bundle: u32) -> String {
    format!("block {bid}, bundle {bundle}")
}

fn verify_structure(program: &LoweredProgram, diags: &mut Vec<Diagnostic>) {
    let bounds = &program.bundle_bounds;
    let mut broken = bounds.is_empty()
        || bounds[0] != 0
        || bounds.windows(2).any(|w| w[0] > w[1])
        || *bounds.last().unwrap_or(&0) as usize != program.ops.len();
    if broken {
        diags.push(Diagnostic::error(
            Check::Layout,
            "program",
            format!(
                "bundle bounds are inconsistent: {} bounds over {} operations",
                bounds.len(),
                program.ops.len()
            ),
        ));
    }
    let total_bundles = bounds.len().saturating_sub(1) as u32;
    let mut next = 0u32;
    for (bid, block) in program.blocks.iter().enumerate() {
        if block.first_bundle != next || block.first_bundle + block.bundle_count > total_bundles {
            diags.push(Diagnostic::error(
                Check::Layout,
                format!("block {bid}"),
                format!(
                    "bundle range {}..{} does not tile the program's {} bundles",
                    block.first_bundle,
                    block.first_bundle + block.bundle_count,
                    total_bundles
                ),
            ));
            broken = true;
        }
        next = block.first_bundle + block.bundle_count;
    }
    if !broken && next != total_bundles {
        diags.push(Diagnostic::error(
            Check::Layout,
            "program",
            format!(
                "{} trailing bundles belong to no block",
                total_bundles - next
            ),
        ));
    }
}

fn verify_op(
    op: &LoweredOp,
    program: &LoweredProgram,
    machine: &MachineConfig,
    bid: usize,
    bundle: u32,
    diags: &mut Vec<Diagnostic>,
) {
    let layout = &program.layout;
    let total = program.total_slots() as u16;
    let mn = op.opcode.mnemonic();
    let at = || loc(bid, bundle);

    // Destination slot: NO_SLOT exactly when the operation writes nothing,
    // otherwise the layout's slot for the destination register.
    match (op.dst, op.dst_slot) {
        (None, slot) if slot != NO_SLOT => diags.push(Diagnostic::error(
            Check::Layout,
            at(),
            format!("'{mn}' writes no register but has destination slot {slot}"),
        )),
        (Some(dst), slot) => match layout.slot_of(dst) {
            Some(expect) if expect == slot => {}
            Some(expect) => diags.push(Diagnostic::error(
                Check::Layout,
                at(),
                format!("'{mn}' destination slot {slot} does not match {dst} (slot {expect})"),
            )),
            None => diags.push(Diagnostic::error(
                Check::Layout,
                at(),
                format!("'{mn}' destination {dst} has no slot in the layout"),
            )),
        },
        (None, _) => {}
    }

    // Read slots: sources in order, then the implicit VL/VS reads.
    let mut expect: Vec<u16> = Vec::with_capacity(op.read_slots().len());
    let mut sources_ok = true;
    for &src in op.srcs() {
        match layout.slot_of(src) {
            Some(s) => expect.push(s),
            None => {
                sources_ok = false;
                diags.push(Diagnostic::error(
                    Check::Layout,
                    at(),
                    format!("'{mn}' source {src} has no slot in the layout"),
                ));
            }
        }
    }
    if op.opcode.reads_vl() {
        expect.push(layout.vl_slot());
    }
    if op.opcode.reads_vs() {
        expect.push(layout.vs_slot());
    }
    if sources_ok && op.read_slots() != expect.as_slice() {
        diags.push(Diagnostic::error(
            Check::Layout,
            at(),
            format!(
                "'{mn}' read slots {:?} do not match the re-derived {:?} \
                 (sources plus implicit VL/VS reads)",
                op.read_slots(),
                expect
            ),
        ));
    }
    for &s in op.read_slots() {
        if s >= total {
            diags.push(Diagnostic::error(
                Check::Layout,
                at(),
                format!("'{mn}' read slot {s} is out of range ({total} slots)"),
            ));
        }
    }
    if op.dst_slot != NO_SLOT && op.dst_slot >= total {
        diags.push(Diagnostic::error(
            Check::Layout,
            at(),
            format!(
                "'{mn}' destination slot {} is out of range ({total} slots)",
                op.dst_slot
            ),
        ));
    }

    // Packed metadata must match the machine tables the engines charge.
    let flow = machine.latencies.flow_latency(op.opcode.lat_class()) as u16;
    if op.flow != flow {
        diags.push(Diagnostic::error(
            Check::Latency,
            at(),
            format!(
                "'{mn}' carries flow latency {} but the machine's latency table says {flow}",
                op.flow
            ),
        ));
    }
    let lanes = machine.effective_lanes(op.opcode) as u8;
    if op.lanes != lanes {
        diags.push(Diagnostic::error(
            Check::Layout,
            at(),
            format!(
                "'{mn}' carries lane count {} but the machine says {lanes}",
                op.lanes
            ),
        ));
    }
    if op.reads_vl != op.opcode.reads_vl() {
        diags.push(Diagnostic::error(
            Check::Layout,
            at(),
            format!(
                "'{mn}' reads_vl flag {} contradicts the opcode",
                op.reads_vl
            ),
        ));
    }
    if op.is_vector_memory != op.opcode.is_vector_memory() {
        diags.push(Diagnostic::error(
            Check::Layout,
            at(),
            format!(
                "'{mn}' is_vector_memory flag {} contradicts the opcode",
                op.is_vector_memory
            ),
        ));
    }
    if op.micro_ops_unit != op.opcode.micro_ops(1) as u16 {
        diags.push(Diagnostic::error(
            Check::Layout,
            at(),
            format!(
                "'{mn}' carries {} micro-ops per VL unit but the opcode says {}",
                op.micro_ops_unit,
                op.opcode.micro_ops(1)
            ),
        ));
    }

    if op.opcode.is_branch() && op.target as usize >= program.blocks.len() {
        diags.push(Diagnostic::error(
            Check::Label,
            at(),
            format!(
                "'{mn}' branch target {} is out of range (program has {} blocks)",
                op.target,
                program.blocks.len()
            ),
        ));
    }
}

/// Control-flow obligations: no block may fall through past the end of
/// the program (every branch is conditional, so a block without a `halt`
/// always has its fall-through successor), and a `halt` must be reachable
/// from the entry block — otherwise the engines run forever or walk off
/// the block list.
fn verify_control_flow(program: &LoweredProgram, diags: &mut Vec<Diagnostic>) {
    let n = program.blocks.len();
    if n == 0 {
        return;
    }
    let bounds_ok = !program.bundle_bounds.is_empty()
        && *program.bundle_bounds.last().unwrap() as usize == program.ops.len();
    if !bounds_ok {
        return; // structure errors already reported; ops can't be walked
    }
    let mut has_halt = vec![false; n];
    let mut targets: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (bid, block) in program.blocks.iter().enumerate() {
        let end = block.first_bundle + block.bundle_count;
        if end as usize >= program.bundle_bounds.len() {
            return;
        }
        for b in block.first_bundle..end {
            for op in program.bundle_ops(b) {
                if op.opcode == vmv_isa::Opcode::Halt {
                    has_halt[bid] = true;
                }
                if op.opcode.is_branch() && (op.target as usize) < n {
                    targets[bid].push(op.target as usize);
                }
            }
        }
    }

    let mut reached = vec![false; n];
    let mut stack = vec![0usize];
    let mut halt_reachable = false;
    while let Some(bid) = stack.pop() {
        if reached[bid] {
            continue;
        }
        reached[bid] = true;
        if has_halt[bid] {
            halt_reachable = true;
            continue; // halt takes effect at block end; the block is terminal
        }
        if bid + 1 < n {
            stack.push(bid + 1);
        } else {
            diags.push(Diagnostic::error(
                Check::Label,
                format!("block {bid}"),
                "the last reachable block has no halt: execution falls off the end of the program"
                    .to_string(),
            ));
        }
        stack.extend(targets[bid].iter().copied());
    }
    if !halt_reachable {
        diags.push(Diagnostic::error(
            Check::Label,
            "program",
            "no halt is reachable from the entry block".to_string(),
        ));
    }
}
