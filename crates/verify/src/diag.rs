//! Verifier diagnostics: one flat, displayable record per finding, with a
//! severity, a check class (the fault taxonomy of the mutation harness)
//! and a pinpointed location — the same shape as the spec-file parse
//! errors, so CI logs read uniformly.

use std::fmt;

/// How bad a finding is.  Errors fail verification (and the CI gates);
/// warnings are reported but do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The check class a diagnostic belongs to.  These are the fault classes
/// the seeded mutation harness must show 100% rejection across.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Ordering violated: an operation observes a value the program order
    /// forbids (in-bundle write→read, reordered memory ops, operations
    /// placed after the block terminator).
    Hazard,
    /// Placement distance below the dependence's minimum issue distance.
    Latency,
    /// Issue width, functional-unit or memory-port oversubscription, or an
    /// operation the machine cannot execute.
    Resource,
    /// Labels, branch targets and control-flow reachability.
    Label,
    /// Two same-cycle writes to one register.
    DuplicateWrite,
    /// Slot-layout or lowered-metadata inconsistency.
    Layout,
    /// The replay slot analysis drops a slot that must stay tracked.
    Replay,
    /// Spec-file lint findings.
    Spec,
}

impl Check {
    /// Stable kebab-case class name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Check::Hazard => "hazard",
            Check::Latency => "latency",
            Check::Resource => "resource",
            Check::Label => "label",
            Check::DuplicateWrite => "duplicate-write",
            Check::Layout => "layout",
            Check::Replay => "replay",
            Check::Spec => "spec",
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub check: Check,
    /// Where the finding points, e.g. `block 'entry', bundle 3` or
    /// `axes[2]`.
    pub location: String,
    pub message: String,
}

impl Diagnostic {
    pub fn error(check: Check, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            check,
            location: location.into(),
            message: message.into(),
        }
    }

    pub fn warning(check: Check, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            check,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.check.name(),
            self.location,
            self.message
        )
    }
}

/// Whether any diagnostic is an error (verification failed).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_pinned() {
        let d = Diagnostic::error(Check::Hazard, "block 'b', bundle 2", "bad");
        assert_eq!(d.to_string(), "error[hazard] block 'b', bundle 2: bad");
        let w = Diagnostic::warning(Check::Spec, "axes[1]", "dead value");
        assert_eq!(w.to_string(), "warning[spec] axes[1]: dead value");
    }

    #[test]
    fn error_detection() {
        assert!(!has_errors(&[]));
        assert!(!has_errors(&[Diagnostic::warning(Check::Spec, "x", "y")]));
        assert!(has_errors(&[
            Diagnostic::warning(Check::Spec, "x", "y"),
            Diagnostic::error(Check::Latency, "x", "y"),
        ]));
    }
}
