//! Schedule-level proofs: dependences, latencies, terminator placement
//! and resource legality, re-derived independently of the scheduler.
//!
//! The checker walks each block in *traversal order* — bundle-major, in
//! the bundles' operation order, exactly the order the engines execute —
//! and rebuilds the dependence bookkeeping of `vmv_sched::ddg` from
//! operation semantics alone (`Op::reads()` includes the implicit
//! `VL`/`VS` reads).  Every derived edge must span at least its minimum
//! issue distance in bundles; every bundle must fit the machine's issue
//! width and functional-unit/port capacities over the operations'
//! occupancy windows.

use std::collections::HashMap;

use vmv_isa::{FuClass, Op, Opcode, Reg, RegClass};
use vmv_machine::MachineConfig;
use vmv_sched::{ScheduledBlock, ScheduledProgram};

use crate::diag::{Check, Diagnostic};

/// Verify one scheduled (register-allocated) program against a machine.
pub fn verify_schedule(program: &ScheduledProgram, machine: &MachineConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let labels = program.label_map();
    for block in &program.blocks {
        verify_block(block, machine, &labels, &mut diags);
    }
    diags
}

fn loc(label: &str, bundle: usize) -> String {
    format!("block '{label}', bundle {bundle}")
}

/// Minimum issue distance of a RAW dependence, re-derived from the HPL-PD
/// latency descriptor and the §3.3 chaining rule (the same obligations
/// `vmv_sched::ddg::raw_latency` encodes — recomputed here so the checker
/// does not trust the scheduler's own edge set).
fn raw_latency(producer: &Op, consumer: &Op, reg: Reg, machine: &MachineConfig) -> u32 {
    let desc = machine.latency_descriptor(producer);
    let vector_chain = machine.chaining
        && reg.class == RegClass::Vec
        && producer.opcode.is_vector_op()
        && consumer.opcode.is_vector_op();
    if vector_chain {
        desc.chained_latency().max(1)
    } else {
        desc.result_latency().max(1)
    }
}

fn verify_block(
    block: &ScheduledBlock,
    machine: &MachineConfig,
    labels: &HashMap<&str, usize>,
    diags: &mut Vec<Diagnostic>,
) {
    // Flatten to traversal order, remembering each operation's bundle.
    let flat: Vec<(usize, &Op)> = block
        .bundles
        .iter()
        .enumerate()
        .flat_map(|(c, bundle)| bundle.iter().map(move |op| (c, op)))
        .collect();
    let label = block.label.as_str();

    // Terminator discipline: the engines apply branches and `halt` at
    // block end, and a legally scheduled block keeps its terminator
    // strictly last — an operation placed after it could never arise
    // from a dependence-respecting schedule of a verified program.
    if let Some(t) = flat
        .iter()
        .position(|(_, op)| op.opcode.is_branch() || op.opcode == Opcode::Halt)
    {
        let (term_bundle, term_op) = flat[t];
        for &(c, op) in &flat[t + 1..] {
            diags.push(Diagnostic::error(
                Check::Hazard,
                loc(label, c),
                format!("'{op}' is placed after the block terminator '{term_op}' (bundle {term_bundle})"),
            ));
        }
    }

    // Dependence re-derivation over the traversal order.
    let mut last_writer: HashMap<Reg, usize> = HashMap::new();
    let mut last_store: Option<usize> = None;
    for (i, &(c_i, op)) in flat.iter().enumerate() {
        for r in &op.reads() {
            if let Some(&w) = last_writer.get(r) {
                let (c_w, producer) = flat[w];
                let need = raw_latency(producer, op, *r, machine);
                let dist = (c_i - c_w) as u32;
                if dist == 0 {
                    diags.push(Diagnostic::error(
                        Check::Hazard,
                        loc(label, c_i),
                        format!("'{op}' reads {r} in the same bundle its producer '{producer}' issues in"),
                    ));
                } else if dist < need {
                    diags.push(Diagnostic::error(
                        Check::Latency,
                        loc(label, c_i),
                        format!(
                            "'{op}' issues {dist} cycle(s) after its producer '{producer}' \
                             (bundle {c_w}); the raw dependence on {r} requires {need}"
                        ),
                    ));
                }
            }
        }
        if let Some(dst) = op.writes() {
            // WAW needs one cycle; two same-bundle writes are the
            // duplicate-write fault class.  (WAR needs zero cycles and the
            // traversal order already witnesses the read first, so it can
            // never be violated here.)
            if let Some(&w) = last_writer.get(&dst) {
                let (c_w, prev) = flat[w];
                if c_i == c_w {
                    diags.push(Diagnostic::error(
                        Check::DuplicateWrite,
                        loc(label, c_i),
                        format!("duplicate write to {dst}: '{prev}' and '{op}' share the bundle"),
                    ));
                }
            }
        }
        // Conservative memory ordering: a store must issue at least one
        // cycle after any earlier store or load (store↔store and
        // store→load edges carry latency 1; load→store carries 0 and is
        // witnessed in order by construction).
        if op.opcode.is_store() {
            if let Some(s) = last_store {
                let (c_s, prev) = flat[s];
                if c_i == c_s {
                    diags.push(Diagnostic::error(
                        Check::Hazard,
                        loc(label, c_i),
                        format!("store '{op}' shares a bundle with the earlier store '{prev}'"),
                    ));
                }
            }
            last_store = Some(i);
        } else if op.opcode.is_load() {
            if let Some(s) = last_store {
                let (c_s, prev) = flat[s];
                if c_i == c_s {
                    diags.push(Diagnostic::error(
                        Check::Hazard,
                        loc(label, c_i),
                        format!("load '{op}' shares a bundle with the earlier store '{prev}'"),
                    ));
                }
            }
        }
        if op.opcode.is_branch() {
            match op.target.as_deref() {
                None => diags.push(Diagnostic::error(
                    Check::Label,
                    loc(label, c_i),
                    format!("branch '{op}' has no target label"),
                )),
                Some(t) if !labels.contains_key(t) => diags.push(Diagnostic::error(
                    Check::Label,
                    loc(label, c_i),
                    format!("branch '{op}' targets unknown label '{t}'"),
                )),
                Some(_) => {}
            }
        }
        if let Some(dst) = op.writes() {
            last_writer.insert(dst, i);
        }
    }

    verify_resources(block, machine, diags);
}

/// Unit-pool identity mirrors the reservation table: µSIMD operations
/// execute on (and compete for) the vector units on machines without
/// dedicated µSIMD units.
fn pool_of(class: FuClass, machine: &MachineConfig) -> usize {
    match class {
        FuClass::Int => 0,
        FuClass::Simd => {
            if machine.simd_units > 0 {
                1
            } else {
                2
            }
        }
        FuClass::Vector => 2,
        FuClass::MemL1 => 3,
        FuClass::MemL2 => 4,
    }
}

const POOL_NAMES: [&str; 5] = [
    "integer unit",
    "uSIMD unit",
    "vector unit",
    "L1 cache port",
    "L2 vector-cache port",
];

fn verify_resources(block: &ScheduledBlock, machine: &MachineConfig, diags: &mut Vec<Diagnostic>) {
    let label = block.label.as_str();
    let caps = [
        machine.int_units,
        machine.simd_units,
        machine.vector_units,
        machine.l1_ports,
        machine.l2_ports,
    ];
    // Occupancy windows can extend past the last bundle; size accordingly.
    let mut horizon = block.bundles.len();
    for (c, bundle) in block.bundles.iter().enumerate() {
        for op in bundle {
            horizon = horizon.max(c + machine.latency_descriptor(op).occupancy() as usize);
        }
    }
    let mut usage = vec![[0usize; 5]; horizon];

    for (c, bundle) in block.bundles.iter().enumerate() {
        if bundle.len() > machine.issue_width {
            diags.push(Diagnostic::error(
                Check::Resource,
                loc(label, c),
                format!(
                    "issue width exceeded: {} operations in one bundle, width is {}",
                    bundle.len(),
                    machine.issue_width
                ),
            ));
        }
        for op in bundle {
            if !machine.supports_op(op.opcode) {
                diags.push(Diagnostic::error(
                    Check::Resource,
                    loc(label, c),
                    format!("'{op}' is not executable on machine '{}'", machine.name),
                ));
                continue;
            }
            let pool = pool_of(op.opcode.fu_class(), machine);
            if caps[pool] == 0 {
                diags.push(Diagnostic::error(
                    Check::Resource,
                    loc(label, c),
                    format!(
                        "'{op}' needs a {} but the machine has none",
                        POOL_NAMES[pool]
                    ),
                ));
                continue;
            }
            let occupancy = machine.latency_descriptor(op).occupancy() as usize;
            for slot in &mut usage[c..c + occupancy.max(1)] {
                slot[pool] += 1;
            }
        }
    }

    for (t, slot) in usage.iter().enumerate() {
        for (pool, &used) in slot.iter().enumerate() {
            if used > caps[pool] {
                diags.push(Diagnostic::error(
                    Check::Resource,
                    format!("block '{label}', cycle {t}"),
                    format!(
                        "{}s oversubscribed: {used} in use, capacity {}",
                        POOL_NAMES[pool], caps[pool]
                    ),
                ));
            }
        }
    }
}
