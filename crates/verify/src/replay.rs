//! Replay slot-analysis subset proof.
//!
//! `vmv_sim::replay` collapses provably stall-free register slots off its
//! scoreboard.  Its classification is derived inside the engine from the
//! same lowered program it then retimes — so a bug there would make the
//! replay engines silently fast, not visibly wrong.  This module
//! re-derives, from first principles, the set of slots that *must* stay
//! tracked, and proves it is a subset of what the engine actually keeps.
//!
//! A written slot must stay on the scoreboard when some operation reads it
//! somewhere in the program **and** the write's completion time is not
//! statically discharged by block shape alone:
//!
//! - the write's latency is dynamic at analysis time — memory operations
//!   (hierarchy-dependent) and `reads_vl` operations (VL-dependent) — or
//! - the write is fixed-latency but *escapes its block*: its flow latency
//!   exceeds the distance (in bundles) to the block's end, so a reader in
//!   a successor block could observe it in flight.  Every bundle takes at
//!   least one cycle, so a shorter write is always complete before any
//!   other block issues — and within the block the scheduler's latency
//!   proof ([`crate::verify_schedule`]) already guarantees readers issue
//!   after completion.
//!
//! The engine's own rule is strictly coarser (it additionally keeps
//! `setvl`/`halt` writes and every write of a demoted duplicate-write
//! bundle), so on a correct build the subset inclusion holds with slack;
//! any analysis regression that drops a must-track slot is a [`Check::Replay`]
//! error naming the architectural register behind the slot.

use vmv_isa::{Reg, RegClass, SlotLayout, NO_SLOT};
use vmv_sched::LoweredProgram;

use crate::diag::{Check, Diagnostic};

/// Re-derive the slots the replay scoreboard must track (see module docs).
pub fn must_track(program: &LoweredProgram) -> Vec<bool> {
    let total = program.total_slots();
    let mut read_exists = vec![false; total];
    for op in &program.ops {
        for &s in op.read_slots() {
            if (s as usize) < total {
                read_exists[s as usize] = true;
            }
        }
    }
    let mut must = vec![false; total];
    for block in &program.blocks {
        let n = block.bundle_count;
        for (i, b) in (block.first_bundle..block.first_bundle + n).enumerate() {
            for op in program.bundle_ops(b) {
                if op.dst_slot == NO_SLOT || (op.dst_slot as usize) >= total {
                    continue;
                }
                if !read_exists[op.dst_slot as usize] {
                    continue;
                }
                let dynamic_latency = op.opcode.is_memory() || op.reads_vl;
                if dynamic_latency || op.flow as u32 > n - i as u32 {
                    must[op.dst_slot as usize] = true;
                }
            }
        }
    }
    must
}

/// Name the architectural register a slot belongs to, for diagnostics.
fn reg_of_slot(layout: &SlotLayout, slot: u16) -> Option<Reg> {
    for &class in RegClass::ALL.iter() {
        let mut index = 0u32;
        while let Some(s) = layout.slot_of(Reg::new(class, index)) {
            if s == slot {
                return Some(Reg::new(class, index));
            }
            index += 1;
        }
    }
    None
}

/// Prove the engine's tracked set covers every must-track slot.
pub fn verify_replay_subset(program: &LoweredProgram, tracked: &[bool]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let must = must_track(program);
    if tracked.len() != must.len() {
        diags.push(Diagnostic::error(
            Check::Replay,
            "program",
            format!(
                "replay analysis covers {} slots but the program has {}",
                tracked.len(),
                must.len()
            ),
        ));
        return diags;
    }
    for (slot, (&need, &kept)) in must.iter().zip(tracked.iter()).enumerate() {
        if need && !kept {
            let who = reg_of_slot(&program.layout, slot as u16)
                .map(|r| format!("{r}"))
                .unwrap_or_else(|| "an unnamed register".to_string());
            diags.push(Diagnostic::error(
                Check::Replay,
                format!("slot {slot}"),
                format!(
                    "the replay analysis drops {who} from the scoreboard, \
                     but an in-flight write to it can be observed by a reader"
                ),
            ));
        }
    }
    diags
}
