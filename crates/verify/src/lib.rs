//! Static verification of compiled programs: an independent checker that
//! *proves*, per schedule, the invariants the simulators merely assume.
//!
//! The four timing engines (reference, lowered, serial replay, batched
//! replay) all lean on guarantees established at compile time: the list
//! scheduler placed every consumer at least its producer's `raw_latency`
//! away, never oversubscribed a functional unit, and kept the block
//! terminator last; the lowering pass resolved every register to an
//! in-range scoreboard slot and every label to a real block; and the
//! replay slot analysis (`vmv_sim::replay`) drops from the scoreboard
//! exactly the slots those guarantees make provably stall-free.  The
//! differential suite samples 120 dynamic cases of this contract — this
//! crate discharges it *statically*, for every bundle of every block:
//!
//! - [`verify_schedule`] re-derives the RAW/WAW/WAR/memory dependence
//!   edges (implicit `VL`/`VS` reads included) and the `raw_latency` /
//!   chaining bounds directly from operation semantics, in the schedule's
//!   own traversal order, and proves every bundle placement respects
//!   them; it also re-runs the resource accounting (issue width, unit
//!   pools over occupancy windows, L1/L2 ports) against the machine.
//! - [`verify_lowered`] checks slot-layout soundness (indices in range,
//!   `NO_SLOT` only where legal, per-op metadata matching the machine's
//!   latency/lane tables, branch targets in range) and the control-flow
//!   obligations the engines rely on (no fall-through off the end, a
//!   reachable `halt`).
//! - [`verify_replay_subset`] re-derives the set of slots that *must*
//!   stay on the replay scoreboard from first principles and proves it is
//!   a subset of what [`vmv_sim::ReplayAnalysis`] tracks — turning the
//!   replay engine's trust-the-scheduler shortcut into a checked theorem.
//!
//! Soundness note: the schedule checker derives dependences from the
//! flattened bundle-major traversal order — the order the engines
//! actually execute operations in — rather than from the source program.
//! For any schedule the in-tree list scheduler can produce the two orders
//! agree on every dependence-connected pair (a dependent operation is
//! only released once its predecessor is placed, and lands no earlier
//! than the next cycle), so a legal schedule never false-positives, while
//! any reordering that changes observable dataflow shows up as a hazard,
//! latency, or duplicate-write diagnostic.
//!
//! Everything funnels through [`verify_compiled`], which the compile
//! cache calls under `debug_assertions` (or `--verify`) so every cached
//! schedule is certified exactly once, and which `verify --all` sweeps
//! across the full preset × kernel matrix in CI.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lowered;
pub mod replay;
pub mod schedule;

pub use diag::{has_errors, Check, Diagnostic, Severity};
pub use lowered::verify_lowered;
pub use replay::{must_track, verify_replay_subset};
pub use schedule::verify_schedule;

use vmv_machine::MachineConfig;
use vmv_sched::{LoweredProgram, ScheduledProgram};

/// Run every static check over one compiled program: the schedule-level
/// hazard/latency/resource proofs, the lowered-level layout/metadata/CFG
/// checks, and the replay slot-analysis subset proof.  Returns every
/// diagnostic found (empty means the program is certified).
pub fn verify_compiled(
    schedule: &ScheduledProgram,
    lowered: &LoweredProgram,
    machine: &MachineConfig,
) -> Vec<Diagnostic> {
    let mut diags = verify_schedule(schedule, machine);
    diags.extend(verify_lowered(lowered, machine));
    let analysis = vmv_sim::ReplayAnalysis::build(lowered);
    diags.extend(verify_replay_subset(lowered, analysis.tracked_slots()));
    vmv_obs::incr(vmv_obs::Counter::VerifyChecks);
    diags
}
