//! Baseline-vs-variant comparison: join two stores by content-derived run
//! key and report per-run speedups — the Table-2-style view the paper uses
//! to argue one machine against another, plus a CI regression gate.
//!
//! The join needs no spec header: run keys are content-derived, so any two
//! stores that measured the same `(benchmark, variant, machine, model)`
//! runs — different sessions, different hosts, different store formats —
//! compare exactly.

use std::collections::HashMap;

use vmv_sweep::store::RunRecord;

/// One run measured in both stores.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    pub key: String,
    pub config: String,
    pub benchmark: String,
    pub variant: String,
    pub model: String,
    pub baseline_cycles: u64,
    pub cycles: u64,
    /// `baseline_cycles / cycles`: above 1 the store under report is
    /// faster than the baseline, below 1 it regressed.
    pub speedup: f64,
}

impl CompareRow {
    /// The row's value on a record pseudo-axis (`None` for spec axes,
    /// which need the resolved store to decode).
    pub fn field(&self, axis: &str) -> Option<&str> {
        match axis {
            "benchmark" => Some(&self.benchmark),
            "variant" => Some(&self.variant),
            "model" => Some(&self.model),
            "config" => Some(&self.config),
            _ => None,
        }
    }
}

/// Outcome of joining a store against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Matched runs, worst speedup first (ties broken by config, then
    /// benchmark, then key — fully deterministic).
    pub rows: Vec<CompareRow>,
    /// Runs only the baseline has.
    pub only_in_baseline: usize,
    /// Runs only the store under report has.
    pub only_in_store: usize,
    /// Matched runs skipped because a side failed its output checks.
    pub failed_checks: usize,
    /// Geometric mean of the matched speedups (1.0 when nothing matched).
    pub geomean_speedup: f64,
    /// Matched runs with `speedup < 1`.
    pub regressions: usize,
}

impl CompareReport {
    /// The worst regression as a percentage (0.0 when nothing regressed):
    /// a run 5% slower than baseline reports 5.0.
    pub fn worst_regression_pct(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (1.0 - r.speedup) * 100.0)
            .fold(0.0, f64::max)
    }
}

/// Geometric mean of the rows' speedups — the one speedup aggregation used
/// everywhere (report summary, per-group tables).  1.0 when empty.
pub fn geomean(rows: &[CompareRow]) -> f64 {
    if rows.is_empty() {
        1.0
    } else {
        (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp()
    }
}

/// Join `records` (the store under report) against `baseline` by run key.
/// Duplicate keys on either side count once (first occurrence wins, the
/// store-wide policy); runs failing their output checks on either side are
/// excluded from the speedup rows but counted.
pub fn compare(records: &[RunRecord], baseline: &[RunRecord]) -> CompareReport {
    let mut base: HashMap<&str, &RunRecord> = HashMap::new();
    for r in baseline {
        base.entry(r.key.as_str()).or_insert(r);
    }
    let mut seen: std::collections::HashSet<&str> = Default::default();
    let mut rows = Vec::new();
    let mut only_in_store = 0usize;
    let mut failed_checks = 0usize;
    let mut matched_keys = 0usize;
    for r in records {
        if !seen.insert(r.key.as_str()) {
            continue;
        }
        match base.get(r.key.as_str()) {
            None => only_in_store += 1,
            Some(b) => {
                matched_keys += 1;
                // Zero cycles on either side is as unusable as a failed
                // check: a 0-cycle baseline would otherwise yield a 0.0
                // speedup that collapses the geomean and trips any gate.
                if !r.check_ok || !b.check_ok || r.cycles == 0 || b.cycles == 0 {
                    failed_checks += 1;
                    continue;
                }
                rows.push(CompareRow {
                    key: r.key.clone(),
                    config: r.config.clone(),
                    benchmark: r.benchmark.clone(),
                    variant: r.variant.clone(),
                    model: r.model.clone(),
                    baseline_cycles: b.cycles,
                    cycles: r.cycles,
                    speedup: b.cycles as f64 / r.cycles as f64,
                });
            }
        }
    }
    let only_in_baseline = base.len() - matched_keys;
    rows.sort_by(|a, b| {
        a.speedup
            .partial_cmp(&b.speedup)
            .unwrap()
            .then_with(|| a.config.cmp(&b.config))
            .then_with(|| a.benchmark.cmp(&b.benchmark))
            .then_with(|| a.key.cmp(&b.key))
    });
    let geomean_speedup = geomean(&rows);
    let regressions = rows.iter().filter(|r| r.speedup < 1.0).count();
    CompareReport {
        rows,
        only_in_baseline,
        only_in_store,
        failed_checks,
        geomean_speedup,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str, benchmark: &str, cycles: u64, check_ok: bool) -> RunRecord {
        RunRecord {
            key: key.to_string(),
            config: format!("cfg-{}", &key[..4]),
            benchmark: benchmark.to_string(),
            variant: "vector".to_string(),
            model: "Realistic".to_string(),
            cycles,
            stall_cycles: 0,
            operations: 1,
            micro_ops: 1,
            vector_cycles: 0,
            check_ok,
        }
    }

    #[test]
    fn join_computes_speedups_and_sorts_worst_first() {
        let baseline = vec![
            record("aaaa000011112222", "GSM_DEC", 1000, true),
            record("bbbb000011112222", "GSM_ENC", 1000, true),
            record("cccc000011112222", "JPEG_ENC", 1000, true), // baseline only
        ];
        let current = vec![
            record("aaaa000011112222", "GSM_DEC", 500, true), // 2.0x faster
            record("bbbb000011112222", "GSM_ENC", 1250, true), // 20% regression
            record("dddd000011112222", "MPEG2_ENC", 10, true), // store only
        ];
        let report = compare(&current, &baseline);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.only_in_baseline, 1);
        assert_eq!(report.only_in_store, 1);
        // Worst first.
        assert_eq!(report.rows[0].key, "bbbb000011112222");
        assert!((report.rows[0].speedup - 0.8).abs() < 1e-12);
        assert!((report.rows[1].speedup - 2.0).abs() < 1e-12);
        assert_eq!(report.regressions, 1);
        assert!((report.worst_regression_pct() - 20.0).abs() < 1e-9);
        assert!((report.geomean_speedup - (0.8f64 * 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn self_compare_is_all_ones() {
        let records = vec![
            record("aaaa000011112222", "GSM_DEC", 123, true),
            record("bbbb000011112222", "GSM_ENC", 456, true),
        ];
        let report = compare(&records, &records);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.speedup == 1.0));
        assert_eq!(report.regressions, 0);
        assert_eq!(report.worst_regression_pct(), 0.0);
        assert_eq!(report.geomean_speedup, 1.0);
        // Ties sort by config then benchmark.
        assert_eq!(report.rows[0].key, "aaaa000011112222");
    }

    #[test]
    fn failed_checks_and_duplicates_are_excluded() {
        let baseline = vec![
            record("aaaa000011112222", "GSM_DEC", 1000, true),
            record("bbbb000011112222", "GSM_ENC", 1000, false),
            record("cccc000011112222", "JPEG_ENC", 0, true), // zero-cycle baseline
        ];
        let current = vec![
            record("aaaa000011112222", "GSM_DEC", 500, true),
            record("aaaa000011112222", "GSM_DEC", 999, true), // duplicate key
            record("bbbb000011112222", "GSM_ENC", 500, true), // baseline failed
            record("cccc000011112222", "JPEG_ENC", 500, true),
        ];
        let report = compare(&current, &baseline);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].cycles, 500, "first occurrence wins");
        assert_eq!(
            report.failed_checks, 2,
            "a zero-cycle baseline is unusable, not a 0.0 speedup"
        );
        assert!(report.geomean_speedup > 0.0);
        assert_eq!(report.worst_regression_pct(), 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let report = compare(&[], &[]);
        assert!(report.rows.is_empty());
        assert_eq!(report.geomean_speedup, 1.0);
        assert_eq!(report.worst_regression_pct(), 0.0);
    }
}
