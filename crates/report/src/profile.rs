//! Cycle-attribution profile rendering: Markdown tables, Chrome trace
//! timelines and the stacked-bar data behind the HTML Profile section.
//!
//! The input is the parsed `vmv-profile/1` document ([`ProfileDoc`]) that
//! `sweep --profile` writes next to the result store.  Every renderer here
//! is byte-deterministic — tables sort worst-stall-first with the run key,
//! cause order or structural id as the tie breaker, floats print at fixed
//! precision — so rendered profiles can be committed as golden files.
//!
//! The Chrome trace export ([`chrome_trace`]) emits the standard
//! trace-event JSON object form: one `ph:"X"` complete slice per captured
//! bundle issue, on the thread of its scheduler lane, plus `ph:"M"`
//! metadata events naming the lanes.  Load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>; one trace microsecond is one simulated cycle.

use vmv_sweep::json::Json;
use vmv_sweep::profiles::{Cause, ProfileDoc, LANE_NAMES, N_STALLS, STALL_BASE};

/// Stall-cause palette of the stacked bars, indexed like a stall array
/// (`raw`, `wait_l1`, `wait_l2`, `wait_l3`, `wait_mem`, `l2_port`).
pub const STALL_COLORS: [&str; N_STALLS] = [
    "#1d4ed8", "#047857", "#b45309", "#b91c1c", "#6d28d9", "#0e7490",
];

/// Name of one stall-array index (`0 ..= N_STALLS-1`).
fn stall_name(i: usize) -> &'static str {
    Cause::ALL[STALL_BASE + i].name()
}

/// Name of the heaviest stall cause, `-` when nothing stalled.  Ties go to
/// the lower cause index, which is fixed by the taxonomy.
pub fn top_stall(stalls: &[u64; N_STALLS]) -> &'static str {
    let (mut best, mut at) = (0u64, None);
    for (i, &v) in stalls.iter().enumerate() {
        if v > best {
            best = v;
            at = Some(i);
        }
    }
    at.map_or("-", stall_name)
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// The stall slice of a full cause array.
fn stall_slice(causes: &[u64], out: &mut [u64; N_STALLS]) {
    out.copy_from_slice(&causes[STALL_BASE..STALL_BASE + N_STALLS]);
}

/// Overview of every profiled run of a store, worst stall share first.
pub fn profile_overview_md(title: &str, docs: &[ProfileDoc]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Profile overview — {title}\n\n"));
    out.push_str(&format!(
        "{} profiled runs; every attributed cycle sums exactly to the run's \
         cycle count, stall causes to its stall count.\n\n",
        docs.len()
    ));
    let mut order: Vec<&ProfileDoc> = docs.iter().collect();
    order.sort_by(|a, b| {
        b.stall_cycles
            .cmp(&a.stall_cycles)
            .then_with(|| a.meta.key.cmp(&b.meta.key))
    });
    out.push_str(
        "| run | design point | benchmark | variant | model | cycles | \
         stalled | stall% | top stall |\n",
    );
    out.push_str("|:--|:--|:--|:--|:--|--:|--:|--:|:--|\n");
    for d in &order {
        let mut stalls = [0u64; N_STALLS];
        stall_slice(&d.causes, &mut stalls);
        out.push_str(&format!(
            "| `{}` | `{}` | {} | {} | {} | {} | {} | {} | {} |\n",
            d.meta.key,
            d.meta.config,
            d.meta.benchmark,
            d.meta.variant,
            d.meta.model,
            d.cycles,
            d.stall_cycles,
            pct(d.stall_cycles, d.cycles),
            top_stall(&stalls),
        ));
    }

    let mut totals = [0u64; N_STALLS];
    let mut all_stalls = 0u64;
    for d in docs {
        let mut stalls = [0u64; N_STALLS];
        stall_slice(&d.causes, &mut stalls);
        for (t, v) in totals.iter_mut().zip(stalls) {
            *t += v;
        }
        all_stalls += d.stall_cycles;
    }
    out.push_str("\n## Stall cycles by cause, all runs\n\n");
    out.push_str("| cause | cycles | share of stalls |\n|:--|--:|--:|\n");
    let mut idx: Vec<usize> = (0..N_STALLS).collect();
    idx.sort_by(|&a, &b| totals[b].cmp(&totals[a]).then(a.cmp(&b)));
    for i in idx {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            stall_name(i),
            totals[i],
            pct(totals[i], all_stalls)
        ));
    }
    out
}

/// Full single-run report: cause totals, then regions, blocks, bundles and
/// blamed producer ops, each worst stall first.
pub fn profile_detail_md(doc: &ProfileDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Profile — {} on `{}` ({}, {})\n\n",
        doc.meta.benchmark, doc.meta.config, doc.meta.variant, doc.meta.model
    ));
    out.push_str(&format!(
        "Run `{}`: {} cycles, {} stalled ({}), {} bundle issues observed.\n\n",
        doc.meta.key,
        doc.cycles,
        doc.stall_cycles,
        pct(doc.stall_cycles, doc.cycles),
        doc.events_seen
    ));

    out.push_str("## Cycles by cause\n\n| cause | cycles | share |\n|:--|--:|--:|\n");
    let mut idx: Vec<usize> = (0..doc.causes.len()).collect();
    idx.sort_by(|&a, &b| doc.causes[b].cmp(&doc.causes[a]).then(a.cmp(&b)));
    for i in idx {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            Cause::ALL[i].name(),
            doc.causes[i],
            pct(doc.causes[i], doc.cycles)
        ));
    }

    out.push_str("\n## Regions, worst stall first\n\n");
    out.push_str("| region | cycles | stalled | top stall |\n|:--|--:|--:|:--|\n");
    let mut regions: Vec<_> = doc.regions.iter().collect();
    regions.sort_by(|a, b| {
        let (sa, sb) = (
            a.causes[STALL_BASE..].iter().sum::<u64>(),
            b.causes[STALL_BASE..].iter().sum::<u64>(),
        );
        sb.cmp(&sa).then(a.id.cmp(&b.id))
    });
    for r in regions {
        let mut stalls = [0u64; N_STALLS];
        stall_slice(&r.causes, &mut stalls);
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            r.name,
            r.causes.iter().sum::<u64>(),
            stalls.iter().sum::<u64>(),
            top_stall(&stalls)
        ));
    }

    out.push_str("\n## Hottest blocks\n\n");
    out.push_str("| block | region | visits | cycles | stalled | top stall |\n");
    out.push_str("|--:|--:|--:|--:|--:|:--|\n");
    let mut blocks: Vec<_> = doc.blocks.iter().collect();
    blocks.sort_by(|a, b| {
        let (sa, sb) = (
            a.causes[STALL_BASE..].iter().sum::<u64>(),
            b.causes[STALL_BASE..].iter().sum::<u64>(),
        );
        sb.cmp(&sa).then(a.block.cmp(&b.block))
    });
    for b in blocks.iter().take(16) {
        let mut stalls = [0u64; N_STALLS];
        stall_slice(&b.causes, &mut stalls);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            b.block,
            b.region,
            b.visits,
            b.causes.iter().sum::<u64>(),
            stalls.iter().sum::<u64>(),
            top_stall(&stalls)
        ));
    }

    out.push_str("\n## Worst bundles\n\n");
    out.push_str("| bundle | block | lane | class | issues | stalled | top stall |\n");
    out.push_str("|--:|--:|:--|:--|--:|--:|:--|\n");
    let mut bundles: Vec<_> = doc.bundles.iter().collect();
    bundles.sort_by(|a, b| {
        let (sa, sb) = (a.stalls.iter().sum::<u64>(), b.stalls.iter().sum::<u64>());
        sb.cmp(&sa).then(a.bundle.cmp(&b.bundle))
    });
    for b in bundles.iter().take(16) {
        out.push_str(&format!(
            "| {} | {} | {} | `{}` | {} | {} | {} |\n",
            b.bundle,
            b.block,
            LANE_NAMES.get(b.lane as usize).unwrap_or(&"?"),
            b.class,
            b.issues,
            b.stalls.iter().sum::<u64>(),
            top_stall(&b.stalls)
        ));
    }

    out.push_str("\n## Blamed producer ops\n\n");
    out.push_str("| op | bundle | opcode | stall cycles charged | top stall |\n");
    out.push_str("|--:|--:|:--|--:|:--|\n");
    let mut ops: Vec<_> = doc.ops.iter().collect();
    ops.sort_by(|a, b| {
        let (sa, sb) = (a.stalls.iter().sum::<u64>(), b.stalls.iter().sum::<u64>());
        sb.cmp(&sa).then(a.op.cmp(&b.op))
    });
    for o in ops.iter().take(16) {
        out.push_str(&format!(
            "| {} | {} | `{}` | {} | {} |\n",
            o.op,
            o.bundle,
            o.opcode,
            o.stalls.iter().sum::<u64>(),
            top_stall(&o.stalls)
        ));
    }

    out.push_str(&format!(
        "\n{} of {} bundle issues captured in the timeline (`report profile \
         --run KEY --trace` renders them for Perfetto).\n",
        doc.timeline.len(),
        doc.events_seen
    ));
    out
}

/// Chrome trace-event JSON of one run's captured timeline: a `ph:"X"`
/// complete slice per bundle issue on its scheduler lane's thread, `ts` the
/// cycle the bundle started waiting, `dur` the stall plus the issue cycle.
pub fn chrome_trace(doc: &ProfileDoc) -> String {
    // The timeline carries bundle ids; the lane lives on the bundle row.
    let lane_of = |bundle: u32| -> u8 {
        doc.bundles
            .iter()
            .find(|b| b.bundle == bundle)
            .map_or(0, |b| b.lane)
    };
    let mut lanes_used: Vec<u8> = Vec::new();
    for e in &doc.timeline {
        let lane = lane_of(e.bundle);
        if !lanes_used.contains(&lane) {
            lanes_used.push(lane);
        }
    }
    lanes_used.sort_unstable();

    let mut events = Vec::new();
    events.push(Json::Obj(vec![
        ("name".into(), Json::str("process_name")),
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::u64(0)),
        (
            "args".into(),
            Json::Obj(vec![(
                "name".into(),
                Json::str(format!(
                    "{} on {} ({})",
                    doc.meta.benchmark, doc.meta.config, doc.meta.model
                )),
            )]),
        ),
    ]));
    for lane in &lanes_used {
        events.push(Json::Obj(vec![
            ("name".into(), Json::str("thread_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::u64(0)),
            ("tid".into(), Json::u64(*lane as u64)),
            (
                "args".into(),
                Json::Obj(vec![(
                    "name".into(),
                    Json::str(*LANE_NAMES.get(*lane as usize).unwrap_or(&"?")),
                )]),
            ),
        ]));
    }
    for e in &doc.timeline {
        events.push(Json::Obj(vec![
            ("name".into(), Json::str(format!("bundle {}", e.bundle))),
            ("cat".into(), Json::str(&e.cause)),
            ("ph".into(), Json::str("X")),
            ("pid".into(), Json::u64(0)),
            ("tid".into(), Json::u64(lane_of(e.bundle) as u64)),
            ("ts".into(), Json::u64(e.base)),
            ("dur".into(), Json::u64(e.stall + 1)),
            (
                "args".into(),
                Json::Obj(vec![
                    ("bundle".into(), Json::u64(e.bundle as u64)),
                    ("stall".into(), Json::u64(e.stall)),
                    ("cause".into(), Json::str(&e.cause)),
                ]),
            ),
        ]));
    }
    let top = Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ms")),
        (
            "otherData".into(),
            Json::Obj(vec![
                ("schema".into(), Json::str("vmv-profile/1")),
                ("key".into(), Json::str(&doc.meta.key)),
                ("cycles".into(), Json::u64(doc.cycles)),
                ("events_seen".into(), Json::u64(doc.events_seen)),
            ]),
        ),
    ]);
    let mut text = top.render();
    text.push('\n');
    text
}

/// Per-benchmark stall-cause totals (benchmark-name order), the data rows
/// of the HTML Profile section.
pub fn stalls_by_benchmark(docs: &[ProfileDoc]) -> Vec<(String, [u64; N_STALLS])> {
    let mut rows: Vec<(String, [u64; N_STALLS])> = Vec::new();
    for d in docs {
        let mut stalls = [0u64; N_STALLS];
        stall_slice(&d.causes, &mut stalls);
        match rows.iter_mut().find(|(name, _)| *name == d.meta.benchmark) {
            Some((_, acc)) => {
                for (a, v) in acc.iter_mut().zip(stalls) {
                    *a += v;
                }
            }
            None => rows.push((d.meta.benchmark.clone(), stalls)),
        }
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Inline SVG: one horizontal stacked bar of stall-cause cycles per
/// benchmark, sharing one scale, with a cause legend on top.
pub fn stall_stacked_svg(rows: &[(String, [u64; N_STALLS])]) -> String {
    const WIDTH: f64 = 720.0;
    const LABEL_W: f64 = 110.0;
    const BAR_H: f64 = 22.0;
    const GAP: f64 = 8.0;
    const LEGEND_H: f64 = 26.0;
    let max: u64 = rows
        .iter()
        .map(|(_, s)| s.iter().sum::<u64>())
        .max()
        .unwrap_or(0)
        .max(1);
    let height = LEGEND_H + rows.len() as f64 * (BAR_H + GAP) + GAP;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH:.0}\" \
         height=\"{height:.0}\" viewBox=\"0 0 {WIDTH:.0} {height:.0}\" \
         role=\"img\">\n"
    );
    let mut lx = LABEL_W;
    for (i, color) in STALL_COLORS.iter().enumerate() {
        out.push_str(&format!(
            "<rect x=\"{lx:.1}\" y=\"6\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
             <text x=\"{:.1}\" y=\"15\" font-family=\"monospace\" font-size=\"11\">{}</text>\n",
            lx + 14.0,
            stall_name(i)
        ));
        lx += 14.0 + 8.0 * stall_name(i).len() as f64 + 16.0;
    }
    for (row, (name, stalls)) in rows.iter().enumerate() {
        let y = LEGEND_H + row as f64 * (BAR_H + GAP);
        out.push_str(&format!(
            "<text x=\"0\" y=\"{:.1}\" font-family=\"monospace\" font-size=\"12\">{}</text>\n",
            y + BAR_H - 6.0,
            crate::html::esc(name)
        ));
        let mut x = LABEL_W;
        for (i, &v) in stalls.iter().enumerate() {
            if v == 0 {
                continue;
            }
            let w = (WIDTH - LABEL_W - 4.0) * v as f64 / max as f64;
            out.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{BAR_H:.1}\" \
                 fill=\"{}\"><title>{}: {v}</title></rect>\n",
                STALL_COLORS[i],
                stall_name(i)
            ));
            x += w;
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_sweep::profiles::parse_profile;

    fn demo_doc() -> ProfileDoc {
        use vmv_sweep::profiles::{profile_json, ProfileMeta};
        let machine = vmv_machine::presets::vector2(2);
        let prepared = vmv_core::prepare(vmv_kernels::Benchmark::GsmDec, &machine).unwrap();
        let (outcome, profile) =
            vmv_core::simulate_profiled(&prepared, &machine, vmv_mem::MemoryModel::Realistic)
                .unwrap();
        let meta = ProfileMeta {
            key: "00deadbeef00cafe".to_string(),
            config: machine.name.clone(),
            benchmark: "GSM_DEC".to_string(),
            variant: outcome.variant.name().to_string(),
            model: "Realistic".to_string(),
        };
        parse_profile(&profile_json(&meta, &profile).render()).unwrap()
    }

    #[test]
    fn markdown_renderers_are_deterministic_and_ordered() {
        let doc = demo_doc();
        let detail = profile_detail_md(&doc);
        assert_eq!(detail, profile_detail_md(&doc));
        assert!(detail.contains("## Cycles by cause"));
        assert!(detail.contains("## Worst bundles"));
        // The worst-first bundle table really is sorted.
        let mut bundles: Vec<_> = doc.bundles.iter().collect();
        bundles.sort_by(|a, b| {
            let (sa, sb) = (a.stalls.iter().sum::<u64>(), b.stalls.iter().sum::<u64>());
            sb.cmp(&sa).then(a.bundle.cmp(&b.bundle))
        });
        if bundles.len() >= 2 {
            let first: u64 = bundles[0].stalls.iter().sum();
            let second: u64 = bundles[1].stalls.iter().sum();
            assert!(first >= second);
        }
        let overview = profile_overview_md("demo", &[doc.clone(), doc]);
        assert!(overview.contains("2 profiled runs"));
    }

    #[test]
    fn chrome_trace_is_wellformed_and_lane_named() {
        let doc = demo_doc();
        let text = chrome_trace(&doc);
        let v = Json::parse(text.trim()).unwrap();
        let events = match v.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            _ => panic!("traceEvents missing"),
        };
        // process_name metadata, at least one thread_name, one X slice per
        // timeline event.
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), doc.timeline.len());
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
        for x in xs {
            assert!(x.get("ts").and_then(Json::as_u64).is_some());
            assert!(x.get("dur").and_then(Json::as_u64).unwrap() >= 1);
        }
        assert_eq!(text, chrome_trace(&doc), "byte-deterministic");
    }

    #[test]
    fn stacked_svg_scales_rows_to_one_max() {
        let rows = vec![
            ("A".to_string(), [10, 0, 0, 0, 0, 0]),
            ("B".to_string(), [5, 5, 0, 0, 0, 0]),
        ];
        let svg = stall_stacked_svg(&rows);
        assert!(svg.starts_with("<svg "));
        assert!(svg.contains("raw"), "legend names causes");
        assert_eq!(svg, stall_stacked_svg(&rows));
    }
}
