//! Standalone SVG charts — no dependencies, no scripts, byte-deterministic.
//!
//! Three shapes cover the analyses: a cost/cycles scatter with the Pareto
//! frontier traced ([`pareto_svg`]), a horizontal bar chart of per-axis
//! sensitivity swings ([`sensitivity_svg`]) and a categorical-x line chart
//! for time series over stores or commits ([`line_chart`]).  Coordinates
//! are emitted with fixed precision, so the same input always renders the
//! same bytes.

use vmv_sweep::{AxisSensitivity, ParetoEntry};

const FONT: &str = "font-family=\"monospace\" font-size=\"12\"";
const TITLE_FONT: &str = "font-family=\"monospace\" font-size=\"16\"";
const AXIS_COLOR: &str = "#6b7280";
const POINT_COLOR: &str = "#9ca3af";
const FRONTIER_COLOR: &str = "#1d4ed8";
const BAR_COLOR: &str = "#1d4ed8";
const MARKER_COLOR: &str = "#b91c1c";
/// Series palette for [`line_chart`], cycled by series index.
const SERIES_COLORS: [&str; 6] = [
    "#1d4ed8", "#b91c1c", "#047857", "#b45309", "#6d28d9", "#0e7490",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Compact human tick label: 1500000 -> "1.5M", 2300 -> "2.3k".
fn human(v: f64) -> String {
    let a = v.abs();
    if a >= 1.0e6 {
        format!("{:.1}M", v / 1.0e6)
    } else if a >= 1.0e3 {
        format!("{:.1}k", v / 1.0e3)
    } else {
        format!("{v:.1}")
    }
}

struct Scale {
    min: f64,
    max: f64,
    lo_px: f64,
    hi_px: f64,
}

impl Scale {
    /// Linear scale from a (5%-padded) data range onto pixels.
    fn new(values: impl Iterator<Item = f64>, lo_px: f64, hi_px: f64) -> Scale {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            min = 0.0;
            max = 1.0;
        }
        if min == max {
            // A degenerate range still needs a drawable span.
            min -= 1.0;
            max += 1.0;
        }
        let pad = (max - min) * 0.05;
        Scale {
            min: min - pad,
            max: max + pad,
            lo_px,
            hi_px,
        }
    }

    fn px(&self, v: f64) -> f64 {
        self.lo_px + (v - self.min) / (self.max - self.min) * (self.hi_px - self.lo_px)
    }

    /// Five evenly spaced tick values.
    fn ticks(&self) -> Vec<f64> {
        (0..5)
            .map(|i| self.min + (self.max - self.min) * i as f64 / 4.0)
            .collect()
    }
}

fn svg_open(out: &mut String, width: u32, height: u32) {
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n"
    ));
    out.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{width}\" height=\"{height}\" fill=\"white\"/>\n"
    ));
}

/// Cost/cycles scatter: every measured design point, frontier points
/// highlighted and traced cost-ascending.  Hovering a point (any SVG
/// viewer) shows its name via `<title>`.
pub fn pareto_svg(title: &str, entries: &[ParetoEntry]) -> String {
    const W: u32 = 800;
    const H: u32 = 500;
    const LEFT: f64 = 80.0;
    const RIGHT: f64 = 770.0;
    const TOP: f64 = 50.0;
    const BOTTOM: f64 = 440.0;

    let mut out = String::new();
    svg_open(&mut out, W, H);
    out.push_str(&format!(
        "<text x=\"{LEFT}\" y=\"24\" {TITLE_FONT}>{}</text>\n",
        esc(title)
    ));
    if entries.is_empty() {
        out.push_str(&format!(
            "<text x=\"{LEFT}\" y=\"{TOP}\" {FONT}>no measured design points</text>\n</svg>\n"
        ));
        return out;
    }

    let x = Scale::new(entries.iter().map(|e| e.cost), LEFT, RIGHT);
    // Screen y grows downward: map larger cycle counts to smaller y.
    let y = Scale::new(entries.iter().map(|e| e.cycles as f64), BOTTOM, TOP);

    // Axes with ticks and labels.
    out.push_str(&format!(
        "<line x1=\"{LEFT}\" y1=\"{BOTTOM}\" x2=\"{RIGHT}\" y2=\"{BOTTOM}\" \
         stroke=\"{AXIS_COLOR}\"/>\n\
         <line x1=\"{LEFT}\" y1=\"{TOP}\" x2=\"{LEFT}\" y2=\"{BOTTOM}\" \
         stroke=\"{AXIS_COLOR}\"/>\n"
    ));
    for t in x.ticks() {
        let px = x.px(t);
        out.push_str(&format!(
            "<line x1=\"{px:.2}\" y1=\"{BOTTOM}\" x2=\"{px:.2}\" y2=\"{:.2}\" \
             stroke=\"{AXIS_COLOR}\"/>\n\
             <text x=\"{px:.2}\" y=\"{:.2}\" {FONT} text-anchor=\"middle\">{}</text>\n",
            BOTTOM + 5.0,
            BOTTOM + 20.0,
            human(t)
        ));
    }
    for t in y.ticks() {
        let py = y.px(t);
        out.push_str(&format!(
            "<line x1=\"{:.2}\" y1=\"{py:.2}\" x2=\"{LEFT}\" y2=\"{py:.2}\" \
             stroke=\"{AXIS_COLOR}\"/>\n\
             <text x=\"{:.2}\" y=\"{:.2}\" {FONT} text-anchor=\"end\">{}</text>\n",
            LEFT - 5.0,
            LEFT - 8.0,
            py + 4.0,
            human(t)
        ));
    }
    out.push_str(&format!(
        "<text x=\"{:.2}\" y=\"{:.2}\" {FONT} text-anchor=\"middle\">hardware cost</text>\n",
        (LEFT + RIGHT) / 2.0,
        BOTTOM + 45.0
    ));
    out.push_str(&format!(
        "<text x=\"18\" y=\"{:.2}\" {FONT} text-anchor=\"middle\" \
         transform=\"rotate(-90 18 {:.2})\">total cycles</text>\n",
        (TOP + BOTTOM) / 2.0,
        (TOP + BOTTOM) / 2.0
    ));

    // Frontier trace, cost-ascending (entries are already cost-sorted).
    let frontier: Vec<&ParetoEntry> = entries.iter().filter(|e| e.on_frontier).collect();
    if frontier.len() > 1 {
        let pts: Vec<String> = frontier
            .iter()
            .map(|e| format!("{:.2},{:.2}", x.px(e.cost), y.px(e.cycles as f64)))
            .collect();
        out.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{FRONTIER_COLOR}\" \
             stroke-width=\"1.5\" stroke-dasharray=\"4 3\"/>\n",
            pts.join(" ")
        ));
    }
    for e in entries {
        let (fill, r) = if e.on_frontier {
            (FRONTIER_COLOR, 5.0)
        } else {
            (POINT_COLOR, 3.5)
        };
        out.push_str(&format!(
            "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"{r}\" fill=\"{fill}\">\
             <title>{}: cost {:.1}, {} cycles</title></circle>\n",
            x.px(e.cost),
            y.px(e.cycles as f64),
            esc(&e.name),
            e.cost,
            e.cycles
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Horizontal bars of per-axis mean swing, with a tick marking the max
/// swing seen in any group and a reference line at 1.0x (no effect).
pub fn sensitivity_svg(title: &str, rows: &[AxisSensitivity]) -> String {
    const W: u32 = 800;
    const LEFT: f64 = 150.0;
    const RIGHT: f64 = 770.0;
    const TOP: f64 = 50.0;
    const BAR: f64 = 20.0;
    const GAP: f64 = 12.0;

    let height = (TOP + rows.len() as f64 * (BAR + GAP) + 50.0).max(140.0) as u32;
    let mut out = String::new();
    svg_open(&mut out, W, height);
    out.push_str(&format!(
        "<text x=\"20\" y=\"24\" {TITLE_FONT}>{}</text>\n",
        esc(title)
    ));
    if rows.is_empty() {
        out.push_str(&format!(
            "<text x=\"20\" y=\"{TOP}\" {FONT}>no comparable axis groups</text>\n</svg>\n"
        ));
        return out;
    }

    // Bars start at 1.0 (no effect); scale spans 1.0 .. max(max_swing).
    let max = rows.iter().map(|r| r.max_swing).fold(1.0, f64::max);
    let span = (max - 1.0).max(1.0e-9);
    let px = |v: f64| LEFT + ((v - 1.0) / span).clamp(0.0, 1.0) * (RIGHT - LEFT);

    let baseline_bottom = TOP + rows.len() as f64 * (BAR + GAP);
    out.push_str(&format!(
        "<line x1=\"{LEFT}\" y1=\"{:.2}\" x2=\"{LEFT}\" y2=\"{:.2}\" \
         stroke=\"{AXIS_COLOR}\"/>\n\
         <text x=\"{LEFT}\" y=\"{:.2}\" {FONT} text-anchor=\"middle\">1.0x</text>\n\
         <text x=\"{RIGHT}\" y=\"{:.2}\" {FONT} text-anchor=\"end\">{:.3}x</text>\n",
        TOP - 10.0,
        baseline_bottom,
        baseline_bottom + 20.0,
        baseline_bottom + 20.0,
        max
    ));
    for (i, r) in rows.iter().enumerate() {
        let top = TOP + i as f64 * (BAR + GAP);
        let mid = top + BAR / 2.0 + 4.0;
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{mid:.2}\" {FONT} text-anchor=\"end\">{}</text>\n",
            LEFT - 8.0,
            esc(&r.axis)
        ));
        out.push_str(&format!(
            "<rect x=\"{LEFT}\" y=\"{top:.2}\" width=\"{:.2}\" height=\"{BAR}\" \
             fill=\"{BAR_COLOR}\">\
             <title>{}: mean {:.3}x over {} groups (max {:.3}x)</title></rect>\n",
            (px(r.mean_swing) - LEFT).max(0.5),
            esc(&r.axis),
            r.mean_swing,
            r.groups,
            r.max_swing
        ));
        out.push_str(&format!(
            "<line x1=\"{:.2}\" y1=\"{:.2}\" x2=\"{:.2}\" y2=\"{:.2}\" \
             stroke=\"{MARKER_COLOR}\" stroke-width=\"2\"/>\n",
            px(r.max_swing),
            top - 2.0,
            px(r.max_swing),
            top + BAR + 2.0
        ));
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{mid:.2}\" {FONT}>{:.3}x</text>\n",
            px(r.mean_swing) + 6.0,
            r.mean_swing
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// One named series of a [`line_chart`]: one optional y value per x
/// category (a `None` leaves a gap — the polyline splits around it).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub name: String,
    pub values: Vec<Option<f64>>,
}

/// Categorical-x line chart: `x_labels` name evenly spaced positions (store
/// files, commits, nights) and each series draws its present values as a
/// polyline with hoverable points.  Used by `report trend` for cycles over
/// stores and throughput over commits.
pub fn line_chart(title: &str, y_label: &str, x_labels: &[String], series: &[Series]) -> String {
    const W: u32 = 800;
    const H: u32 = 500;
    const LEFT: f64 = 80.0;
    const RIGHT: f64 = 630.0;
    const TOP: f64 = 50.0;
    const BOTTOM: f64 = 440.0;

    let mut out = String::new();
    svg_open(&mut out, W, H);
    out.push_str(&format!(
        "<text x=\"{LEFT}\" y=\"24\" {TITLE_FONT}>{}</text>\n",
        esc(title)
    ));
    let has_points = series.iter().any(|s| s.values.iter().any(Option::is_some));
    if x_labels.is_empty() || !has_points {
        out.push_str(&format!(
            "<text x=\"{LEFT}\" y=\"{TOP}\" {FONT}>no data points</text>\n</svg>\n"
        ));
        return out;
    }

    let y = Scale::new(
        series
            .iter()
            .flat_map(|s| s.values.iter().flatten().copied()),
        BOTTOM,
        TOP,
    );
    // Categories are evenly spaced; a single category sits centred.
    let xs: Vec<f64> = (0..x_labels.len())
        .map(|i| {
            if x_labels.len() == 1 {
                (LEFT + RIGHT) / 2.0
            } else {
                LEFT + (RIGHT - LEFT) * i as f64 / (x_labels.len() - 1) as f64
            }
        })
        .collect();

    // Axes, y ticks, x category labels.
    out.push_str(&format!(
        "<line x1=\"{LEFT}\" y1=\"{BOTTOM}\" x2=\"{RIGHT}\" y2=\"{BOTTOM}\" \
         stroke=\"{AXIS_COLOR}\"/>\n\
         <line x1=\"{LEFT}\" y1=\"{TOP}\" x2=\"{LEFT}\" y2=\"{BOTTOM}\" \
         stroke=\"{AXIS_COLOR}\"/>\n"
    ));
    for t in y.ticks() {
        let py = y.px(t);
        out.push_str(&format!(
            "<line x1=\"{:.2}\" y1=\"{py:.2}\" x2=\"{LEFT}\" y2=\"{py:.2}\" \
             stroke=\"{AXIS_COLOR}\"/>\n\
             <text x=\"{:.2}\" y=\"{:.2}\" {FONT} text-anchor=\"end\">{}</text>\n",
            LEFT - 5.0,
            LEFT - 8.0,
            py + 4.0,
            human(t)
        ));
    }
    for (i, label) in x_labels.iter().enumerate() {
        let px = xs[i];
        out.push_str(&format!(
            "<line x1=\"{px:.2}\" y1=\"{BOTTOM}\" x2=\"{px:.2}\" y2=\"{:.2}\" \
             stroke=\"{AXIS_COLOR}\"/>\n\
             <text x=\"{px:.2}\" y=\"{:.2}\" {FONT} text-anchor=\"end\" \
             transform=\"rotate(-35 {px:.2} {:.2})\">{}</text>\n",
            BOTTOM + 5.0,
            BOTTOM + 20.0,
            BOTTOM + 20.0,
            esc(label)
        ));
    }
    out.push_str(&format!(
        "<text x=\"18\" y=\"{:.2}\" {FONT} text-anchor=\"middle\" \
         transform=\"rotate(-90 18 {:.2})\">{}</text>\n",
        (TOP + BOTTOM) / 2.0,
        (TOP + BOTTOM) / 2.0,
        esc(y_label)
    ));

    for (si, s) in series.iter().enumerate() {
        let color = SERIES_COLORS[si % SERIES_COLORS.len()];
        // Split the polyline at gaps so a missing value never draws a
        // misleading bridge segment.
        let mut runs: Vec<Vec<String>> = vec![Vec::new()];
        for (i, v) in s.values.iter().enumerate() {
            match v {
                Some(v) => runs
                    .last_mut()
                    .expect("runs starts non-empty")
                    .push(format!("{:.2},{:.2}", xs[i], y.px(*v))),
                None => {
                    if !runs.last().expect("runs starts non-empty").is_empty() {
                        runs.push(Vec::new());
                    }
                }
            }
        }
        for run in runs.iter().filter(|r| r.len() > 1) {
            out.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" \
                 stroke-width=\"1.5\"/>\n",
                run.join(" ")
            ));
        }
        for (i, v) in s.values.iter().enumerate() {
            if let Some(v) = v {
                out.push_str(&format!(
                    "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"3.5\" fill=\"{color}\">\
                     <title>{} @ {}: {}</title></circle>\n",
                    xs[i],
                    y.px(*v),
                    esc(&s.name),
                    esc(&x_labels[i]),
                    human(*v)
                ));
            }
        }
        // Legend down the right edge, one swatch + label per series.
        let ly = TOP + si as f64 * 18.0;
        out.push_str(&format!(
            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
             <text x=\"{:.2}\" y=\"{:.2}\" {FONT}>{}</text>\n",
            RIGHT + 14.0,
            ly - 9.0,
            RIGHT + 30.0,
            ly,
            esc(&s.name)
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_sweep::ParetoEntry;

    fn entries() -> Vec<ParetoEntry> {
        vec![
            ParetoEntry {
                name: "2w/vu1 <&>".to_string(),
                cost: 10.0,
                cycles: 2_000_000,
                benchmarks: 2,
                on_frontier: true,
            },
            ParetoEntry {
                name: "4w/vu2".to_string(),
                cost: 20.0,
                cycles: 1_500_000,
                benchmarks: 2,
                on_frontier: true,
            },
            ParetoEntry {
                name: "4w/vu1".to_string(),
                cost: 25.0,
                cycles: 1_900_000,
                benchmarks: 2,
                on_frontier: false,
            },
        ]
    }

    /// Structural validity: one root <svg> with the SVG namespace and a
    /// properly nested tag tree.  Text and attribute values are escaped by
    /// `esc`, so a bare `<` only ever starts a tag and a bare `>` only ever
    /// ends one — a stack walk is a faithful well-formedness check.
    fn assert_valid(svg: &str) {
        assert!(svg.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        let mut stack: Vec<&str> = Vec::new();
        let mut rest = svg;
        while let Some(i) = rest.find('<') {
            rest = &rest[i + 1..];
            let end = rest.find('>').expect("unterminated tag");
            let tag = &rest[..end];
            rest = &rest[end + 1..];
            if let Some(name) = tag.strip_prefix('/') {
                let open = stack.pop();
                assert_eq!(
                    open,
                    Some(name.trim()),
                    "closing </{name}> does not match the innermost open tag"
                );
            } else if !tag.ends_with('/') {
                stack.push(tag.split_whitespace().next().expect("empty tag"));
            }
        }
        assert!(stack.is_empty(), "unclosed tags: {stack:?}");
        assert!(!svg.contains("<&"), "unescaped text made it into the SVG");
    }

    #[test]
    fn validity_checker_rejects_broken_documents() {
        let ok = "<svg xmlns=\"http://www.w3.org/2000/svg\"><g><text>x</text></g></svg>";
        assert_valid(ok);
        for broken in [
            "<svg xmlns=\"http://www.w3.org/2000/svg\"><text>x</svg>",
            "<svg xmlns=\"http://www.w3.org/2000/svg\"><text>x</text>",
        ] {
            assert!(
                std::panic::catch_unwind(|| assert_valid(broken)).is_err(),
                "checker must reject: {broken}"
            );
        }
    }

    #[test]
    fn pareto_svg_is_valid_and_deterministic() {
        let a = pareto_svg("demo pareto", &entries());
        let b = pareto_svg("demo pareto", &entries());
        assert_eq!(a, b);
        assert_valid(&a);
        assert_eq!(a.matches("<circle").count(), 3);
        assert!(a.contains("polyline"), "frontier trace present");
        assert!(a.contains("&lt;&amp;&gt;"), "names are XML-escaped");
        assert!(
            a.contains("2.0M") || a.contains("1.9M"),
            "human tick labels"
        );
    }

    #[test]
    fn sensitivity_svg_is_valid_with_and_without_rows() {
        let rows = vec![
            AxisSensitivity {
                axis: "vector_lanes".to_string(),
                groups: 4,
                mean_swing: 1.8,
                max_swing: 2.9,
            },
            AxisSensitivity {
                axis: "mem_latency".to_string(),
                groups: 4,
                mean_swing: 1.1,
                max_swing: 1.2,
            },
        ];
        let svg = sensitivity_svg("demo sensitivity", &rows);
        assert_valid(&svg);
        assert_eq!(svg.matches("<rect").count(), 3, "background + two bars");
        assert!(svg.contains("vector_lanes"));

        let empty = sensitivity_svg("empty", &[]);
        assert_valid(&empty);
        assert!(empty.contains("no comparable axis groups"));
    }

    #[test]
    fn line_chart_is_valid_deterministic_and_splits_at_gaps() {
        let labels: Vec<String> = ["v1", "v2", "v3", "v4"].map(String::from).to_vec();
        let series = vec![
            Series {
                name: "GSM_DEC <&>".to_string(),
                values: vec![Some(100.0), Some(90.0), None, Some(80.0)],
            },
            Series {
                name: "GSM_ENC".to_string(),
                values: vec![Some(200.0), Some(210.0), Some(190.0), Some(185.0)],
            },
        ];
        let a = line_chart("trend", "cycles", &labels, &series);
        let b = line_chart("trend", "cycles", &labels, &series);
        assert_eq!(a, b);
        assert_valid(&a);
        // The gap in GSM_DEC splits it into one 2-point run plus an isolated
        // point; GSM_ENC is a single 4-point run → 2 polylines, 7 circles.
        assert_eq!(a.matches("<polyline").count(), 2);
        assert_eq!(a.matches("<circle").count(), 7);
        assert!(a.contains("&lt;&amp;&gt;"), "legend names are escaped");
        assert!(a.contains("rotate(-35"), "x labels are rotated");
    }

    #[test]
    fn line_chart_handles_empty_and_single_category_input() {
        let empty = line_chart("empty", "cycles", &[], &[]);
        assert_valid(&empty);
        assert!(empty.contains("no data points"));

        let all_gaps = line_chart(
            "gaps",
            "cycles",
            &["a".to_string()],
            &[Series {
                name: "s".to_string(),
                values: vec![None],
            }],
        );
        assert_valid(&all_gaps);
        assert!(all_gaps.contains("no data points"));

        let one = line_chart(
            "one",
            "cycles",
            &["a".to_string()],
            &[Series {
                name: "s".to_string(),
                values: vec![Some(5.0)],
            }],
        );
        assert_valid(&one);
        assert!(!one.contains("NaN"));
        assert_eq!(one.matches("<polyline").count(), 0, "one point, no line");
        assert_eq!(one.matches("<circle").count(), 1);
    }

    #[test]
    fn degenerate_single_point_still_renders() {
        let one = vec![ParetoEntry {
            name: "only".to_string(),
            cost: 5.0,
            cycles: 100,
            benchmarks: 1,
            on_frontier: true,
        }];
        let svg = pareto_svg("one point", &one);
        assert_valid(&svg);
        assert!(
            !svg.contains("NaN"),
            "degenerate ranges must not divide by zero"
        );
        let empty = pareto_svg("none", &[]);
        assert_valid(&empty);
    }
}
