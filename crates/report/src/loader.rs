//! The header-aware store loader: reads a JSONL result store — headered or
//! legacy headerless — and reports *everything* it had to skip, with line
//! numbers, instead of silently ignoring it the way the bulk readers in
//! `vmv_sweep::store` (rightly) do on the hot path.
//!
//! The loader never fails on content: a malformed line, a `cat`-merged
//! mid-file header or a duplicate key each produce a [`StoreDiagnostic`]
//! and the load continues.  Only I/O errors propagate.

use std::collections::HashSet;
use std::io::BufRead;
use std::path::{Path, PathBuf};

use vmv_kernels::Benchmark;
use vmv_sweep::store::{classify_store_line, RunRecord, StoreHeader, StoreLine};

/// One thing the loader skipped or distrusts, anchored to a 1-based line
/// number so `path:line: message` is directly clickable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDiagnostic {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for StoreDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// A result store read for analysis: the header (when the file has one),
/// the well-formed records deduplicated by run key (first occurrence wins —
/// the same policy as `vmv_sweep::matched_records`), and a diagnostic for
/// every line that did not contribute.
#[derive(Debug, Clone)]
pub struct LoadedStore {
    pub path: PathBuf,
    /// The spec header, when the first line carries one (stores written by
    /// `sweep --spec`/`--demo` since the declarative API).  Legacy stores
    /// load with `None` — records still work; pareto/sensitivity need the
    /// header to recover the design points.
    pub header: Option<StoreHeader>,
    /// Well-formed records, first occurrence per run key, in file order.
    pub records: Vec<RunRecord>,
    /// Duplicate-key records dropped (each also gets a diagnostic).
    pub duplicate_keys: usize,
    /// Line-numbered report of everything skipped or suspicious.
    pub diagnostics: Vec<StoreDiagnostic>,
}

impl LoadedStore {
    /// Load the store at `path`.  Only I/O errors fail; content problems
    /// become diagnostics.
    pub fn from_path(path: impl AsRef<Path>) -> std::io::Result<LoadedStore> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)?;
        let mut loaded = LoadedStore::from_lines(std::io::BufReader::new(file).lines())?;
        loaded.path = path.to_path_buf();
        Ok(loaded)
    }

    /// Load from in-memory text (tests, pipes).
    pub fn from_text(text: &str) -> LoadedStore {
        LoadedStore::from_lines(text.lines().map(|l| Ok(l.to_string())))
            .expect("in-memory load cannot fail on I/O")
    }

    fn from_lines(
        lines: impl Iterator<Item = std::io::Result<String>>,
    ) -> std::io::Result<LoadedStore> {
        let mut loaded = LoadedStore {
            path: PathBuf::new(),
            header: None,
            records: Vec::new(),
            duplicate_keys: 0,
            diagnostics: Vec::new(),
        };
        let mut seen: HashSet<String> = HashSet::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            let number = i + 1;
            let diag = |message: String| StoreDiagnostic {
                line: number,
                message,
            };
            match classify_store_line(&line) {
                StoreLine::Blank => {}
                StoreLine::Record(r) => {
                    if !seen.insert(r.key.clone()) {
                        loaded.duplicate_keys += 1;
                        loaded.diagnostics.push(diag(format!(
                            "duplicate run key {} (first occurrence kept; \
                             run `sweep --compact` to rewrite the store)",
                            r.key
                        )));
                        continue;
                    }
                    if Benchmark::from_name(&r.benchmark).is_none() {
                        loaded.diagnostics.push(diag(format!(
                            "record names unknown benchmark '{}'",
                            r.benchmark
                        )));
                    }
                    if vmv_core::variant_from_name(&r.variant).is_none() {
                        loaded.diagnostics.push(diag(format!(
                            "record names unknown ISA variant '{}'",
                            r.variant
                        )));
                    }
                    loaded.records.push(r);
                }
                StoreLine::Header(h) => {
                    if number == 1 {
                        loaded.header = Some(h);
                    } else {
                        loaded.diagnostics.push(diag(format!(
                            "spec header for '{}' in the middle of the file \
                             (cat-merged shards? use `sweep --merge`); ignored",
                            h.name
                        )));
                    }
                }
                StoreLine::Unrecognized(v) => {
                    let what = if v.get("spec_header").is_some() {
                        if number == 1 {
                            "unrecognised spec-header version (written by a newer \
                             tool?); reading the store as headerless"
                                .to_string()
                        } else {
                            "unrecognised spec-header version in the middle of the \
                             file (written by a newer tool?); line ignored"
                                .to_string()
                        }
                    } else {
                        format!(
                            "not a run record (missing or mistyped fields): {}",
                            truncate(&v.render(), 80)
                        )
                    };
                    loaded.diagnostics.push(diag(what));
                }
                StoreLine::Malformed(e) => {
                    loaded.diagnostics.push(diag(format!(
                        "not valid JSON ({e}): {}",
                        truncate(&line, 80)
                    )));
                }
            }
        }
        Ok(loaded)
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let mut end = max;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &s[..end])
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use vmv_sweep::{Json, ResultStore};

    pub(crate) fn record(key: &str, benchmark: &str, cycles: u64) -> RunRecord {
        RunRecord {
            key: key.to_string(),
            config: "2w/vu1/ln2".to_string(),
            benchmark: benchmark.to_string(),
            variant: "vector".to_string(),
            model: "Realistic".to_string(),
            cycles,
            stall_cycles: 0,
            operations: 100,
            micro_ops: 400,
            vector_cycles: cycles / 2,
            check_ok: true,
        }
    }

    fn header(name: &str) -> StoreHeader {
        StoreHeader {
            name: name.to_string(),
            fingerprint: "00ff00ff00ff00ff".to_string(),
            spec: Json::Obj(vec![("axes".into(), Json::Arr(vec![]))]),
        }
    }

    #[test]
    fn headered_store_loads_with_no_diagnostics() {
        let text = format!(
            "{}\n{}\n{}\n",
            header("demo").to_json().render(),
            record("aaaa000011112222", "GSM_DEC", 10).to_json().render(),
            record("bbbb000011112222", "GSM_ENC", 20).to_json().render(),
        );
        let loaded = LoadedStore::from_text(&text);
        assert_eq!(loaded.header.as_ref().unwrap().name, "demo");
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.duplicate_keys, 0);
        assert!(loaded.diagnostics.is_empty(), "{:?}", loaded.diagnostics);
    }

    #[test]
    fn legacy_headerless_store_loads_cleanly() {
        let text = format!(
            "{}\n\n{}\n",
            record("aaaa000011112222", "GSM_DEC", 10).to_json().render(),
            record("bbbb000011112222", "GSM_ENC", 20).to_json().render(),
        );
        let loaded = LoadedStore::from_text(&text);
        assert_eq!(loaded.header, None);
        assert_eq!(loaded.records.len(), 2);
        assert!(loaded.diagnostics.is_empty());
    }

    #[test]
    fn malformed_lines_are_diagnosed_with_line_numbers() {
        let text = format!(
            "{}\n{{\"key\":\"trunc\n{}\n",
            record("aaaa000011112222", "GSM_DEC", 10).to_json().render(),
            record("bbbb000011112222", "GSM_ENC", 20).to_json().render(),
        );
        let loaded = LoadedStore::from_text(&text);
        assert_eq!(loaded.records.len(), 2, "good lines still load");
        assert_eq!(loaded.diagnostics.len(), 1);
        assert_eq!(loaded.diagnostics[0].line, 2);
        assert!(loaded.diagnostics[0].message.contains("not valid JSON"));
    }

    #[test]
    fn garbage_and_future_headers_read_as_headerless() {
        // A truncated header line (crash while stamping) is malformed JSON.
        let truncated = format!(
            "{{\"spec_header\":1,\"name\":\"de\n{}\n",
            record("aaaa000011112222", "GSM_DEC", 10).to_json().render()
        );
        let loaded = LoadedStore::from_text(&truncated);
        assert_eq!(loaded.header, None);
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.diagnostics[0].line, 1);

        // A future header version is valid JSON but unrecognised.
        let future = "{\"spec_header\":2,\"name\":\"future\",\"fingerprint\":\"00\",\"spec\":{}}\n";
        let loaded = LoadedStore::from_text(future);
        assert_eq!(loaded.header, None);
        assert_eq!(loaded.diagnostics.len(), 1);
        assert!(
            loaded.diagnostics[0]
                .message
                .contains("unrecognised spec-header version"),
            "{}",
            loaded.diagnostics[0].message
        );
    }

    #[test]
    fn cat_merged_stores_diagnose_midfile_headers_and_duplicates() {
        // Simulate `cat a.jsonl b.jsonl`: two headers, one shared key.
        let text = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            header("shard_a").to_json().render(),
            record("aaaa000011112222", "GSM_DEC", 10).to_json().render(),
            header("shard_b").to_json().render(),
            record("aaaa000011112222", "GSM_DEC", 99).to_json().render(),
            record("bbbb000011112222", "GSM_ENC", 20).to_json().render(),
        );
        let loaded = LoadedStore::from_text(&text);
        assert_eq!(loaded.header.as_ref().unwrap().name, "shard_a");
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[0].cycles, 10, "first occurrence wins");
        assert_eq!(loaded.duplicate_keys, 1);
        let lines: Vec<usize> = loaded.diagnostics.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 4]);
        assert!(loaded.diagnostics[0].message.contains("middle of the file"));
        assert!(loaded.diagnostics[1].message.contains("duplicate run key"));
    }

    #[test]
    fn unknown_benchmark_and_variant_names_are_flagged() {
        let mut bad = record("aaaa000011112222", "SPEC_CPU", 10);
        bad.variant = "mmx".to_string();
        let loaded = LoadedStore::from_text(&format!("{}\n", bad.to_json().render()));
        assert_eq!(loaded.records.len(), 1, "still loaded — analyses decide");
        assert_eq!(loaded.diagnostics.len(), 2);
        assert!(loaded.diagnostics[0].message.contains("SPEC_CPU"));
        assert!(loaded.diagnostics[1].message.contains("mmx"));
    }

    #[test]
    fn loader_agrees_with_resultstore_on_merged_stores() {
        // Build a real merged store through ResultStore and check the two
        // readers agree on record content.
        let mut path = std::env::temp_dir();
        path.push(format!("vmv_report_loader_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let shard = {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "vmv_report_loader_shard_{}.jsonl",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&p);
            p
        };
        ResultStore::open(&shard)
            .append(&[
                record("aaaa000011112222", "GSM_DEC", 10),
                record("bbbb000011112222", "GSM_ENC", 20),
            ])
            .unwrap();
        let dest = ResultStore::open(&path);
        dest.append(&[record("aaaa000011112222", "GSM_DEC", 10)])
            .unwrap();
        dest.merge_from(&[&shard]).unwrap();

        let loaded = LoadedStore::from_path(&path).unwrap();
        assert_eq!(loaded.records, dest.load().unwrap());
        assert_eq!(loaded.duplicate_keys, 0, "merge already deduplicated");
        assert!(loaded.diagnostics.is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&shard);
    }

    #[test]
    fn missing_file_is_an_io_error_not_a_panic() {
        assert!(LoadedStore::from_path("/nonexistent/store.jsonl").is_err());
    }
}
