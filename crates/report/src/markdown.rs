//! Canonical Markdown rendering of the analysis passes.
//!
//! Every renderer is byte-deterministic for a given input — fixed column
//! order, fixed float precision, no timestamps, no paths — so a rendered
//! report can be committed as a golden file and diffed in CI.

use std::collections::BTreeMap;

use vmv_sweep::{AxisSensitivity, ParetoEntry};

use crate::compare::{CompareReport, CompareRow};

/// Pareto table: one row per measured design point, cost-ascending, `*`
/// marking the cost/cycles frontier.
pub fn pareto_md(spec_name: &str, fingerprint: &str, entries: &[ParetoEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Pareto report — {spec_name} (fingerprint {fingerprint})\n\n"
    ));
    out.push_str(
        "Total cycles per design point (summed over its measured benchmarks) \
         against the abstract hardware-cost model; `*` marks the cost/cycles \
         Pareto frontier.\n\n",
    );
    out.push_str("| frontier | design point | cost | cycles | benchmarks |\n");
    out.push_str("|:-:|:--|--:|--:|--:|\n");
    for e in entries {
        out.push_str(&format!(
            "| {} | `{}` | {:.1} | {} | {} |\n",
            if e.on_frontier { "*" } else { "" },
            e.name,
            e.cost,
            e.cycles,
            e.benchmarks
        ));
    }
    let frontier = entries.iter().filter(|e| e.on_frontier).count();
    out.push_str(&format!(
        "\n{} design points measured, {} on the frontier.\n",
        entries.len(),
        frontier
    ));
    out
}

/// Sensitivity table: axes sorted by mean swing (as computed), fixed
/// precision.
pub fn sensitivity_md(spec_name: &str, fingerprint: &str, rows: &[AxisSensitivity]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Sensitivity report — {spec_name} (fingerprint {fingerprint})\n\n"
    ));
    out.push_str(
        "Per-axis cycle swing: within groups of runs differing *only* on the \
         axis, the max/min cycle ratio (1.000x = the axis has no effect).\n\n",
    );
    out.push_str("| axis | groups | mean swing | max swing |\n");
    out.push_str("|:--|--:|--:|--:|\n");
    for r in rows {
        out.push_str(&format!(
            "| `{}` | {} | {:.3}x | {:.3}x |\n",
            r.axis, r.groups, r.mean_swing, r.max_swing
        ));
    }
    if rows.is_empty() {
        out.push_str("\nNo axis had two comparable runs in any group.\n");
    }
    out
}

/// Compare view: summary, per-group geometric means, then every matched run
/// worst-first.  `group_axis` names the grouping of the middle table (the
/// rows of `groups`, typically per benchmark).
pub fn compare_md(
    store_name: &str,
    baseline_name: &str,
    report: &CompareReport,
    group_axis: &str,
    groups: &BTreeMap<String, Vec<CompareRow>>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Compare report — {store_name} vs. baseline {baseline_name}\n\n"
    ));
    out.push_str(
        "Runs joined by content-derived key; speedup = baseline cycles / \
         store cycles (above 1.000x the store is faster).\n\n",
    );
    out.push_str("| metric | value |\n|:--|--:|\n");
    out.push_str(&format!("| matched runs | {} |\n", report.rows.len()));
    out.push_str(&format!(
        "| geometric-mean speedup | {:.3}x |\n",
        report.geomean_speedup
    ));
    out.push_str(&format!(
        "| regressions (speedup < 1) | {} |\n",
        report.regressions
    ));
    out.push_str(&format!(
        "| worst regression | {:.2}% |\n",
        report.worst_regression_pct()
    ));
    out.push_str(&format!(
        "| only in store / only in baseline | {} / {} |\n",
        report.only_in_store, report.only_in_baseline
    ));
    out.push_str(&format!(
        "| failed checks skipped | {} |\n",
        report.failed_checks
    ));

    out.push_str(&format!("\n## Speedup by {group_axis}\n\n"));
    out.push_str(&format!(
        "| {group_axis} | runs | geomean speedup | worst speedup |\n"
    ));
    out.push_str("|:--|--:|--:|--:|\n");
    for (value, rows) in groups {
        let worst = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
        out.push_str(&format!(
            "| `{}` | {} | {:.3}x | {:.3}x |\n",
            value,
            rows.len(),
            crate::compare::geomean(rows),
            if worst.is_finite() { worst } else { 1.0 }
        ));
    }

    out.push_str("\n## Per-run speedups (worst first)\n\n");
    out.push_str("| design point | benchmark | model | baseline cycles | cycles | speedup |\n");
    out.push_str("|:--|:--|:--|--:|--:|--:|\n");
    for r in &report.rows {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {:.3}x |\n",
            r.config, r.benchmark, r.model, r.baseline_cycles, r.cycles, r.speedup
        ));
    }
    out
}

/// Group compare rows by a record pseudo-axis the rows themselves carry
/// (`benchmark`, `variant`, `model`, `config`) — no spec header needed.
/// `None` when `axis` is a spec axis, which only a resolved store decodes.
pub fn rows_by_field(rows: &[CompareRow], axis: &str) -> Option<BTreeMap<String, Vec<CompareRow>>> {
    // Check the axis name itself, not the rows: an empty report must still
    // distinguish "groupable, empty" from "needs the spec".
    if !crate::resolve::is_record_field(axis) {
        return None;
    }
    let mut groups: BTreeMap<String, Vec<CompareRow>> = BTreeMap::new();
    for r in rows {
        let value = r.field(axis).expect("axis probed above");
        groups.entry(value.to_string()).or_default().push(r.clone());
    }
    Some(groups)
}

/// Group compare rows by benchmark — the default grouping.
pub fn rows_by_benchmark(rows: &[CompareRow]) -> BTreeMap<String, Vec<CompareRow>> {
    rows_by_field(rows, "benchmark").expect("benchmark is a row field")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, cost: f64, cycles: u64, on_frontier: bool) -> ParetoEntry {
        ParetoEntry {
            name: name.to_string(),
            cost,
            cycles,
            benchmarks: 2,
            on_frontier,
        }
    }

    #[test]
    fn pareto_md_is_deterministic_and_complete() {
        let entries = vec![
            entry("2w/vu1", 10.0, 2000, true),
            entry("4w/vu2", 20.5, 1500, false),
        ];
        let a = pareto_md("demo", "0123456789abcdef", &entries);
        let b = pareto_md("demo", "0123456789abcdef", &entries);
        assert_eq!(a, b);
        assert!(a.contains("| * | `2w/vu1` | 10.0 | 2000 | 2 |"), "{a}");
        assert!(a.contains("|  | `4w/vu2` | 20.5 | 1500 | 2 |"), "{a}");
        assert!(a.contains("2 design points measured, 1 on the frontier."));
    }

    #[test]
    fn sensitivity_md_handles_empty_input() {
        let empty = sensitivity_md("demo", "00", &[]);
        assert!(empty.contains("No axis had two comparable runs"));
        let rows = vec![AxisSensitivity {
            axis: "vector_lanes".to_string(),
            groups: 4,
            mean_swing: 1.5,
            max_swing: 2.0,
        }];
        let md = sensitivity_md("demo", "00", &rows);
        assert!(
            md.contains("| `vector_lanes` | 4 | 1.500x | 2.000x |"),
            "{md}"
        );
    }

    #[test]
    fn compare_md_renders_summary_groups_and_rows() {
        let rows = vec![
            CompareRow {
                key: "aaaa000011112222".to_string(),
                config: "2w/vu1".to_string(),
                benchmark: "GSM_DEC".to_string(),
                variant: "vector".to_string(),
                model: "Realistic".to_string(),
                baseline_cycles: 1000,
                cycles: 1250,
                speedup: 0.8,
            },
            CompareRow {
                key: "bbbb000011112222".to_string(),
                config: "2w/vu1".to_string(),
                benchmark: "GSM_ENC".to_string(),
                variant: "vector".to_string(),
                model: "Realistic".to_string(),
                baseline_cycles: 1000,
                cycles: 500,
                speedup: 2.0,
            },
        ];
        let report = CompareReport {
            rows: rows.clone(),
            only_in_baseline: 0,
            only_in_store: 0,
            failed_checks: 0,
            geomean_speedup: (0.8f64 * 2.0).sqrt(),
            regressions: 1,
        };
        let md = compare_md(
            "demo",
            "demo",
            &report,
            "benchmark",
            &rows_by_benchmark(&rows),
        );
        assert!(md.contains("| matched runs | 2 |"), "{md}");
        assert!(md.contains("| worst regression | 20.00% |"), "{md}");
        assert!(md.contains("| `GSM_DEC` | 1 | 0.800x | 0.800x |"), "{md}");
        assert!(
            md.contains("| `2w/vu1` | GSM_DEC | Realistic | 1000 | 1250 | 0.800x |"),
            "{md}"
        );
        // Worst row first in the per-run table.
        let dec = md.find("| `2w/vu1` | GSM_DEC").unwrap();
        let enc = md.find("| `2w/vu1` | GSM_ENC").unwrap();
        assert!(dec < enc);

        // Every record pseudo-axis groups straight off the rows; spec axes
        // signal "needs the resolved store" instead of mis-grouping.
        for axis in ["benchmark", "variant", "model", "config"] {
            assert!(rows_by_field(&rows, axis).is_some(), "{axis}");
        }
        let by_variant = rows_by_field(&rows, "variant").unwrap();
        assert_eq!(by_variant.len(), 1);
        assert_eq!(by_variant["vector"].len(), 2);
        assert!(rows_by_field(&rows, "vector_lanes").is_none());
        assert!(rows_by_field(&[], "model").is_some(), "empty but groupable");
    }
}
