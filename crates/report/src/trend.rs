//! The trend analysis: history rendered as time series.
//!
//! Two inputs feed `report trend`:
//!
//! * **N result stores of one experiment** (same spec fingerprint, e.g. one
//!   store per night or per commit) — joined per run key into a cycles-over-
//!   stores table, regressions first ([`store_trend`]);
//! * **the `BENCH_sim.json` trajectory** — the bench bin's host- and
//!   commit-stamped entries as throughput-over-commits series
//!   ([`parse_trajectory`]).
//!
//! Legacy trajectory entries (written before host/commit stamping) are
//! normalized on load: missing `host`/`commit` render as `"unknown"` and a
//! missing `unix_time` as 0, so the first line of a grown-in-place history
//! never breaks the chart.  Renderers are byte-deterministic (fixed order,
//! fixed precision, no timestamps) so goldens can be committed.

use crate::loader::LoadedStore;
use crate::svg::{line_chart, Series};
use vmv_sweep::Json;

/// One run key across every store column: the identifying fields plus one
/// optional cycle count per column.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    pub key: String,
    pub config: String,
    pub benchmark: String,
    pub model: String,
    /// Cycles per store column (`None` = the store has no record for this
    /// key).
    pub cycles: Vec<Option<u64>>,
    /// Last present cycles / first present cycles; `None` with fewer than
    /// two present values.  Above 1.0 the run got slower over the series.
    pub ratio: Option<f64>,
}

/// N stores of one experiment joined per run key.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreTrend {
    /// Column label per store, in CLI order (file stem, made unique by a
    /// positional prefix).
    pub columns: Vec<String>,
    /// Spec name/fingerprint of the first headered store (the reference).
    pub spec_name: String,
    pub fingerprint: String,
    /// Mixed-experiment and headerless-store warnings.
    pub warnings: Vec<String>,
    /// One row per run key seen anywhere, worst last/first ratio first.
    pub rows: Vec<TrendRow>,
    /// Per-column total cycles over **complete** rows (keys present in every
    /// column), so the totals are comparable across columns; `None` until at
    /// least one complete row exists.
    pub totals: Vec<Option<u64>>,
}

/// Join stores (CLI order) per run key.
pub fn store_trend(stores: &[&LoadedStore]) -> StoreTrend {
    let columns: Vec<String> = stores
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let stem = s
                .path
                .file_stem()
                .map(|n| n.to_string_lossy().into_owned())
                .filter(|n| !n.is_empty())
                .unwrap_or_else(|| "store".to_string());
            format!("{}:{}", i + 1, stem)
        })
        .collect();

    let mut warnings = Vec::new();
    let reference = stores.iter().find_map(|s| s.header.as_ref());
    let (spec_name, fingerprint) = match reference {
        Some(h) => (h.name.clone(), h.fingerprint.clone()),
        None => ("(headerless)".to_string(), "unknown".to_string()),
    };
    for (i, s) in stores.iter().enumerate() {
        match (&s.header, reference) {
            (Some(h), Some(r)) if h.fingerprint != r.fingerprint => warnings.push(format!(
                "{}: spec fingerprint {} differs from reference {} ('{}' vs '{}') — \
                 rows join by content key, but the columns answer different experiments",
                columns[i], h.fingerprint, r.fingerprint, h.name, r.name
            )),
            (None, Some(_)) => warnings.push(format!(
                "{}: store has no spec header; cannot check it ran the same experiment",
                columns[i]
            )),
            _ => {}
        }
    }

    // Union of run keys in first-seen order (store order, then file order).
    let mut rows: Vec<TrendRow> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (col, s) in stores.iter().enumerate() {
        for r in &s.records {
            let at = *index.entry(r.key.clone()).or_insert_with(|| {
                rows.push(TrendRow {
                    key: r.key.clone(),
                    config: r.config.clone(),
                    benchmark: r.benchmark.clone(),
                    model: r.model.clone(),
                    cycles: vec![None; stores.len()],
                    ratio: None,
                });
                rows.len() - 1
            });
            rows[at].cycles[col] = Some(r.cycles);
        }
    }
    for row in &mut rows {
        let present: Vec<u64> = row.cycles.iter().flatten().copied().collect();
        if present.len() >= 2 {
            row.ratio = Some(*present.last().expect("len >= 2") as f64 / present[0] as f64);
        }
    }
    // Regressions first: highest last/first ratio on top, rows without a
    // ratio at the bottom; ties broken by the identifying fields so the
    // order is total and deterministic.
    rows.sort_by(|a, b| {
        let ra = a.ratio.unwrap_or(f64::NEG_INFINITY);
        let rb = b.ratio.unwrap_or(f64::NEG_INFINITY);
        rb.partial_cmp(&ra)
            .expect("ratios are finite")
            .then_with(|| {
                (&a.config, &a.benchmark, &a.model, &a.key).cmp(&(
                    &b.config,
                    &b.benchmark,
                    &b.model,
                    &b.key,
                ))
            })
    });

    let complete: Vec<&TrendRow> = rows
        .iter()
        .filter(|r| r.cycles.iter().all(Option::is_some))
        .collect();
    let totals: Vec<Option<u64>> = (0..stores.len())
        .map(|col| {
            if complete.is_empty() {
                None
            } else {
                Some(
                    complete
                        .iter()
                        .map(|r| r.cycles[col].expect("row is complete"))
                        .sum(),
                )
            }
        })
        .collect();

    StoreTrend {
        columns,
        spec_name,
        fingerprint,
        warnings,
        rows,
        totals,
    }
}

/// Trend table: totals, then one row per run key (regressions first).
pub fn trend_md(t: &StoreTrend) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Trend report — {} (fingerprint {})\n\n",
        t.spec_name, t.fingerprint
    ));
    out.push_str(
        "Cycles per run key across the stores (columns in CLI order); \
         ratio = last present / first present, regressions (above 1.000x) \
         first.\n",
    );
    for w in &t.warnings {
        out.push_str(&format!("\n> **warning**: {w}\n"));
    }

    out.push_str("\n## Totals (complete rows only)\n\n");
    out.push_str("| store | total cycles |\n|:--|--:|\n");
    for (i, total) in t.totals.iter().enumerate() {
        out.push_str(&format!(
            "| `{}` | {} |\n",
            t.columns[i],
            total.map_or("-".to_string(), |c| c.to_string())
        ));
    }

    out.push_str("\n## Per-run cycles\n\n");
    out.push_str("| design point | benchmark | model |");
    for c in &t.columns {
        out.push_str(&format!(" `{c}` |"));
    }
    out.push_str(" ratio |\n|:--|:--|:--|");
    for _ in &t.columns {
        out.push_str("--:|");
    }
    out.push_str("--:|\n");
    for r in &t.rows {
        out.push_str(&format!(
            "| `{}` | {} | {} |",
            r.config, r.benchmark, r.model
        ));
        for c in &r.cycles {
            out.push_str(&format!(
                " {} |",
                c.map_or("-".to_string(), |c| c.to_string())
            ));
        }
        out.push_str(&format!(
            " {} |\n",
            r.ratio.map_or("-".to_string(), |x| format!("{x:.3}x"))
        ));
    }
    out.push_str(&format!(
        "\n{} run keys over {} stores; {} complete in every store.\n",
        t.rows.len(),
        t.columns.len(),
        t.rows
            .iter()
            .filter(|r| r.cycles.iter().all(Option::is_some))
            .count()
    ));
    out
}

/// Line chart of per-benchmark total cycles (complete rows only) per store.
pub fn trend_svg(t: &StoreTrend) -> String {
    let mut benchmarks: Vec<String> = t
        .rows
        .iter()
        .filter(|r| r.cycles.iter().all(Option::is_some))
        .map(|r| r.benchmark.clone())
        .collect();
    benchmarks.sort();
    benchmarks.dedup();
    let series: Vec<Series> = benchmarks
        .into_iter()
        .map(|b| {
            let rows: Vec<&TrendRow> = t
                .rows
                .iter()
                .filter(|r| r.benchmark == b && r.cycles.iter().all(Option::is_some))
                .collect();
            Series {
                name: b,
                values: (0..t.columns.len())
                    .map(|col| {
                        Some(
                            rows.iter()
                                .map(|r| r.cycles[col].expect("row is complete") as f64)
                                .sum(),
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    line_chart(
        &format!("trend — {} (complete rows)", t.spec_name),
        "total cycles",
        &t.columns,
        &series,
    )
}

/// One entry of the `BENCH_sim.json` trajectory, normalized: legacy entries
/// without `host`/`commit`/`unix_time` read as `"unknown"`/0 instead of
/// erroring or being skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    pub host: String,
    pub commit: String,
    pub unix_time: u64,
    pub repeat: u64,
    pub table2_wall_seconds: Option<f64>,
    pub synthetic_wall_seconds: Option<f64>,
    /// Simulated-cycles-per-second of the two workloads.
    pub table2_scps: Option<f64>,
    pub synthetic_scps: Option<f64>,
}

impl BenchPoint {
    /// X-axis label: ordinal plus commit, unique even when commits repeat.
    pub fn label(&self, ordinal: usize) -> String {
        format!("{}:{}", ordinal + 1, self.commit)
    }
}

/// Parse a trajectory document: a JSON array of entries, or (oldest form)
/// one bare entry object.  Entries missing the stamp fields normalize to
/// `"unknown"`/0; a malformed entry is an error naming its index.
pub fn parse_trajectory(doc: &Json) -> Result<Vec<BenchPoint>, String> {
    let entries: Vec<&Json> = match doc {
        Json::Arr(items) => items.iter().collect(),
        obj @ Json::Obj(_) => vec![obj],
        _ => return Err("trajectory is neither a JSON array nor an entry object".into()),
    };
    let mut points = Vec::with_capacity(entries.len());
    for (i, e) in entries.into_iter().enumerate() {
        if !matches!(e, Json::Obj(_)) {
            return Err(format!("trajectory entry {} is not an object", i + 1));
        }
        let text = |k: &str| {
            e.get(k)
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        let scps = |k: &str| {
            e.get(k)
                .and_then(|w| w.get("simulated_cycles_per_second"))
                .and_then(Json::as_f64)
        };
        points.push(BenchPoint {
            host: text("host"),
            commit: text("commit"),
            unix_time: e.get("unix_time").and_then(Json::as_u64).unwrap_or(0),
            repeat: e.get("repeat").and_then(Json::as_u64).unwrap_or(1),
            table2_wall_seconds: e.get("table2_wall_seconds").and_then(Json::as_f64),
            synthetic_wall_seconds: e.get("synthetic_wall_seconds").and_then(Json::as_f64),
            table2_scps: scps("table2"),
            synthetic_scps: scps("synthetic"),
        });
    }
    Ok(points)
}

/// Throughput-over-commits table of the trajectory.
pub fn bench_trend_md(points: &[BenchPoint]) -> String {
    let mut out = String::new();
    out.push_str("# Bench trajectory\n\n");
    out.push_str(
        "Simulated-cycles-per-second per trajectory entry (newest last); \
         `unknown` marks entries from before host/commit stamping.\n\n",
    );
    out.push_str("| entry | host | commit | table2 scps | synthetic scps | table2 wall s | synthetic wall s |\n");
    out.push_str("|:--|:--|:--|--:|--:|--:|--:|\n");
    let num = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.0}"));
    let secs = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.3}"));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "| {} | {} | `{}` | {} | {} | {} | {} |\n",
            i + 1,
            p.host,
            p.commit,
            num(p.table2_scps),
            num(p.synthetic_scps),
            secs(p.table2_wall_seconds),
            secs(p.synthetic_wall_seconds),
        ));
    }
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        if points.len() >= 2 {
            if let (Some(a), Some(b)) = (first.synthetic_scps, last.synthetic_scps) {
                out.push_str(&format!(
                    "\nSynthetic throughput last/first: {:.3}x (above 1.000x the \
                     simulator got faster).\n",
                    b / a
                ));
            }
        }
    }
    out
}

/// Line chart of table2/synthetic throughput over commits.
pub fn bench_trend_svg(points: &[BenchPoint]) -> String {
    let labels: Vec<String> = points.iter().enumerate().map(|(i, p)| p.label(i)).collect();
    let series = vec![
        Series {
            name: "table2 scps".to_string(),
            values: points.iter().map(|p| p.table2_scps).collect(),
        },
        Series {
            name: "synthetic scps".to_string(),
            values: points.iter().map(|p| p.synthetic_scps).collect(),
        },
    ];
    line_chart(
        "bench trajectory — simulated cycles per second",
        "simulated cycles/s",
        &labels,
        &series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::tests::record;

    fn store(path: &str, records: &[(&str, &str, u64)]) -> LoadedStore {
        let text: String = records
            .iter()
            .map(|(k, b, c)| format!("{}\n", record(k, b, *c).to_json().render()))
            .collect();
        let mut s = LoadedStore::from_text(&text);
        s.path = std::path::PathBuf::from(path);
        s
    }

    #[test]
    fn store_trend_joins_by_key_and_sorts_regressions_first() {
        let a = store(
            "night1.jsonl",
            &[
                ("aaaa000011112222", "GSM_DEC", 1000),
                ("bbbb000011112222", "GSM_ENC", 2000),
                ("cccc000011112222", "GSM_DEC", 500),
            ],
        );
        let b = store(
            "night2.jsonl",
            &[
                ("aaaa000011112222", "GSM_DEC", 1100), // regressed 1.1x
                ("bbbb000011112222", "GSM_ENC", 1800), // improved 0.9x
                ("dddd000011112222", "GSM_ENC", 300),  // new key
            ],
        );
        let t = store_trend(&[&a, &b]);
        assert_eq!(t.columns, vec!["1:night1", "2:night2"]);
        assert_eq!(t.rows.len(), 4);
        // Worst ratio first, single-column rows (no ratio) last.
        assert_eq!(t.rows[0].key, "aaaa000011112222");
        assert_eq!(t.rows[0].ratio, Some(1.1));
        assert_eq!(t.rows[1].ratio, Some(0.9));
        assert!(t.rows[2].ratio.is_none() && t.rows[3].ratio.is_none());
        // Totals cover only the two complete rows: 1000+2000 vs 1100+1800.
        assert_eq!(t.totals, vec![Some(3000), Some(2900)]);
        // Headerless stores warn once the reference is also headerless —
        // here there is no headered reference at all, so no warnings.
        assert!(t.warnings.is_empty());
        assert_eq!(t.spec_name, "(headerless)");

        let md = trend_md(&t);
        assert!(md.contains("| `1:night1` | 3000 |"), "{md}");
        assert!(
            md.contains("| `2w/vu1/ln2` | GSM_DEC | Realistic | 1000 | 1100 | 1.100x |"),
            "{md}"
        );
        assert!(
            md.contains("| `2w/vu1/ln2` | GSM_ENC | Realistic | - | 300 | - |"),
            "{md}"
        );
        assert!(md.contains("4 run keys over 2 stores; 2 complete in every store."));
        assert_eq!(md, trend_md(&t), "byte-deterministic");

        let svg = trend_svg(&t);
        assert!(svg.contains("GSM_DEC") && svg.contains("GSM_ENC"));
        assert_eq!(svg, trend_svg(&t));
    }

    #[test]
    fn fingerprint_mismatches_and_missing_headers_warn() {
        let header = |name: &str, fp: &str| {
            vmv_sweep::StoreHeader {
                name: name.to_string(),
                fingerprint: fp.to_string(),
                spec: Json::Obj(vec![]),
            }
            .to_json()
            .render()
        };
        let rec = record("aaaa000011112222", "GSM_DEC", 10).to_json().render();
        let mut a = LoadedStore::from_text(&format!("{}\n{rec}\n", header("exp_a", "aaaa")));
        a.path = "a.jsonl".into();
        let mut b = LoadedStore::from_text(&format!("{}\n{rec}\n", header("exp_b", "bbbb")));
        b.path = "b.jsonl".into();
        let mut c = LoadedStore::from_text(&format!("{rec}\n"));
        c.path = "c.jsonl".into();

        let t = store_trend(&[&a, &b, &c]);
        assert_eq!(t.spec_name, "exp_a");
        assert_eq!(t.fingerprint, "aaaa");
        assert_eq!(t.warnings.len(), 2);
        assert!(t.warnings[0].contains("differs from reference"));
        assert!(t.warnings[1].contains("no spec header"));
        assert!(trend_md(&t).contains("**warning**"));
    }

    #[test]
    fn committed_trajectory_normalizes_the_legacy_first_entry() {
        // The repo's own BENCH_sim.json: entry 1 predates host/commit
        // stamping and must render as "unknown", not be skipped.
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json"))
                .expect("committed trajectory exists");
        let points = parse_trajectory(&Json::parse(&text).unwrap()).unwrap();
        assert!(points.len() >= 2);
        assert_eq!(points[0].host, "unknown");
        assert_eq!(points[0].commit, "unknown");
        assert_eq!(points[0].unix_time, 0);
        assert!(points[0].synthetic_scps.unwrap() > 0.0);
        assert_ne!(
            points[1].host, "unknown",
            "stamped entries keep their stamp"
        );
        assert_ne!(points[1].commit, "unknown");

        let md = bench_trend_md(&points);
        assert!(md.contains("| 1 | unknown | `unknown` |"), "{md}");
        let svg = bench_trend_svg(&points);
        assert!(svg.contains("1:unknown"));
        assert_eq!(svg, bench_trend_svg(&points));
    }

    #[test]
    fn legacy_single_object_trajectory_parses_as_one_point() {
        let doc = Json::parse(r#"{"name":"bench_sim","repeat":1}"#).unwrap();
        let points = parse_trajectory(&doc).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].commit, "unknown");
        assert_eq!(points[0].table2_scps, None);
        assert_eq!(points[0].label(0), "1:unknown");

        assert!(parse_trajectory(&Json::parse("3").unwrap()).is_err());
        assert!(parse_trajectory(&Json::parse("[3]").unwrap())
            .unwrap_err()
            .contains("entry 1"));
    }
}
