//! The query layer: recover the experiment from a store's spec header and
//! decode every record back to the swept axes.
//!
//! A headered store carries the full canonical spec, so the design points
//! can be re-expanded exactly as the sweep ran them and each record joined
//! to its point by content-derived run key — no spec file, no display-name
//! matching.  On top of the decode sit [`Filter`] (keep records whose axis
//! label, benchmark, variant, model or config matches) and
//! [`ResolvedStore::group_by`] (partition records by an axis), which the
//! analysis passes then consume unchanged.

use std::collections::{BTreeMap, HashMap};

use vmv_kernels::Benchmark;
use vmv_sweep::store::RunRecord;
use vmv_sweep::{run_key, SpecFile, SweepPoint};

use crate::loader::LoadedStore;

/// Error resolving or querying a store, with an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError {
    pub message: String,
}

impl ReportError {
    fn new(message: impl Into<String>) -> ReportError {
        ReportError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}
impl std::error::Error for ReportError {}

/// Pseudo-axes every record carries regardless of the spec.
const RECORD_FIELDS: &[&str] = &["benchmark", "variant", "model", "config"];

/// Whether `axis` is a record pseudo-axis — filterable straight off the
/// record fields, with no spec header needed.
pub fn is_record_field(axis: &str) -> bool {
    RECORD_FIELDS.contains(&axis)
}

/// The record's value on a pseudo-axis (`None` for spec axes).
pub fn record_field<'r>(record: &'r RunRecord, axis: &str) -> Option<&'r str> {
    match axis {
        "benchmark" => Some(&record.benchmark),
        "variant" => Some(&record.variant),
        "model" => Some(&record.model),
        "config" => Some(&record.config),
        _ => None,
    }
}

/// One `axis=value` predicate.  `axis` is a spec axis name (matched against
/// the point's label for that axis, e.g. `issue_width=2w`,
/// `mem_latency=dram100`) or one of the record pseudo-axes
/// (`benchmark=GSM_DEC`, `variant=vector`, `model=Realistic`, `config=...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    pub axis: String,
    pub value: String,
}

/// Parse an `axis=value` filter string.
pub fn parse_filter(s: &str) -> Result<Filter, ReportError> {
    match s.split_once('=') {
        Some((axis, value)) if !axis.is_empty() && !value.is_empty() => Ok(Filter {
            axis: axis.to_string(),
            value: value.to_string(),
        }),
        _ => Err(ReportError::new(format!(
            "filter '{s}' must have the form axis=value (e.g. issue_width=2w, \
             benchmark=GSM_DEC)"
        ))),
    }
}

/// A loaded store whose header spec has been re-expanded: the design points
/// the experiment swept, and an index decoding each run key back to
/// `(point, benchmark)`.
pub struct ResolvedStore {
    /// The spec recovered from the store header.
    pub spec: SpecFile,
    /// Design points in expansion (odometer) order.
    pub points: Vec<SweepPoint>,
    /// The benchmark subset the spec runs at every point.
    pub benchmarks: Vec<Benchmark>,
    /// Records from the store whose key matches the expansion.
    pub records: Vec<RunRecord>,
    /// Records whose key matches none of the expansion's runs (e.g. merged
    /// in from a different experiment, or produced under older parameter
    /// defaults).  They are excluded from `records`.
    pub unmatched: usize,
    /// Non-fatal notes (e.g. a header fingerprint that disagrees with the
    /// spec it carries).
    pub warnings: Vec<String>,
    index: HashMap<String, (usize, Benchmark)>,
}

impl ResolvedStore {
    /// Resolve a loaded store.  Fails with an actionable message when the
    /// store has no spec header (pareto/sensitivity need the design points,
    /// which only the header can recover) or the embedded spec is invalid.
    pub fn resolve(loaded: &LoadedStore) -> Result<ResolvedStore, ReportError> {
        let header = loaded.header.as_ref().ok_or_else(|| {
            ReportError::new(format!(
                "{} has no spec header, so the design points cannot be recovered \
                 (headered stores are written by `sweep --spec FILE` / `sweep --demo`); \
                 without one, `report compare` works on the record fields only \
                 (benchmark, variant, model, config) — spec-axis filters and \
                 group-bys, pareto and sensitivity all need the header",
                loaded.path.display()
            ))
        })?;
        let spec = SpecFile::from_json(&header.spec)
            .map_err(|e| ReportError::new(format!("store header carries an invalid spec: {e}")))?;
        let mut warnings = Vec::new();
        if spec.fingerprint() != header.fingerprint {
            warnings.push(format!(
                "header fingerprint {} disagrees with the spec it carries ({}); \
                 trusting the spec",
                header.fingerprint,
                spec.fingerprint()
            ));
        }
        let lowered = spec
            .lower()
            .map_err(|e| ReportError::new(format!("store header spec does not lower: {e}")))?;
        let points = lowered.spec.expand().points;
        let mut index = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            let variant = vmv_core::variant_for(&p.machine);
            for &benchmark in &lowered.benchmarks {
                index.insert(
                    run_key(benchmark, variant, &p.machine, p.model),
                    (i, benchmark),
                );
            }
        }
        let (records, orphans): (Vec<RunRecord>, Vec<RunRecord>) = loaded
            .records
            .iter()
            .cloned()
            .partition(|r| index.contains_key(&r.key));
        Ok(ResolvedStore {
            spec,
            points,
            benchmarks: lowered.benchmarks,
            records,
            unmatched: orphans.len(),
            warnings,
            index,
        })
    }

    /// Decode a record to its design point and benchmark, by run key.
    pub fn decode(&self, record: &RunRecord) -> Option<(&SweepPoint, Benchmark)> {
        self.index
            .get(&record.key)
            .map(|&(i, b)| (&self.points[i], b))
    }

    /// Axis names valid in filters and group-bys: the spec's axes plus the
    /// record pseudo-axes.  The `benchmarks` pseudo-axis is excluded — it
    /// selects the spec's job subset and labels no point; per-record
    /// benchmark queries go through the `benchmark` field.
    pub fn known_axes(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .spec
            .axes
            .iter()
            .map(|a| a.name().to_string())
            .filter(|a| a != "benchmarks")
            .collect();
        names.extend(RECORD_FIELDS.iter().map(|s| s.to_string()));
        names
    }

    /// Validate an axis name against this store, erroring with the known
    /// list otherwise.
    pub fn check_axis(&self, axis: &str) -> Result<(), ReportError> {
        if self.known_axes().iter().any(|a| a == axis) {
            Ok(())
        } else if axis == "benchmarks" {
            Err(ReportError::new(
                "axis 'benchmarks' selects the spec's job subset and labels no \
                 run; filter with benchmark=NAME instead",
            ))
        } else {
            Err(ReportError::new(format!(
                "unknown axis '{axis}' (this store's axes: {})",
                self.known_axes().join(", ")
            )))
        }
    }

    /// The value a record exposes for `axis`: the point label for spec
    /// axes, the record field for pseudo-axes.  `None` when the record
    /// cannot be decoded or the point does not label that axis (e.g. the
    /// `benchmarks` pseudo-axis).
    fn axis_value<'r>(&'r self, record: &'r RunRecord, axis: &str) -> Option<&'r str> {
        if is_record_field(axis) {
            return record_field(record, axis);
        }
        let (point, _) = self.decode(record)?;
        point
            .labels
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }

    /// The value a *run key* exposes for `axis`, derived purely from the
    /// decoded design point — usable for rows (e.g. compare joins) that no
    /// longer carry the full record.
    pub fn key_axis_value(&self, key: &str, axis: &str) -> Option<String> {
        let &(i, benchmark) = self.index.get(key)?;
        let point = &self.points[i];
        match axis {
            "benchmark" => Some(benchmark.name().to_string()),
            "variant" => Some(vmv_core::variant_for(&point.machine).name().to_string()),
            "model" => Some(format!("{:?}", point.model)),
            "config" => Some(point.name.clone()),
            _ => point
                .labels
                .iter()
                .find(|(a, _)| a == axis)
                .map(|(_, v)| v.clone()),
        }
    }

    /// Records passing every filter (conjunction).  Unknown axis names are
    /// an error naming the axes this store actually has.
    pub fn filter_records(&self, filters: &[Filter]) -> Result<Vec<RunRecord>, ReportError> {
        for f in filters {
            self.check_axis(&f.axis)?;
        }
        Ok(self
            .records
            .iter()
            .filter(|r| {
                filters
                    .iter()
                    .all(|f| self.axis_value(r, &f.axis) == Some(f.value.as_str()))
            })
            .cloned()
            .collect())
    }

    /// Partition `records` by their value on `axis`, in deterministic
    /// (sorted-by-value) order.  Records without a value on that axis are
    /// dropped.
    pub fn group_by(
        &self,
        records: &[RunRecord],
        axis: &str,
    ) -> Result<BTreeMap<String, Vec<RunRecord>>, ReportError> {
        self.check_axis(axis)?;
        let mut groups: BTreeMap<String, Vec<RunRecord>> = BTreeMap::new();
        for r in records {
            if let Some(v) = self.axis_value(r, axis) {
                groups.entry(v.to_string()).or_default().push(r.clone());
            }
        }
        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_sweep::{run_sweep, ExecOptions};

    /// A tiny spec swept in-memory: 2 lane values × 2 latencies, GSM_DEC.
    fn resolved_demo() -> ResolvedStore {
        let spec = SpecFile::parse(
            r#"{"name": "tiny", "axes": [
                {"axis": "vector_lanes", "values": [1, 4]},
                {"axis": "mem_latency", "values": [100, 500]},
                {"axis": "benchmarks", "values": ["GSM_DEC"]}]}"#,
        )
        .unwrap();
        let lowered = spec.lower().unwrap();
        let points = lowered.spec.expand().points;
        let report = run_sweep(&points, &ExecOptions::for_spec(&lowered, 1), None).unwrap();
        let mut text = format!("{}\n", spec.store_header().to_json().render());
        for r in &report.records {
            text.push_str(&r.to_json().render());
            text.push('\n');
        }
        ResolvedStore::resolve(&LoadedStore::from_text(&text)).unwrap()
    }

    #[test]
    fn resolve_decodes_every_record_to_its_point() {
        let resolved = resolved_demo();
        assert_eq!(resolved.points.len(), 4);
        assert_eq!(resolved.benchmarks, vec![Benchmark::GsmDec]);
        assert_eq!(resolved.records.len(), 4);
        assert_eq!(resolved.unmatched, 0);
        assert!(resolved.warnings.is_empty());
        for r in &resolved.records {
            let (point, benchmark) = resolved.decode(r).expect("every record decodes");
            assert_eq!(benchmark, Benchmark::GsmDec);
            assert_eq!(point.name, r.config);
        }
    }

    #[test]
    fn filters_match_axis_labels_and_record_fields() {
        let resolved = resolved_demo();
        let ln4 = resolved
            .filter_records(&[parse_filter("vector_lanes=ln4").unwrap()])
            .unwrap();
        assert_eq!(ln4.len(), 2);
        assert!(ln4.iter().all(|r| r.config.starts_with("ln4/")));

        let both = resolved
            .filter_records(&[
                parse_filter("vector_lanes=ln4").unwrap(),
                parse_filter("mem_latency=dram100").unwrap(),
            ])
            .unwrap();
        assert_eq!(both.len(), 1);
        assert_eq!(both[0].config, "ln4/dram100");

        let bench = resolved
            .filter_records(&[parse_filter("benchmark=GSM_DEC").unwrap()])
            .unwrap();
        assert_eq!(bench.len(), 4);
        let none = resolved
            .filter_records(&[parse_filter("benchmark=GSM_ENC").unwrap()])
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn unknown_filter_axes_error_with_the_known_list() {
        let resolved = resolved_demo();
        let err = resolved
            .filter_records(&[parse_filter("lanes=4").unwrap()])
            .unwrap_err();
        assert!(err.message.contains("unknown axis 'lanes'"), "{err}");
        assert!(err.message.contains("vector_lanes"), "{err}");
        assert!(err.message.contains("benchmark"), "{err}");
        assert!(parse_filter("no-equals-sign").is_err());
        assert!(parse_filter("=x").is_err());
    }

    #[test]
    fn benchmarks_pseudo_axis_is_rejected_with_a_hint() {
        // The spec declares a `benchmarks` axis, but it labels no run: a
        // filter on it must error towards `benchmark=` instead of silently
        // matching nothing.
        let resolved = resolved_demo();
        assert!(!resolved.known_axes().iter().any(|a| a == "benchmarks"));
        let err = resolved
            .filter_records(&[parse_filter("benchmarks=GSM_DEC").unwrap()])
            .unwrap_err();
        assert!(err.message.contains("benchmark=NAME"), "{err}");
        assert!(resolved.group_by(&resolved.records, "benchmarks").is_err());
    }

    #[test]
    fn group_by_partitions_deterministically() {
        let resolved = resolved_demo();
        let groups = resolved.group_by(&resolved.records, "mem_latency").unwrap();
        let keys: Vec<&String> = groups.keys().collect();
        assert_eq!(keys, vec!["dram100", "dram500"]);
        assert!(groups.values().all(|g| g.len() == 2));
    }

    #[test]
    fn headerless_stores_resolve_to_an_actionable_error() {
        let loaded = LoadedStore::from_text("");
        let err = match ResolvedStore::resolve(&loaded) {
            Err(e) => e,
            Ok(_) => panic!("headerless store must not resolve"),
        };
        assert!(err.message.contains("no spec header"), "{err}");
        assert!(err.message.contains("report compare"), "{err}");
    }

    #[test]
    fn foreign_records_count_as_unmatched() {
        let spec = SpecFile::parse(
            r#"{"name": "tiny", "axes": [
                {"axis": "vector_lanes", "values": [1]},
                {"axis": "benchmarks", "values": ["GSM_DEC"]}]}"#,
        )
        .unwrap();
        let foreign = crate::loader::tests::record("dead000011112222", "GSM_DEC", 10);
        let text = format!(
            "{}\n{}\n",
            spec.store_header().to_json().render(),
            foreign.to_json().render()
        );
        let resolved = ResolvedStore::resolve(&LoadedStore::from_text(&text)).unwrap();
        assert_eq!(resolved.unmatched, 1);
        assert!(resolved.records.is_empty());
    }
}
