//! Explain why two stores disagree: diff the canonical specs their headers
//! carry, axis by axis.
//!
//! `report compare`/`report trend` join stores by content-derived run key,
//! so mixed experiments still "work" — runs simply fail to match.  This
//! pass names the cause in one command: for every axis either store sweeps,
//! the values only one of them has; plus axes and constraints present in
//! only one spec.

use vmv_sweep::{Json, StoreHeader};

/// One axis's disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisDiff {
    pub axis: String,
    /// Canonically rendered values only the store sweeps.
    pub only_in_store: Vec<String>,
    /// Values only the baseline sweeps.
    pub only_in_baseline: Vec<String>,
}

/// The full spec diff between a store and a baseline header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecDiff {
    pub store_name: String,
    pub baseline_name: String,
    pub store_fingerprint: String,
    pub baseline_fingerprint: String,
    /// The canonical spec JSON matches byte-for-byte.  Can be false while
    /// the diff [`is_empty`](SpecDiff::is_empty): the fingerprint hashes
    /// only axes + constraints, so `defaults`/name changes land here.
    pub specs_identical: bool,
    /// Axes with any value disagreement (axes missing from one spec list
    /// every value of the other side), spec order (store first, then
    /// baseline-only axes).
    pub axes: Vec<AxisDiff>,
    /// Canonically rendered constraints present in exactly one spec.
    pub only_constraints_in_store: Vec<String>,
    pub only_constraints_in_baseline: Vec<String>,
}

impl SpecDiff {
    /// No disagreement at all (fingerprints may still differ on `defaults`,
    /// which do not affect the swept points).
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
            && self.only_constraints_in_store.is_empty()
            && self.only_constraints_in_baseline.is_empty()
    }
}

/// Canonically rendered `values` per axis, in spec order.
fn axis_values(spec: &Json) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    if let Some(Json::Arr(axes)) = spec.get("axes") {
        for a in axes {
            let name = a
                .get("axis")
                .and_then(Json::as_str)
                .unwrap_or("(unnamed)")
                .to_string();
            let values = match a.get("values") {
                Some(Json::Arr(vs)) => vs.iter().map(Json::render).collect(),
                Some(other) => vec![other.render()],
                None => Vec::new(),
            };
            out.push((name, values));
        }
    }
    out
}

/// Canonically rendered constraint entries.
fn constraints(spec: &Json) -> Vec<String> {
    match spec.get("constraints") {
        Some(Json::Arr(cs)) => cs.iter().map(Json::render).collect(),
        _ => Vec::new(),
    }
}

/// Diff the canonical specs of two store headers.
pub fn diff_specs(store: &StoreHeader, baseline: &StoreHeader) -> SpecDiff {
    let store_axes = axis_values(&store.spec);
    let baseline_axes = axis_values(&baseline.spec);
    let mut axes = Vec::new();
    for (name, values) in &store_axes {
        let other: &[String] = baseline_axes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[]);
        let only_in_store: Vec<String> = values
            .iter()
            .filter(|v| !other.contains(v))
            .cloned()
            .collect();
        let only_in_baseline: Vec<String> = other
            .iter()
            .filter(|v| !values.contains(v))
            .cloned()
            .collect();
        if !only_in_store.is_empty() || !only_in_baseline.is_empty() {
            axes.push(AxisDiff {
                axis: name.clone(),
                only_in_store,
                only_in_baseline,
            });
        }
    }
    for (name, values) in &baseline_axes {
        if !store_axes.iter().any(|(n, _)| n == name) {
            axes.push(AxisDiff {
                axis: name.clone(),
                only_in_store: Vec::new(),
                only_in_baseline: values.clone(),
            });
        }
    }

    let store_cs = constraints(&store.spec);
    let baseline_cs = constraints(&baseline.spec);
    SpecDiff {
        store_name: store.name.clone(),
        baseline_name: baseline.name.clone(),
        store_fingerprint: store.fingerprint.clone(),
        baseline_fingerprint: baseline.fingerprint.clone(),
        specs_identical: store.spec.render() == baseline.spec.render(),
        only_constraints_in_store: store_cs
            .iter()
            .filter(|c| !baseline_cs.contains(c))
            .cloned()
            .collect(),
        only_constraints_in_baseline: baseline_cs
            .iter()
            .filter(|c| !store_cs.contains(c))
            .cloned()
            .collect(),
        axes,
    }
}

/// Markdown rendering of the diff.
pub fn diff_specs_md(d: &SpecDiff) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Spec diff — {} (fingerprint {}) vs. baseline {} (fingerprint {})\n\n",
        d.store_name, d.store_fingerprint, d.baseline_name, d.baseline_fingerprint
    ));
    if d.is_empty() {
        out.push_str(if d.specs_identical {
            "The specs are identical.\n"
        } else {
            "The swept axes and constraints agree; the specs differ only on \
             fields that do not affect the design points (e.g. `defaults` or \
             the spec name).\n"
        });
        return out;
    }
    out.push_str("| axis | only in store | only in baseline |\n|:--|:--|:--|\n");
    for a in &d.axes {
        let side = |vals: &[String]| {
            if vals.is_empty() {
                "-".to_string()
            } else {
                vals.iter()
                    .map(|v| format!("`{v}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            a.axis,
            side(&a.only_in_store),
            side(&a.only_in_baseline)
        ));
    }
    for (label, cs) in [
        ("store", &d.only_constraints_in_store),
        ("baseline", &d.only_constraints_in_baseline),
    ] {
        if !cs.is_empty() {
            out.push_str(&format!("\nConstraints only in the {label}:\n"));
            for c in cs {
                out.push_str(&format!("- `{c}`\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_sweep::SpecFile;

    fn header_of(spec_text: &str) -> StoreHeader {
        SpecFile::parse(spec_text).unwrap().store_header()
    }

    #[test]
    fn value_and_axis_differences_are_named_per_side() {
        let store = header_of(
            r#"{"name": "a", "axes": [
                {"axis": "mem_latency", "values": [100, 300]},
                {"axis": "vector_lanes", "values": [2, 4]}
            ]}"#,
        );
        let baseline = header_of(
            r#"{"name": "b", "axes": [
                {"axis": "mem_latency", "values": [100, 500]},
                {"axis": "l2_banks", "values": [2]}
            ]}"#,
        );
        let d = diff_specs(&store, &baseline);
        assert!(!d.is_empty());
        assert_eq!(d.axes.len(), 3);
        assert_eq!(d.axes[0].axis, "mem_latency");
        assert_eq!(d.axes[0].only_in_store, vec!["300"]);
        assert_eq!(d.axes[0].only_in_baseline, vec!["500"]);
        assert_eq!(d.axes[1].axis, "vector_lanes");
        assert_eq!(d.axes[1].only_in_store, vec!["2", "4"]);
        assert!(d.axes[1].only_in_baseline.is_empty());
        assert_eq!(d.axes[2].axis, "l2_banks");
        assert_eq!(d.axes[2].only_in_baseline, vec!["2"]);

        let md = diff_specs_md(&d);
        assert!(md.contains("| `mem_latency` | `300` | `500` |"), "{md}");
        assert!(md.contains("| `vector_lanes` | `2`, `4` | - |"), "{md}");
        assert_eq!(md, diff_specs_md(&d), "byte-deterministic");
    }

    #[test]
    fn identical_specs_diff_empty() {
        let a = header_of(r#"{"axes": [{"axis": "mem_latency", "values": [100]}]}"#);
        let d = diff_specs(&a, &a);
        assert!(d.is_empty());
        assert!(diff_specs_md(&d).contains("identical"));
    }

    #[test]
    fn default_only_differences_are_explained_not_listed() {
        let a = header_of(r#"{"axes": [{"axis": "mem_latency", "values": [100]}]}"#);
        let b = header_of(
            r#"{"axes": [{"axis": "mem_latency", "values": [100]}],
                "defaults": {"threads": 4}}"#,
        );
        let d = diff_specs(&a, &b);
        assert!(d.is_empty());
        // The fingerprint covers only axes + constraints, so it agrees...
        assert_eq!(d.store_fingerprint, d.baseline_fingerprint);
        // ...but the canonical specs differ, and the rendering says why.
        assert!(!d.specs_identical);
        assert!(diff_specs_md(&d).contains("do not affect the design points"));
    }

    #[test]
    fn constraint_differences_are_listed() {
        let a = header_of(
            r#"{"axes": [{"axis": "vector_lanes", "values": [2, 4]}],
                "constraints": [{"constraint": "lane_budget", "max": 8}]}"#,
        );
        let b = header_of(r#"{"axes": [{"axis": "vector_lanes", "values": [2, 4]}]}"#);
        let d = diff_specs(&a, &b);
        assert!(!d.is_empty());
        assert!(d.axes.is_empty());
        assert_eq!(d.only_constraints_in_store.len(), 1);
        assert!(d.only_constraints_in_store[0].contains("lane_budget"));
        assert!(diff_specs_md(&d).contains("Constraints only in the store"));
    }
}
