//! One self-contained static HTML page bundling every analysis — pareto,
//! sensitivity, compare, trend — with the SVG charts inlined.
//!
//! No scripts, no external assets, no timestamps: the page is a plain
//! string assembled from the same data structures the Markdown renderers
//! consume, byte-deterministic so `report html` output can be golden-tested
//! and archived per commit/night by CI.

use std::collections::BTreeMap;

use vmv_sweep::{AxisSensitivity, ParetoEntry};

use crate::compare::{CompareReport, CompareRow};
use crate::svg;
use crate::trend::{BenchPoint, StoreTrend};

/// HTML-escape text content and attribute values.
pub fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Column alignment of [`table`].
#[derive(Clone, Copy)]
pub enum Align {
    Left,
    Right,
    Center,
}

/// A plain data table.  Cell text is escaped here — callers pass raw
/// strings.
pub fn table(headers: &[(&str, Align)], rows: &[Vec<String>]) -> String {
    let class = |a: Align| match a {
        Align::Left => "l",
        Align::Right => "r",
        Align::Center => "c",
    };
    let mut out = String::from("<table>\n<thead><tr>");
    for (h, a) in headers {
        out.push_str(&format!("<th class=\"{}\">{}</th>", class(*a), esc(h)));
    }
    out.push_str("</tr></thead>\n<tbody>\n");
    for row in rows {
        out.push_str("<tr>");
        for (i, cell) in row.iter().enumerate() {
            let a = headers.get(i).map(|(_, a)| *a).unwrap_or(Align::Left);
            out.push_str(&format!("<td class=\"{}\">{}</td>", class(a), esc(cell)));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</tbody>\n</table>\n");
    out
}

/// One rendered page section: a stable `id=` anchor (fixed per section
/// kind, never derived from data), the heading for the table of contents,
/// and the rendered body.
#[derive(Debug, Clone)]
pub struct Section {
    pub id: &'static str,
    pub title: &'static str,
    pub html: String,
}

fn section(id: &'static str, heading: &'static str, body: String) -> Section {
    Section {
        id,
        title: heading,
        html: format!(
            "<section id=\"{id}\">\n<h2>{}</h2>\n{body}</section>\n",
            esc(heading)
        ),
    }
}

/// Pareto section: chart + cost/cycles table.
pub fn pareto_section(spec_name: &str, entries: &[ParetoEntry]) -> Section {
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                if e.on_frontier { "*" } else { "" }.to_string(),
                e.name.clone(),
                format!("{:.1}", e.cost),
                e.cycles.to_string(),
                e.benchmarks.to_string(),
            ]
        })
        .collect();
    let body = format!(
        "{}\n{}",
        svg::pareto_svg(&format!("{spec_name} — cost vs cycles"), entries),
        table(
            &[
                ("frontier", Align::Center),
                ("design point", Align::Left),
                ("cost", Align::Right),
                ("cycles", Align::Right),
                ("benchmarks", Align::Right),
            ],
            &rows,
        )
    );
    section("pareto", "Pareto frontier", body)
}

/// Sensitivity section: chart + per-axis swing table.
pub fn sensitivity_section(spec_name: &str, rows: &[AxisSensitivity]) -> Section {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.axis.clone(),
                r.groups.to_string(),
                format!("{:.3}x", r.mean_swing),
                format!("{:.3}x", r.max_swing),
            ]
        })
        .collect();
    let body = format!(
        "{}\n{}",
        svg::sensitivity_svg(&format!("{spec_name} — per-axis swing"), rows),
        table(
            &[
                ("axis", Align::Left),
                ("groups", Align::Right),
                ("mean swing", Align::Right),
                ("max swing", Align::Right),
            ],
            &table_rows,
        )
    );
    section("sensitivity", "Axis sensitivity", body)
}

/// Compare section: summary table, per-group geomeans, worst rows.
pub fn compare_section(
    baseline_name: &str,
    report: &CompareReport,
    groups: &BTreeMap<String, Vec<CompareRow>>,
) -> Section {
    let summary = table(
        &[("metric", Align::Left), ("value", Align::Right)],
        &[
            vec!["matched runs".into(), report.rows.len().to_string()],
            vec![
                "geometric-mean speedup".into(),
                format!("{:.3}x", report.geomean_speedup),
            ],
            vec![
                "regressions (speedup < 1)".into(),
                report.regressions.to_string(),
            ],
            vec![
                "worst regression".into(),
                format!("{:.2}%", report.worst_regression_pct()),
            ],
            vec![
                "only in store / only in baseline".into(),
                format!("{} / {}", report.only_in_store, report.only_in_baseline),
            ],
        ],
    );
    let group_rows: Vec<Vec<String>> = groups
        .iter()
        .map(|(value, rows)| {
            let worst = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
            vec![
                value.clone(),
                rows.len().to_string(),
                format!("{:.3}x", crate::compare::geomean(rows)),
                format!("{:.3}x", if worst.is_finite() { worst } else { 1.0 }),
            ]
        })
        .collect();
    let per_run: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.benchmark.clone(),
                r.model.clone(),
                r.baseline_cycles.to_string(),
                r.cycles.to_string(),
                format!("{:.3}x", r.speedup),
            ]
        })
        .collect();
    let body = format!(
        "<p>vs. baseline <code>{}</code> — runs joined by content-derived key; \
         speedup above 1.000x means this store is faster.</p>\n{summary}\n\
         <h3>By group</h3>\n{}\n<h3>Per run (worst first)</h3>\n{}",
        esc(baseline_name),
        table(
            &[
                ("group", Align::Left),
                ("runs", Align::Right),
                ("geomean speedup", Align::Right),
                ("worst speedup", Align::Right),
            ],
            &group_rows,
        ),
        table(
            &[
                ("design point", Align::Left),
                ("benchmark", Align::Left),
                ("model", Align::Left),
                ("baseline cycles", Align::Right),
                ("cycles", Align::Right),
                ("speedup", Align::Right),
            ],
            &per_run,
        )
    );
    section("compare", "Compare", body)
}

/// Trend section: cycles-over-stores chart + the per-run table.
pub fn trend_section(t: &StoreTrend) -> Section {
    let mut body = String::new();
    for w in &t.warnings {
        body.push_str(&format!("<p class=\"warn\">warning: {}</p>\n", esc(w)));
    }
    body.push_str(&crate::trend::trend_svg(t));
    let mut headers: Vec<(&str, Align)> = vec![
        ("design point", Align::Left),
        ("benchmark", Align::Left),
        ("model", Align::Left),
    ];
    for c in &t.columns {
        headers.push((c, Align::Right));
    }
    headers.push(("ratio", Align::Right));
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.config.clone(), r.benchmark.clone(), r.model.clone()];
            for c in &r.cycles {
                row.push(c.map_or("-".to_string(), |c| c.to_string()));
            }
            row.push(r.ratio.map_or("-".to_string(), |x| format!("{x:.3}x")));
            row
        })
        .collect();
    body.push_str(&table(&headers, &rows));
    section("trend", "Trend over stores", body)
}

/// Bench-trajectory section: throughput chart + per-entry table.
pub fn bench_section(points: &[BenchPoint]) -> Section {
    let mut body = crate::trend::bench_trend_svg(points);
    let num = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.0}"));
    let rows: Vec<Vec<String>> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                (i + 1).to_string(),
                p.host.clone(),
                p.commit.clone(),
                num(p.table2_scps),
                num(p.synthetic_scps),
            ]
        })
        .collect();
    body.push_str(&table(
        &[
            ("entry", Align::Right),
            ("host", Align::Left),
            ("commit", Align::Left),
            ("table2 scps", Align::Right),
            ("synthetic scps", Align::Right),
        ],
        &rows,
    ));
    section("bench", "Bench trajectory", body)
}

/// Profile section: per-benchmark stall-cause stacked bars + totals table,
/// from the `vmv-profile/1` documents a profiled sweep left next to the
/// store.
pub fn profile_section(docs: &[vmv_sweep::ProfileDoc]) -> Section {
    let rows = crate::profile::stalls_by_benchmark(docs);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, stalls)| {
            vec![
                name.clone(),
                docs.iter()
                    .filter(|d| &d.meta.benchmark == name)
                    .count()
                    .to_string(),
                stalls.iter().sum::<u64>().to_string(),
                crate::profile::top_stall(stalls).to_string(),
            ]
        })
        .collect();
    let body = format!(
        "<p>{} profiled runs — stall cycles by cause, summed per benchmark; \
         attributed cycles sum exactly to each run's cycle count \
         (<code>report profile</code> drills into one run).</p>\n{}\n{}",
        docs.len(),
        crate::profile::stall_stacked_svg(&rows),
        table(
            &[
                ("benchmark", Align::Left),
                ("runs", Align::Right),
                ("stall cycles", Align::Right),
                ("top stall cause", Align::Left),
            ],
            &table_rows,
        )
    );
    section("profile", "Profile", body)
}

/// Assemble the page: fixed minimal CSS, a table of contents anchored on
/// the sections' stable ids, the sections in caller order, nothing
/// machine- or time-dependent.
pub fn page(title: &str, subtitle: &str, sections: &[Section]) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>{}</title>\n", esc(title)));
    out.push_str(
        "<style>\n\
         body{font-family:monospace;max-width:960px;margin:2em auto;padding:0 1em;color:#111}\n\
         h1{font-size:1.5em}h2{font-size:1.2em;border-bottom:1px solid #d1d5db;padding-bottom:.2em}\n\
         table{border-collapse:collapse;margin:1em 0}\n\
         th,td{border:1px solid #d1d5db;padding:.25em .6em}\n\
         th{background:#f3f4f6}.r{text-align:right}.c{text-align:center}.l{text-align:left}\n\
         .warn{color:#b45309}\n\
         svg{max-width:100%;height:auto}\n\
         nav#toc ul{list-style:none;padding:0;margin:.5em 0}\n\
         nav#toc li{display:inline-block;margin-right:1.2em}\n\
         </style>\n</head>\n<body>\n",
    );
    out.push_str(&format!("<h1>{}</h1>\n", esc(title)));
    if !subtitle.is_empty() {
        out.push_str(&format!("<p>{}</p>\n", esc(subtitle)));
    }
    out.push_str("<nav id=\"toc\"><ul>\n");
    for s in sections {
        out.push_str(&format!(
            "<li><a href=\"#{}\">{}</a></li>\n",
            s.id,
            esc(s.title)
        ));
    }
    out.push_str("</ul></nav>\n");
    for s in sections {
        out.push_str(&s.html);
    }
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_escapes_and_aligns() {
        let t = table(
            &[("name <&>", Align::Left), ("n", Align::Right)],
            &[vec!["a\"b".to_string(), "1".to_string()]],
        );
        assert!(t.contains("name &lt;&amp;&gt;"));
        assert!(t.contains("a&quot;b"));
        assert!(t.contains("<td class=\"r\">1</td>"));
    }

    #[test]
    fn page_is_deterministic_and_self_contained() {
        let sections = vec![section("x", "X <section>", "<p>body</p>\n".to_string())];
        let a = page("observatory", "demo store", &sections);
        assert_eq!(a, page("observatory", "demo store", &sections));
        assert!(a.starts_with("<!DOCTYPE html>"));
        assert!(a.ends_with("</html>\n"));
        assert!(a.contains("X &lt;section&gt;"));
        assert!(
            !a.contains("http://") || a.contains("www.w3.org"),
            "no external assets"
        );
        assert!(!a.contains("<script"), "no scripts");
    }

    #[test]
    fn page_toc_links_every_section_anchor() {
        let sections = vec![
            section("alpha", "Alpha", "<p>a</p>\n".to_string()),
            section("beta", "Beta", "<p>b</p>\n".to_string()),
        ];
        let a = page("observatory", "", &sections);
        assert!(a.contains("<nav id=\"toc\">"));
        for s in &sections {
            assert!(a.contains(&format!("<a href=\"#{}\">", s.id)));
            assert!(a.contains(&format!("<section id=\"{}\">", s.id)));
        }
        // The TOC lists sections in page order.
        let toc_alpha = a.find("href=\"#alpha\"").unwrap();
        let toc_beta = a.find("href=\"#beta\"").unwrap();
        assert!(toc_alpha < toc_beta);
    }

    #[test]
    fn pareto_section_inlines_the_chart_and_table() {
        let entries = vec![vmv_sweep::ParetoEntry {
            name: "2w/vu1".to_string(),
            cost: 10.0,
            cycles: 2000,
            benchmarks: 2,
            on_frontier: true,
        }];
        let s = pareto_section("demo", &entries);
        assert!(s.html.contains("<svg "), "chart inlined");
        assert!(s.html.contains("<td class=\"l\">2w/vu1</td>"));
        assert!(s.html.contains("id=\"pareto\""));
        assert_eq!(s.id, "pareto");
    }
}
