//! # vmv-report — analysis & reporting over sweep result stores
//!
//! `vmv-sweep` produces self-describing JSONL result stores: a spec-header
//! line naming the experiment, then one run record per line.  This crate is
//! the consumer side — it turns a store file into a human- or CI-readable
//! artifact without needing the spec file that produced it:
//!
//! * [`LoadedStore`] — a header-aware loader for headered *and* legacy
//!   headerless stores, with line-numbered diagnostics for malformed lines,
//!   mid-file headers (`cat`-merged shards), duplicate keys and records
//!   naming unknown benchmarks or ISA variants;
//! * [`ResolvedStore`] — the query layer: the spec recovered from the
//!   header is re-expanded into design points, every record is decoded back
//!   to its point and benchmark by content-derived run key, and records can
//!   be filtered ([`Filter`]) or grouped ([`ResolvedStore::group_by`]) over
//!   the swept axes;
//! * analysis passes — the Pareto frontier and per-axis sensitivity are
//!   re-exported from `vmv_sweep` (one implementation, two front ends), and
//!   [`compare`] joins two stores by run key into a Table-2-style
//!   baseline-vs-variant view with a CI regression gate;
//! * renderers — canonical Markdown tables ([`markdown`]) and standalone
//!   SVG scatter/bar charts ([`svg`]), both dependency-free and
//!   byte-deterministic so golden files can be committed.
//!
//! * the observatory — [`trend`] tracks one fingerprint across N stores
//!   (and the committed `BENCH_sim.json` trajectory) as a time series,
//!   [`diffspec`] names the axis values two store headers don't share, and
//!   [`html`] bundles every analysis into one self-contained static page;
//!
//! * the profiler view — [`profile`] renders the `vmv-profile/1` documents
//!   a profiled sweep writes next to its store: worst-stall-first Markdown
//!   tables, a Perfetto-loadable Chrome trace-event timeline, and the
//!   stacked-bar Profile section of the HTML page.
//!
//! The `report` binary in `vmv-bench` wires these into
//! `report pareto|sensitivity|compare|trend|diff-specs|html|profile`.

#![forbid(unsafe_code)]

pub mod compare;
pub mod diffspec;
pub mod html;
pub mod loader;
pub mod markdown;
pub mod profile;
pub mod resolve;
pub mod svg;
pub mod trend;

pub use compare::{compare, geomean, CompareReport, CompareRow};
pub use diffspec::{diff_specs, diff_specs_md, AxisDiff, SpecDiff};
pub use loader::{LoadedStore, StoreDiagnostic};
pub use profile::{
    chrome_trace, profile_detail_md, profile_overview_md, stall_stacked_svg, stalls_by_benchmark,
};
pub use resolve::{
    is_record_field, parse_filter, record_field, Filter, ReportError, ResolvedStore,
};
pub use trend::{
    bench_trend_md, bench_trend_svg, parse_trajectory, store_trend, trend_md, trend_svg,
    BenchPoint, StoreTrend, TrendRow,
};
// The analysis passes live in vmv-sweep (the sweep driver prints them too);
// re-export them so report consumers need only this crate.
pub use vmv_sweep::{
    frontier_indices, hardware_cost, pareto_report, sensitivity, AxisSensitivity, ParetoEntry,
};
