//! # vmv-machine — processor configurations
//!
//! The ten processor configurations evaluated in the paper (Table 2): 2-, 4-
//! and 8-issue VLIW and µSIMD-VLIW machines, and 2- and 4-issue
//! Vector-µSIMD-VLIW machines with one/two ("Vector1") or two/four
//! ("Vector2") vector units of four lanes each.
//!
//! A [`MachineConfig`] bundles everything the static scheduler and the
//! simulator need to know about a processor: issue width, functional-unit
//! counts, register-file sizes, cache-port counts, operation latencies and
//! memory-hierarchy parameters.

#![forbid(unsafe_code)]

pub mod config;
pub mod gen;
pub mod presets;

pub use config::{IsaSupport, LatencyTable, MachineConfig, MemoryParams};
pub use gen::{generate, GenParams, GEN_WIDTHS};
pub use presets::{all_configs, reference_config, usimd, vector1, vector2, vliw};
