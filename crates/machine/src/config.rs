//! Machine configuration: issue width, functional units, register files,
//! vector parameters and memory-system parameters (paper §4.2, Table 2).

use vmv_isa::{FuClass, LatClass, LatencyDescriptor, Op, Opcode, RegFileSizes};

/// Which of the three ISA families a configuration supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaSupport {
    /// Base VLIW: scalar operations only.
    Vliw,
    /// VLIW + µSIMD packed operations.
    Usimd,
    /// VLIW + µSIMD + Vector-µSIMD (vector registers, accumulators, VL/VS).
    Vector,
}

impl IsaSupport {
    pub fn supports_usimd(self) -> bool {
        matches!(self, IsaSupport::Usimd | IsaSupport::Vector)
    }
    pub fn supports_vector(self) -> bool {
        matches!(self, IsaSupport::Vector)
    }
}

/// Operation latencies in cycles for every latency class.  The defaults are
/// based on the Itanium2-derived values the paper uses (§4.2) plus the 2-cycle
/// vector-unit / 5-cycle vector-cache latencies of the Fig. 4 example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    pub int_alu: u32,
    pub int_mul: u32,
    pub int_div: u32,
    pub load_l1: u32,
    pub store: u32,
    pub branch: u32,
    pub simd_alu: u32,
    pub simd_mul: u32,
    pub vec_alu: u32,
    pub vec_mul: u32,
    pub vec_mem: u32,
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 3,
            int_div: 12,
            load_l1: 1,
            store: 1,
            branch: 1,
            simd_alu: 2,
            simd_mul: 3,
            vec_alu: 2,
            vec_mul: 3,
            vec_mem: 5,
        }
    }
}

impl LatencyTable {
    /// Flow latency of one (sub-)operation of the given latency class.
    pub fn flow_latency(&self, class: LatClass) -> u32 {
        match class {
            LatClass::IntAlu | LatClass::Ctrl => self.int_alu,
            LatClass::IntMul => self.int_mul,
            LatClass::IntDiv => self.int_div,
            LatClass::Load => self.load_l1,
            LatClass::Store => self.store,
            LatClass::Branch => self.branch,
            LatClass::SimdAlu => self.simd_alu,
            LatClass::SimdMul => self.simd_mul,
            LatClass::VecAlu => self.vec_alu,
            LatClass::VecMul => self.vec_mul,
            LatClass::VecMem => self.vec_mem,
        }
    }
}

/// Memory hierarchy parameters (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryParams {
    /// L1 data cache size in bytes (16 KB).
    pub l1_size: usize,
    /// L1 associativity (4-way).
    pub l1_assoc: usize,
    /// L1 line size in bytes.
    pub l1_line: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L2 vector cache size in bytes (256 KB).
    pub l2_size: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 line size in bytes.
    pub l2_line: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// Number of interleaved banks in the L2 vector cache.
    pub l2_banks: usize,
    /// L3 cache size in bytes (1 MB).
    pub l3_size: usize,
    /// L3 associativity.
    pub l3_assoc: usize,
    /// L3 line size in bytes.
    pub l3_line: usize,
    /// L3 hit latency in cycles.
    pub l3_latency: u32,
    /// Main memory latency in cycles.
    pub mem_latency: u32,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            l1_size: 16 * 1024,
            l1_assoc: 4,
            l1_line: 32,
            l1_latency: 1,
            l2_size: 256 * 1024,
            l2_assoc: 4,
            l2_line: 64,
            l2_latency: 5,
            l2_banks: 2,
            l3_size: 1024 * 1024,
            l3_assoc: 8,
            l3_line: 64,
            l3_latency: 12,
            mem_latency: 500,
        }
    }
}

/// A complete machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Short name used in figures/tables, e.g. "2w +Vector2".
    pub name: String,
    /// ISA family supported by this configuration.
    pub isa: IsaSupport,
    /// Issue width: maximum operations per VLIW instruction.
    pub issue_width: usize,
    /// Number of integer units.
    pub int_units: usize,
    /// Number of µSIMD units (0 on the base VLIW and the Vector
    /// configurations, which run µSIMD operations on the vector units).
    pub simd_units: usize,
    /// Number of vector functional units.
    pub vector_units: usize,
    /// Number of parallel lanes per vector unit (paper uses 4).
    pub vector_lanes: u32,
    /// Number of L1 data-cache ports (scalar / µSIMD accesses).
    pub l1_ports: usize,
    /// Number of L2 vector-cache ports (vector accesses).
    pub l2_ports: usize,
    /// Width of one L2 vector-cache port in 64-bit elements (paper: 4×64-bit).
    pub l2_port_elems: u32,
    /// Register file sizes.
    pub regs: RegFileSizes,
    /// Operation latencies.
    pub latencies: LatencyTable,
    /// Memory hierarchy parameters.
    pub memory: MemoryParams,
    /// Whether vector chaining through the vector register file is allowed
    /// (paper §3.3; on by default, an ablation bench turns it off).
    pub chaining: bool,
}

impl MachineConfig {
    /// Number of functional units of the given class (used by the resource
    /// reservation table of the scheduler).
    pub fn units(&self, class: FuClass) -> usize {
        match class {
            FuClass::Int => self.int_units,
            // µSIMD operations execute on the µSIMD units when present, and
            // on the vector units (with vector length 1) on the Vector
            // configurations.
            FuClass::Simd => {
                if self.simd_units > 0 {
                    self.simd_units
                } else {
                    self.vector_units
                }
            }
            FuClass::Vector => self.vector_units,
            FuClass::MemL1 => self.l1_ports,
            FuClass::MemL2 => self.l2_ports,
        }
    }

    /// Whether this configuration can execute the given operation at all.
    pub fn supports_op(&self, opcode: Opcode) -> bool {
        match opcode.fu_class() {
            FuClass::Int | FuClass::MemL1 => true,
            FuClass::Simd => self.isa.supports_usimd(),
            FuClass::Vector | FuClass::MemL2 => self.isa.supports_vector(),
        }
    }

    /// The number of parallel "lanes" the latency formula of Fig. 3 should
    /// use for an operation: vector arithmetic uses the vector lanes, vector
    /// memory uses the L2 port width in elements, everything else is scalar.
    pub fn effective_lanes(&self, opcode: Opcode) -> u32 {
        if opcode.is_vector_memory() {
            self.l2_port_elems.max(1)
        } else if opcode.fu_class() == FuClass::Vector {
            self.vector_lanes.max(1)
        } else {
            1
        }
    }

    /// Compute the latency descriptor the *scheduler* must use for an
    /// operation (paper §3.3 / Fig. 3).  `vl_assumed` is the vector length
    /// the compiler could prove; when unknown the maximum (16) is assumed.
    pub fn latency_descriptor(&self, op: &Op) -> LatencyDescriptor {
        let flow = self.latencies.flow_latency(op.opcode.lat_class());
        if op.opcode.reads_vl() {
            let vl = op.vl_hint.unwrap_or(vmv_isa::MAX_VL);
            LatencyDescriptor::vector(flow, vl, self.effective_lanes(op.opcode))
        } else {
            LatencyDescriptor::scalar(flow)
        }
    }

    /// Peak operations per cycle (the issue width).
    pub fn peak_ops_per_cycle(&self) -> usize {
        self.issue_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use vmv_isa::{Elem, Sat};

    #[test]
    fn latency_table_defaults() {
        let t = LatencyTable::default();
        assert_eq!(t.flow_latency(LatClass::IntAlu), 1);
        assert_eq!(t.flow_latency(LatClass::VecMem), 5);
        assert_eq!(t.flow_latency(LatClass::Load), 1);
    }

    #[test]
    fn usimd_ops_map_to_vector_units_on_vector_configs() {
        let cfg = presets::vector2(2);
        assert_eq!(cfg.simd_units, 0);
        assert!(cfg.units(FuClass::Simd) > 0);
        assert_eq!(cfg.units(FuClass::Simd), cfg.vector_units);
    }

    #[test]
    fn op_support_follows_isa_family() {
        let vliw = presets::vliw(4);
        let usimd = presets::usimd(4);
        let vector = presets::vector1(4);
        let padd = Opcode::PAdd(Elem::B, Sat::Wrap);
        let vadd = Opcode::VAdd(Elem::B, Sat::Wrap);
        assert!(!vliw.supports_op(padd));
        assert!(usimd.supports_op(padd));
        assert!(!usimd.supports_op(vadd));
        assert!(vector.supports_op(padd));
        assert!(vector.supports_op(vadd));
        assert!(vliw.supports_op(Opcode::IAdd));
    }

    #[test]
    fn latency_descriptor_uses_vl_hint_or_maximum() {
        let cfg = presets::vector2(2);
        let mut op = vmv_isa::Op::new(Opcode::VAdd(Elem::H, Sat::Wrap));
        op.vl_hint = Some(8);
        let d = cfg.latency_descriptor(&op);
        // 2 + (8-1)/4 = 3
        assert_eq!(d.result_latency(), 3);
        op.vl_hint = None;
        let d = cfg.latency_descriptor(&op);
        // assumes VL = 16: 2 + 15/4 = 5
        assert_eq!(d.result_latency(), 5);
    }

    #[test]
    fn vector_memory_lanes_use_port_width() {
        let cfg = presets::vector2(2);
        assert_eq!(cfg.effective_lanes(Opcode::VLoad), cfg.l2_port_elems);
        assert_eq!(
            cfg.effective_lanes(Opcode::VAdd(Elem::B, Sat::Wrap)),
            cfg.vector_lanes
        );
        assert_eq!(cfg.effective_lanes(Opcode::IAdd), 1);
    }
}
