//! The ten processor configurations of Table 2.
//!
//! | Resource    | VLIW 2/4/8w | +µSIMD 2/4/8w | +Vector1 2/4w | +Vector2 2/4w |
//! |-------------|-------------|---------------|---------------|---------------|
//! | Int regs    | 64/96/128   | 64/96/128     | 64/96         | 64/96         |
//! | SIMD regs   | –           | 64/96/128     | 20/32 ×16     | 20/32 ×16     |
//! | Acc regs    | –           | –             | 4/6           | 4/6           |
//! | Int units   | 2/4/8       | 2/4/8         | 2/4           | 2/4           |
//! | SIMD units  | –           | 2/4/8         | 1/2 ×4 lanes  | 2/4 ×4 lanes  |
//! | L1 ports    | 1/2/3       | 1/2/3         | 1             | 1/2           |
//! | L2 ports    | –           | –             | 1 ×4 elems    | 1 ×4 elems    |
//!
//! The vector configurations are deliberately *not* balanced against the same
//! issue-width µSIMD configurations: they are an alternative to wider-issue
//! processors (the arithmetic capability of the 2-issue Vector2 and 4-issue
//! Vector1 is comparable to the 8-issue µSIMD, paper §4.2).

use crate::config::{IsaSupport, LatencyTable, MachineConfig, MemoryParams};
use vmv_isa::RegFileSizes;

fn scale_index(issue_width: usize) -> usize {
    match issue_width {
        2 => 0,
        4 => 1,
        8 => 2,
        other => panic!("unsupported issue width {other} (expected 2, 4 or 8)"),
    }
}

/// Base VLIW configuration of the given issue width (2, 4 or 8).
pub fn vliw(issue_width: usize) -> MachineConfig {
    let i = scale_index(issue_width);
    MachineConfig {
        name: format!("{issue_width}w VLIW"),
        isa: IsaSupport::Vliw,
        issue_width,
        int_units: issue_width,
        simd_units: 0,
        vector_units: 0,
        vector_lanes: 0,
        l1_ports: [1, 2, 3][i],
        l2_ports: 0,
        l2_port_elems: 0,
        regs: RegFileSizes {
            int: [64, 96, 128][i],
            simd: 0,
            vec: 0,
            acc: 0,
        },
        latencies: LatencyTable::default(),
        memory: MemoryParams::default(),
        chaining: false,
    }
}

/// µSIMD-VLIW configuration of the given issue width (2, 4 or 8).
pub fn usimd(issue_width: usize) -> MachineConfig {
    let i = scale_index(issue_width);
    MachineConfig {
        name: format!("{issue_width}w +uSIMD"),
        isa: IsaSupport::Usimd,
        issue_width,
        int_units: issue_width,
        simd_units: issue_width,
        vector_units: 0,
        vector_lanes: 0,
        l1_ports: [1, 2, 3][i],
        l2_ports: 0,
        l2_port_elems: 0,
        regs: RegFileSizes {
            int: [64, 96, 128][i],
            simd: [64, 96, 128][i],
            vec: 0,
            acc: 0,
        },
        latencies: LatencyTable::default(),
        memory: MemoryParams::default(),
        chaining: false,
    }
}

/// Vector-µSIMD-VLIW configuration with one (2-issue) or two (4-issue)
/// vector units ("+Vector1" in the paper).  Only 2- and 4-issue widths exist.
pub fn vector1(issue_width: usize) -> MachineConfig {
    let i = scale_index(issue_width);
    assert!(
        i < 2,
        "Vector configurations only exist for 2- and 4-issue widths"
    );
    MachineConfig {
        name: format!("{issue_width}w +Vector1"),
        isa: IsaSupport::Vector,
        issue_width,
        int_units: issue_width,
        simd_units: 0,
        vector_units: [1, 2][i],
        vector_lanes: 4,
        l1_ports: 1,
        l2_ports: 1,
        l2_port_elems: 4,
        regs: RegFileSizes {
            int: [64, 96][i],
            simd: 16,
            vec: [20, 32][i],
            acc: [4, 6][i],
        },
        latencies: LatencyTable::default(),
        memory: MemoryParams::default(),
        chaining: true,
    }
}

/// Vector-µSIMD-VLIW configuration with two (2-issue) or four (4-issue)
/// vector units ("+Vector2" in the paper).
pub fn vector2(issue_width: usize) -> MachineConfig {
    let i = scale_index(issue_width);
    assert!(
        i < 2,
        "Vector configurations only exist for 2- and 4-issue widths"
    );
    MachineConfig {
        name: format!("{issue_width}w +Vector2"),
        isa: IsaSupport::Vector,
        issue_width,
        int_units: issue_width,
        simd_units: 0,
        vector_units: [2, 4][i],
        vector_lanes: 4,
        l1_ports: [1, 2][i],
        l2_ports: 1,
        l2_port_elems: 4,
        regs: RegFileSizes {
            int: [64, 96][i],
            simd: 16,
            vec: [20, 32][i],
            acc: [4, 6][i],
        },
        latencies: LatencyTable::default(),
        memory: MemoryParams::default(),
        chaining: true,
    }
}

/// The complete set of ten configurations evaluated in the paper, in the
/// order they appear in the figures: 2/4/8-wide VLIW, 2/4/8-wide µSIMD,
/// 2/4-wide Vector1, 2/4-wide Vector2.
pub fn all_configs() -> Vec<MachineConfig> {
    vec![
        vliw(2),
        vliw(4),
        vliw(8),
        usimd(2),
        usimd(4),
        usimd(8),
        vector1(2),
        vector1(4),
        vector2(2),
        vector2(4),
    ]
}

/// The reference configuration every speed-up in the paper's figures is
/// normalised to: the 2-issue base VLIW.
pub fn reference_config() -> MachineConfig {
    vliw(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::RegClass;

    #[test]
    fn table2_register_files() {
        assert_eq!(vliw(2).regs.int, 64);
        assert_eq!(vliw(8).regs.int, 128);
        assert_eq!(usimd(4).regs.simd, 96);
        assert_eq!(vector1(2).regs.vec, 20);
        assert_eq!(vector1(4).regs.vec, 32);
        assert_eq!(vector2(2).regs.acc, 4);
        assert_eq!(vector2(4).regs.acc, 6);
        assert_eq!(vector2(4).regs.count(RegClass::Ctrl), 2);
    }

    #[test]
    fn table2_functional_units() {
        assert_eq!(vliw(8).int_units, 8);
        assert_eq!(usimd(8).simd_units, 8);
        assert_eq!(vector1(2).vector_units, 1);
        assert_eq!(vector1(4).vector_units, 2);
        assert_eq!(vector2(2).vector_units, 2);
        assert_eq!(vector2(4).vector_units, 4);
        assert_eq!(vector2(2).vector_lanes, 4);
    }

    #[test]
    fn table2_cache_ports() {
        assert_eq!(vliw(2).l1_ports, 1);
        assert_eq!(vliw(8).l1_ports, 3);
        assert_eq!(vector1(4).l1_ports, 1);
        assert_eq!(vector2(4).l1_ports, 2);
        assert_eq!(vector2(2).l2_ports, 1);
        assert_eq!(vector2(2).l2_port_elems, 4);
        assert_eq!(vliw(2).l2_ports, 0);
    }

    #[test]
    fn all_configs_has_ten_entries_with_unique_names() {
        let cfgs = all_configs();
        assert_eq!(cfgs.len(), 10);
        let mut names: Vec<_> = cfgs.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    #[should_panic]
    fn vector_configs_reject_8_issue() {
        vector1(8);
    }

    #[test]
    fn memory_parameters_match_section_4_2() {
        let m = MemoryParams::default();
        assert_eq!(m.l1_size, 16 * 1024);
        assert_eq!(m.l1_assoc, 4);
        assert_eq!(m.l2_size, 256 * 1024);
        assert_eq!(m.l3_size, 1024 * 1024);
        assert_eq!(m.l1_latency, 1);
        assert_eq!(m.l2_latency, 5);
        assert_eq!(m.l3_latency, 12);
        assert_eq!(m.mem_latency, 500);
        assert_eq!(m.l2_banks, 2);
    }
}
