//! Parametric configuration generation beyond the ten Table 2 presets.
//!
//! The presets hard-code the three issue widths the paper evaluates.  For
//! design-space exploration (the `vmv-sweep` crate) we need *families*: the
//! same resource-scaling rules as Table 2, extrapolated to any power-of-two
//! issue width and any vector-unit / lane / port arrangement.  At the points
//! Table 2 defines, the generated configurations agree with the presets in
//! every field except the generated name.
//!
//! Scaling rules (`w` = issue width, `s = log2(w)`):
//!
//! * integer units: `w`; integer registers: `32 * (s + 1)` (64/96/128 at
//!   2/4/8-issue, as in Table 2);
//! * µSIMD units: `w`; µSIMD registers mirror the integer file;
//! * L1 ports: `s` on VLIW/µSIMD machines (1/2/3), `max(1, s)` capped by the
//!   paper's narrower ports on vector machines;
//! * vector registers: `20 + 12 * (s - 1)` (20/32 at 2/4-issue);
//!   accumulators: `4 + 2 * (s - 1)` (4/6).

use crate::config::{IsaSupport, LatencyTable, MachineConfig, MemoryParams};
use vmv_isa::RegFileSizes;

/// Issue widths the generator accepts (powers of two; the paper evaluates
/// 2–8, 16 is the extrapolation the sweep engine explores).
pub const GEN_WIDTHS: [usize; 4] = [2, 4, 8, 16];

/// Parameters of a generated configuration.  `Default` matches the paper's
/// 2-issue Vector1 arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    pub isa: IsaSupport,
    pub issue_width: usize,
    /// Vector functional units (only meaningful for `IsaSupport::Vector`).
    pub vector_units: usize,
    /// Parallel lanes per vector unit.
    pub vector_lanes: u32,
    /// Width of the L2 vector-cache port in 64-bit elements.
    pub l2_port_elems: u32,
    /// Memory-hierarchy parameters (sizes, associativity, line sizes, bank
    /// count, latencies).  Defaults to the paper's §4.2 hierarchy; the sweep
    /// crate's cache-geometry axes mutate this before generation.
    pub memory: MemoryParams,
    /// Vector-chaining override: `None` keeps the ISA-family default
    /// (chaining on for Vector machines, meaningless and off otherwise);
    /// `Some(false)` is the §3.3 chaining ablation the latency-tolerance
    /// sweeps explore.
    pub chaining: Option<bool>,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            isa: IsaSupport::Vector,
            issue_width: 2,
            vector_units: 1,
            vector_lanes: 4,
            l2_port_elems: 4,
            memory: MemoryParams::default(),
            chaining: None,
        }
    }
}

fn scale(issue_width: usize) -> usize {
    assert!(
        GEN_WIDTHS.contains(&issue_width),
        "unsupported issue width {issue_width} (expected one of {GEN_WIDTHS:?})"
    );
    issue_width.trailing_zeros() as usize // log2: 2 -> 1, 4 -> 2, 8 -> 3, 16 -> 4
}

/// Generate a machine configuration from the Table 2 scaling rules.
pub fn generate(p: &GenParams) -> MachineConfig {
    let s = scale(p.issue_width);
    let int_regs = 32 * (s as u32 + 1);
    let mut config = match p.isa {
        IsaSupport::Vliw => MachineConfig {
            name: format!("{}w VLIW", p.issue_width),
            isa: IsaSupport::Vliw,
            issue_width: p.issue_width,
            int_units: p.issue_width,
            simd_units: 0,
            vector_units: 0,
            vector_lanes: 0,
            l1_ports: s,
            l2_ports: 0,
            l2_port_elems: 0,
            regs: RegFileSizes {
                int: int_regs,
                simd: 0,
                vec: 0,
                acc: 0,
            },
            latencies: LatencyTable::default(),
            memory: p.memory,
            chaining: false,
        },
        IsaSupport::Usimd => MachineConfig {
            name: format!("{}w +uSIMD", p.issue_width),
            isa: IsaSupport::Usimd,
            issue_width: p.issue_width,
            int_units: p.issue_width,
            simd_units: p.issue_width,
            vector_units: 0,
            vector_lanes: 0,
            l1_ports: s,
            l2_ports: 0,
            l2_port_elems: 0,
            regs: RegFileSizes {
                int: int_regs,
                simd: int_regs,
                vec: 0,
                acc: 0,
            },
            latencies: LatencyTable::default(),
            memory: p.memory,
            chaining: false,
        },
        IsaSupport::Vector => {
            let units = p.vector_units.max(1);
            // Table 2 gives the narrower "Vector1" arrangement (w/2 units)
            // one L1 port and the richer "Vector2" (w units) the same port
            // scaling as the scalar machines.
            let l1_ports = if units >= p.issue_width { s.max(1) } else { 1 };
            MachineConfig {
                name: format!("{}w +Vec{}x{}", p.issue_width, units, p.vector_lanes),
                isa: IsaSupport::Vector,
                issue_width: p.issue_width,
                int_units: p.issue_width,
                simd_units: 0,
                vector_units: units,
                vector_lanes: p.vector_lanes.max(1),
                l1_ports,
                l2_ports: 1,
                l2_port_elems: p.l2_port_elems.max(1),
                regs: RegFileSizes {
                    int: int_regs,
                    simd: 16,
                    vec: 20 + 12 * (s as u32 - 1),
                    acc: 4 + 2 * (s as u32 - 1),
                },
                latencies: LatencyTable::default(),
                memory: p.memory,
                chaining: true,
            }
        }
    };
    if let Some(chaining) = p.chaining {
        config.chaining = chaining;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// The generated configurations must agree with the hand-written Table 2
    /// presets at the points Table 2 defines (names aside — the generator
    /// uses a systematic naming scheme).
    #[test]
    fn generator_reproduces_the_presets() {
        let pairs: Vec<(MachineConfig, MachineConfig)> = vec![
            (
                presets::vliw(4),
                generate(&GenParams {
                    isa: IsaSupport::Vliw,
                    issue_width: 4,
                    ..Default::default()
                }),
            ),
            (
                presets::usimd(8),
                generate(&GenParams {
                    isa: IsaSupport::Usimd,
                    issue_width: 8,
                    ..Default::default()
                }),
            ),
            (
                presets::vector1(2),
                generate(&GenParams {
                    isa: IsaSupport::Vector,
                    issue_width: 2,
                    vector_units: 1,
                    vector_lanes: 4,
                    l2_port_elems: 4,
                    ..Default::default()
                }),
            ),
            (
                presets::vector1(4),
                generate(&GenParams {
                    isa: IsaSupport::Vector,
                    issue_width: 4,
                    vector_units: 2,
                    vector_lanes: 4,
                    l2_port_elems: 4,
                    ..Default::default()
                }),
            ),
            (
                presets::vector2(2),
                generate(&GenParams {
                    isa: IsaSupport::Vector,
                    issue_width: 2,
                    vector_units: 2,
                    vector_lanes: 4,
                    l2_port_elems: 4,
                    ..Default::default()
                }),
            ),
            (
                presets::vector2(4),
                generate(&GenParams {
                    isa: IsaSupport::Vector,
                    issue_width: 4,
                    vector_units: 4,
                    vector_lanes: 4,
                    l2_port_elems: 4,
                    ..Default::default()
                }),
            ),
        ];
        for (preset, mut generated) in pairs {
            generated.name = preset.name.clone();
            assert_eq!(preset, generated, "mismatch for {}", preset.name);
        }
    }

    #[test]
    fn extrapolates_beyond_table2() {
        let m = generate(&GenParams {
            isa: IsaSupport::Usimd,
            issue_width: 16,
            ..Default::default()
        });
        assert_eq!(m.int_units, 16);
        assert_eq!(m.regs.int, 160);
        assert_eq!(m.l1_ports, 4);
        let v = generate(&GenParams {
            isa: IsaSupport::Vector,
            issue_width: 8,
            vector_units: 8,
            vector_lanes: 8,
            l2_port_elems: 8,
            ..Default::default()
        });
        assert_eq!(v.regs.vec, 44);
        assert_eq!(v.regs.acc, 8);
        assert_eq!(v.vector_lanes, 8);
        assert!(v.chaining);
    }

    #[test]
    fn chaining_override_is_applied_after_the_family_default() {
        let base = GenParams {
            isa: IsaSupport::Vector,
            issue_width: 2,
            ..Default::default()
        };
        assert!(generate(&base).chaining, "vector machines chain by default");
        let ablated = generate(&GenParams {
            chaining: Some(false),
            ..base
        });
        assert!(!ablated.chaining);
        // Everything else is untouched by the override.
        let mut reference = generate(&base);
        reference.chaining = false;
        assert_eq!(ablated, reference);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_widths() {
        generate(&GenParams {
            issue_width: 6,
            ..Default::default()
        });
    }

    #[test]
    fn generated_names_are_distinct_across_the_axes() {
        let mut names = std::collections::BTreeSet::new();
        for w in [2usize, 4, 8] {
            for units in [1usize, 2, 4] {
                for lanes in [2u32, 4] {
                    let m = generate(&GenParams {
                        isa: IsaSupport::Vector,
                        issue_width: w,
                        vector_units: units,
                        vector_lanes: lanes,
                        l2_port_elems: 4,
                        ..Default::default()
                    });
                    names.insert(m.name);
                }
            }
        }
        assert_eq!(names.len(), 3 * 3 * 2);
    }
}
