//! Functional execution of every operation of the three ISAs.
//!
//! Execution is exact: packed arithmetic uses the lane-level routines of
//! `vmv_isa::packed`, vector operations apply them word-by-word under the
//! current vector length, and accumulator operations use the 192-bit packed
//! accumulator model.  The engine (`engine.rs`) separately accounts for
//! *timing*; this module only computes values, memory effects and control
//! flow.

use vmv_isa::packed::{self, Elem, Sign};
use vmv_isa::{BrCond, MemWidth, Op, Opcode, Reg, MAX_VL};
use vmv_sched::LoweredOp;

use crate::memimage::MemImage;
use crate::regfile::RegFiles;

/// Control-flow outcome of one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Fall through to the next operation.
    Normal,
    /// A taken branch to the given label.
    BranchTaken(String),
    /// Program termination.
    Halt,
}

/// Control-flow outcome of one *lowered* operation: branch targets are
/// pre-resolved block indices, so no label strings exist on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoweredOutcome {
    /// Fall through to the next operation.
    Normal,
    /// A taken branch to the given block index.
    BranchTaken(u32),
    /// Program termination.
    Halt,
}

/// Description of the memory traffic of one executed operation, consumed by
/// the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    pub base: u64,
    /// Stride in bytes between consecutive 64-bit elements (vector accesses
    /// only; scalar accesses use stride 0 and one element).
    pub stride: i64,
    /// Number of 64-bit elements (vector accesses) or 1.
    pub elems: u32,
    /// Bytes accessed per element.
    pub bytes: usize,
    pub is_store: bool,
    pub is_vector: bool,
}

/// Result of executing one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    pub outcome: ExecOutcome,
    pub mem: Option<MemAccess>,
}

/// Control-flow outcome of the shared execution core: whether a branch was
/// taken, with target resolution left to the caller (label for the legacy
/// path, pre-resolved block index for the lowered path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreOutcome {
    Normal,
    Taken,
    Halt,
}

/// Borrowed operand view shared by both execution entry points.
#[derive(Clone, Copy)]
struct OpView<'a> {
    opcode: Opcode,
    dst: Option<Reg>,
    srcs: &'a [Reg],
    imm: i64,
}

/// Execution error (malformed operation reaching the simulator).  The
/// message is boxed so `Result<_, ExecError>` fits in registers — the Ok
/// path of every dynamic operation pays for the error type's size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub Box<str>);

impl ExecError {
    #[cold]
    fn new(msg: String) -> ExecError {
        ExecError(msg.into_boxed_str())
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}
impl std::error::Error for ExecError {}

impl std::fmt::Display for OpView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.opcode.mnemonic())?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in self.srcs {
            write!(f, " {s}")?;
        }
        write!(f, " #{}", self.imm)
    }
}

#[cold]
#[inline(never)]
fn missing_operand(op: OpView<'_>, i: usize) -> ExecError {
    ExecError::new(format!("operand {i} missing in {op}"))
}

#[cold]
#[inline(never)]
fn missing_dst(op: OpView<'_>) -> ExecError {
    ExecError::new(format!("destination missing in {op}"))
}

#[inline(always)]
fn src(op: OpView<'_>, i: usize) -> Result<Reg, ExecError> {
    match op.srcs.get(i) {
        Some(&r) => Ok(r),
        None => Err(missing_operand(op, i)),
    }
}

#[inline(always)]
fn dst(op: OpView<'_>) -> Result<Reg, ExecError> {
    match op.dst {
        Some(d) => Ok(d),
        None => Err(missing_dst(op)),
    }
}

#[inline(always)]
fn imm(op: OpView<'_>) -> i64 {
    op.imm
}

/// Second integer operand of a scalar binary operation: either a register or
/// the immediate (register-immediate form).
#[inline(always)]
fn scalar_rhs(op: OpView<'_>, rf: &RegFiles) -> Result<i64, ExecError> {
    if op.srcs.len() >= 2 {
        Ok(rf.read_int(src(op, 1)?))
    } else {
        Ok(imm(op))
    }
}

/// Execute one operation (legacy string-keyed form, used by the lowering
/// oracle and unit tests; the simulator's hot loop uses [`execute_lowered`]).
pub fn execute_op(op: &Op, rf: &mut RegFiles, mem: &mut MemImage) -> Result<ExecResult, ExecError> {
    let view = OpView {
        opcode: op.opcode,
        dst: op.dst,
        srcs: &op.srcs,
        imm: op.imm.unwrap_or(0),
    };
    let mut mem_access = None;
    let outcome = exec_core(view, rf, mem, &mut mem_access)?;
    let outcome = match outcome {
        CoreOutcome::Normal => ExecOutcome::Normal,
        CoreOutcome::Halt => ExecOutcome::Halt,
        CoreOutcome::Taken => ExecOutcome::BranchTaken(
            op.target
                .clone()
                .ok_or_else(|| ExecError::new(format!("branch without target in {op}")))?,
        ),
    };
    Ok(ExecResult {
        outcome,
        mem: mem_access,
    })
}

/// Execute one lowered operation: operands and branch targets are already
/// resolved, so no allocation or label lookup happens here.  The memory
/// traffic of the operation (if any) is written to `mem_access`, which the
/// caller must reset to `None` beforehand — an out-parameter instead of a
/// by-value result keeps the dominant non-memory operations from shuffling
/// a 50-byte struct through memory on every dynamic operation.
#[inline]
pub fn execute_lowered(
    op: &LoweredOp,
    rf: &mut RegFiles,
    mem: &mut MemImage,
    mem_access: &mut Option<MemAccess>,
) -> Result<LoweredOutcome, ExecError> {
    let view = OpView {
        opcode: op.opcode,
        dst: op.dst,
        srcs: op.srcs(),
        imm: op.imm,
    };
    Ok(match exec_core(view, rf, mem, mem_access)? {
        CoreOutcome::Normal => LoweredOutcome::Normal,
        CoreOutcome::Halt => LoweredOutcome::Halt,
        CoreOutcome::Taken => LoweredOutcome::BranchTaken(op.target),
    })
}

/// Shared execution core: computes values, memory effects and the taken /
/// not-taken control decision of one operation.  Memory traffic is reported
/// through the `mem_access` out-parameter.
fn exec_core(
    op: OpView<'_>,
    rf: &mut RegFiles,
    mem: &mut MemImage,
    mem_access: &mut Option<MemAccess>,
) -> Result<CoreOutcome, ExecError> {
    use Opcode::*;
    let oc = op.opcode;
    match oc {
        Nop => Ok(CoreOutcome::Normal),
        Halt => Ok(CoreOutcome::Halt),

        // ------------------------------------------------------------ scalar
        MovI => {
            rf.write_int(dst(op)?, imm(op));
            Ok(CoreOutcome::Normal)
        }
        Mov => {
            let v = rf.read_int(src(op, 0)?);
            rf.write_int(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        IAdd | ISub | IMul | IDiv | IRem | IAnd | IOr | IXor | IShl | IShr | ISra | ISlt
        | ISltu | ISeq | IMin | IMax => {
            let a = rf.read_int(src(op, 0)?);
            let b = scalar_rhs(op, rf)?;
            let v = match oc {
                IAdd => a.wrapping_add(b),
                ISub => a.wrapping_sub(b),
                IMul => a.wrapping_mul(b),
                IDiv => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                IRem => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_rem(b)
                    }
                }
                IAnd => a & b,
                IOr => a | b,
                IXor => a ^ b,
                IShl => a.wrapping_shl(b as u32 & 63),
                IShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                ISra => a.wrapping_shr(b as u32 & 63),
                ISlt => (a < b) as i64,
                ISltu => ((a as u64) < (b as u64)) as i64,
                ISeq => (a == b) as i64,
                IMin => a.min(b),
                IMax => a.max(b),
                _ => unreachable!(),
            };
            rf.write_int(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        IAbs => {
            let a = rf.read_int(src(op, 0)?);
            rf.write_int(dst(op)?, a.wrapping_abs());
            Ok(CoreOutcome::Normal)
        }

        Load(width, sign) => {
            let base = rf.read_int(src(op, 0)?);
            let addr = (base + imm(op)) as u64;
            let raw: u64 = match width {
                MemWidth::B1 => mem.read_u8(addr) as u64,
                MemWidth::B2 => mem.read_u16(addr) as u64,
                MemWidth::B4 => mem.read_u32(addr) as u64,
                MemWidth::B8 => mem.read_u64(addr),
            };
            let v = match sign {
                Sign::Unsigned => raw as i64,
                Sign::Signed => packed::sign_extend(raw, 8 * width.bytes() as u32),
            };
            rf.write_int(dst(op)?, v);
            *mem_access = Some(MemAccess {
                base: addr,
                stride: 0,
                elems: 1,
                bytes: width.bytes(),
                is_store: false,
                is_vector: false,
            });
            Ok(CoreOutcome::Normal)
        }
        Store(width) => {
            let base = rf.read_int(src(op, 0)?);
            let addr = (base + imm(op)) as u64;
            let v = rf.read_int(src(op, 1)?) as u64;
            match width {
                MemWidth::B1 => mem.write_u8(addr, v as u8),
                MemWidth::B2 => mem.write_u16(addr, v as u16),
                MemWidth::B4 => mem.write_u32(addr, v as u32),
                MemWidth::B8 => mem.write_u64(addr, v),
            }
            *mem_access = Some(MemAccess {
                base: addr,
                stride: 0,
                elems: 1,
                bytes: width.bytes(),
                is_store: true,
                is_vector: false,
            });
            Ok(CoreOutcome::Normal)
        }

        Br(cond) => {
            let a = rf.read_int(src(op, 0)?);
            let b = scalar_rhs(op, rf)?;
            let taken = match cond {
                BrCond::Eq => a == b,
                BrCond::Ne => a != b,
                BrCond::Lt => a < b,
                BrCond::Ge => a >= b,
                BrCond::Le => a <= b,
                BrCond::Gt => a > b,
            };
            if taken {
                Ok(CoreOutcome::Taken)
            } else {
                Ok(CoreOutcome::Normal)
            }
        }
        Jump => Ok(CoreOutcome::Taken),

        // ------------------------------------------------------------ µSIMD
        PLoad => {
            let base = rf.read_int(src(op, 0)?);
            let addr = (base + imm(op)) as u64;
            let v = mem.read_u64(addr);
            rf.write_simd(dst(op)?, v);
            *mem_access = Some(MemAccess {
                base: addr,
                stride: 0,
                elems: 1,
                bytes: 8,
                is_store: false,
                is_vector: false,
            });
            Ok(CoreOutcome::Normal)
        }
        PStore => {
            let base = rf.read_int(src(op, 0)?);
            let addr = (base + imm(op)) as u64;
            let v = rf.read_simd(src(op, 1)?);
            mem.write_u64(addr, v);
            *mem_access = Some(MemAccess {
                base: addr,
                stride: 0,
                elems: 1,
                bytes: 8,
                is_store: true,
                is_vector: false,
            });
            Ok(CoreOutcome::Normal)
        }
        PMov => {
            let v = rf.read_simd(src(op, 0)?);
            rf.write_simd(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        MovIntToSimd => {
            let v = rf.read_int(src(op, 0)?) as u64;
            rf.write_simd(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        MovSimdToInt => {
            let v = rf.read_simd(src(op, 0)?) as i64;
            rf.write_int(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        PSplat(e) => {
            let v = rf.read_int(src(op, 0)?) as u64;
            rf.write_simd(dst(op)?, packed::splat(e, v));
            Ok(CoreOutcome::Normal)
        }
        PExtract(e) => {
            let v = rf.read_simd(src(op, 0)?);
            let lane = imm(op) as usize % e.lanes();
            rf.write_int(dst(op)?, packed::lane_u(v, e, lane) as i64);
            Ok(CoreOutcome::Normal)
        }
        PInsert(e) => {
            let old = rf.read_simd(src(op, 0)?);
            let v = rf.read_int(src(op, 1)?) as u64;
            let lane = imm(op) as usize % e.lanes();
            rf.write_simd(dst(op)?, packed::set_lane(old, e, lane, v));
            Ok(CoreOutcome::Normal)
        }
        // Packed two-operand arithmetic.
        PAdd(..) | PSub(..) | PMulLo(_) | PMulHi(_) | PMAdd | PMulWidenEven(_)
        | PMulWidenOdd(_) | PAvg(_) | PMin(..) | PMax(..) | PAbsDiff(_) | PAnd | POr | PXor
        | PAndNot | PPack(..) | PUnpackLo(_) | PUnpackHi(_) | PCmpEq(_) | PCmpGt(_) => {
            let a = rf.read_simd(src(op, 0)?);
            let b = rf.read_simd(src(op, 1)?);
            rf.write_simd(dst(op)?, packed_binary(oc, a, b)?);
            Ok(CoreOutcome::Normal)
        }
        PSad => {
            let a = rf.read_simd(src(op, 0)?);
            let b = rf.read_simd(src(op, 1)?);
            rf.write_simd(dst(op)?, packed::psad_u8(a, b));
            Ok(CoreOutcome::Normal)
        }
        PShl(e) | PShrL(e) | PShrA(e) => {
            let a = rf.read_simd(src(op, 0)?);
            let amount = imm(op) as u32;
            let v = match oc {
                PShl(_) => packed::pshl(e, a, amount),
                PShrL(_) => packed::pshr_l(e, a, amount),
                PShrA(_) => packed::pshr_a(e, a, amount),
                _ => unreachable!(),
            };
            rf.write_simd(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        PWidenLo(e, s) | PWidenHi(e, s) => {
            let a = rf.read_simd(src(op, 0)?);
            let hi = matches!(oc, PWidenHi(..));
            rf.write_simd(dst(op)?, widen(a, e, s, hi));
            Ok(CoreOutcome::Normal)
        }

        // ------------------------------------------------------------ vector
        SetVL => {
            let v = if op.srcs.is_empty() {
                imm(op)
            } else {
                rf.read_int(src(op, 0)?)
            };
            rf.vl = (v.max(1) as u32).min(MAX_VL);
            Ok(CoreOutcome::Normal)
        }
        SetVS => {
            let v = if op.srcs.is_empty() {
                imm(op)
            } else {
                rf.read_int(src(op, 0)?)
            };
            rf.vs = v;
            Ok(CoreOutcome::Normal)
        }
        VLoad => {
            let base = rf.read_int(src(op, 0)?);
            let addr = (base + imm(op)) as u64;
            let vl = rf.effective_vl();
            let stride = rf.vs;
            let v = rf.vec_mut(dst(op)?);
            for (i, w) in v.iter_mut().enumerate() {
                if i < vl as usize {
                    let a = (addr as i64 + stride * i as i64) as u64;
                    *w = mem.read_u64(a);
                } else {
                    *w = 0;
                }
            }
            *mem_access = Some(MemAccess {
                base: addr,
                stride,
                elems: vl,
                bytes: 8,
                is_store: false,
                is_vector: true,
            });
            Ok(CoreOutcome::Normal)
        }
        VStore => {
            let base = rf.read_int(src(op, 0)?);
            let addr = (base + imm(op)) as u64;
            let vl = rf.effective_vl();
            let stride = rf.vs;
            let v = rf.vec_ref(src(op, 1)?);
            for (i, w) in v.iter().enumerate().take(vl as usize) {
                let a = (addr as i64 + stride * i as i64) as u64;
                mem.write_u64(a, *w);
            }
            *mem_access = Some(MemAccess {
                base: addr,
                stride,
                elems: vl,
                bytes: 8,
                is_store: true,
                is_vector: true,
            });
            Ok(CoreOutcome::Normal)
        }
        VMov => {
            let v = rf.read_vec(src(op, 0)?);
            rf.write_vec(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        VSplat(e) => {
            let s = rf.read_int(src(op, 0)?) as u64;
            let word = packed::splat(e, s);
            let vl = rf.effective_vl() as usize;
            let v = rf.vec_mut(dst(op)?);
            v[..vl].fill(word);
            v[vl..].fill(0);
            Ok(CoreOutcome::Normal)
        }
        VExtract => {
            let w = imm(op) as usize % MAX_VL as usize;
            let word = rf.vec_ref(src(op, 0)?)[w];
            rf.write_simd(dst(op)?, word);
            Ok(CoreOutcome::Normal)
        }
        VInsert => {
            let mut v = rf.read_vec(src(op, 0)?);
            let s = rf.read_simd(src(op, 1)?);
            let w = imm(op) as usize % MAX_VL as usize;
            v[w] = s;
            rf.write_vec(dst(op)?, v);
            Ok(CoreOutcome::Normal)
        }
        // Element-wise vector arithmetic: apply the packed word operation
        // (SWAR over 64-bit words, see `vmv_isa::packed`) to the first VL
        // words in place — no vector-register copies.
        VAdd(..) | VSub(..) | VMulLo(_) | VMulHi(_) | VMAdd | VMulWidenEven(_)
        | VMulWidenOdd(_) | VAvg(_) | VMin(..) | VMax(..) | VAbsDiff(_) | VAnd | VOr | VXor
        | VPack(..) | VUnpackLo(_) | VUnpackHi(_) | VCmpEq(_) | VCmpGt(_) => {
            let vl = rf.effective_vl();
            let scalar_oc = vector_to_packed_opcode(oc);
            let mut err = None;
            rf.vec_binop(
                dst(op)?,
                src(op, 0)?,
                src(op, 1)?,
                vl,
                |x, y| match packed_binary(scalar_oc, x, y) {
                    Ok(v) => v,
                    Err(e) => {
                        err = Some(e);
                        0
                    }
                },
            );
            match err {
                None => Ok(CoreOutcome::Normal),
                Some(e) => Err(e),
            }
        }
        VShl(e) | VShrL(e) | VShrA(e) => {
            let amount = imm(op) as u32;
            let vl = rf.effective_vl();
            let d = dst(op)?;
            let a = src(op, 0)?;
            match oc {
                VShl(_) => rf.vec_unop(d, a, vl, |x| packed::pshl(e, x, amount)),
                VShrL(_) => rf.vec_unop(d, a, vl, |x| packed::pshr_l(e, x, amount)),
                VShrA(_) => rf.vec_unop(d, a, vl, |x| packed::pshr_a(e, x, amount)),
                _ => unreachable!(),
            }
            Ok(CoreOutcome::Normal)
        }
        VWidenLo(e, s) | VWidenHi(e, s) => {
            let hi = matches!(oc, VWidenHi(..));
            let vl = rf.effective_vl();
            rf.vec_unop(dst(op)?, src(op, 0)?, vl, |x| widen(x, e, s, hi));
            Ok(CoreOutcome::Normal)
        }

        // ------------------------------------------------------ accumulators
        AccClear => {
            rf.write_acc(dst(op)?, vmv_isa::Accumulator::zero());
            Ok(CoreOutcome::Normal)
        }
        VSadAcc | VMacAcc => {
            let mut acc = rf.read_acc(src(op, 0)?);
            let a = rf.vec_ref(src(op, 1)?);
            let b = rf.vec_ref(src(op, 2)?);
            let vl = rf.effective_vl();
            for i in 0..vl as usize {
                if oc == VSadAcc {
                    acc.sad_accumulate_u8(a[i], b[i]);
                } else {
                    acc.mac_i16(a[i], b[i]);
                }
            }
            rf.write_acc(dst(op)?, acc);
            Ok(CoreOutcome::Normal)
        }
        VAddAcc => {
            let mut acc = rf.read_acc(src(op, 0)?);
            let a = rf.vec_ref(src(op, 1)?);
            let vl = rf.effective_vl();
            for &word in a.iter().take(vl as usize) {
                acc.add_i16(word);
            }
            rf.write_acc(dst(op)?, acc);
            Ok(CoreOutcome::Normal)
        }
        AccReduce => {
            let acc = rf.read_acc(src(op, 0)?);
            rf.write_int(dst(op)?, acc.reduce());
            Ok(CoreOutcome::Normal)
        }
        AccPackShrH => {
            let acc = rf.read_acc(src(op, 0)?);
            let shift = imm(op).max(0) as u32;
            let mut out = 0u64;
            for lane in 0..4 {
                let v = acc.lane(lane) >> shift;
                out = packed::set_lane(out, Elem::H, lane, packed::sat_s(v, Elem::H));
            }
            rf.write_simd(dst(op)?, out);
            Ok(CoreOutcome::Normal)
        }
    }
}

/// Map a vector element-wise opcode to the packed opcode applied per word.
fn vector_to_packed_opcode(oc: Opcode) -> Opcode {
    use Opcode::*;
    match oc {
        VAdd(e, s) => PAdd(e, s),
        VSub(e, s) => PSub(e, s),
        VMulLo(e) => PMulLo(e),
        VMulHi(e) => PMulHi(e),
        VMAdd => PMAdd,
        VMulWidenEven(s) => PMulWidenEven(s),
        VMulWidenOdd(s) => PMulWidenOdd(s),
        VAvg(e) => PAvg(e),
        VMin(e, s) => PMin(e, s),
        VMax(e, s) => PMax(e, s),
        VAbsDiff(e) => PAbsDiff(e),
        VAnd => PAnd,
        VOr => POr,
        VXor => PXor,
        VPack(e, s) => PPack(e, s),
        VUnpackLo(e) => PUnpackLo(e),
        VUnpackHi(e) => PUnpackHi(e),
        VCmpEq(e) => PCmpEq(e),
        VCmpGt(e) => PCmpGt(e),
        other => other,
    }
}

/// Semantics of the packed two-operand operations on a single 64-bit word.
#[inline]
fn packed_binary(oc: Opcode, a: u64, b: u64) -> Result<u64, ExecError> {
    use Opcode::*;
    Ok(match oc {
        PAdd(e, s) => packed::padd(e, s, a, b),
        PSub(e, s) => packed::psub(e, s, a, b),
        PMulLo(e) => packed::pmul_lo(e, a, b),
        PMulHi(e) => packed::pmul_hi(e, a, b),
        PMAdd => packed::pmadd_h(a, b),
        PMulWidenEven(s) => mul_widen(a, b, s, false),
        PMulWidenOdd(s) => mul_widen(a, b, s, true),
        PAvg(e) => packed::pavg_u(e, a, b),
        PMin(e, s) => packed::pmin(e, s, a, b),
        PMax(e, s) => packed::pmax(e, s, a, b),
        PAbsDiff(e) => packed::pabsdiff_u(e, a, b),
        PAnd => a & b,
        POr => a | b,
        PXor => a ^ b,
        PAndNot => !a & b,
        PPack(e, s) => packed::ppack(e, s, a, b),
        PUnpackLo(e) => packed::punpack_lo(e, a, b),
        PUnpackHi(e) => packed::punpack_hi(e, a, b),
        PCmpEq(e) => packed::pcmp_eq(e, a, b),
        PCmpGt(e) => packed::pcmp_gt(e, a, b),
        other => {
            return Err(ExecError::new(format!(
                "{other:?} is not a packed binary op"
            )))
        }
    })
}

/// Multiply the even (or odd) 16-bit lanes of `a` and `b` into two full
/// 32-bit products.
fn mul_widen(a: u64, b: u64, sign: Sign, odd: bool) -> u64 {
    let mut out = 0u64;
    for i in 0..2 {
        let lane = 2 * i + if odd { 1 } else { 0 };
        let p = match sign {
            Sign::Signed => packed::lane_s(a, Elem::H, lane) * packed::lane_s(b, Elem::H, lane),
            Sign::Unsigned => {
                (packed::lane_u(a, Elem::H, lane) * packed::lane_u(b, Elem::H, lane)) as i64
            }
        };
        out = packed::set_lane(out, Elem::W, i, p as u64);
    }
    out
}

/// Widen the low or high half of the lanes of `a` to the next wider width.
fn widen(a: u64, e: Elem, s: Sign, hi: bool) -> u64 {
    match (s, hi) {
        (Sign::Unsigned, false) => packed::pwiden_lo_u(e, a),
        (Sign::Unsigned, true) => packed::pwiden_hi_u(e, a),
        (Sign::Signed, false) => packed::pwiden_lo_s(e, a),
        (Sign::Signed, true) => packed::pwiden_hi_s(e, a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::packed::{pack_i16x4, pack_u8x8};
    use vmv_machine::presets;

    fn setup() -> (RegFiles, MemImage) {
        (
            RegFiles::for_machine(&presets::vector2(4)),
            MemImage::new(4096),
        )
    }

    fn exec(op: Op, rf: &mut RegFiles, mem: &mut MemImage) -> ExecResult {
        execute_op(&op, rf, mem).unwrap()
    }

    #[test]
    fn scalar_arithmetic_and_immediates() {
        let (mut rf, mut mem) = setup();
        exec(
            Op::new(Opcode::MovI).with_dst(Reg::int(0)).with_imm(10),
            &mut rf,
            &mut mem,
        );
        exec(
            Op::new(Opcode::IAdd)
                .with_dst(Reg::int(1))
                .with_srcs(&[Reg::int(0)])
                .with_imm(5),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.read_int(Reg::int(1)), 15);
        exec(
            Op::new(Opcode::IMul)
                .with_dst(Reg::int(2))
                .with_srcs(&[Reg::int(1), Reg::int(0)]),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.read_int(Reg::int(2)), 150);
        exec(
            Op::new(Opcode::IDiv)
                .with_dst(Reg::int(3))
                .with_srcs(&[Reg::int(2)])
                .with_imm(0),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.read_int(Reg::int(3)), 0, "division by zero yields zero");
    }

    #[test]
    fn loads_sign_extend_and_stores_truncate() {
        let (mut rf, mut mem) = setup();
        mem.write_u8(100, 0xFF);
        rf.write_int(Reg::int(0), 100);
        exec(
            Op::new(Opcode::Load(MemWidth::B1, Sign::Signed))
                .with_dst(Reg::int(1))
                .with_srcs(&[Reg::int(0)]),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.read_int(Reg::int(1)), -1);
        exec(
            Op::new(Opcode::Load(MemWidth::B1, Sign::Unsigned))
                .with_dst(Reg::int(2))
                .with_srcs(&[Reg::int(0)]),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.read_int(Reg::int(2)), 255);
        rf.write_int(Reg::int(3), 0x1_0000_00FF);
        exec(
            Op::new(Opcode::Store(MemWidth::B2))
                .with_srcs(&[Reg::int(0), Reg::int(3)])
                .with_imm(8),
            &mut rf,
            &mut mem,
        );
        assert_eq!(mem.read_u16(108), 0x00FF);
    }

    #[test]
    fn branch_conditions() {
        let (mut rf, mut mem) = setup();
        rf.write_int(Reg::int(0), 3);
        rf.write_int(Reg::int(1), 3);
        let r = exec(
            Op::new(Opcode::Br(BrCond::Eq))
                .with_srcs(&[Reg::int(0), Reg::int(1)])
                .with_target("t"),
            &mut rf,
            &mut mem,
        );
        assert_eq!(r.outcome, ExecOutcome::BranchTaken("t".into()));
        let r = exec(
            Op::new(Opcode::Br(BrCond::Gt))
                .with_srcs(&[Reg::int(0)])
                .with_imm(5)
                .with_target("t"),
            &mut rf,
            &mut mem,
        );
        assert_eq!(r.outcome, ExecOutcome::Normal);
    }

    #[test]
    fn packed_and_vector_add_agree() {
        let (mut rf, mut mem) = setup();
        let a = pack_u8x8([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = pack_u8x8([10, 20, 30, 40, 50, 60, 70, 80]);
        rf.write_simd(Reg::simd(0), a);
        rf.write_simd(Reg::simd(1), b);
        exec(
            Op::new(Opcode::PAdd(Elem::B, vmv_isa::Sat::Wrap))
                .with_dst(Reg::simd(2))
                .with_srcs(&[Reg::simd(0), Reg::simd(1)]),
            &mut rf,
            &mut mem,
        );
        let expect = packed::padd(Elem::B, vmv_isa::Sat::Wrap, a, b);
        assert_eq!(rf.read_simd(Reg::simd(2)), expect);

        // Vector version over 4 words.
        rf.vl = 4;
        let mut va = [0u64; 16];
        let mut vb = [0u64; 16];
        for i in 0..4 {
            va[i] = a.wrapping_add(i as u64);
            vb[i] = b;
        }
        rf.write_vec(Reg::vec(0), va);
        rf.write_vec(Reg::vec(1), vb);
        exec(
            Op::new(Opcode::VAdd(Elem::B, vmv_isa::Sat::Wrap))
                .with_dst(Reg::vec(2))
                .with_srcs(&[Reg::vec(0), Reg::vec(1)]),
            &mut rf,
            &mut mem,
        );
        let out = rf.read_vec(Reg::vec(2));
        for i in 0..4 {
            assert_eq!(
                out[i],
                packed::padd(Elem::B, vmv_isa::Sat::Wrap, va[i], vb[i])
            );
        }
        assert_eq!(out[4], 0, "words beyond VL are untouched");
    }

    #[test]
    fn vector_load_store_with_stride() {
        let (mut rf, mut mem) = setup();
        // Write 4 rows of 8 bytes with a 64-byte row stride.
        for row in 0..4u64 {
            mem.write_u64(512 + row * 64, 0x0101010101010101 * (row + 1));
        }
        rf.write_int(Reg::int(0), 512);
        rf.vl = 4;
        rf.vs = 64;
        let r = exec(
            Op::new(Opcode::VLoad)
                .with_dst(Reg::vec(0))
                .with_srcs(&[Reg::int(0)]),
            &mut rf,
            &mut mem,
        );
        let access = r.mem.unwrap();
        assert!(access.is_vector);
        assert_eq!(access.stride, 64);
        assert_eq!(access.elems, 4);
        let v = rf.read_vec(Reg::vec(0));
        assert_eq!(v[0], 0x0101010101010101);
        assert_eq!(v[3], 0x0404040404040404);

        // Store it back contiguously.
        rf.vs = 8;
        rf.write_int(Reg::int(1), 1024);
        exec(
            Op::new(Opcode::VStore).with_srcs(&[Reg::int(1), Reg::vec(0)]),
            &mut rf,
            &mut mem,
        );
        assert_eq!(mem.read_u64(1024 + 24), 0x0404040404040404);
    }

    #[test]
    fn sad_accumulator_matches_reference() {
        let (mut rf, mut mem) = setup();
        rf.vl = 2;
        let a0 = pack_u8x8([10, 20, 30, 40, 50, 60, 70, 80]);
        let a1 = pack_u8x8([1, 1, 1, 1, 1, 1, 1, 1]);
        let b0 = pack_u8x8([5, 25, 30, 35, 55, 55, 75, 75]);
        let b1 = pack_u8x8([2, 0, 2, 0, 2, 0, 2, 0]);
        let mut va = [0u64; 16];
        va[0] = a0;
        va[1] = a1;
        let mut vb = [0u64; 16];
        vb[0] = b0;
        vb[1] = b1;
        rf.write_vec(Reg::vec(0), va);
        rf.write_vec(Reg::vec(1), vb);
        exec(
            Op::new(Opcode::AccClear).with_dst(Reg::acc(0)),
            &mut rf,
            &mut mem,
        );
        exec(
            Op::new(Opcode::VSadAcc).with_dst(Reg::acc(0)).with_srcs(&[
                Reg::acc(0),
                Reg::vec(0),
                Reg::vec(1),
            ]),
            &mut rf,
            &mut mem,
        );
        exec(
            Op::new(Opcode::AccReduce)
                .with_dst(Reg::int(5))
                .with_srcs(&[Reg::acc(0)]),
            &mut rf,
            &mut mem,
        );
        let expect: i64 = packed::psad_u8(a0, b0) as i64 + packed::psad_u8(a1, b1) as i64;
        assert_eq!(rf.read_int(Reg::int(5)), expect);
    }

    #[test]
    fn mac_accumulator_and_pack() {
        let (mut rf, mut mem) = setup();
        rf.vl = 2;
        let mut va = [0u64; 16];
        va[0] = pack_i16x4([10, 20, 30, 40]);
        va[1] = pack_i16x4([1, 2, 3, 4]);
        let mut vb = [0u64; 16];
        vb[0] = pack_i16x4([2, 2, 2, 2]);
        vb[1] = pack_i16x4([100, 100, 100, 100]);
        rf.write_vec(Reg::vec(0), va);
        rf.write_vec(Reg::vec(1), vb);
        exec(
            Op::new(Opcode::AccClear).with_dst(Reg::acc(1)),
            &mut rf,
            &mut mem,
        );
        exec(
            Op::new(Opcode::VMacAcc).with_dst(Reg::acc(1)).with_srcs(&[
                Reg::acc(1),
                Reg::vec(0),
                Reg::vec(1),
            ]),
            &mut rf,
            &mut mem,
        );
        // lane0: 10*2 + 1*100 = 120, lane1: 40+200=240, lane2: 60+300=360, lane3: 80+400=480
        exec(
            Op::new(Opcode::AccPackShrH)
                .with_dst(Reg::simd(7))
                .with_srcs(&[Reg::acc(1)])
                .with_imm(2),
            &mut rf,
            &mut mem,
        );
        let packed_out = rf.read_simd(Reg::simd(7));
        assert_eq!(packed::unpack_i16x4(packed_out), [30, 60, 90, 120]);
    }

    #[test]
    fn setvl_clamps_and_setvs_sets_stride() {
        let (mut rf, mut mem) = setup();
        exec(
            Op::new(Opcode::SetVL).with_dst(Reg::vl()).with_imm(99),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.vl, 16);
        exec(
            Op::new(Opcode::SetVL).with_dst(Reg::vl()).with_imm(6),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.vl, 6);
        rf.write_int(Reg::int(9), 640);
        exec(
            Op::new(Opcode::SetVS)
                .with_dst(Reg::vs())
                .with_srcs(&[Reg::int(9)]),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.vs, 640);
    }

    #[test]
    fn widen_and_pack_roundtrip() {
        let (mut rf, mut mem) = setup();
        let bytes = pack_u8x8([1, 2, 3, 4, 250, 251, 252, 253]);
        rf.write_simd(Reg::simd(0), bytes);
        exec(
            Op::new(Opcode::PWidenLo(Elem::B, Sign::Unsigned))
                .with_dst(Reg::simd(1))
                .with_srcs(&[Reg::simd(0)]),
            &mut rf,
            &mut mem,
        );
        exec(
            Op::new(Opcode::PWidenHi(Elem::B, Sign::Unsigned))
                .with_dst(Reg::simd(2))
                .with_srcs(&[Reg::simd(0)]),
            &mut rf,
            &mut mem,
        );
        exec(
            Op::new(Opcode::PPack(Elem::H, Sign::Unsigned))
                .with_dst(Reg::simd(3))
                .with_srcs(&[Reg::simd(1), Reg::simd(2)]),
            &mut rf,
            &mut mem,
        );
        assert_eq!(rf.read_simd(Reg::simd(3)), bytes);
    }
}
