//! # vmv-sim — cycle-level simulator of the Vector-µSIMD-VLIW processor
//!
//! Executes statically scheduled programs (`vmv-sched`) on a machine
//! configuration (`vmv-machine`, Table 2) both *functionally* — every
//! operation computes real values over a flat memory image, so kernel
//! outputs can be checked against golden reference implementations — and
//! *temporally*: one VLIW instruction issues per cycle, and the machine
//! stalls whenever run-time latencies exceed what the compiler assumed
//! (cache misses, non-unit-stride vector accesses, cross-block dependences),
//! exactly the stall-on-miss model of the paper.

#![forbid(unsafe_code)]

pub mod engine;
pub mod exec;
pub mod memimage;
pub mod profile;
pub mod regfile;
pub mod replay;
pub mod stats;
pub mod trace;

pub use engine::{SimError, SimOptions, Simulator};
pub use exec::{execute_lowered, execute_op, ExecOutcome, ExecResult, LoweredOutcome, MemAccess};
pub use memimage::MemImage;
pub use profile::{
    BlockProfile, BundleProfile, Cause, OpProfile, Profile, ProfileStatics, RegionProfile,
    TimelineEvent, LANE_NAMES, N_CAUSES, N_STALLS, STALL_BASE, TIMELINE_CAP,
};
pub use regfile::{RegFiles, VectorValue};
pub use replay::{
    replay, replay_batch, replay_batch_profiled, replay_profiled, ReplayAnalysis, ReplayError,
    VariantState,
};
pub use stats::{RegionStats, RunStats};
pub use trace::Trace;
