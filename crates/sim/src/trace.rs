//! Timing traces: everything the cycle-level timing model consumes from one
//! functional execution, and nothing else.
//!
//! The engine's per-operation timing depends on three dynamic quantities
//! only: the sequence of blocks the program actually executed (branch
//! outcomes), the [`MemAccess`] descriptor of every dynamic memory
//! operation (address, stride, element count — what the hierarchy model
//! prices), and the value of the vector-length register at each
//! VL-dependent operation.  Everything else — read/write slots, flow
//! latencies, lane counts, micro-op units — is static in the
//! [`vmv_sched::LoweredProgram`].
//!
//! A [`Trace`] captures exactly those three streams, so
//! [`crate::replay::replay`] can re-run the *timing* of an execution
//! against a fresh [`vmv_mem::MemoryHierarchy`] without touching
//! `exec_core`, `RegFiles` or `MemImage`.  Crucially, none of the three
//! streams depends on memory-hierarchy parameters or the memory model
//! (functional values never change with timing), so one trace per
//! `(benchmark, variant, schedule)` key serves **every** memory variant of
//! a sweep.

use vmv_isa::Opcode;
use vmv_sched::LoweredOp;

use crate::exec::MemAccess;
use crate::regfile::RegFiles;

/// A recorded timing trace of one complete (halting) execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Value of the VL register when execution started.
    pub initial_vl: u32,
    /// Indices of the blocks the program executed, in order.  The last
    /// block is the one that executed `halt`.
    pub blocks: Vec<u32>,
    /// The [`MemAccess`] of every dynamic memory operation, in execution
    /// order (the engine visits bundles in order and operations in bundle
    /// order, so the stream is deterministic given the block sequence).
    pub accesses: Vec<MemAccess>,
    /// The value written to the VL register by every executed `setvl`, in
    /// execution order.
    pub vl_sets: Vec<u32>,
}

impl Trace {
    /// Total recorded events — a rough size/health indicator for reporting.
    pub fn events(&self) -> usize {
        self.blocks.len() + self.accesses.len() + self.vl_sets.len()
    }
}

/// Observer of the engine's execution, called from the hot loop.  The
/// no-op implementation ([`NoTrace`]) must monomorphise away entirely —
/// `run_lowered` pays nothing when not recording.
pub trait TraceSink {
    /// A block is about to execute.
    fn block(&mut self, block: u32);
    /// One operation just executed: its memory access (if any) and the
    /// post-execution register state.
    fn op(&mut self, op: &LoweredOp, access: &Option<MemAccess>, regs: &RegFiles);
}

/// The non-recording sink: every hook is an empty inline function.
pub struct NoTrace;

impl TraceSink for NoTrace {
    #[inline(always)]
    fn block(&mut self, _block: u32) {}
    #[inline(always)]
    fn op(&mut self, _op: &LoweredOp, _access: &Option<MemAccess>, _regs: &RegFiles) {}
}

/// Accumulates a [`Trace`] while the engine runs.
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    pub fn new(initial_vl: u32) -> TraceRecorder {
        TraceRecorder {
            trace: Trace {
                initial_vl,
                ..Trace::default()
            },
        }
    }

    pub fn finish(self) -> Trace {
        self.trace
    }
}

impl TraceSink for TraceRecorder {
    #[inline]
    fn block(&mut self, block: u32) {
        self.trace.blocks.push(block);
    }

    #[inline]
    fn op(&mut self, op: &LoweredOp, access: &Option<MemAccess>, regs: &RegFiles) {
        if let Some(a) = access {
            self.trace.accesses.push(*a);
        } else if op.opcode == Opcode::SetVL {
            self.trace.vl_sets.push(regs.vl);
        }
    }
}
