//! The trace-replay engine: retime a recorded execution against a fresh
//! memory hierarchy, without functional execution.
//!
//! [`replay`] is the workspace's *third* engine.  It walks the recorded
//! block sequence of a [`Trace`] over the static [`LoweredProgram`],
//! re-deriving the scoreboard / stall / L2-port timing exactly as
//! [`crate::Simulator::run_lowered`] does, but it feeds the hierarchy the
//! *recorded* `MemAccess` stream instead of executing operations — no
//! `exec_core`, no `RegFiles`, no `MemImage` allocation.  The differential
//! suite (`tests/lowered_differential.rs`) proves the resulting
//! [`RunStats`] bit-identical to both existing engines on every Table 2
//! preset × kernel × memory model, including replaying a trace recorded
//! under one model against the other.
//!
//! # Why replay can skip most of the scoreboard
//!
//! The engine's scoreboard exists to price *stalls*.  But the list
//! scheduler already placed every consumer at least its producer's
//! result latency later (`ddg::raw_latency` uses the same
//! `LatencyTable::flow_latency` values the engine charges), and bundles
//! issue in order at one-or-more cycles apart, so a fixed-latency
//! operation can never be the cause of a stall *within its block*.  The
//! only operations whose completion can outrun the schedule are the
//! dynamic ones — memory operations (actual latency depends on the cache
//! state) and VL-dependent vector operations (actual `VL` may exceed the
//! compiler's assumption, and chaining schedules consumers closer than
//! the full result latency).  Across block boundaries the scheduler
//! guarantees nothing, so a fixed-latency write is additionally kept
//! when its latency exceeds its distance to the end of the block.
//!
//! [`ReplayProgram::build`] therefore classifies every register slot:
//! a slot is **tracked** only if some dynamic operation writes it, or
//! some fixed-latency write to it could still be in flight when its
//! block ends.  Reads and writes of all other slots are provably
//! stall-free and are dropped from the timing view entirely; runs of
//! bundles left with no timing effect collapse into a single segment
//! that advances the clock by its bundle count.  The differential suite
//! is the empirical check that this analysis is conservative.
//!
//! Because the trace is memory-model- and memory-geometry-independent, a
//! memory-axis sweep executes each functional simulation **once** and
//! replays every other variant — the "record once, retime per variant"
//! optimisation ROADMAP item 3 projects at 5–10× for geometry studies.
//!
//! [`replay_batch`] is the *fourth* engine: it walks the decoded trace
//! once and advances K independent timing states in lockstep — one
//! [`VariantState`] (hierarchy + machine memory parameters) per variant,
//! scoreboard and clocks in struct-of-arrays layout — so a memory-axis
//! sweep pays for trace decoding, segment skipping and dispatch once per
//! *schedule*, not once per *variant*.  Each returned `RunStats` is
//! bit-identical to a single-variant [`replay`] of the same variant.

use std::sync::Arc;

use vmv_isa::{Opcode, MAX_VL, NO_SLOT};
use vmv_machine::MachineConfig;
use vmv_mem::{MemoryHierarchy, MemoryModel, SharedAccessScratch};
use vmv_sched::LoweredProgram;

use crate::engine::Simulator;
use crate::profile::{
    BatchProfiler, BatchSink, Binding, Cause, NoBatchProfile, NoProfile, Profile, ProfileRecorder,
    ProfileSink, ProfileStatics,
};
use crate::stats::RunStats;
use crate::trace::Trace;

/// Flag bits of [`DynOp::flags`].
const F_MEM: u8 = 1 << 0;
const F_SETVL: u8 = 1 << 1;
const F_HALT: u8 = 1 << 2;
const F_READS_VL: u8 = 1 << 3;

/// One *dynamic* operation of the compact timing view — an operation whose
/// per-issue behaviour depends on the trace (memory accesses, `setvl`,
/// VL-dependent latency) or on control (`halt`).  Reads are not stored
/// here: every tracked read slot is flattened into the per-segment read
/// stream used for the issue-time computation.
#[derive(Clone, Copy)]
struct DynOp {
    flags: u8,
    /// Effective lane count for the VL-dependent latency tail.
    lanes: u8,
    flow: u16,
    dst_slot: u16,
    micro_ops_unit: u16,
}

/// One segment of the compact timing view: a (possibly empty) run of
/// timing-inert bundles followed by at most one bundle that actually
/// touches the scoreboard, the L2 port or the trace.  A segment advances
/// the clock by `span` bundles in one step.
#[derive(Clone, Copy)]
struct RSeg {
    /// Tracked scoreboard slots read by the segment's final bundle.
    reads: (u32, u32),
    /// `(slot, latency)` writes of its plain fixed-latency operations.
    writes: (u32, u32),
    /// Its operations needing per-issue handling, in program order.
    dynamics: (u32, u32),
    /// Bundles this segment spans (the inert run plus the final bundle).
    span: u32,
    /// Operations across the whole segment.
    op_count: u32,
    /// Micro-ops of the segment's plain operations (VL-independent).
    static_micro_ops: u64,
    /// Whether the final bundle occupies the single L2 vector port.
    vecmem: bool,
}

/// Per-block compact metadata (mirrors `LoweredBlock`, but in segments).
#[derive(Clone, Copy)]
struct RBlock {
    region: vmv_isa::RegionId,
    first_seg: u32,
    seg_count: u32,
    bundle_count: u32,
    /// Global index of the block's first bundle — the profiled walk maps
    /// segments back to the bundle indices the engine reports.
    first_bundle: u32,
}

/// The precompiled compact timing view of a [`LoweredProgram`]: a
/// structure-of-arrays form holding only what the timing walk consumes.
/// A recorded trace re-executes each static block many times (loops), so
/// the walk is the hot loop; the slot-tracking analysis (module docs)
/// collapses everything provably stall-free into segment-level counters.
/// Built in O(static ops) — negligible next to the walk — so [`replay`]
/// constructs it per call rather than caching it.
struct ReplayProgram {
    blocks: Vec<RBlock>,
    segs: Vec<RSeg>,
    reads: Vec<u16>,
    writes: Vec<(u16, u16)>,
    dynamics: Vec<DynOp>,
    /// Global op index of each entry of `writes` (profiled blame tables).
    write_ops: Vec<u32>,
    /// Global op index of each entry of `dynamics`.
    dyn_ops: Vec<u32>,
    /// The Pass-1 slot classification (indexed by slot), kept so the
    /// static verifier can prove it covers every must-track slot.
    tracked: Vec<bool>,
}

/// Dynamic-behaviour flag bits of one lowered operation.
fn flags_of(op: &vmv_sched::LoweredOp) -> u8 {
    let mut flags = 0u8;
    if op.opcode.is_memory() {
        flags |= F_MEM;
    }
    if op.opcode == Opcode::SetVL {
        flags |= F_SETVL;
    }
    if op.opcode == Opcode::Halt {
        flags |= F_HALT;
    }
    if op.reads_vl {
        flags |= F_READS_VL;
    }
    flags
}

impl ReplayProgram {
    fn build(program: &LoweredProgram) -> ReplayProgram {
        // Two same-cycle writes to one slot must apply in program order;
        // splitting them between the static and dynamic paths would
        // reorder them, so such bundles go fully dynamic.
        let dup_dst = |ops: &[vmv_sched::LoweredOp]| {
            ops.iter().enumerate().any(|(i, op)| {
                op.dst_slot != NO_SLOT && ops[..i].iter().any(|prev| prev.dst_slot == op.dst_slot)
            })
        };

        // Pass 1 — slot classification.  A slot must stay on the
        // scoreboard if a dynamic operation writes it, or a fixed-latency
        // write to it could outlive its block (latency greater than the
        // distance to the block's end, in bundles: every later bundle
        // takes at least one cycle, so shorter writes are always complete
        // by the time any other block can read them).
        let mut tracked = vec![false; program.total_slots()];
        for block in &program.blocks {
            let n = block.bundle_count;
            for (i, b) in (block.first_bundle..block.first_bundle + n).enumerate() {
                let ops = program.bundle_ops(b);
                let demoted = dup_dst(ops);
                for op in ops {
                    if op.dst_slot == NO_SLOT {
                        continue;
                    }
                    let dynamic = demoted || flags_of(op) != 0;
                    if dynamic || op.flow as u32 > n - i as u32 {
                        tracked[op.dst_slot as usize] = true;
                    }
                }
            }
        }

        // Pass 2 — emit segments: bundles with no tracked reads, no kept
        // writes, no dynamic operations and no L2-port use merge into the
        // following active bundle (or into one trailing inert segment).
        let mut blocks = Vec::with_capacity(program.blocks.len());
        let mut segs = Vec::new();
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut dynamics = Vec::new();
        let mut write_ops = Vec::new();
        let mut dyn_ops = Vec::new();
        for block in &program.blocks {
            let first_seg = segs.len() as u32;
            let (mut pend_span, mut pend_ops, mut pend_micro) = (0u32, 0u32, 0u64);
            for b in block.first_bundle..block.first_bundle + block.bundle_count {
                let ops = program.bundle_ops(b);
                let demoted = dup_dst(ops);
                let (reads_lo, writes_lo, dyn_lo) = (
                    reads.len() as u32,
                    writes.len() as u32,
                    dynamics.len() as u32,
                );
                let mut static_micro_ops = 0u64;
                let mut vecmem = false;
                for (j, op) in ops.iter().enumerate() {
                    let op_idx = program.bundle_bounds[b as usize] + j as u32;
                    reads.extend(
                        op.read_slots()
                            .iter()
                            .filter(|&&s| tracked[s as usize])
                            .copied(),
                    );
                    vecmem |= op.is_vector_memory;
                    let flags = flags_of(op);
                    if flags == 0 && !demoted {
                        // Plain fixed-latency operation: at most a
                        // pre-computed scoreboard write plus counters.
                        if op.dst_slot != NO_SLOT && tracked[op.dst_slot as usize] {
                            writes.push((op.dst_slot, op.flow));
                            write_ops.push(op_idx);
                        }
                        static_micro_ops += op.micro_ops_unit as u64;
                    } else {
                        dynamics.push(DynOp {
                            flags,
                            lanes: op.lanes.max(1),
                            flow: op.flow,
                            dst_slot: op.dst_slot,
                            micro_ops_unit: op.micro_ops_unit,
                        });
                        dyn_ops.push(op_idx);
                    }
                }
                let inert = reads.len() as u32 == reads_lo
                    && writes.len() as u32 == writes_lo
                    && dynamics.len() as u32 == dyn_lo
                    && !vecmem;
                if inert {
                    pend_span += 1;
                    pend_ops += ops.len() as u32;
                    pend_micro += static_micro_ops;
                } else {
                    segs.push(RSeg {
                        reads: (reads_lo, reads.len() as u32),
                        writes: (writes_lo, writes.len() as u32),
                        dynamics: (dyn_lo, dynamics.len() as u32),
                        span: pend_span + 1,
                        op_count: pend_ops + ops.len() as u32,
                        static_micro_ops: pend_micro + static_micro_ops,
                        vecmem,
                    });
                    (pend_span, pend_ops, pend_micro) = (0, 0, 0);
                }
            }
            if pend_span > 0 {
                // Trailing inert run: pure clock advance.
                segs.push(RSeg {
                    reads: (reads.len() as u32, reads.len() as u32),
                    writes: (writes.len() as u32, writes.len() as u32),
                    dynamics: (dynamics.len() as u32, dynamics.len() as u32),
                    span: pend_span,
                    op_count: pend_ops,
                    static_micro_ops: pend_micro,
                    vecmem: false,
                });
            }
            blocks.push(RBlock {
                region: block.region,
                first_seg,
                seg_count: segs.len() as u32 - first_seg,
                bundle_count: block.bundle_count,
                first_bundle: block.first_bundle,
            });
        }
        ReplayProgram {
            blocks,
            segs,
            reads,
            writes,
            dynamics,
            write_ops,
            dyn_ops,
            tracked,
        }
    }
}

/// Errors produced while replaying a trace.  All but `CycleLimit` indicate
/// a malformed trace — one not produced by recording this program, or
/// truncated/corrupted in between.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace names a block the program does not have.
    BlockOutOfRange { step: usize, block: u32 },
    /// A memory operation had no recorded access left to consume.
    TruncatedAccesses { consumed: usize },
    /// A `setvl` had no recorded VL value left to consume.
    TruncatedVlSets { consumed: usize },
    /// The trace ended without reaching a halting block.
    MissingHalt,
    /// The trace continues past the block that executed `halt`.
    BlocksAfterHalt { step: usize },
    /// Recorded events were left over after the final block — the trace
    /// does not belong to this block sequence.
    TrailingEvents { accesses: usize, vl_sets: usize },
    /// A [`VariantState`] handed to [`replay_batch`] was prepared for a
    /// different program (its slot universe does not match the analysis).
    VariantSlotMismatch {
        variant: usize,
        expected: usize,
        got: usize,
    },
    /// The cycle limit was exceeded (possible when replaying under a much
    /// slower memory variant than the recording ran on).
    CycleLimit(u64),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::BlockOutOfRange { step, block } => {
                write!(f, "trace step {step} names out-of-range block {block}")
            }
            ReplayError::TruncatedAccesses { consumed } => {
                write!(
                    f,
                    "trace truncated: only {consumed} memory accesses recorded"
                )
            }
            ReplayError::TruncatedVlSets { consumed } => {
                write!(f, "trace truncated: only {consumed} setvl values recorded")
            }
            ReplayError::MissingHalt => write!(f, "trace ends without a halting block"),
            ReplayError::BlocksAfterHalt { step } => {
                write!(f, "trace continues past the halt at step {step}")
            }
            ReplayError::TrailingEvents { accesses, vl_sets } => write!(
                f,
                "trace has {accesses} unconsumed accesses and {vl_sets} unconsumed setvl values"
            ),
            ReplayError::VariantSlotMismatch {
                variant,
                expected,
                got,
            } => write!(
                f,
                "variant {variant} was prepared for a {got}-slot program; \
                 this analysis has {expected} slots"
            ),
            ReplayError::CycleLimit(c) => write!(f, "cycle limit of {c} exceeded during replay"),
        }
    }
}
impl std::error::Error for ReplayError {}

/// Replay `trace` over `program`, pricing memory against a fresh hierarchy
/// for (`machine`, `model`).  `machine` may differ from the recording
/// machine in memory-hierarchy parameters only (the same contract as
/// re-simulating a `Prepared` under a new memory variant); `max_cycles`
/// bounds the replayed clock exactly as `SimOptions::max_cycles` bounds
/// execution.
pub fn replay(
    program: &LoweredProgram,
    trace: &Trace,
    machine: &MachineConfig,
    model: MemoryModel,
    max_cycles: u64,
) -> Result<RunStats, ReplayError> {
    replay_with(program, trace, machine, model, max_cycles, &mut NoProfile)
}

/// [`replay`] with cycle attribution.  `statics` must have been built from
/// the same `program` (and the recording machine's schedule-relevant
/// fields).  The returned [`RunStats`] are bit-identical to an unprofiled
/// [`replay`]; the profile is identical to the one the lowered engine
/// derives for the same run.
pub fn replay_profiled(
    program: &LoweredProgram,
    trace: &Trace,
    machine: &MachineConfig,
    model: MemoryModel,
    max_cycles: u64,
    statics: &Arc<ProfileStatics>,
) -> Result<(RunStats, Profile), ReplayError> {
    let mut rec = ProfileRecorder::new(statics.clone());
    let stats = replay_with(program, trace, machine, model, max_cycles, &mut rec)?;
    let profile = rec.finish();
    profile.record_obs();
    Ok((stats, profile))
}

fn replay_with<P: ProfileSink>(
    program: &LoweredProgram,
    trace: &Trace,
    machine: &MachineConfig,
    model: MemoryModel,
    max_cycles: u64,
    prof: &mut P,
) -> Result<RunStats, ReplayError> {
    let _span = vmv_obs::span(vmv_obs::SpanKind::TraceReplay);
    let compact = ReplayProgram::build(program);
    let mut echo_scratch = SharedAccessScratch::new();
    let mut hierarchy = MemoryHierarchy::for_machine(model, machine);
    let mut stats = RunStats::default();
    for region in &program.regions {
        stats.region_mut(region.id);
    }
    let mut region_acc: Vec<(vmv_isa::RegionId, crate::stats::RegionStats)> = Vec::new();
    let mut region_idx = 0usize;

    let mut ready: Vec<u64> = vec![0; program.total_slots()];
    let mut l2_port_free: u64 = 0;
    let mut cycle: u64 = 0;
    let port_elems = machine.l2_port_elems.max(1);

    // The VL register, reconstructed from the recorded `setvl` stream.
    let mut vl: u32 = trace.initial_vl;
    let mut evl: u64 = vl.clamp(1, MAX_VL) as u64;
    let (mut ai, mut vi) = (0usize, 0usize);
    let mut halted = false;

    for (step, &block_id) in trace.blocks.iter().enumerate() {
        if halted {
            return Err(ReplayError::BlocksAfterHalt { step: step - 1 });
        }
        let block = *compact
            .blocks
            .get(block_id as usize)
            .ok_or(ReplayError::BlockOutOfRange {
                step,
                block: block_id,
            })?;
        let region = block.region;
        let block_start_cycle = cycle;
        let mut ops_executed = 0u64;
        let mut micro_ops = 0u64;
        let mut stall_cycles = 0u64;
        prof.begin_block(block_id);
        let mut bundle_cursor = block.first_bundle;

        for seg in
            &compact.segs[block.first_seg as usize..(block.first_seg + block.seg_count) as usize]
        {
            // The inert run in front of the final bundle advances the
            // clock one cycle per bundle, stall-free, by construction.
            let base = cycle + (seg.span - 1) as u64;
            let mut issue = base;
            for &slot in &compact.reads[seg.reads.0 as usize..seg.reads.1 as usize] {
                issue = issue.max(ready[slot as usize]);
            }
            if seg.vecmem {
                issue = issue.max(l2_port_free);
            }
            stall_cycles += issue - base;

            if P::ENABLED {
                // Reconstruct the per-bundle issue events the engine
                // reports: the inert run issues stall-free at consecutive
                // cycles, the final bundle carries the segment's stall.
                // Binding: first tracked read slot busy at the issue cycle
                // (untracked slots are provably never the binder), else
                // the L2 port.
                for i in 0..seg.span - 1 {
                    prof.bundle(bundle_cursor + i, cycle + i as u64, 0, Binding::None);
                }
                let stall = issue - base;
                let binding = if stall == 0 {
                    Binding::None
                } else {
                    let mut found = Binding::Port;
                    for &slot in &compact.reads[seg.reads.0 as usize..seg.reads.1 as usize] {
                        if ready[slot as usize] == issue {
                            found = Binding::Slot(slot);
                            break;
                        }
                    }
                    found
                };
                prof.bundle(bundle_cursor + seg.span - 1, base, stall, binding);
                bundle_cursor += seg.span;
            }

            for (wi, &(slot, lat)) in compact.writes[seg.writes.0 as usize..seg.writes.1 as usize]
                .iter()
                .enumerate()
            {
                ready[slot as usize] = issue + lat as u64;
                if P::ENABLED {
                    prof.write(
                        compact.write_ops[seg.writes.0 as usize + wi],
                        slot,
                        Cause::RawStall,
                    );
                }
            }
            micro_ops += seg.static_micro_ops;
            ops_executed += seg.op_count as u64;

            for (di, op) in compact.dynamics[seg.dynamics.0 as usize..seg.dynamics.1 as usize]
                .iter()
                .enumerate()
            {
                let op_idx = if P::ENABLED {
                    compact.dyn_ops[seg.dynamics.0 as usize + di]
                } else {
                    0
                };
                let mut cause = Cause::RawStall;
                let latency = if op.flags & F_MEM != 0 {
                    let access = trace
                        .accesses
                        .get(ai)
                        .ok_or(ReplayError::TruncatedAccesses { consumed: ai })?;
                    ai += 1;
                    if access.is_vector {
                        let occupancy = if access.stride == 8 {
                            access.elems.div_ceil(port_elems)
                        } else {
                            access.elems
                        };
                        l2_port_free = issue + occupancy.max(1) as u64;
                        if P::ENABLED {
                            prof.vec_port(op_idx);
                        }
                    }
                    if P::ENABLED {
                        let (lat, echo) = Simulator::memory_latency_echo(
                            &mut hierarchy,
                            access,
                            &mut echo_scratch,
                        );
                        cause = Cause::wait_for_echo(&echo);
                        lat as u64
                    } else {
                        Simulator::memory_latency_on(&mut hierarchy, access) as u64
                    }
                } else {
                    if op.flags & F_SETVL != 0 {
                        vl = *trace
                            .vl_sets
                            .get(vi)
                            .ok_or(ReplayError::TruncatedVlSets { consumed: vi })?;
                        vi += 1;
                        evl = vl.clamp(1, MAX_VL) as u64;
                    }
                    if op.flags & F_READS_VL != 0 {
                        let lanes = op.lanes as u64;
                        let tail = if lanes.is_power_of_two() {
                            (evl - 1) >> lanes.trailing_zeros()
                        } else {
                            (evl - 1) / lanes
                        };
                        op.flow as u64 + tail
                    } else {
                        op.flow as u64
                    }
                };
                let _ = cause;

                if op.dst_slot != NO_SLOT {
                    ready[op.dst_slot as usize] = issue + latency;
                    if P::ENABLED {
                        prof.write(op_idx, op.dst_slot, cause);
                    }
                }

                micro_ops += if op.flags & F_READS_VL != 0 {
                    op.micro_ops_unit as u64 * evl
                } else {
                    op.micro_ops_unit as u64
                };

                halted |= op.flags & F_HALT != 0;
            }

            cycle = issue + 1;
            // The engine checks the limit after every bundle; the clock
            // is monotone within a segment, so checking at segment ends
            // reaches the same error decision.
            if cycle - block_start_cycle > max_cycles || cycle > max_cycles {
                return Err(ReplayError::CycleLimit(max_cycles));
            }
        }

        // Even an empty block consumes a fetch cycle.
        if block.bundle_count == 0 {
            cycle += 1;
        }

        if region_idx >= region_acc.len() || region_acc[region_idx].0 != region {
            region_idx = match region_acc.iter().position(|(id, _)| *id == region) {
                Some(i) => i,
                None => {
                    region_acc.push((region, crate::stats::RegionStats::default()));
                    region_acc.len() - 1
                }
            };
        }
        let r = &mut region_acc[region_idx].1;
        r.cycles += cycle - block_start_cycle;
        r.stall_cycles += stall_cycles;
        r.instructions += (block.bundle_count as u64).max(1);
        r.operations += ops_executed;
        r.micro_ops += micro_ops;
    }

    if !halted {
        return Err(ReplayError::MissingHalt);
    }
    if ai != trace.accesses.len() || vi != trace.vl_sets.len() {
        return Err(ReplayError::TrailingEvents {
            accesses: trace.accesses.len() - ai,
            vl_sets: trace.vl_sets.len() - vi,
        });
    }

    for (id, acc) in &region_acc {
        stats.region_mut(*id).add(acc);
    }
    stats.memory = hierarchy.stats;
    stats.memory.record_obs();
    vmv_obs::incr(vmv_obs::Counter::TraceReplays);
    Ok(stats)
}

/// The precompiled slot analysis for batched replay: the compact timing
/// view of one [`LoweredProgram`], built once and shared across every
/// variant retimed from the same trace.  Single-variant [`replay`] builds
/// the same view per call; this type only makes the sharing explicit.
pub struct ReplayAnalysis {
    compact: ReplayProgram,
    total_slots: usize,
    regions: Vec<vmv_isa::RegionId>,
}

impl ReplayAnalysis {
    pub fn build(program: &LoweredProgram) -> ReplayAnalysis {
        ReplayAnalysis {
            compact: ReplayProgram::build(program),
            total_slots: program.total_slots(),
            regions: program.regions.iter().map(|r| r.id).collect(),
        }
    }

    /// Size of the register-slot universe the analysis was built over.
    pub fn total_slots(&self) -> usize {
        self.total_slots
    }

    /// The slots the scoreboard keeps (indexed by slot): exactly the Pass-1
    /// classification the timing walk stalls on.  Exposed so the static
    /// verifier (`vmv-verify`) can prove the set is a superset of the slots
    /// that must be tracked.
    pub fn tracked_slots(&self) -> &[bool] {
        &self.compact.tracked
    }
}

/// The per-variant timing parameters of a batched replay: the memory model
/// and machine fields the walk prices against.  Construction is free — the
/// walk itself decides per variant whether it needs a full tag-simulating
/// [`MemoryHierarchy`] (one per tag-equivalence class) or only a
/// latency-arithmetic [`vmv_mem::EchoPricer`].  Everything else
/// (scoreboard, clock, L2-port cursor) lives in the walk's
/// struct-of-arrays scratch.
pub struct VariantState {
    model: MemoryModel,
    memory: vmv_machine::MemoryParams,
    port_elems: u32,
    max_cycles: u64,
    /// Slot universe stamp, checked against the analysis on entry.
    slots: usize,
}

impl VariantState {
    /// Prepare one variant for [`replay_batch`].  `machine` may differ from
    /// the recording machine in memory-hierarchy parameters only — the
    /// same contract as single-variant [`replay`].
    pub fn new(
        analysis: &ReplayAnalysis,
        machine: &MachineConfig,
        model: MemoryModel,
        max_cycles: u64,
    ) -> VariantState {
        VariantState {
            model,
            memory: machine.memory,
            port_elems: machine.l2_port_elems.max(1),
            max_cycles,
            slots: analysis.total_slots,
        }
    }
}

/// How one variant of a batch prices recorded accesses: class leaders walk
/// real tags, followers replay the leader's echoes.
// One entry per variant, K entries total — the size skew between a full
// hierarchy and an echo pricer is irrelevant at batch widths, and an
// indirection on the leader would cost a pointer chase per priced access.
#[allow(clippy::large_enum_variant)]
enum Pricer {
    Leader(MemoryHierarchy),
    Follower(vmv_mem::EchoPricer),
}

impl Pricer {
    fn stats(&self) -> vmv_mem::MemStats {
        match self {
            Pricer::Leader(h) => h.stats,
            Pricer::Follower(p) => p.stats,
        }
    }
}

/// Replay `trace` once, retiming K independent memory variants in
/// lockstep.  The decoded trace — block sequence, access stream, `setvl`
/// values, collapsed timing-inert segments — is walked a single time; only
/// the timing state (scoreboard, clock, L2-port cursor, hierarchy) is
/// per-variant, held in struct-of-arrays layout so the inner loops are
/// tight passes over K contiguous values.  `out[k]` is bit-identical to
/// `replay(program, trace, machine_k, model_k, max_cycles_k)`; the
/// differential and property suites in `tests/trace_replay.rs` enforce
/// exactly that.
///
/// Errors that depend on the variant (`CycleLimit`) fail the whole batch;
/// callers wanting per-variant error isolation fall back to serial
/// [`replay`].  An empty `variants` slice returns an empty vector.
pub fn replay_batch(
    trace: &Trace,
    analysis: &ReplayAnalysis,
    variants: &mut [VariantState],
) -> Result<Vec<RunStats>, ReplayError> {
    replay_batch_with(trace, analysis, variants, &mut NoBatchProfile)
}

/// [`replay_batch`] with cycle attribution: one extra pass piggybacked on
/// the fused walk, not K profiled replays.  `profiles[k]` is bit-identical
/// to the profile `replay_profiled` would produce for variant `k`, and
/// `out[k]` is unchanged from the unprofiled batch.
pub fn replay_batch_profiled(
    trace: &Trace,
    analysis: &ReplayAnalysis,
    variants: &mut [VariantState],
    statics: &Arc<ProfileStatics>,
) -> Result<(Vec<RunStats>, Vec<Profile>), ReplayError> {
    let mut bp = BatchProfiler::new(statics, variants.len());
    let out = replay_batch_with(trace, analysis, variants, &mut bp)?;
    let profiles = bp.finish();
    for p in &profiles {
        p.record_obs();
    }
    Ok((out, profiles))
}

fn replay_batch_with<BP: BatchSink>(
    trace: &Trace,
    analysis: &ReplayAnalysis,
    variants: &mut [VariantState],
    bp: &mut BP,
) -> Result<Vec<RunStats>, ReplayError> {
    let k = variants.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    for (i, v) in variants.iter().enumerate() {
        if v.slots != analysis.total_slots {
            return Err(ReplayError::VariantSlotMismatch {
                variant: i,
                expected: analysis.total_slots,
                got: v.slots,
            });
        }
    }
    let _span = vmv_obs::span(vmv_obs::SpanKind::ReplayBatch);
    let compact = &analysis.compact;

    // Struct-of-arrays timing state.  The scoreboard is slot-major
    // (`ready[slot * k + variant]`) so the per-read-slot inner loop walks
    // K contiguous words.
    let mut ready: Vec<u64> = vec![0; analysis.total_slots * k];
    let mut clock: Vec<u64> = vec![0; k];
    let mut l2_port_free: Vec<u64> = vec![0; k];
    let mut issue: Vec<u64> = vec![0; k];
    let mut block_start: Vec<u64> = vec![0; k];
    let mut block_stalls: Vec<u64> = vec![0; k];
    let mut lat: Vec<u64> = vec![0; k];
    let mut line_memo = SharedAccessScratch::new();
    // Per-variant wait-level causes for one memory access, broadcast from
    // each class leader's echo (followers share the leader's hit/miss
    // pattern by construction of the tag-equivalence classes).
    let mut cause_k: Vec<Cause> = vec![Cause::RawStall; if BP::ENABLED { k } else { 0 }];

    // Partition the variants into tag-equivalence classes: configurations
    // sharing model, geometry and port width produce identical hit/miss
    // behaviour, so one *leader* per class walks the real tags and every
    // follower is priced from the leader's access echo — pure latency
    // arithmetic, no tag simulation, and no tag arrays to allocate.  A
    // memory-latency sweep collapses to one class; a geometry sweep
    // degrades gracefully to K singleton leaders.
    let mut classes: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, v) in variants.iter().enumerate() {
        match classes.iter_mut().find(|(leader, _)| {
            let l = &variants[*leader];
            vmv_mem::tag_equivalent_configs(
                (l.model, &l.memory, l.port_elems),
                (v.model, &v.memory, v.port_elems),
            )
        }) {
            Some((_, followers)) => followers.push(i),
            None => classes.push((i, Vec::new())),
        }
    }
    let mut pricers: Vec<Pricer> = variants
        .iter()
        .map(|v| Pricer::Follower(vmv_mem::EchoPricer::new(v.memory, v.port_elems)))
        .collect();
    for (leader, _) in &classes {
        let v = &variants[*leader];
        pricers[*leader] = Pricer::Leader(MemoryHierarchy::new(v.model, v.memory, v.port_elems));
    }

    // Region accumulation: functional totals (instructions, operations,
    // micro-ops) are identical across variants and accumulate once;
    // cycles and stalls are per-variant.
    struct RegionAcc {
        id: vmv_isa::RegionId,
        shared: crate::stats::RegionStats,
        cycles: Vec<u64>,
        stalls: Vec<u64>,
    }
    let mut region_acc: Vec<RegionAcc> = Vec::new();
    let mut region_idx = 0usize;

    // Shared functional state, reconstructed from the trace exactly as in
    // single-variant replay.
    let mut vl: u32 = trace.initial_vl;
    let mut evl: u64 = vl.clamp(1, MAX_VL) as u64;
    let (mut ai, mut vi) = (0usize, 0usize);
    let mut halted = false;

    for (step, &block_id) in trace.blocks.iter().enumerate() {
        if halted {
            return Err(ReplayError::BlocksAfterHalt { step: step - 1 });
        }
        let block = *compact
            .blocks
            .get(block_id as usize)
            .ok_or(ReplayError::BlockOutOfRange {
                step,
                block: block_id,
            })?;
        let region = block.region;
        block_start.copy_from_slice(&clock);
        block_stalls.iter_mut().for_each(|s| *s = 0);
        let mut ops_executed = 0u64;
        let mut micro_ops = 0u64;
        bp.begin_block(block_id);
        let mut bundle_cursor = block.first_bundle;

        for seg in
            &compact.segs[block.first_seg as usize..(block.first_seg + block.seg_count) as usize]
        {
            let span = (seg.span - 1) as u64;
            for kk in 0..k {
                issue[kk] = clock[kk] + span;
            }
            for &slot in &compact.reads[seg.reads.0 as usize..seg.reads.1 as usize] {
                let row = &ready[slot as usize * k..slot as usize * k + k];
                for kk in 0..k {
                    issue[kk] = issue[kk].max(row[kk]);
                }
            }
            if seg.vecmem {
                for kk in 0..k {
                    issue[kk] = issue[kk].max(l2_port_free[kk]);
                }
            }
            for kk in 0..k {
                block_stalls[kk] += issue[kk] - (clock[kk] + span);
            }

            if BP::ENABLED {
                // Same bundle-event reconstruction as serial replay, once
                // per variant: inert bundles issue stall-free at
                // consecutive cycles, the final bundle carries the
                // segment's stall, bound by a strided scoreboard scan.
                for kk in 0..k {
                    for i in 0..seg.span - 1 {
                        bp.bundle(
                            kk,
                            bundle_cursor + i,
                            clock[kk] + i as u64,
                            0,
                            Binding::None,
                        );
                    }
                    let base = clock[kk] + span;
                    let stall = issue[kk] - base;
                    let binding = if stall == 0 {
                        Binding::None
                    } else {
                        let mut found = Binding::Port;
                        for &slot in &compact.reads[seg.reads.0 as usize..seg.reads.1 as usize] {
                            if ready[slot as usize * k + kk] == issue[kk] {
                                found = Binding::Slot(slot);
                                break;
                            }
                        }
                        found
                    };
                    bp.bundle(kk, bundle_cursor + seg.span - 1, base, stall, binding);
                }
                bundle_cursor += seg.span;
            }

            for (wi, &(slot, lat)) in compact.writes[seg.writes.0 as usize..seg.writes.1 as usize]
                .iter()
                .enumerate()
            {
                let row = &mut ready[slot as usize * k..slot as usize * k + k];
                for kk in 0..k {
                    row[kk] = issue[kk] + lat as u64;
                }
                if BP::ENABLED {
                    bp.write_all(
                        compact.write_ops[seg.writes.0 as usize + wi],
                        slot,
                        Cause::RawStall,
                    );
                }
            }
            micro_ops += seg.static_micro_ops;
            ops_executed += seg.op_count as u64;

            for (di, op) in compact.dynamics[seg.dynamics.0 as usize..seg.dynamics.1 as usize]
                .iter()
                .enumerate()
            {
                let op_idx = if BP::ENABLED {
                    compact.dyn_ops[seg.dynamics.0 as usize + di]
                } else {
                    0
                };
                if op.flags & F_MEM != 0 {
                    let access = trace
                        .accesses
                        .get(ai)
                        .ok_or(ReplayError::TruncatedAccesses { consumed: ai })?;
                    ai += 1;
                    if access.is_vector {
                        for (kk, v) in variants.iter().enumerate() {
                            let occupancy = if access.stride == 8 {
                                access.elems.div_ceil(v.port_elems)
                            } else {
                                access.elems
                            };
                            l2_port_free[kk] = issue[kk] + occupancy.max(1) as u64;
                        }
                        if BP::ENABLED {
                            bp.vec_port_all(op_idx);
                        }
                    }
                    // Memory latency is the one per-variant quantity: the
                    // class leader walks its real tags (irregular line
                    // walks memoized once across classes), and followers
                    // are priced from the echo.
                    for (leader, followers) in &classes {
                        let Pricer::Leader(hierarchy) = &mut pricers[*leader] else {
                            unreachable!("class leaders carry a full hierarchy")
                        };
                        let (leader_lat, echo) =
                            Simulator::memory_latency_echo(hierarchy, access, &mut line_memo);
                        lat[*leader] = leader_lat as u64;
                        if BP::ENABLED {
                            // Followers share the leader's hit/miss pattern,
                            // so the wait level broadcasts across the class.
                            let cause = Cause::wait_for_echo(&echo);
                            cause_k[*leader] = cause;
                            for &f in followers {
                                cause_k[f] = cause;
                            }
                        }
                        for &f in followers {
                            let Pricer::Follower(pricer) = &mut pricers[f] else {
                                unreachable!("class followers carry an echo pricer")
                            };
                            lat[f] = pricer.apply_echo(&echo).latency as u64;
                        }
                    }
                    if op.dst_slot != NO_SLOT {
                        let row_at = op.dst_slot as usize * k;
                        for kk in 0..k {
                            ready[row_at + kk] = issue[kk] + lat[kk];
                        }
                        if BP::ENABLED {
                            bp.write_k(op_idx, op.dst_slot, &cause_k);
                        }
                    }
                } else {
                    if op.flags & F_SETVL != 0 {
                        vl = *trace
                            .vl_sets
                            .get(vi)
                            .ok_or(ReplayError::TruncatedVlSets { consumed: vi })?;
                        vi += 1;
                        evl = vl.clamp(1, MAX_VL) as u64;
                    }
                    // Non-memory latency depends only on shared state (VL,
                    // lanes): computed once for all variants.
                    let latency = if op.flags & F_READS_VL != 0 {
                        let lanes = op.lanes as u64;
                        let tail = if lanes.is_power_of_two() {
                            (evl - 1) >> lanes.trailing_zeros()
                        } else {
                            (evl - 1) / lanes
                        };
                        op.flow as u64 + tail
                    } else {
                        op.flow as u64
                    };
                    if op.dst_slot != NO_SLOT {
                        let row_at = op.dst_slot as usize * k;
                        for kk in 0..k {
                            ready[row_at + kk] = issue[kk] + latency;
                        }
                        if BP::ENABLED {
                            bp.write_all(op_idx, op.dst_slot, Cause::RawStall);
                        }
                    }
                }

                micro_ops += if op.flags & F_READS_VL != 0 {
                    op.micro_ops_unit as u64 * evl
                } else {
                    op.micro_ops_unit as u64
                };

                halted |= op.flags & F_HALT != 0;
            }

            for (kk, v) in variants.iter().enumerate() {
                clock[kk] = issue[kk] + 1;
                if clock[kk] - block_start[kk] > v.max_cycles || clock[kk] > v.max_cycles {
                    return Err(ReplayError::CycleLimit(v.max_cycles));
                }
            }
        }

        if block.bundle_count == 0 {
            for c in clock.iter_mut() {
                *c += 1;
            }
        }

        if region_idx >= region_acc.len() || region_acc[region_idx].id != region {
            region_idx = match region_acc.iter().position(|acc| acc.id == region) {
                Some(i) => i,
                None => {
                    region_acc.push(RegionAcc {
                        id: region,
                        shared: crate::stats::RegionStats::default(),
                        cycles: vec![0; k],
                        stalls: vec![0; k],
                    });
                    region_acc.len() - 1
                }
            };
        }
        let acc = &mut region_acc[region_idx];
        for kk in 0..k {
            acc.cycles[kk] += clock[kk] - block_start[kk];
            acc.stalls[kk] += block_stalls[kk];
        }
        acc.shared.instructions += (block.bundle_count as u64).max(1);
        acc.shared.operations += ops_executed;
        acc.shared.micro_ops += micro_ops;
    }

    if !halted {
        return Err(ReplayError::MissingHalt);
    }
    if ai != trace.accesses.len() || vi != trace.vl_sets.len() {
        return Err(ReplayError::TrailingEvents {
            accesses: trace.accesses.len() - ai,
            vl_sets: trace.vl_sets.len() - vi,
        });
    }

    let mut out = Vec::with_capacity(k);
    for (kk, pricer) in pricers.iter().enumerate() {
        let mut stats = RunStats::default();
        for &id in &analysis.regions {
            stats.region_mut(id);
        }
        for acc in &region_acc {
            let mut r = acc.shared;
            r.cycles = acc.cycles[kk];
            r.stall_cycles = acc.stalls[kk];
            stats.region_mut(acc.id).add(&r);
        }
        stats.memory = pricer.stats();
        stats.memory.record_obs();
        vmv_obs::incr(vmv_obs::Counter::TraceReplays);
        out.push(stats);
    }
    vmv_obs::incr(vmv_obs::Counter::ReplayBatches);
    vmv_obs::record_value(vmv_obs::ValueHist::ReplayBatchWidth, k as u64);
    Ok(out)
}
