//! Architectural register state of the simulated processor.

use vmv_isa::{Accumulator, Reg, RegClass, MAX_VL};
use vmv_machine::MachineConfig;

/// A vector register: 16 × 64-bit words (paper §3.1).
pub type VectorValue = [u64; MAX_VL as usize];

/// All architectural register files plus the two control registers.
#[derive(Debug, Clone)]
pub struct RegFiles {
    pub int: Vec<i64>,
    pub simd: Vec<u64>,
    pub vec: Vec<VectorValue>,
    pub acc: Vec<Accumulator>,
    /// Vector length register (1..=16).
    pub vl: u32,
    /// Vector stride register, in bytes between consecutive 64-bit words.
    pub vs: i64,
}

impl RegFiles {
    /// Create register files sized for a machine configuration.  µSIMD and
    /// vector files are always given at least a few entries so that programs
    /// compiled for richer machines can still be *inspected* (they will have
    /// been rejected earlier by the compile pipeline if the machine truly
    /// lacks the ISA support).
    pub fn for_machine(machine: &MachineConfig) -> Self {
        RegFiles {
            int: vec![0; machine.regs.int.max(1) as usize],
            simd: vec![0; machine.regs.simd.max(1) as usize],
            vec: vec![[0; MAX_VL as usize]; machine.regs.vec.max(1) as usize],
            acc: vec![Accumulator::zero(); machine.regs.acc.max(1) as usize],
            vl: MAX_VL,
            vs: 8,
        }
    }

    pub fn read_int(&self, r: Reg) -> i64 {
        debug_assert_eq!(r.class, RegClass::Int);
        self.int[r.index as usize]
    }

    pub fn write_int(&mut self, r: Reg, v: i64) {
        debug_assert_eq!(r.class, RegClass::Int);
        self.int[r.index as usize] = v;
    }

    pub fn read_simd(&self, r: Reg) -> u64 {
        debug_assert_eq!(r.class, RegClass::Simd);
        self.simd[r.index as usize]
    }

    pub fn write_simd(&mut self, r: Reg, v: u64) {
        debug_assert_eq!(r.class, RegClass::Simd);
        self.simd[r.index as usize] = v;
    }

    pub fn read_vec(&self, r: Reg) -> VectorValue {
        debug_assert_eq!(r.class, RegClass::Vec);
        self.vec[r.index as usize]
    }

    pub fn write_vec(&mut self, r: Reg, v: VectorValue) {
        debug_assert_eq!(r.class, RegClass::Vec);
        self.vec[r.index as usize] = v;
    }

    pub fn read_acc(&self, r: Reg) -> Accumulator {
        debug_assert_eq!(r.class, RegClass::Acc);
        self.acc[r.index as usize]
    }

    pub fn write_acc(&mut self, r: Reg, v: Accumulator) {
        debug_assert_eq!(r.class, RegClass::Acc);
        self.acc[r.index as usize] = v;
    }

    /// Effective vector length, clamped to the architectural maximum.
    pub fn effective_vl(&self) -> u32 {
        self.vl.clamp(1, MAX_VL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_machine::presets;

    #[test]
    fn sizes_follow_machine_config() {
        let rf = RegFiles::for_machine(&presets::vector1(2));
        assert_eq!(rf.int.len(), 64);
        assert_eq!(rf.vec.len(), 20);
        assert_eq!(rf.acc.len(), 4);
        let rf = RegFiles::for_machine(&presets::usimd(8));
        assert_eq!(rf.simd.len(), 128);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut rf = RegFiles::for_machine(&presets::vector2(2));
        rf.write_int(Reg::int(3), -7);
        assert_eq!(rf.read_int(Reg::int(3)), -7);
        rf.write_simd(Reg::simd(2), 0xDEADBEEF);
        assert_eq!(rf.read_simd(Reg::simd(2)), 0xDEADBEEF);
        let mut v = [0u64; 16];
        v[5] = 99;
        rf.write_vec(Reg::vec(1), v);
        assert_eq!(rf.read_vec(Reg::vec(1))[5], 99);
    }

    #[test]
    fn vl_is_clamped() {
        let mut rf = RegFiles::for_machine(&presets::vector2(2));
        rf.vl = 0;
        assert_eq!(rf.effective_vl(), 1);
        rf.vl = 99;
        assert_eq!(rf.effective_vl(), 16);
        rf.vl = 8;
        assert_eq!(rf.effective_vl(), 8);
    }
}
