//! Architectural register state of the simulated processor.

use vmv_isa::{Accumulator, Reg, RegClass, MAX_VL};
use vmv_machine::MachineConfig;

/// A vector register: 16 × 64-bit words (paper §3.1).
pub type VectorValue = [u64; MAX_VL as usize];

/// All architectural register files plus the two control registers.
#[derive(Debug, Clone)]
pub struct RegFiles {
    pub int: Vec<i64>,
    pub simd: Vec<u64>,
    pub vec: Vec<VectorValue>,
    pub acc: Vec<Accumulator>,
    /// Vector length register (1..=16).
    pub vl: u32,
    /// Vector stride register, in bytes between consecutive 64-bit words.
    pub vs: i64,
}

impl RegFiles {
    /// Create register files sized for a machine configuration.  µSIMD and
    /// vector files are always given at least a few entries so that programs
    /// compiled for richer machines can still be *inspected* (they will have
    /// been rejected earlier by the compile pipeline if the machine truly
    /// lacks the ISA support).
    pub fn for_machine(machine: &MachineConfig) -> Self {
        RegFiles {
            int: vec![0; machine.regs.int.max(1) as usize],
            simd: vec![0; machine.regs.simd.max(1) as usize],
            vec: vec![[0; MAX_VL as usize]; machine.regs.vec.max(1) as usize],
            acc: vec![Accumulator::zero(); machine.regs.acc.max(1) as usize],
            vl: MAX_VL,
            vs: 8,
        }
    }

    pub fn read_int(&self, r: Reg) -> i64 {
        debug_assert_eq!(r.class, RegClass::Int);
        self.int[r.index as usize]
    }

    pub fn write_int(&mut self, r: Reg, v: i64) {
        debug_assert_eq!(r.class, RegClass::Int);
        self.int[r.index as usize] = v;
    }

    pub fn read_simd(&self, r: Reg) -> u64 {
        debug_assert_eq!(r.class, RegClass::Simd);
        self.simd[r.index as usize]
    }

    pub fn write_simd(&mut self, r: Reg, v: u64) {
        debug_assert_eq!(r.class, RegClass::Simd);
        self.simd[r.index as usize] = v;
    }

    pub fn read_vec(&self, r: Reg) -> VectorValue {
        debug_assert_eq!(r.class, RegClass::Vec);
        self.vec[r.index as usize]
    }

    pub fn write_vec(&mut self, r: Reg, v: VectorValue) {
        debug_assert_eq!(r.class, RegClass::Vec);
        self.vec[r.index as usize] = v;
    }

    /// Borrow a vector register without copying its 16 words.
    #[inline]
    pub fn vec_ref(&self, r: Reg) -> &VectorValue {
        debug_assert_eq!(r.class, RegClass::Vec);
        &self.vec[r.index as usize]
    }

    /// Mutably borrow a vector register without copying its 16 words.
    #[inline]
    pub fn vec_mut(&mut self, r: Reg) -> &mut VectorValue {
        debug_assert_eq!(r.class, RegClass::Vec);
        &mut self.vec[r.index as usize]
    }

    /// Apply a word-wise binary operation over the first `vl` words of two
    /// vector registers into a destination register (sources may alias the
    /// destination), zeroing the words beyond `vl`.  No 16-word copies are
    /// made.
    #[inline]
    pub fn vec_binop(
        &mut self,
        d: Reg,
        a: Reg,
        b: Reg,
        vl: u32,
        mut f: impl FnMut(u64, u64) -> u64,
    ) {
        debug_assert_eq!(d.class, RegClass::Vec);
        debug_assert_eq!(a.class, RegClass::Vec);
        debug_assert_eq!(b.class, RegClass::Vec);
        let (di, ai, bi) = (d.index as usize, a.index as usize, b.index as usize);
        let vl = vl.min(MAX_VL) as usize;
        for i in 0..vl {
            let x = self.vec[ai][i];
            let y = self.vec[bi][i];
            self.vec[di][i] = f(x, y);
        }
        self.vec[di][vl..].fill(0);
    }

    /// Apply a word-wise unary operation over the first `vl` words of a
    /// vector register into a destination register (which may alias the
    /// source), zeroing the words beyond `vl`.
    #[inline]
    pub fn vec_unop(&mut self, d: Reg, a: Reg, vl: u32, mut f: impl FnMut(u64) -> u64) {
        debug_assert_eq!(d.class, RegClass::Vec);
        debug_assert_eq!(a.class, RegClass::Vec);
        let (di, ai) = (d.index as usize, a.index as usize);
        let vl = vl.min(MAX_VL) as usize;
        for i in 0..vl {
            let x = self.vec[ai][i];
            self.vec[di][i] = f(x);
        }
        self.vec[di][vl..].fill(0);
    }

    pub fn read_acc(&self, r: Reg) -> Accumulator {
        debug_assert_eq!(r.class, RegClass::Acc);
        self.acc[r.index as usize]
    }

    pub fn write_acc(&mut self, r: Reg, v: Accumulator) {
        debug_assert_eq!(r.class, RegClass::Acc);
        self.acc[r.index as usize] = v;
    }

    /// Effective vector length, clamped to the architectural maximum.
    pub fn effective_vl(&self) -> u32 {
        self.vl.clamp(1, MAX_VL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_machine::presets;

    #[test]
    fn sizes_follow_machine_config() {
        let rf = RegFiles::for_machine(&presets::vector1(2));
        assert_eq!(rf.int.len(), 64);
        assert_eq!(rf.vec.len(), 20);
        assert_eq!(rf.acc.len(), 4);
        let rf = RegFiles::for_machine(&presets::usimd(8));
        assert_eq!(rf.simd.len(), 128);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut rf = RegFiles::for_machine(&presets::vector2(2));
        rf.write_int(Reg::int(3), -7);
        assert_eq!(rf.read_int(Reg::int(3)), -7);
        rf.write_simd(Reg::simd(2), 0xDEADBEEF);
        assert_eq!(rf.read_simd(Reg::simd(2)), 0xDEADBEEF);
        let mut v = [0u64; 16];
        v[5] = 99;
        rf.write_vec(Reg::vec(1), v);
        assert_eq!(rf.read_vec(Reg::vec(1))[5], 99);
    }

    #[test]
    fn vl_is_clamped() {
        let mut rf = RegFiles::for_machine(&presets::vector2(2));
        rf.vl = 0;
        assert_eq!(rf.effective_vl(), 1);
        rf.vl = 99;
        assert_eq!(rf.effective_vl(), 16);
        rf.vl = 8;
        assert_eq!(rf.effective_vl(), 8);
    }
}
