//! The cycle-level execution engine.
//!
//! The engine executes a *scheduled* program exactly the way the paper's
//! machine model does (§3.3, §4.2): one VLIW instruction (bundle) is issued
//! per cycle in program order; the compiler's schedule already guarantees
//! that data dependences and structural hazards are respected *assuming* the
//! latencies it used (L1/L2 hits, stride-one vector accesses, the
//! compile-time vector length).  Whenever reality differs — a cache miss, a
//! non-unit-stride vector access, a value arriving from a previous block —
//! the whole machine stalls until the hazard clears, which is precisely the
//! "processor is stalled at run-time" behaviour the paper describes and the
//! reason VLIW is so sensitive to non-deterministic latencies (§5.1).
//!
//! Two entry points exist:
//!
//! * [`Simulator::run_lowered`] — the hot path.  It consumes the
//!   pre-resolved [`LoweredProgram`] of `vmv_sched::lower`: the scoreboard
//!   is a plain `Vec<u64>` indexed by register slot, branch targets are
//!   block indices, read/write sets and latency metadata are baked into
//!   each operation, and bundles are contiguous array slices.  Nothing is
//!   hashed, allocated or string-compared per dynamic operation.
//! * [`Simulator::run`] — convenience wrapper that lowers a
//!   [`ScheduledProgram`] and runs it.  [`Simulator::run_reference`] keeps
//!   the original string-keyed interpretation loop as the differential
//!   oracle: `tests/lowered_differential.rs` proves both produce identical
//!   [`RunStats`] cycle for cycle.

use std::collections::HashMap;
use std::sync::Arc;

use vmv_isa::{LatencyDescriptor, Op, Reg, NO_SLOT};
use vmv_machine::MachineConfig;
use vmv_mem::{AccessKind, MemoryHierarchy, MemoryModel};
use vmv_sched::{lower, LoweredProgram, ScheduledProgram};

use crate::exec::{execute_lowered, execute_op, ExecOutcome, LoweredOutcome, MemAccess};
use crate::memimage::MemImage;
use crate::profile::{
    Binding, Cause, NoProfile, Profile, ProfileRecorder, ProfileSink, ProfileStatics,
};
use crate::regfile::RegFiles;
use crate::stats::RunStats;
use crate::trace::{NoTrace, Trace, TraceRecorder, TraceSink};

/// Simulator construction options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Memory timing model (perfect vs realistic, Fig. 5a vs 5b).
    pub memory_model: MemoryModel,
    /// Size of the flat data memory image in bytes.
    pub mem_size: usize,
    /// Hard cap on simulated cycles (guards against runaway programs).
    pub max_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            memory_model: MemoryModel::Realistic,
            mem_size: 8 * 1024 * 1024,
            max_cycles: 2_000_000_000,
        }
    }
}

/// Errors produced while running a program.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The program branched to a label that does not exist.
    UnknownLabel(String),
    /// The program could not be lowered to executable form (bad register
    /// indices, malformed branches, ... — caught before execution starts).
    Lower(String),
    /// The cycle limit was exceeded.
    CycleLimit(u64),
    /// A malformed operation reached the simulator.
    Exec(String),
    /// The program fell off the end without executing `halt`.
    FellOffEnd,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownLabel(l) => write!(f, "branch to unknown label '{l}'"),
            SimError::Lower(e) => write!(f, "lowering failed: {e}"),
            SimError::CycleLimit(c) => write!(f, "cycle limit of {c} exceeded"),
            SimError::Exec(e) => write!(f, "{e}"),
            SimError::FellOffEnd => write!(f, "program ended without executing halt"),
        }
    }
}
impl std::error::Error for SimError {}

impl From<vmv_sched::LowerError> for SimError {
    fn from(e: vmv_sched::LowerError) -> SimError {
        match e {
            vmv_sched::LowerError::UnknownLabel { label, .. } => SimError::UnknownLabel(label),
            other => SimError::Lower(other.to_string()),
        }
    }
}

/// The simulator: machine state plus timing state.
pub struct Simulator {
    machine: MachineConfig,
    hierarchy: MemoryHierarchy,
    options: SimOptions,
    /// Flat data memory (functional contents).
    pub mem: MemImage,
    /// Architectural registers.
    pub regs: RegFiles,
}

impl Simulator {
    pub fn new(machine: &MachineConfig, options: SimOptions) -> Self {
        Simulator {
            machine: machine.clone(),
            hierarchy: MemoryHierarchy::for_machine(options.memory_model, machine),
            options,
            mem: MemImage::new(options.mem_size),
            regs: RegFiles::for_machine(machine),
        }
    }

    /// Convenience constructor with default options and the given memory model.
    pub fn with_model(machine: &MachineConfig, model: MemoryModel) -> Self {
        Simulator::new(
            machine,
            SimOptions {
                memory_model: model,
                ..SimOptions::default()
            },
        )
    }

    /// The machine configuration being simulated.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Run a scheduled program to completion and return the statistics.
    ///
    /// Lowers the program (pre-resolving labels, register slots and latency
    /// metadata) and executes the lowered form.  Callers running the same
    /// schedule many times should lower once with [`vmv_sched::lower`] and
    /// call [`Simulator::run_lowered`] directly.
    pub fn run(&mut self, program: &ScheduledProgram) -> Result<RunStats, SimError> {
        let lowered = lower(program, &self.machine)?;
        self.run_lowered(&lowered)
    }

    /// Run a lowered program to completion: the array-indexed hot path.
    pub fn run_lowered(&mut self, program: &LoweredProgram) -> Result<RunStats, SimError> {
        self.run_lowered_with(program, &mut NoTrace, &mut NoProfile)
    }

    /// Run a lowered program to completion *and* record its timing trace
    /// (block sequence, memory accesses, VL updates) for later replay with
    /// [`crate::replay::replay`].
    pub fn run_lowered_recording(
        &mut self,
        program: &LoweredProgram,
    ) -> Result<(RunStats, Trace), SimError> {
        let mut recorder = TraceRecorder::new(self.regs.vl);
        let stats = self.run_lowered_with(program, &mut recorder, &mut NoProfile)?;
        vmv_obs::incr(vmv_obs::Counter::TraceRecords);
        Ok((stats, recorder.finish()))
    }

    /// Run a lowered program to completion *and* attribute every simulated
    /// cycle to a [`Cause`].  The returned [`RunStats`] are bit-identical
    /// to [`Simulator::run_lowered`]; the profile sums exactly to them
    /// (see [`Profile::check_against`]).
    pub fn run_lowered_profiled(
        &mut self,
        program: &LoweredProgram,
        statics: &Arc<ProfileStatics>,
    ) -> Result<(RunStats, Profile), SimError> {
        let mut rec = ProfileRecorder::new(statics.clone());
        let stats = self.run_lowered_with(program, &mut NoTrace, &mut rec)?;
        let profile = rec.finish();
        profile.record_obs();
        Ok((stats, profile))
    }

    /// [`Simulator::run_lowered_recording`] and
    /// [`Simulator::run_lowered_profiled`] in one pass: record the timing
    /// trace *and* the cycle attribution of the same execution.
    pub fn run_lowered_recording_profiled(
        &mut self,
        program: &LoweredProgram,
        statics: &Arc<ProfileStatics>,
    ) -> Result<(RunStats, Trace, Profile), SimError> {
        let mut recorder = TraceRecorder::new(self.regs.vl);
        let mut rec = ProfileRecorder::new(statics.clone());
        let stats = self.run_lowered_with(program, &mut recorder, &mut rec)?;
        vmv_obs::incr(vmv_obs::Counter::TraceRecords);
        let profile = rec.finish();
        profile.record_obs();
        Ok((stats, recorder.finish(), profile))
    }

    /// The lowered-engine loop, generic over a [`TraceSink`] observer and a
    /// [`ProfileSink`].  The non-observing instantiations ([`NoTrace`],
    /// [`NoProfile`]) monomorphise to exactly the previous hot path — the
    /// sink hooks are empty inline functions, and the work of *computing*
    /// profile hook arguments (echo pricing, binding scans, op indices) is
    /// gated on `P::ENABLED`, a monomorphisation-time constant.
    fn run_lowered_with<S: TraceSink, P: ProfileSink>(
        &mut self,
        program: &LoweredProgram,
        sink: &mut S,
        prof: &mut P,
    ) -> Result<RunStats, SimError> {
        let mut stats = RunStats::default();
        // Make sure every declared region appears in the statistics, even if
        // it executes zero cycles.
        for region in &program.regions {
            stats.region_mut(region.id);
        }
        // Per-region accumulators as a tiny linear-scan table (programs have
        // a handful of regions): no tree lookup per executed block.  Merged
        // into the BTreeMap-backed RunStats on exit.
        let mut region_acc: Vec<(vmv_isa::RegionId, crate::stats::RegionStats)> = Vec::new();
        let mut region_idx = 0usize;

        // Scoreboard: cycle at which each register slot's latest value is
        // ready.  A plain array — slots were resolved at lowering time.
        let mut ready: Vec<u64> = vec![0; program.total_slots()];
        // Cycle at which the single L2 vector-cache port becomes free.
        let mut l2_port_free: u64 = 0;

        let mut cycle: u64 = 0;
        let mut block_idx = 0usize;

        // Split borrows once: the inner loop works on the individual fields
        // so the register file, the flat memory and the hierarchy are
        // independently borrowed locals instead of `&mut self` projections
        // the optimiser must re-derive per operation.
        let max_cycles = self.options.max_cycles;
        let port_elems = self.machine.l2_port_elems.max(1);
        // Echo scratch for profiled runs: profiling prices memory through
        // the echoed access path (bit-identical timing and MemStats) to
        // learn which level served each access.
        let mut echo_scratch = vmv_mem::SharedAccessScratch::new();
        let Simulator {
            regs,
            mem,
            hierarchy,
            ..
        } = self;

        'blocks: while block_idx < program.blocks.len() {
            sink.block(block_idx as u32);
            prof.begin_block(block_idx as u32);
            let block = &program.blocks[block_idx];
            let region = block.region;
            let block_start_cycle = cycle;
            let mut ops_executed = 0u64;
            let mut micro_ops = 0u64;
            let mut stall_cycles = 0u64;
            let mut next_block = block_idx + 1;
            let mut halted = false;

            // Issue time of one operation's bundle: every source operand
            // ready, the L2 vector port free.
            macro_rules! issue_of {
                ($op:expr, $issue:expr) => {{
                    for &slot in $op.read_slots() {
                        $issue = $issue.max(ready[slot as usize]);
                    }
                    if $op.is_vector_memory {
                        $issue = $issue.max(l2_port_free);
                    }
                }};
            }
            // Execute one operation at its bundle's issue time: functional
            // effects, completion latency into the scoreboard, port
            // occupancy, statistics and the control-flow decision.  `$opi`
            // is the op's global index (only evaluated when profiling).
            macro_rules! exec_at {
                ($op:expr, $opi:expr, $issue:expr) => {{
                    let mut mem_access: Option<MemAccess> = None;
                    let outcome = execute_lowered($op, regs, mem, &mut mem_access)
                        .map_err(|e| SimError::Exec(e.to_string()))?;
                    sink.op($op, &mem_access, regs);
                    let mut cause = Cause::RawStall;

                    // Determine the actual completion latency.
                    let latency = match &mem_access {
                        Some(access) => {
                            if access.is_vector {
                                let occupancy = if access.stride == 8 {
                                    access.elems.div_ceil(port_elems)
                                } else {
                                    access.elems
                                };
                                l2_port_free = $issue + occupancy.max(1) as u64;
                                if P::ENABLED {
                                    prof.vec_port($opi);
                                }
                            }
                            if P::ENABLED {
                                let (lat, echo) =
                                    Self::memory_latency_echo(hierarchy, access, &mut echo_scratch);
                                cause = Cause::wait_for_echo(&echo);
                                lat
                            } else {
                                Self::memory_latency_on(hierarchy, access)
                            }
                        }
                        None => {
                            if $op.reads_vl {
                                // (vl-1)/lanes tail (Fig. 3b); lane counts
                                // are powers of two on every real machine —
                                // shift instead of hardware division.
                                let vl = regs.effective_vl();
                                let lanes = $op.lanes.max(1) as u32;
                                let tail = if lanes.is_power_of_two() {
                                    (vl - 1) >> lanes.trailing_zeros()
                                } else {
                                    (vl - 1) / lanes
                                };
                                $op.flow as u32 + tail
                            } else {
                                $op.flow as u32
                            }
                        }
                    } as u64;

                    if $op.dst_slot != NO_SLOT {
                        ready[$op.dst_slot as usize] = $issue + latency;
                        if P::ENABLED {
                            prof.write($opi, $op.dst_slot, cause);
                        }
                    }
                    let _ = cause;

                    ops_executed += 1;
                    micro_ops += if $op.reads_vl {
                        $op.micro_ops_unit as u64 * regs.effective_vl() as u64
                    } else {
                        $op.micro_ops_unit as u64
                    };

                    match outcome {
                        LoweredOutcome::Normal => {}
                        LoweredOutcome::BranchTaken(target) => next_block = target as usize,
                        LoweredOutcome::Halt => halted = true,
                    }
                }};
            }

            // Profiling: attribute a bundle's stall to the first read slot
            // (program order) that is still busy at the issue cycle — the
            // blame side table in the recorder turns the slot into a cause
            // — or to the L2 vector port when no slot explains it.
            macro_rules! profile_bundle {
                ($bundle:expr, $b:expr, $issue:expr) => {
                    if P::ENABLED {
                        let stall = $issue - cycle;
                        let binding = if stall == 0 {
                            Binding::None
                        } else {
                            let mut found = Binding::Port;
                            'scan: for op in $bundle {
                                for &slot in op.read_slots() {
                                    if ready[slot as usize] == $issue {
                                        found = Binding::Slot(slot);
                                        break 'scan;
                                    }
                                }
                            }
                            found
                        };
                        prof.bundle($b, cycle, stall, binding);
                    }
                };
            }

            for b in block.first_bundle..block.first_bundle + block.bundle_count {
                let bundle = program.bundle_ops(b);
                let op_base = if P::ENABLED {
                    program.bundle_bounds[b as usize]
                } else {
                    0
                };
                // In-order issue: the bundle stalls until every source
                // operand of every operation in it is ready.
                let mut issue = cycle;
                if let [op] = bundle {
                    // The dominant narrow-issue case: one operation — fuse
                    // the issue scan and the execution into a single pass.
                    issue_of!(op, issue);
                    stall_cycles += issue - cycle;
                    profile_bundle!(bundle, b, issue);
                    exec_at!(op, op_base, issue);
                } else {
                    for op in bundle {
                        issue_of!(op, issue);
                    }
                    stall_cycles += issue - cycle;
                    profile_bundle!(bundle, b, issue);
                    for (i, op) in bundle.iter().enumerate() {
                        exec_at!(op, op_base + i as u32, issue);
                    }
                }

                cycle = issue + 1;
                if cycle - block_start_cycle > max_cycles || cycle > max_cycles {
                    return Err(SimError::CycleLimit(max_cycles));
                }
            }

            // Even an empty block consumes a fetch cycle.
            if block.bundle_count == 0 {
                cycle += 1;
            }

            if region_idx >= region_acc.len() || region_acc[region_idx].0 != region {
                region_idx = match region_acc.iter().position(|(id, _)| *id == region) {
                    Some(i) => i,
                    None => {
                        region_acc.push((region, crate::stats::RegionStats::default()));
                        region_acc.len() - 1
                    }
                };
            }
            let r = &mut region_acc[region_idx].1;
            r.cycles += cycle - block_start_cycle;
            r.stall_cycles += stall_cycles;
            r.instructions += (block.bundle_count as u64).max(1);
            r.operations += ops_executed;
            r.micro_ops += micro_ops;

            if halted {
                for (id, acc) in &region_acc {
                    stats.region_mut(*id).add(acc);
                }
                stats.memory = hierarchy.stats;
                // One fold per completed run (and only on the lowered
                // engine, so differential runs don't double-count).
                stats.memory.record_obs();
                vmv_obs::incr(vmv_obs::Counter::SimRuns);
                return Ok(stats);
            }
            if next_block >= program.blocks.len() {
                break 'blocks;
            }
            block_idx = next_block;
        }

        Err(SimError::FellOffEnd)
    }

    /// Run a scheduled program through the original string-keyed
    /// interpretation loop (hash-map scoreboard, label-map branch
    /// resolution, per-operation metadata re-derivation).
    ///
    /// Retained as the differential oracle for the lowered engine — the
    /// semantics the hot path must reproduce cycle for cycle — and for
    /// inspecting schedules that deliberately fail lowering.
    pub fn run_reference(&mut self, program: &ScheduledProgram) -> Result<RunStats, SimError> {
        let labels = program.label_map();
        let mut stats = RunStats::default();
        // Make sure every declared region appears in the statistics, even if
        // it executes zero cycles.
        for region in &program.regions {
            stats.region_mut(region.id);
        }

        // Scoreboard: cycle at which each register's latest value is ready.
        let mut ready: HashMap<Reg, u64> = HashMap::new();
        // Cycle at which the single L2 vector-cache port becomes free.
        let mut l2_port_free: u64 = 0;

        let mut cycle: u64 = 0;
        let mut block_idx = 0usize;

        'blocks: while block_idx < program.blocks.len() {
            let block = &program.blocks[block_idx];
            let region = block.region;
            let block_start_cycle = cycle;
            let mut ops_executed = 0u64;
            let mut micro_ops = 0u64;
            let mut stall_cycles = 0u64;
            let mut next_block = block_idx + 1;
            let mut halted = false;

            for bundle in &block.bundles {
                // In-order issue: the bundle stalls until every source
                // operand of every operation in it is ready.
                let mut issue = cycle;
                for op in bundle {
                    for r in op.reads() {
                        if let Some(&t) = ready.get(&r) {
                            issue = issue.max(t);
                        }
                    }
                    if op.opcode.is_vector_memory() {
                        issue = issue.max(l2_port_free);
                    }
                }
                stall_cycles += issue - cycle;

                for op in bundle {
                    let result = execute_op(op, &mut self.regs, &mut self.mem)
                        .map_err(|e| SimError::Exec(e.to_string()))?;

                    // Determine the actual completion latency.
                    let latency = match &result.mem {
                        Some(access) => self.memory_latency(access),
                        None => self.compute_latency(op),
                    } as u64;

                    if let Some(d) = op.writes() {
                        ready.insert(d, issue + latency);
                    }
                    if let Some(access) = &result.mem {
                        if access.is_vector {
                            let occupancy = if access.stride == 8 {
                                access.elems.div_ceil(self.machine.l2_port_elems.max(1))
                            } else {
                                access.elems
                            };
                            l2_port_free = issue + occupancy.max(1) as u64;
                        }
                    }

                    let vl = if op.opcode.reads_vl() {
                        self.regs.effective_vl()
                    } else {
                        1
                    };
                    ops_executed += 1;
                    micro_ops += op.opcode.micro_ops(vl);

                    match result.outcome {
                        ExecOutcome::Normal => {}
                        ExecOutcome::BranchTaken(target) => {
                            next_block = *labels
                                .get(target.as_str())
                                .ok_or_else(|| SimError::UnknownLabel(target.clone()))?;
                        }
                        ExecOutcome::Halt => halted = true,
                    }
                }

                cycle = issue + 1;
                if cycle - block_start_cycle > self.options.max_cycles
                    || cycle > self.options.max_cycles
                {
                    return Err(SimError::CycleLimit(self.options.max_cycles));
                }
            }

            // Even an empty block consumes a fetch cycle.
            if block.bundles.is_empty() {
                cycle += 1;
            }

            let r = stats.region_mut(region);
            r.cycles += cycle - block_start_cycle;
            r.stall_cycles += stall_cycles;
            r.instructions += block.bundles.len().max(1) as u64;
            r.operations += ops_executed;
            r.micro_ops += micro_ops;

            if halted {
                stats.memory = self.hierarchy.stats;
                return Ok(stats);
            }
            if next_block >= program.blocks.len() {
                break 'blocks;
            }
            block_idx = next_block;
        }

        Err(SimError::FellOffEnd)
    }

    /// Completion latency of a non-memory operation, using the *actual*
    /// vector length currently in the VL register.
    fn compute_latency(&self, op: &Op) -> u32 {
        let flow = self.machine.latencies.flow_latency(op.opcode.lat_class());
        if op.opcode.reads_vl() {
            let vl = self.regs.effective_vl();
            LatencyDescriptor::vector(flow, vl, self.machine.effective_lanes(op.opcode))
                .result_latency()
        } else {
            LatencyDescriptor::scalar(flow).result_latency()
        }
    }

    /// Completion latency of a memory operation against a borrowed
    /// hierarchy (the lowered engine's split-borrow hot loop; also the
    /// pricing rule the replay engine applies to recorded accesses).
    #[inline]
    pub(crate) fn memory_latency_on(hierarchy: &mut MemoryHierarchy, access: &MemAccess) -> u32 {
        let kind = if access.is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        if access.is_vector {
            hierarchy
                .vector_access(access.base, access.stride, access.elems, kind)
                .latency
        } else {
            hierarchy
                .scalar_access(access.base, access.bytes, kind)
                .latency
        }
    }

    /// [`Self::memory_latency_on`] with a shared memoized line-walk scratch,
    /// additionally capturing the access's [`vmv_mem::AccessEcho`]: batched
    /// replay steps one leader hierarchy per tag-equivalence class through
    /// the real tags and prices every follower from the echo.
    #[inline]
    pub(crate) fn memory_latency_echo(
        hierarchy: &mut MemoryHierarchy,
        access: &MemAccess,
        scratch: &mut vmv_mem::SharedAccessScratch,
    ) -> (u32, vmv_mem::AccessEcho) {
        let kind = if access.is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let (timing, echo) = if access.is_vector {
            hierarchy.vector_access_echoed(access.base, access.stride, access.elems, kind, scratch)
        } else {
            hierarchy.scalar_access_echoed(access.base, access.bytes, kind)
        };
        (timing.latency, echo)
    }

    /// Completion latency of a memory operation, as reported by the memory
    /// hierarchy timing model.
    fn memory_latency(&mut self, access: &MemAccess) -> u32 {
        let kind = if access.is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        if access.is_vector {
            self.hierarchy
                .vector_access(access.base, access.stride, access.elems, kind)
                .latency
        } else {
            self.hierarchy
                .scalar_access(access.base, access.bytes, kind)
                .latency
        }
    }

    /// Memory-hierarchy statistics accumulated so far.
    pub fn memory_stats(&self) -> vmv_mem::MemStats {
        self.hierarchy.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_isa::ProgramBuilder;
    use vmv_machine::presets;
    use vmv_sched::compile;

    fn run_on(
        machine: &MachineConfig,
        model: MemoryModel,
        program: &vmv_isa::Program,
        init: impl FnOnce(&mut Simulator),
    ) -> (RunStats, Simulator) {
        let compiled = compile(program, machine).expect("compiles");
        let mut sim = Simulator::with_model(machine, model);
        init(&mut sim);
        let stats = sim.run(&compiled.program).expect("runs");
        (stats, sim)
    }

    #[test]
    fn straight_line_arithmetic_executes_functionally() {
        let mut b = ProgramBuilder::new("arith");
        let out = b.imm(0x100);
        let x = b.imm(21);
        let y = b.ri();
        b.muli(y, x, 2);
        b.st32(out, 0, y);
        b.halt();
        let p = b.finish();
        let machine = presets::vliw(2);
        let (stats, sim) = run_on(&machine, MemoryModel::Perfect, &p, |_| {});
        assert_eq!(sim.mem.read_u32(0x100), 42);
        assert!(stats.cycles() > 0);
        assert_eq!(stats.total().operations, 5);
    }

    #[test]
    fn loop_executes_the_right_number_of_iterations() {
        let mut b = ProgramBuilder::new("loop");
        let out = b.imm(0x200);
        let acc = b.ri();
        b.li(acc, 0);
        b.counted_loop("sum", 10, |b, _| {
            b.addi(acc, acc, 3);
        });
        b.st32(out, 0, acc);
        b.halt();
        let p = b.finish();
        let machine = presets::vliw(2);
        let (stats, sim) = run_on(&machine, MemoryModel::Perfect, &p, |_| {});
        assert_eq!(sim.mem.read_u32(0x200), 30);
        // The loop body block executes 10 times.
        assert!(stats.total().instructions >= 10);
    }

    #[test]
    fn vector_sad_kernel_computes_the_reference_sum() {
        let mut b = ProgramBuilder::new("sad");
        let a_base = b.imm(0x1000);
        let b_base = b.imm(0x2000);
        let out = b.imm(0x3000);
        b.begin_region(1, "sad");
        b.setvl(16);
        b.setvs(8);
        let v1 = b.rv();
        let v2 = b.rv();
        b.vload(v1, a_base, 0);
        b.vload(v2, b_base, 0);
        let acc = b.ra();
        b.acc_clear(acc);
        b.vsad_acc(acc, v1, v2);
        let sum = b.ri();
        b.acc_reduce(sum, acc);
        b.end_region();
        b.st32(out, 0, sum);
        b.halt();
        let p = b.finish();

        let machine = presets::vector2(2);
        let data_a: Vec<u8> = (0..128).map(|i| (i * 3 % 251) as u8).collect();
        let data_b: Vec<u8> = (0..128).map(|i| (i * 7 % 241) as u8).collect();
        let expect: u32 = data_a
            .iter()
            .zip(&data_b)
            .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs())
            .sum();

        let (stats, sim) = run_on(&machine, MemoryModel::Perfect, &p, |sim| {
            sim.mem.write_u8_slice(0x1000, &data_a);
            sim.mem.write_u8_slice(0x2000, &data_b);
        });
        assert_eq!(sim.mem.read_u32(0x3000), expect);
        assert!(stats.regions[&vmv_isa::RegionId(1)].cycles > 0);
        assert!(stats.regions[&vmv_isa::RegionId(1)].micro_ops >= 160);
    }

    #[test]
    fn realistic_memory_is_slower_than_perfect() {
        let mut b = ProgramBuilder::new("memwalk");
        let base = b.imm(0x1000);
        let acc = b.ri();
        b.li(acc, 0);
        let ptr = b.ri();
        b.mov(ptr, base);
        b.counted_loop("walk", 64, |b, _| {
            let t = b.ri();
            b.ld32s(t, ptr, 0);
            b.add(acc, acc, t);
            b.addi(ptr, ptr, 256); // new cache line every iteration
        });
        let out = b.imm(0x40000);
        b.st32(out, 0, acc);
        b.halt();
        let p = b.finish();

        let machine = presets::vliw(2);
        let (perfect, _) = run_on(&machine, MemoryModel::Perfect, &p, |_| {});
        let (realistic, _) = run_on(&machine, MemoryModel::Realistic, &p, |_| {});
        assert!(
            realistic.cycles() > perfect.cycles() * 3,
            "cold misses must dominate: {} vs {}",
            realistic.cycles(),
            perfect.cycles()
        );
        assert!(realistic.total().stall_cycles > 0);
    }

    #[test]
    fn non_unit_stride_vector_access_stalls_the_machine() {
        let build = |stride: i64| {
            let mut b = ProgramBuilder::new("stride");
            let base = b.imm(0x1000);
            b.begin_region(1, "loads");
            b.setvl(16);
            b.setvs(stride);
            let v = b.rv();
            b.vload(v, base, 0);
            let v2 = b.rv();
            b.vload(v2, base, 4096);
            let acc = b.ra();
            b.acc_clear(acc);
            b.vsad_acc(acc, v, v2);
            let s = b.ri();
            b.acc_reduce(s, acc);
            b.end_region();
            let out = b.imm(0x8000);
            b.st32(out, 0, s);
            b.halt();
            b.finish()
        };
        let machine = presets::vector2(2);
        let (unit, _) = run_on(&machine, MemoryModel::Perfect, &build(8), |_| {});
        let (strided, _) = run_on(&machine, MemoryModel::Perfect, &build(640), |_| {});
        assert!(
            strided.cycles() > unit.cycles(),
            "strided {} should exceed unit {}",
            strided.cycles(),
            unit.cycles()
        );
        assert!(strided.total().stall_cycles > unit.total().stall_cycles);
    }

    #[test]
    fn unknown_branch_target_is_an_error() {
        // Construct a scheduled program by hand with a bogus target.
        use vmv_sched::{ScheduledBlock, ScheduledProgram};
        let machine = presets::vliw(2);
        let mut sim = Simulator::with_model(&machine, MemoryModel::Perfect);
        let sp = ScheduledProgram {
            name: "bogus".into(),
            blocks: vec![ScheduledBlock {
                label: "entry".into(),
                region: vmv_isa::RegionId::SCALAR,
                bundles: vec![vec![
                    vmv_isa::Op::new(vmv_isa::Opcode::Jump).with_target("nowhere")
                ]],
            }],
            regions: vec![],
        };
        assert!(matches!(sim.run(&sp), Err(SimError::UnknownLabel(_))));
    }

    #[test]
    fn program_without_halt_is_detected() {
        let mut b = ProgramBuilder::new("nohalt");
        let x = b.imm(1);
        b.addi(x, x, 1);
        let p = b.finish();
        let machine = presets::vliw(2);
        let compiled = compile(&p, &machine).unwrap();
        let mut sim = Simulator::with_model(&machine, MemoryModel::Perfect);
        assert!(matches!(
            sim.run(&compiled.program),
            Err(SimError::FellOffEnd)
        ));
    }

    #[test]
    fn wider_issue_reduces_cycles_for_parallel_code() {
        let mut b = ProgramBuilder::new("ilp");
        let base = b.imm(0x1000);
        let out = b.imm(0x2000);
        // 16 independent add chains.
        let mut results = Vec::new();
        for i in 0..16 {
            let t = b.ri();
            b.li(t, i);
            let u = b.ri();
            b.muli(u, t, 3);
            let v = b.ri();
            b.addi(v, u, 7);
            results.push(v);
        }
        let _ = base;
        for (i, r) in results.iter().enumerate() {
            b.st32(out, 4 * i as i64, *r);
        }
        b.halt();
        let p = b.finish();
        let narrow = presets::vliw(2);
        let wide = presets::vliw(8);
        let (n, _) = run_on(&narrow, MemoryModel::Perfect, &p, |_| {});
        let (w, simw) = run_on(&wide, MemoryModel::Perfect, &p, |_| {});
        assert!(w.cycles() < n.cycles());
        assert_eq!(simw.mem.read_u32(0x2000 + 4 * 5), 5 * 3 + 7);
    }
}
