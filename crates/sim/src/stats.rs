//! Execution statistics: cycles, operations and micro-operations, accounted
//! separately for the scalar region and each vector region of a program —
//! the measurements behind every figure and table of the paper's evaluation.

use std::collections::BTreeMap;

use vmv_isa::RegionId;
use vmv_mem::MemStats;

/// Statistics of one region (or of the whole program).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionStats {
    /// Cycles spent executing blocks of this region (including stalls).
    pub cycles: u64,
    /// Cycles lost to run-time stalls (cache misses, non-unit strides,
    /// cross-block latency) within this region.
    pub stall_cycles: u64,
    /// Dynamic VLIW instructions (bundles) issued, including empty ones.
    pub instructions: u64,
    /// Dynamic operations executed (paper terminology: each machine
    /// operation coded into a VLIW instruction).
    pub operations: u64,
    /// Dynamic micro-operations: sub-word element operations (paper §3.1).
    pub micro_ops: u64,
}

impl RegionStats {
    pub fn add(&mut self, other: &RegionStats) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.instructions += other.instructions;
        self.operations += other.operations;
        self.micro_ops += other.micro_ops;
    }

    /// Operations per cycle.
    pub fn opc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.operations as f64 / self.cycles as f64
        }
    }

    /// Micro-operations per cycle.
    pub fn micro_opc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.micro_ops as f64 / self.cycles as f64
        }
    }
}

/// Statistics of one complete program run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Per-region breakdown (region 0 = scalar region).
    pub regions: BTreeMap<RegionId, RegionStats>,
    /// Memory-system statistics.
    pub memory: MemStats,
}

impl RunStats {
    /// Totals over every region.
    pub fn total(&self) -> RegionStats {
        let mut t = RegionStats::default();
        for r in self.regions.values() {
            t.add(r);
        }
        t
    }

    /// Aggregate statistics of the scalar region (region 0).
    pub fn scalar(&self) -> RegionStats {
        self.regions
            .get(&RegionId::SCALAR)
            .copied()
            .unwrap_or_default()
    }

    /// Aggregate statistics over every *vector* region (regions 1..).
    pub fn vector(&self) -> RegionStats {
        let mut t = RegionStats::default();
        for (id, r) in &self.regions {
            if id.is_vector() {
                t.add(r);
            }
        }
        t
    }

    /// Total cycle count of the run.
    pub fn cycles(&self) -> u64 {
        self.total().cycles
    }

    /// Fraction of the execution time spent in vector regions
    /// (the "%Vect" column of Table 1).
    pub fn vectorization_fraction(&self) -> f64 {
        let total = self.total().cycles;
        if total == 0 {
            0.0
        } else {
            self.vector().cycles as f64 / total as f64
        }
    }

    /// Record statistics for one region.
    pub fn region_mut(&mut self, id: RegionId) -> &mut RegionStats {
        self.regions.entry(id).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_aggregation() {
        let mut rs = RunStats::default();
        rs.region_mut(RegionId(0)).cycles = 600;
        rs.region_mut(RegionId(0)).operations = 900;
        rs.region_mut(RegionId(1)).cycles = 300;
        rs.region_mut(RegionId(1)).operations = 300;
        rs.region_mut(RegionId(1)).micro_ops = 3000;
        rs.region_mut(RegionId(2)).cycles = 100;

        assert_eq!(rs.total().cycles, 1000);
        assert_eq!(rs.scalar().cycles, 600);
        assert_eq!(rs.vector().cycles, 400);
        assert!((rs.vectorization_fraction() - 0.4).abs() < 1e-12);
        assert!((rs.scalar().opc() - 1.5).abs() < 1e-12);
        assert!((rs.regions[&RegionId(1)].micro_opc() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let rs = RunStats::default();
        assert_eq!(rs.cycles(), 0);
        assert_eq!(rs.vectorization_fraction(), 0.0);
        assert_eq!(rs.scalar().opc(), 0.0);
    }
}
