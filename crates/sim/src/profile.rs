//! Cycle-attribution profiling: explain *every* simulated cycle.
//!
//! The engines report opaque `cycles`/`stall_cycles` totals per region;
//! this module attributes each of those cycles to a closed [`Cause`] —
//! useful issue, issue-width/unit-pool limit, control transfer, latency
//! shadow, RAW wait, per-level memory wait, L2-port conflict — aggregated
//! per op, per bundle, per block and per region, plus a capped timeline of
//! bundle issue events for Chrome-trace rendering.
//!
//! The contract, enforced by `tests/lowered_differential.rs` across the
//! full 120-case matrix for all three profiled engines (lowered, serial
//! replay, batched replay):
//!
//! * the ten cause buckets sum **exactly** to `RunStats` total cycles;
//! * the six stall causes (indices [`STALL_BASE`]..) sum **exactly** to
//!   `stall_cycles` — globally and per region;
//! * enabling profiling never changes `RunStats` (the [`NoProfile`] /
//!   [`NoBatchProfile`] sinks monomorphise to the unprofiled hot paths).
//!
//! # How attribution works
//!
//! Every bundle issue spends exactly one cycle; its class is *static*
//! (determined by the schedule and the machine, computed once in
//! [`ProfileStatics::build`]): an empty bundle is a latency shadow the
//! scheduler inserted, a branch/halt-only bundle is control, a bundle at
//! the issue-width or unit-pool ceiling is issue-limited, anything else is
//! useful issue.  Stall cycles are *dynamic*: when a bundle issues late,
//! the first read slot (in program order) whose readiness equals the issue
//! cycle *binds* the stall, and a per-slot side table — what kind of
//! operation last wrote the slot, and which op it was — converts the
//! binding into a cause (RAW for fixed-latency producers, a per-level
//! memory wait for loads/stores, priced from the [`vmv_mem::AccessEcho`])
//! and blames the producing op.  A stall no slot explains is an L2
//! vector-port conflict.  The replay engines track a strict subset of the
//! slots, but an untracked slot is provably never the binder (its readiness
//! is below the bundle's base cycle whenever a stall exists), so all three
//! engines derive identical profiles.

use std::sync::Arc;

use vmv_isa::{FuClass, RegionId};
use vmv_machine::MachineConfig;
use vmv_mem::{AccessEcho, ServedBy};
use vmv_sched::LoweredProgram;

use crate::stats::RunStats;

/// Number of attribution causes.
pub const N_CAUSES: usize = 10;
/// Index of the first *stall* cause; causes below are issue-cycle classes.
pub const STALL_BASE: usize = 4;
/// Number of stall causes (`N_CAUSES - STALL_BASE`).
pub const N_STALLS: usize = N_CAUSES - STALL_BASE;
/// Cap on recorded timeline events, keeping profiles (and their goldens)
/// small; [`Profile::events_seen`] still counts every issue.
pub const TIMELINE_CAP: usize = 256;
/// Sentinel "no producing op known" in the blame side table.
const NO_PRODUCER: u32 = u32::MAX;

/// Where one simulated cycle went.  Indices 0..[`STALL_BASE`] classify
/// *issue* cycles (every bundle spends exactly one); indices
/// [`STALL_BASE`].. classify *stall* cycles and sum to `stall_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Cause {
    /// Useful issue: a bundle below every width/unit/control limit.
    Issue = 0,
    /// Issue cycle of a bundle at the issue-width or unit-pool ceiling.
    IssueLimit = 1,
    /// Issue cycle of a control-only bundle (branch/halt), or the fetch
    /// cycle of an empty block.
    Control = 2,
    /// An empty bundle: a latency shadow the scheduler inserted to cover
    /// an in-flight result.
    LatencyShadow = 3,
    /// Stall on a RAW dependence whose producer is a fixed-latency or
    /// VL-dependent compute operation (cross-block latency, chaining).
    RawStall = 4,
    /// Stall waiting on a scalar/µSIMD access served by the L1.
    WaitL1 = 5,
    /// Stall waiting on an access served by the L2 vector cache.
    WaitL2 = 6,
    /// Stall waiting on an access that missed to the L3.
    WaitL3 = 7,
    /// Stall waiting on an access that went to main memory.
    WaitMem = 8,
    /// Stall waiting for the single L2 vector port to come free.
    L2Port = 9,
}

impl Cause {
    pub const ALL: [Cause; N_CAUSES] = [
        Cause::Issue,
        Cause::IssueLimit,
        Cause::Control,
        Cause::LatencyShadow,
        Cause::RawStall,
        Cause::WaitL1,
        Cause::WaitL2,
        Cause::WaitL3,
        Cause::WaitMem,
        Cause::L2Port,
    ];

    /// Stable snake_case name — the JSON profile key.
    pub fn name(self) -> &'static str {
        match self {
            Cause::Issue => "issue",
            Cause::IssueLimit => "issue_limit",
            Cause::Control => "control",
            Cause::LatencyShadow => "latency_shadow",
            Cause::RawStall => "raw",
            Cause::WaitL1 => "wait_l1",
            Cause::WaitL2 => "wait_l2",
            Cause::WaitL3 => "wait_l3",
            Cause::WaitMem => "wait_mem",
            Cause::L2Port => "l2_port",
        }
    }

    /// The wait cause for an access served by `level`.
    pub fn wait_for(level: ServedBy) -> Cause {
        match level {
            ServedBy::L1 => Cause::WaitL1,
            ServedBy::L2 => Cause::WaitL2,
            ServedBy::L3 => Cause::WaitL3,
            ServedBy::Mem => Cause::WaitMem,
        }
    }

    /// The wait cause of one priced access: the deepest level it touched.
    pub fn wait_for_echo(echo: &AccessEcho) -> Cause {
        Cause::wait_for(echo.deepest())
    }
}

/// Timeline lane names, indexed by [`BundleProfile::lane`]: the dominant
/// resource of a bundle, used as the Chrome-trace thread name.
pub const LANE_NAMES: [&str; 6] = ["int", "usimd", "vector", "l1port", "l2port", "ctrl"];

/// What bound one bundle's stall, found by the engine's scoreboard scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// No stall this issue.
    None,
    /// The first read slot (program order) whose readiness equals the
    /// issue cycle.
    Slot(u16),
    /// No slot explains the stall: the L2 vector port was busy.
    Port,
}

/// Observer of one engine's cycle accounting.  Like
/// [`crate::trace::TraceSink`], the disabled implementation
/// ([`NoProfile`]) must monomorphise away entirely; engines additionally
/// gate the work of *computing* hook arguments (echo pricing, binding
/// scans, op indices) on [`ProfileSink::ENABLED`].
pub trait ProfileSink {
    /// Whether this sink observes anything (drives engine-side gating).
    const ENABLED: bool;
    /// A block is about to execute.
    fn begin_block(&mut self, block: u32);
    /// A bundle issued: its stall-free base cycle, its stall, and what
    /// bound the stall.  Called once per dynamic bundle, in issue order.
    fn bundle(&mut self, bundle: u32, base: u64, stall: u64, binding: Binding);
    /// Operation `op` wrote scoreboard slot `slot`; a stall bound to the
    /// slot later is attributed to `cause` and blamed on `op`.
    fn write(&mut self, op: u32, slot: u16, cause: Cause);
    /// Operation `op` occupied the L2 vector port.
    fn vec_port(&mut self, op: u32);
}

/// The non-profiling sink: every hook is an empty inline function.
pub struct NoProfile;

impl ProfileSink for NoProfile {
    const ENABLED: bool = false;
    #[inline(always)]
    fn begin_block(&mut self, _block: u32) {}
    #[inline(always)]
    fn bundle(&mut self, _bundle: u32, _base: u64, _stall: u64, _binding: Binding) {}
    #[inline(always)]
    fn write(&mut self, _op: u32, _slot: u16, _cause: Cause) {}
    #[inline(always)]
    fn vec_port(&mut self, _op: u32) {}
}

/// Observer of the batched replay walk: the per-variant analogue of
/// [`ProfileSink`].  One hook call covers all K variants where the
/// observation is variant-independent (writes, port occupancy); the
/// per-variant hooks take the variant index.
pub trait BatchSink {
    const ENABLED: bool;
    fn begin_block(&mut self, block: u32);
    /// Bundle issue of variant `kk`.
    fn bundle(&mut self, kk: usize, bundle: u32, base: u64, stall: u64, binding: Binding);
    /// A write whose blame cause is identical across variants.
    fn write_all(&mut self, op: u32, slot: u16, cause: Cause);
    /// A memory write whose wait level differs per variant: `causes[kk]`
    /// is variant `kk`'s cause.
    fn write_k(&mut self, op: u32, slot: u16, causes: &[Cause]);
    /// `op` occupied the L2 vector port (all variants).
    fn vec_port_all(&mut self, op: u32);
}

/// The non-profiling batch sink.
pub struct NoBatchProfile;

impl BatchSink for NoBatchProfile {
    const ENABLED: bool = false;
    #[inline(always)]
    fn begin_block(&mut self, _block: u32) {}
    #[inline(always)]
    fn bundle(&mut self, _kk: usize, _bundle: u32, _base: u64, _stall: u64, _binding: Binding) {}
    #[inline(always)]
    fn write_all(&mut self, _op: u32, _slot: u16, _cause: Cause) {}
    #[inline(always)]
    fn write_k(&mut self, _op: u32, _slot: u16, _causes: &[Cause]) {}
    #[inline(always)]
    fn vec_port_all(&mut self, _op: u32) {}
}

/// Everything attribution needs that is *static* in the schedule: bundle
/// issue classes, bundle→block/lane maps, block geometry and regions, op
/// display names.  Depends on the same schedule-relevant machine fields as
/// lowering (issue width, unit pools), so one `ProfileStatics` serves
/// every memory variant of a `Prepared` — the compile-cache sharing rule.
#[derive(Debug)]
pub struct ProfileStatics {
    pub total_slots: usize,
    /// Static issue-cycle class of each bundle (one of indices
    /// 0..[`STALL_BASE`]).
    pub bundle_class: Vec<Cause>,
    /// Owning block of each bundle.
    pub bundle_block: Vec<u32>,
    /// Timeline lane of each bundle (index into [`LANE_NAMES`]).
    pub bundle_lane: Vec<u8>,
    pub block_first_bundle: Vec<u32>,
    pub block_bundle_count: Vec<u32>,
    pub block_region: Vec<RegionId>,
    /// Declared regions, in declaration order.
    pub regions: Vec<(RegionId, String)>,
    /// Owning bundle of each op (ops are flattened in issue order).
    pub op_bundle: Vec<u32>,
    /// Display name of each op's opcode.
    pub op_name: Vec<String>,
}

impl ProfileStatics {
    pub fn build(program: &LoweredProgram, machine: &MachineConfig) -> ProfileStatics {
        let n_bundles = program.bundle_bounds.len().saturating_sub(1);
        let mut bundle_class = vec![Cause::Issue; n_bundles];
        let mut bundle_block = vec![0u32; n_bundles];
        let mut bundle_lane = vec![5u8; n_bundles];
        let mut op_bundle = Vec::with_capacity(program.ops.len());
        let mut op_name = Vec::with_capacity(program.ops.len());

        for (blk, block) in program.blocks.iter().enumerate() {
            for b in block.first_bundle..block.first_bundle + block.bundle_count {
                bundle_block[b as usize] = blk as u32;
                let ops = program.bundle_ops(b);
                for op in ops {
                    op_bundle.push(b);
                    op_name.push(format!("{:?}", op.opcode));
                }
                let control_only = !ops.is_empty()
                    && ops
                        .iter()
                        .all(|op| op.opcode.is_branch() || op.opcode == vmv_isa::Opcode::Halt);
                bundle_class[b as usize] = if ops.is_empty() {
                    Cause::LatencyShadow
                } else if control_only {
                    Cause::Control
                } else if at_resource_limit(ops, machine) {
                    Cause::IssueLimit
                } else {
                    Cause::Issue
                };
                // Lane: the bundle's most specialised resource — memory
                // ports over compute units — so stalls land on the lane of
                // the unit that explains them.
                let mut lane = 5u8;
                for op in ops {
                    if op.opcode.is_branch() || op.opcode == vmv_isa::Opcode::Halt {
                        continue;
                    }
                    let l = match op.opcode.fu_class() {
                        FuClass::MemL2 => 4,
                        FuClass::MemL1 => 3,
                        FuClass::Vector => 2,
                        FuClass::Simd => 1,
                        FuClass::Int => 0,
                    };
                    lane = if lane == 5 { l } else { lane.max(l).min(4) };
                }
                bundle_lane[b as usize] = lane;
            }
        }

        ProfileStatics {
            total_slots: program.total_slots(),
            bundle_class,
            bundle_block,
            bundle_lane,
            block_first_bundle: program.blocks.iter().map(|b| b.first_bundle).collect(),
            block_bundle_count: program.blocks.iter().map(|b| b.bundle_count).collect(),
            block_region: program.blocks.iter().map(|b| b.region).collect(),
            regions: program
                .regions
                .iter()
                .map(|r| (r.id, r.name.clone()))
                .collect(),
            op_bundle,
            op_name,
        }
    }

    /// Number of static bundles.
    pub fn bundles(&self) -> usize {
        self.bundle_class.len()
    }

    /// Number of static ops.
    pub fn ops(&self) -> usize {
        self.op_bundle.len()
    }
}

/// Whether a bundle saturates the issue width or any functional-unit pool.
fn at_resource_limit(ops: &[vmv_sched::LoweredOp], machine: &MachineConfig) -> bool {
    if ops.len() >= machine.issue_width {
        return true;
    }
    let mut counts = [0usize; 5];
    for op in ops {
        let i = match op.opcode.fu_class() {
            FuClass::Int => 0,
            FuClass::Simd => 1,
            FuClass::Vector => 2,
            FuClass::MemL1 => 3,
            FuClass::MemL2 => 4,
        };
        counts[i] += 1;
    }
    for (i, class) in [
        FuClass::Int,
        FuClass::Simd,
        FuClass::Vector,
        FuClass::MemL1,
        FuClass::MemL2,
    ]
    .into_iter()
    .enumerate()
    {
        if counts[i] > 0 && counts[i] >= machine.units(class) {
            return true;
        }
    }
    false
}

/// One recorded bundle issue of the (capped) timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    pub bundle: u32,
    /// Stall-free issue cycle; the bundle actually issued at
    /// `base + stall`.
    pub base: u64,
    pub stall: u64,
    /// Stall cause index (meaningful only when `stall > 0`).
    pub cause: u8,
}

/// Per-region attributed cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionProfile {
    pub id: u32,
    pub name: String,
    pub causes: [u64; N_CAUSES],
}

/// Per-block attributed cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    pub block: u32,
    pub region: u32,
    pub visits: u64,
    pub causes: [u64; N_CAUSES],
}

/// Per-bundle attribution: the static issue class expanded by visit count,
/// plus the dynamic stall causes bound at this bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleProfile {
    pub bundle: u32,
    pub block: u32,
    pub lane: u8,
    pub class: Cause,
    /// Times the bundle issued (== its block's visits).
    pub issues: u64,
    /// Stall cycles bound at this bundle, by cause (index - STALL_BASE).
    pub stalls: [u64; N_STALLS],
}

/// Per-op attribution: stall cycles *blamed on* this op as the producer
/// whose in-flight result (or port occupancy) bound the stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    pub op: u32,
    pub bundle: u32,
    pub opcode: String,
    pub stalls: [u64; N_STALLS],
}

/// The finished attribution of one run.  Identical (PartialEq) across the
/// lowered engine, serial replay and batched replay of the same run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Total cycles per cause; sums to `RunStats` cycles.
    pub causes: [u64; N_CAUSES],
    pub regions: Vec<RegionProfile>,
    pub blocks: Vec<BlockProfile>,
    pub bundles: Vec<BundleProfile>,
    pub ops: Vec<OpProfile>,
    /// First [`TIMELINE_CAP`] bundle issues.
    pub timeline: Vec<TimelineEvent>,
    /// Total bundle issues observed (timeline truncated when larger than
    /// `timeline.len()`).
    pub events_seen: u64,
}

impl Profile {
    /// Attributed total cycles (all ten causes).
    pub fn total_cycles(&self) -> u64 {
        self.causes.iter().sum()
    }

    /// Attributed stall cycles (causes [`STALL_BASE`]..).
    pub fn stall_cycles(&self) -> u64 {
        self.causes[STALL_BASE..].iter().sum()
    }

    /// Whether the timeline dropped events past [`TIMELINE_CAP`].
    pub fn timeline_truncated(&self) -> bool {
        self.events_seen > self.timeline.len() as u64
    }

    /// Fold this profile into the process-wide vmv-obs counters: one
    /// `profile_runs` tick plus the six stall-cause totals.
    pub fn record_obs(&self) {
        use vmv_obs::Counter;
        const STALL_COUNTERS: [Counter; N_STALLS] = [
            Counter::ProfileStallRaw,
            Counter::ProfileStallWaitL1,
            Counter::ProfileStallWaitL2,
            Counter::ProfileStallWaitL3,
            Counter::ProfileStallWaitMem,
            Counter::ProfileStallL2Port,
        ];
        vmv_obs::incr(Counter::ProfileRuns);
        for (i, c) in STALL_COUNTERS.into_iter().enumerate() {
            let v = self.causes[STALL_BASE + i];
            if v != 0 {
                vmv_obs::add(c, v);
            }
        }
    }

    /// The sum-exactly engine contract: attributed cycles equal `stats`
    /// cycles and attributed stalls equal `stats` stall cycles, in total
    /// and per region.
    pub fn check_against(&self, stats: &RunStats) -> Result<(), String> {
        let total = stats.total();
        if self.total_cycles() != total.cycles {
            return Err(format!(
                "attributed cycles {} != RunStats cycles {}",
                self.total_cycles(),
                total.cycles
            ));
        }
        if self.stall_cycles() != total.stall_cycles {
            return Err(format!(
                "attributed stalls {} != RunStats stall_cycles {}",
                self.stall_cycles(),
                total.stall_cycles
            ));
        }
        for r in &self.regions {
            let rs = stats
                .regions
                .get(&RegionId(r.id))
                .copied()
                .unwrap_or_default();
            let cycles: u64 = r.causes.iter().sum();
            let stalls: u64 = r.causes[STALL_BASE..].iter().sum();
            if cycles != rs.cycles || stalls != rs.stall_cycles {
                return Err(format!(
                    "region {}: attributed {cycles}/{stalls} != RunStats {}/{}",
                    r.id, rs.cycles, rs.stall_cycles
                ));
            }
        }
        for (&id, rs) in &stats.regions {
            if rs.cycles > 0 && !self.regions.iter().any(|r| r.id == id.0) {
                return Err(format!("RunStats region {} missing from profile", id.0));
            }
        }
        Ok(())
    }
}

/// Accumulates a [`Profile`] while an engine runs.  The dynamic state is
/// deliberately minimal — per-block visit counts, per-bundle/per-op stall
/// accumulators, the per-slot blame side table and the capped timeline —
/// because every issue-cycle class is static per bundle and expands as
/// `class × visits` at [`ProfileRecorder::finish`]; this is what lets the
/// replay engines keep their segment-skipping while profiling.
pub struct ProfileRecorder {
    statics: Arc<ProfileStatics>,
    visits: Vec<u64>,
    bundle_stalls: Vec<[u64; N_STALLS]>,
    op_stalls: Vec<[u64; N_STALLS]>,
    /// Stall cause a binding to this slot resolves to (what last wrote it).
    cause_of: Vec<u8>,
    /// Op blamed when a stall binds to this slot.
    producer: Vec<u32>,
    /// Op blamed for L2-port stalls (the last port occupant).
    port_producer: u32,
    timeline: Vec<TimelineEvent>,
    events_seen: u64,
}

impl ProfileRecorder {
    pub fn new(statics: Arc<ProfileStatics>) -> ProfileRecorder {
        ProfileRecorder {
            visits: vec![0; statics.block_first_bundle.len()],
            bundle_stalls: vec![[0; N_STALLS]; statics.bundles()],
            op_stalls: vec![[0; N_STALLS]; statics.ops()],
            cause_of: vec![Cause::RawStall as u8; statics.total_slots],
            producer: vec![NO_PRODUCER; statics.total_slots],
            port_producer: NO_PRODUCER,
            timeline: Vec::new(),
            events_seen: 0,
            statics,
        }
    }

    /// Assemble the profile: expand static issue classes by visit counts,
    /// fold bundles into blocks and blocks into regions.
    pub fn finish(self) -> Profile {
        let s = &self.statics;
        let n_blocks = s.block_first_bundle.len();
        let mut causes = [0u64; N_CAUSES];
        let mut block_causes = vec![[0u64; N_CAUSES]; n_blocks];
        let mut bundles = Vec::with_capacity(s.bundles());

        for b in 0..s.bundles() {
            let blk = s.bundle_block[b] as usize;
            let issues = self.visits[blk];
            let class = s.bundle_class[b];
            causes[class as usize] += issues;
            block_causes[blk][class as usize] += issues;
            let stalls = self.bundle_stalls[b];
            for (i, &v) in stalls.iter().enumerate() {
                causes[STALL_BASE + i] += v;
                block_causes[blk][STALL_BASE + i] += v;
            }
            bundles.push(BundleProfile {
                bundle: b as u32,
                block: blk as u32,
                lane: s.bundle_lane[b],
                class,
                issues,
                stalls,
            });
        }
        // An empty block still consumes a fetch cycle per visit: control.
        for (blk, bc) in block_causes.iter_mut().enumerate().take(n_blocks) {
            if s.block_bundle_count[blk] == 0 {
                causes[Cause::Control as usize] += self.visits[blk];
                bc[Cause::Control as usize] += self.visits[blk];
            }
        }

        let blocks: Vec<BlockProfile> = (0..n_blocks)
            .map(|blk| BlockProfile {
                block: blk as u32,
                region: s.block_region[blk].0,
                visits: self.visits[blk],
                causes: block_causes[blk],
            })
            .collect();

        // Regions: every declared region (even if it never ran) plus any
        // block region, sorted by id — mirrors RunStats' BTreeMap order.
        let mut ids: Vec<u32> = s.regions.iter().map(|(id, _)| id.0).collect();
        for r in &s.block_region {
            ids.push(r.0);
        }
        ids.sort_unstable();
        ids.dedup();
        let regions = ids
            .into_iter()
            .map(|id| {
                let mut c = [0u64; N_CAUSES];
                for (blk, bc) in block_causes.iter().enumerate().take(n_blocks) {
                    if s.block_region[blk].0 == id {
                        for (i, v) in c.iter_mut().enumerate() {
                            *v += bc[i];
                        }
                    }
                }
                let name = s
                    .regions
                    .iter()
                    .find(|(rid, _)| rid.0 == id)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_default();
                RegionProfile {
                    id,
                    name,
                    causes: c,
                }
            })
            .collect();

        let ops = self
            .op_stalls
            .iter()
            .enumerate()
            .map(|(i, &stalls)| OpProfile {
                op: i as u32,
                bundle: s.op_bundle[i],
                opcode: s.op_name[i].clone(),
                stalls,
            })
            .collect();

        Profile {
            causes,
            regions,
            blocks,
            bundles,
            ops,
            timeline: self.timeline,
            events_seen: self.events_seen,
        }
    }
}

impl ProfileSink for ProfileRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn begin_block(&mut self, block: u32) {
        self.visits[block as usize] += 1;
    }

    #[inline]
    fn bundle(&mut self, bundle: u32, base: u64, stall: u64, binding: Binding) {
        self.events_seen += 1;
        let mut cause = 0u8;
        if stall > 0 {
            let (c, producer) = match binding {
                Binding::Slot(slot) => (self.cause_of[slot as usize], self.producer[slot as usize]),
                // `Binding::None` with a positive stall cannot happen (the
                // issue cycle is the max over slot readiness and the port
                // cursor); fold it into the port arm defensively.
                Binding::Port | Binding::None => (Cause::L2Port as u8, self.port_producer),
            };
            cause = c;
            self.bundle_stalls[bundle as usize][c as usize - STALL_BASE] += stall;
            if producer != NO_PRODUCER {
                self.op_stalls[producer as usize][c as usize - STALL_BASE] += stall;
            }
        }
        if self.timeline.len() < TIMELINE_CAP {
            self.timeline.push(TimelineEvent {
                bundle,
                base,
                stall,
                cause,
            });
        }
    }

    #[inline]
    fn write(&mut self, op: u32, slot: u16, cause: Cause) {
        self.cause_of[slot as usize] = cause as u8;
        self.producer[slot as usize] = op;
    }

    #[inline]
    fn vec_port(&mut self, op: u32) {
        self.port_producer = op;
    }
}

/// K per-variant recorders driven by the single fused batched-replay walk:
/// batch attribution costs one extra pass over the K timing states, not K
/// extra walks.
pub struct BatchProfiler {
    recs: Vec<ProfileRecorder>,
}

impl BatchProfiler {
    pub fn new(statics: &Arc<ProfileStatics>, k: usize) -> BatchProfiler {
        BatchProfiler {
            recs: (0..k)
                .map(|_| ProfileRecorder::new(statics.clone()))
                .collect(),
        }
    }

    pub fn finish(self) -> Vec<Profile> {
        self.recs.into_iter().map(ProfileRecorder::finish).collect()
    }
}

impl BatchSink for BatchProfiler {
    const ENABLED: bool = true;

    #[inline]
    fn begin_block(&mut self, block: u32) {
        for rec in &mut self.recs {
            rec.begin_block(block);
        }
    }

    #[inline]
    fn bundle(&mut self, kk: usize, bundle: u32, base: u64, stall: u64, binding: Binding) {
        self.recs[kk].bundle(bundle, base, stall, binding);
    }

    #[inline]
    fn write_all(&mut self, op: u32, slot: u16, cause: Cause) {
        for rec in &mut self.recs {
            rec.write(op, slot, cause);
        }
    }

    #[inline]
    fn write_k(&mut self, op: u32, slot: u16, causes: &[Cause]) {
        for (rec, &cause) in self.recs.iter_mut().zip(causes) {
            rec.write(op, slot, cause);
        }
    }

    #[inline]
    fn vec_port_all(&mut self, op: u32) {
        for rec in &mut self.recs {
            rec.vec_port(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_names_are_unique_snake_case_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, c) in Cause::ALL.into_iter().enumerate() {
            assert_eq!(c as usize, i, "ALL order matches discriminants");
            assert!(seen.insert(c.name()), "duplicate cause name {}", c.name());
            assert!(c
                .name()
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '_' || ch.is_ascii_digit()));
        }
        assert_eq!(N_CAUSES, Cause::ALL.len());
        assert_eq!(N_STALLS, 6);
        // Stall causes start exactly at STALL_BASE.
        assert_eq!(Cause::ALL[STALL_BASE], Cause::RawStall);
    }

    #[test]
    fn wait_cause_follows_the_deepest_level() {
        assert_eq!(Cause::wait_for(ServedBy::L1), Cause::WaitL1);
        assert_eq!(Cause::wait_for(ServedBy::Mem), Cause::WaitMem);
    }
}
