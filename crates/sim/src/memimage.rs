//! The flat, byte-addressable data memory image of the simulated machine.
//!
//! The memory *hierarchy* (`vmv-mem`) only models timing; the actual data is
//! held here so that every kernel executes functionally and its outputs can
//! be checked against the pure-Rust reference implementations.

/// Flat little-endian memory image.
#[derive(Debug, Clone)]
pub struct MemImage {
    bytes: Vec<u8>,
}

impl MemImage {
    /// Create a zero-initialised memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        MemImage {
            bytes: vec![0; size],
        }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[cold]
    #[inline(never)]
    fn out_of_bounds(&self, addr: u64, len: usize) -> ! {
        panic!(
            "memory access out of bounds: addr={addr:#x} len={len} size={:#x}",
            self.bytes.len()
        );
    }

    /// One range check per access.
    #[inline]
    fn range(&self, addr: u64, len: usize) -> std::ops::Range<usize> {
        // An address beyond usize saturates and fails the end check below.
        let start = usize::try_from(addr).unwrap_or(usize::MAX);
        match start.checked_add(len) {
            Some(end) if end <= self.bytes.len() => start..end,
            _ => self.out_of_bounds(addr, len),
        }
    }

    #[inline]
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        &self.bytes[self.range(addr, len)]
    }

    #[inline]
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let range = self.range(addr, data.len());
        self.bytes[range].copy_from_slice(data);
    }

    pub fn read_u8(&self, addr: u64) -> u8 {
        self.read_bytes(addr, 1)[0]
    }

    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr, 2).try_into().unwrap())
    }

    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr, 4).try_into().unwrap())
    }

    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr, 8).try_into().unwrap())
    }

    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write_bytes(addr, &[v]);
    }

    pub fn write_u16(&mut self, addr: u64, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    // Typed slice helpers used by the workload loaders and the output
    // checkers of the kernel crate.

    pub fn write_i16_slice(&mut self, addr: u64, data: &[i16]) {
        for (i, v) in data.iter().enumerate() {
            self.write_u16(addr + 2 * i as u64, *v as u16);
        }
    }

    pub fn read_i16_slice(&self, addr: u64, count: usize) -> Vec<i16> {
        (0..count)
            .map(|i| self.read_u16(addr + 2 * i as u64) as i16)
            .collect()
    }

    pub fn write_i32_slice(&mut self, addr: u64, data: &[i32]) {
        for (i, v) in data.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v as u32);
        }
    }

    pub fn read_i32_slice(&self, addr: u64, count: usize) -> Vec<i32> {
        (0..count)
            .map(|i| self.read_u32(addr + 4 * i as u64) as i32)
            .collect()
    }

    pub fn write_u8_slice(&mut self, addr: u64, data: &[u8]) {
        self.write_bytes(addr, data);
    }

    pub fn read_u8_slice(&self, addr: u64, count: usize) -> Vec<u8> {
        self.read_bytes(addr, count).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut m = MemImage::new(64);
        m.write_u32(4, 0xAABBCCDD);
        assert_eq!(m.read_u32(4), 0xAABBCCDD);
        assert_eq!(m.read_u8(4), 0xDD, "little endian");
        m.write_u64(8, u64::MAX - 1);
        assert_eq!(m.read_u64(8), u64::MAX - 1);
        m.write_u16(20, 0x1234);
        assert_eq!(m.read_u16(20), 0x1234);
    }

    #[test]
    fn slice_roundtrips() {
        let mut m = MemImage::new(256);
        m.write_i16_slice(0, &[-1, 2, -3, 4]);
        assert_eq!(m.read_i16_slice(0, 4), vec![-1, 2, -3, 4]);
        m.write_i32_slice(32, &[i32::MIN, 0, i32::MAX]);
        assert_eq!(m.read_i32_slice(32, 3), vec![i32::MIN, 0, i32::MAX]);
        m.write_u8_slice(100, &[9, 8, 7]);
        assert_eq!(m.read_u8_slice(100, 3), vec![9, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_is_detected() {
        let m = MemImage::new(16);
        m.read_u64(12);
    }
}
