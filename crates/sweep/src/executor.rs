//! The parallel sweep executor: a work-stealing pool over
//! `std::thread::scope` that runs every `(design point, benchmark)` job,
//! sharing one [`CompileCache`] so each program is scheduled once per
//! unique schedule key, and skipping jobs whose run keys are already in the
//! result store.
//!
//! Jobs are dispatched in *groups*: every job sharing one compile-cache key
//! also shares one lowered program and one recorded trace, so a group is
//! executed as a single record-then-batch-replay unit — the first run
//! executes and records (exactly the adaptive behaviour of
//! [`vmv_core::simulate`]), and every remaining memory variant is retimed
//! by one batched trace walk ([`vmv_core::simulate_batch`]).  A batch that
//! fails or panics falls back to serial per-job simulation, preserving
//! per-job error isolation.
//!
//! Results are collected into pre-assigned slots, so the report order is
//! deterministic (point-major, benchmark-minor) regardless of the worker
//! count or scheduling jitter.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vmv_core::{simulate, simulate_batch, simulate_batch_profiled, simulate_profiled, Prepared};
use vmv_kernels::Benchmark;
use vmv_obs::{Counter, SpanKind};

use crate::cache::{CacheCounters, CompileCache};
use crate::profiles::{write_profile, ProfileMeta};
use crate::spec::SweepPoint;
use crate::store::{run_key, ResultStore, RunRecord};

/// Executor options.
#[derive(Clone)]
pub struct ExecOptions {
    /// Benchmarks to run at every design point.
    pub benchmarks: Vec<Benchmark>,
    /// Worker threads (0 = one per available core, capped at 16).
    pub workers: usize,
    /// Print a ~1 Hz heartbeat line to stderr while the sweep runs.
    pub progress: bool,
    /// Certify every freshly compiled schedule with the static verifier
    /// even in release builds (debug builds always certify).
    pub verify: bool,
    /// Write a `vmv-profile/1` cycle-attribution document per completed
    /// run into this directory (`None` = profiling off; the engines run
    /// their unprofiled, byte-identical paths).
    pub profile_dir: Option<std::path::PathBuf>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            benchmarks: Benchmark::ALL.to_vec(),
            workers: 0,
            progress: false,
            verify: false,
            profile_dir: None,
        }
    }
}

impl ExecOptions {
    /// Options for the benchmark subset a lowered spec file selects.
    pub fn for_spec(lowered: &crate::specfile::LoweredSpec, workers: usize) -> ExecOptions {
        ExecOptions {
            benchmarks: lowered.benchmarks.clone(),
            workers,
            progress: false,
            verify: false,
            profile_dir: None,
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            vmv_core::workers_capped(16)
        }
    }
}

/// Outcome of one sweep invocation.
pub struct SweepReport {
    /// Records completed *this* invocation, in deterministic job order.
    pub records: Vec<RunRecord>,
    /// Jobs skipped because their key was already in the store.
    pub skipped: usize,
    /// Failed jobs as `(job description, error)` — a failing extreme point
    /// does not abort the rest of the sweep.
    pub errors: Vec<(String, String)>,
    /// Compile-cache counters (misses == schedules performed).
    pub cache: CacheCounters,
    /// Jobs served by trace replay instead of full execution: their shared
    /// [`vmv_core::Prepared`] already held a recorded trace, so only the
    /// memory hierarchy was re-timed.
    pub replays: usize,
    /// Batched replay walks performed (each retimes one or more variants in
    /// a single pass over the shared trace).
    pub replay_batches: usize,
    /// Wall-clock seconds of the parallel phase.
    pub wall_seconds: f64,
}

/// The `--progress` heartbeat: at most one line per second on stderr with
/// runs done/total, throughput, compile-cache hit rate and an ETA.
struct Progress {
    on: bool,
    total: usize,
    skipped: usize,
    start: Instant,
    last: Instant,
    /// Recent `(instant, done)` samples.  The rate (and so the ETA) is
    /// computed over this ~10 s sliding window instead of since sweep
    /// start, so the estimate tracks the *current* throughput: a slow
    /// cold-start (every job compiling) no longer drags the ETA for the
    /// rest of a long sweep once the cache is warm.
    window: VecDeque<(Instant, usize)>,
}

/// Width of the sliding rate window, seconds.
const RATE_WINDOW_S: f64 = 10.0;

impl Progress {
    fn new(on: bool, total: usize, skipped: usize) -> Progress {
        let now = Instant::now();
        let mut window = VecDeque::new();
        window.push_back((now, 0));
        Progress {
            on,
            total,
            skipped,
            start: now,
            last: now,
            window,
        }
    }

    fn tick(&mut self, done: usize, cache: &CompileCache, force: bool) {
        if !self.on {
            return;
        }
        let now = Instant::now();
        if !force && now.duration_since(self.last).as_secs_f64() < 1.0 {
            return;
        }
        self.last = now;
        self.window.push_back((now, done));
        // Keep at least two samples so a window is always defined.
        while self.window.len() > 2
            && now.duration_since(self.window[0].0).as_secs_f64() > RATE_WINDOW_S
        {
            self.window.pop_front();
        }
        let &(t0, d0) = self.window.front().unwrap();
        let span = now.duration_since(t0).as_secs_f64();
        let progressed = done.saturating_sub(d0);
        let rate = if span > 0.0 && progressed > 0 {
            progressed as f64 / span
        } else {
            // No progress inside the window yet: fall back to the
            // since-start average rather than reporting 0 runs/s.
            done as f64 / now.duration_since(self.start).as_secs_f64().max(1e-9)
        };
        let eta = if rate > 0.0 && done > 0 {
            format!("{:.0}s", (self.total - done) as f64 / rate)
        } else {
            "?".to_string()
        };
        let c = cache.counters();
        let lookups = c.hits + c.misses;
        let hit_pct = if lookups == 0 {
            0.0
        } else {
            100.0 * c.hits as f64 / lookups as f64
        };
        eprintln!(
            "sweep: {done}/{} runs ({} skipped) | {rate:.1} runs/s | cache hits {hit_pct:.0}% | eta {eta}",
            self.total, self.skipped
        );
    }
}

/// Run `benchmarks × points` in parallel.  When `store` is given, jobs whose
/// run keys are already persisted are skipped and new records are **streamed**
/// to it while the sweep runs: the main thread commits the completed prefix
/// of the job list as workers finish, so an interrupted sweep keeps
/// everything up to the first still-running job, and the file content stays
/// deterministic (job order) regardless of the worker count.
///
/// A job that panics (e.g. a generated configuration the simulator's memory
/// model rejects) is caught and reported in `errors` like any other failed
/// job — it never aborts the rest of the sweep.
pub fn run_sweep(
    points: &[SweepPoint],
    opts: &ExecOptions,
    store: Option<&ResultStore>,
) -> std::io::Result<SweepReport> {
    let mut cache = CompileCache::new();
    if opts.verify {
        cache.set_verify(true);
    }
    let cache = cache;
    let done = match store {
        Some(s) => s.completed_keys()?,
        None => Default::default(),
    };

    // Point-major job list so every job has a stable index.
    struct Job<'a> {
        point: &'a SweepPoint,
        benchmark: Benchmark,
        key: String,
    }
    let mut jobs = Vec::with_capacity(points.len() * opts.benchmarks.len());
    let mut skipped = 0usize;
    for point in points {
        for &benchmark in &opts.benchmarks {
            let variant = vmv_core::variant_for(&point.machine);
            let key = run_key(benchmark, variant, &point.machine, point.model);
            if done.contains(&key) {
                skipped += 1;
            } else {
                jobs.push(Job {
                    point,
                    benchmark,
                    key,
                });
            }
        }
    }

    vmv_obs::add(Counter::SweepJobsSkipped, skipped as u64);

    // Group jobs by compile-cache key: one group = one lowered program =
    // one trace, executed as a record-then-batch-replay unit.  Groups keep
    // first-seen order and ascending job indices, so the committed prefix
    // of the point-major job list still drains in order.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    {
        let mut index: HashMap<crate::cache::CacheKey, usize> = HashMap::new();
        for (i, job) in jobs.iter().enumerate() {
            let key = CompileCache::key_for(job.benchmark, &job.point.machine);
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push(vec![i]);
                }
            }
        }
    }

    // Queue wait is measured from here — the moment the job list exists —
    // to each run's pickup, so the first histogram bucket shows pool ramp-up
    // and the tail shows how long the last runs sat behind the others.
    let queued_at = Instant::now();

    let replays = AtomicUsize::new(0);
    let replay_batches = AtomicUsize::new(0);
    // Completed runs (not groups): the progress heartbeat reads this so a
    // batched group finishing K runs at once advances the sliding-window
    // rate by K, keeping the ETA smooth.
    let done_runs = AtomicUsize::new(0);

    // Serial per-job body (the pre-batching behaviour): adaptive
    // record-or-replay with per-job panic isolation.  Used for the
    // recording run of each group and as the fallback when a batch fails.
    let run_serial = |i: usize, prepared: &Prepared| -> Result<RunRecord, String> {
        let job = &jobs[i];
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _simulate = vmv_obs::span(SpanKind::JobSimulate);
            // A shared `Prepared` that already carries a trace is served
            // by replay; classify before the call since the first
            // execution is also the one that records.
            let replayed = prepared.has_trace();
            let outcome = match &opts.profile_dir {
                Some(dir) => {
                    let (outcome, profile) =
                        simulate_profiled(prepared, &job.point.machine, job.point.model)
                            .map_err(|e| e.to_string())?;
                    write_profile(
                        dir,
                        &meta_of(&job.key, job.point, job.benchmark, &outcome),
                        &profile,
                    )
                    .map_err(|e| format!("profile write: {e}"))?;
                    outcome
                }
                None => simulate(prepared, &job.point.machine, job.point.model)
                    .map_err(|e| e.to_string())?,
            };
            if replayed {
                replays.fetch_add(1, Ordering::Relaxed);
            }
            Ok(record_of(
                job.key.clone(),
                job.point,
                job.benchmark,
                &outcome,
            ))
        }))
        .unwrap_or_else(|panic| Err(panic_message(&panic)))
    };

    // One group body shared by the inline and pooled paths, so the two can
    // never diverge in cache interaction, record layout or panic handling.
    // Returns one result per job of the group, in group (= job) order.
    let run_group = |group: &[usize]| -> Vec<(usize, Result<RunRecord, String>)> {
        for _ in group {
            vmv_obs::record_ns(
                SpanKind::JobQueueWait,
                queued_at.elapsed().as_nanos() as u64,
            );
        }
        // One cache lookup per job (not per group) keeps the hit/miss
        // accounting identical to per-job dispatch: the first lookup of a
        // key is the miss that schedules, every other job is a hit.
        let mut prepared: Option<std::sync::Arc<Prepared>> = None;
        let mut compile_err: Option<String> = None;
        for &i in group {
            let job = &jobs[i];
            let looked_up = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _compile = vmv_obs::span(SpanKind::JobCompile);
                cache.get_or_compile(job.benchmark, &job.point.machine)
            }));
            match looked_up {
                Ok(Ok(p)) => prepared = Some(p),
                Ok(Err(e)) => compile_err = Some(e.to_string()),
                Err(panic) => compile_err = Some(panic_message(&panic)),
            }
        }

        let mut results: Vec<(usize, Result<RunRecord, String>)> = Vec::with_capacity(group.len());
        match (prepared, compile_err) {
            (Some(prepared), _) => {
                let mut rest = group;
                if !prepared.has_trace() {
                    // First run of the key: execute and record the trace.
                    let i = rest[0];
                    rest = &rest[1..];
                    results.push((i, run_serial(i, &prepared)));
                }
                if !rest.is_empty() && prepared.has_trace() {
                    // Everything else retimes the shared trace in one
                    // batched walk.
                    let batched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || -> Result<Vec<vmv_core::RunOutcome>, String> {
                            let _simulate = vmv_obs::span(SpanKind::JobSimulate);
                            let variants: Vec<_> = rest
                                .iter()
                                .map(|&i| (&jobs[i].point.machine, jobs[i].point.model))
                                .collect();
                            match &opts.profile_dir {
                                Some(dir) => {
                                    // Attribution piggybacks on the fused
                                    // walk: one extra pass, not K runs.
                                    let (outcomes, profiles) =
                                        simulate_batch_profiled(&prepared, &variants)
                                            .map_err(|e| e.to_string())?;
                                    for ((&i, outcome), profile) in
                                        rest.iter().zip(&outcomes).zip(&profiles)
                                    {
                                        let job = &jobs[i];
                                        write_profile(
                                            dir,
                                            &meta_of(&job.key, job.point, job.benchmark, outcome),
                                            profile,
                                        )
                                        .map_err(|e| format!("profile write: {e}"))?;
                                    }
                                    Ok(outcomes)
                                }
                                None => {
                                    simulate_batch(&prepared, &variants).map_err(|e| e.to_string())
                                }
                            }
                        },
                    ));
                    if let Ok(Ok(outcomes)) = batched {
                        replay_batches.fetch_add(1, Ordering::Relaxed);
                        replays.fetch_add(rest.len(), Ordering::Relaxed);
                        for (&i, outcome) in rest.iter().zip(&outcomes) {
                            let job = &jobs[i];
                            let record =
                                record_of(job.key.clone(), job.point, job.benchmark, outcome);
                            results.push((i, Ok(record)));
                        }
                        rest = &[];
                    }
                    // A failed or panicked batch leaves `rest` untouched:
                    // the serial fallback below re-runs each job on its
                    // own, preserving per-job error isolation.
                }
                for &i in rest {
                    results.push((i, run_serial(i, &prepared)));
                }
            }
            (None, Some(e)) => {
                results.extend(group.iter().map(|&i| (i, Err(e.clone()))));
            }
            (None, None) => unreachable!("non-empty group yields a compile result"),
        }
        for (_, r) in &results {
            vmv_obs::incr(if r.is_ok() {
                Counter::SweepJobsCompleted
            } else {
                Counter::SweepJobsFailed
            });
        }
        done_runs.fetch_add(results.len(), Ordering::Relaxed);
        results
    };

    // Single-worker sweeps run inline on the calling thread: no pool, no
    // committer polling — on a single-CPU machine the 1 ms poll loop would
    // otherwise contend with the one worker for the core.  Groups may
    // interleave in the job list, so results land in pre-assigned slots
    // and the completed prefix streams out after each group.
    if opts.effective_workers() == 1 {
        const BATCH: usize = 16;
        let start = Instant::now();
        let mut progress = Progress::new(opts.progress, jobs.len(), skipped);
        let mut slots: Vec<Option<Result<RunRecord, String>>> = jobs.iter().map(|_| None).collect();
        let mut records = Vec::with_capacity(jobs.len());
        let mut errors = Vec::new();
        let mut drained = 0usize;
        let mut committed = 0usize;
        let mut busy_ns = 0u64;
        for group in &groups {
            let group_start = vmv_obs::enabled().then(Instant::now);
            for (i, result) in run_group(group) {
                slots[i] = Some(result);
            }
            if let Some(t) = group_start {
                busy_ns += t.elapsed().as_nanos() as u64;
            }
            while drained < jobs.len() && slots[drained].is_some() {
                match slots[drained].take().expect("checked above") {
                    Ok(record) => records.push(record),
                    Err(e) => {
                        let job = &jobs[drained];
                        errors.push((format!("{} on {}", job.benchmark.name(), job.point.name), e));
                    }
                }
                drained += 1;
            }
            progress.tick(done_runs.load(Ordering::Relaxed), &cache, false);
            // Stream completed records in small batches so an interrupted
            // sweep keeps (almost) everything, without one write per run.
            if records.len() - committed >= BATCH {
                if let Some(s) = store {
                    let _append = vmv_obs::span(SpanKind::StoreAppend);
                    s.append(&records[committed..])?;
                }
                committed = records.len();
            }
        }
        if let Some(s) = store {
            let _append = vmv_obs::span(SpanKind::StoreAppend);
            s.append(&records[committed..])?;
        }
        vmv_obs::worker_record(0, (records.len() + errors.len()) as u64, busy_ns);
        progress.tick(done_runs.load(Ordering::Relaxed), &cache, true);
        return Ok(SweepReport {
            records,
            skipped,
            errors,
            cache: cache.counters(),
            replays: replays.load(Ordering::Relaxed),
            replay_batches: replay_batches.load(Ordering::Relaxed),
            wall_seconds: start.elapsed().as_secs_f64(),
        });
    }

    let slots: Vec<Mutex<Option<Result<RunRecord, String>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Raised by the committer when the store breaks: simulating jobs whose
    // results could never be persisted or reported would be wasted work.
    let abort = std::sync::atomic::AtomicBool::new(false);
    let start = Instant::now();
    let mut records = Vec::with_capacity(jobs.len());
    let mut errors = Vec::new();
    let mut append_error: Option<std::io::Error> = None;
    std::thread::scope(|scope| {
        // Shadow the shared state as references: the worker closures are
        // `move` (each owns its `worker` index) but must share everything
        // else, and references are `Copy`.
        let run_group = &run_group;
        let (jobs, groups, slots, next, abort) = (&jobs, &groups, &slots, &next, &abort);
        for worker in 0..opts.effective_workers() {
            scope.spawn(move || {
                let mut worker_jobs = 0u64;
                let mut busy_ns = 0u64;
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() {
                        break;
                    }
                    let group = &groups[g];
                    let group_start = vmv_obs::enabled().then(Instant::now);
                    for (i, result) in run_group(group) {
                        *slots[i].lock().unwrap() = Some(result);
                    }
                    worker_jobs += group.len() as u64;
                    if let Some(t) = group_start {
                        busy_ns += t.elapsed().as_nanos() as u64;
                    }
                }
                vmv_obs::worker_record(worker, worker_jobs, busy_ns);
            });
        }

        // The main thread is the committer: persist the completed prefix of
        // the job list as it grows.  The heartbeat reads the completed-runs
        // counter, not the committed prefix, so progress keeps moving even
        // while an interleaved group holds the prefix back.
        let mut progress = Progress::new(opts.progress, jobs.len(), skipped);
        let mut committed = 0usize;
        while committed < jobs.len() {
            let mut batch = Vec::new();
            while committed < jobs.len() {
                let taken = slots[committed].lock().unwrap().take();
                match taken {
                    Some(Ok(record)) => batch.push(record),
                    Some(Err(e)) => {
                        let job = &jobs[committed];
                        errors.push((format!("{} on {}", job.benchmark.name(), job.point.name), e));
                    }
                    None => break,
                }
                committed += 1;
            }
            if !batch.is_empty() {
                if let Some(s) = store {
                    let _append = vmv_obs::span(SpanKind::StoreAppend);
                    if let Err(e) = s.append(&batch) {
                        append_error = Some(e);
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                records.extend(batch);
            }
            progress.tick(
                done_runs.load(Ordering::Relaxed),
                &cache,
                committed == jobs.len(),
            );
            if committed < jobs.len() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    });
    if let Some(e) = append_error {
        return Err(e);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    Ok(SweepReport {
        records,
        skipped,
        errors,
        cache: cache.counters(),
        replays: replays.load(Ordering::Relaxed),
        replay_batches: replay_batches.load(Ordering::Relaxed),
        wall_seconds,
    })
}

/// Build the persisted record of one completed run.
fn record_of(
    key: String,
    point: &SweepPoint,
    benchmark: Benchmark,
    outcome: &vmv_core::RunOutcome,
) -> RunRecord {
    RunRecord {
        key,
        config: point.name.clone(),
        benchmark: benchmark.name().to_string(),
        variant: outcome.variant.name().to_string(),
        model: format!("{:?}", point.model),
        cycles: outcome.stats.cycles(),
        stall_cycles: outcome.stats.total().stall_cycles,
        operations: outcome.stats.total().operations,
        micro_ops: outcome.stats.total().micro_ops,
        vector_cycles: outcome.stats.vector().cycles,
        check_ok: outcome.check_failures.is_empty(),
    }
}

/// Run metadata stamped into a persisted profile document.
fn meta_of(
    key: &str,
    point: &SweepPoint,
    benchmark: Benchmark,
    outcome: &vmv_core::RunOutcome,
) -> ProfileMeta {
    ProfileMeta {
        key: key.to_string(),
        config: point.name.clone(),
        benchmark: benchmark.name().to_string(),
        variant: outcome.variant.name().to_string(),
        model: format!("{:?}", point.model),
    }
}

/// Best-effort text of a worker panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, SweepSpec};

    fn small_points() -> Vec<SweepPoint> {
        SweepSpec::new()
            .axis(Axis::vector_lanes(&[1, 2, 4]))
            .axis(Axis::mem_latency(&[100, 500]))
            .expand()
            .points
    }

    #[test]
    fn executor_is_deterministic_across_worker_counts() {
        let points = small_points();
        let mut reports = Vec::new();
        for workers in [1, 4] {
            let opts = ExecOptions {
                benchmarks: vec![Benchmark::GsmDec],
                workers,
                progress: false,
                verify: false,
                profile_dir: None,
            };
            reports.push(run_sweep(&points, &opts, None).unwrap());
        }
        let a = &reports[0];
        let b = &reports[1];
        assert_eq!(
            a.records, b.records,
            "1-thread and 4-thread runs must agree exactly"
        );
        assert_eq!(a.records.len(), points.len());
        assert!(a.errors.is_empty(), "{:?}", a.errors);
        assert!(a.records.iter().all(|r| r.check_ok));
        // Group dispatch makes replay accounting deterministic at any
        // worker count: each of the 3 schedule keys records once and
        // retimes its second memory variant in one batch — and replayed
        // runs still match fully executed ones bit-for-bit (that is what
        // the records equality above proves).
        for r in &reports {
            assert_eq!(r.replays, 3, "one replay per re-timed memory variant");
            assert_eq!(r.replay_batches, 3, "one batched walk per schedule key");
        }
    }

    #[test]
    fn compile_cache_schedules_once_per_schedule_key() {
        let points = small_points();
        let opts = ExecOptions {
            benchmarks: vec![Benchmark::GsmDec],
            workers: 4,
            progress: false,
            verify: false,
            profile_dir: None,
        };
        let report = run_sweep(&points, &opts, None).unwrap();
        // 3 lane values × 2 memory latencies = 6 points, but only the 3
        // lane values differ in schedule-relevant fields.
        assert_eq!(
            report.cache.misses, 3,
            "one schedule per (benchmark, schedule key)"
        );
        assert_eq!(report.cache.hits, 3);
    }

    #[test]
    fn panicking_points_are_reported_not_fatal() {
        // 48 KB with the default 4-way/32-byte geometry gives 384 sets —
        // not a power of two, so the cache model panics on construction.
        let points = SweepSpec::new()
            .axis(Axis::l1_size(&[48 * 1024, 16 * 1024]))
            .expand()
            .points;
        let opts = ExecOptions {
            benchmarks: vec![Benchmark::GsmDec],
            workers: 2,
            progress: false,
            verify: false,
            profile_dir: None,
        };
        let report = run_sweep(&points, &opts, None).unwrap();
        assert_eq!(report.records.len(), 1, "the healthy point still completes");
        assert_eq!(report.errors.len(), 1);
        assert!(
            report.errors[0].1.contains("panicked"),
            "{:?}",
            report.errors
        );
    }

    #[test]
    fn cache_geometry_sweep_runs_and_shares_one_schedule() {
        // Geometry variations (associativity, line size, bank count) are
        // memory-only: every point re-simulates the same single schedule.
        let points = SweepSpec::new()
            .axis(Axis::l2_assoc(&[4, 8]))
            .axis(Axis::l2_line(&[64, 128]))
            .axis(Axis::l2_banks(&[2, 4]))
            .expand()
            .points;
        assert_eq!(points.len(), 8);
        let opts = ExecOptions {
            benchmarks: vec![Benchmark::GsmDec],
            workers: 2,
            progress: false,
            verify: false,
            profile_dir: None,
        };
        let report = run_sweep(&points, &opts, None).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.records.len(), 8);
        assert_eq!(report.cache.misses, 1, "one schedule for all geometries");
        // The whole key is one dispatch group: the first point executes
        // and records, the other seven retime the trace in a single
        // batched walk.
        assert_eq!(report.replays, points.len() - 1);
        assert_eq!(report.replay_batches, 1, "one fused walk for the group");
        assert!(report.records.iter().all(|r| r.check_ok));
        // Geometry must matter: not every point can have identical cycles.
        let cycles: std::collections::HashSet<u64> =
            report.records.iter().map(|r| r.cycles).collect();
        assert!(cycles.len() > 1, "geometry axes had no effect: {cycles:?}");
    }

    #[test]
    fn store_skips_already_completed_runs() {
        let mut path = std::env::temp_dir();
        path.push(format!("vmv_sweep_exec_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = ResultStore::open(&path);

        let points = small_points();
        let opts = ExecOptions {
            benchmarks: vec![Benchmark::GsmDec],
            workers: 2,
            progress: false,
            verify: false,
            profile_dir: None,
        };
        let first = run_sweep(&points, &opts, Some(&store)).unwrap();
        assert_eq!(first.records.len(), points.len());
        assert_eq!(first.skipped, 0);

        let second = run_sweep(&points, &opts, Some(&store)).unwrap();
        assert_eq!(second.records.len(), 0, "everything already persisted");
        assert_eq!(second.skipped, points.len());
        assert_eq!(second.cache.misses, 0, "skipped jobs never compile");

        // The store still holds exactly one record per job.
        assert_eq!(store.load().unwrap().len(), points.len());
        let _ = std::fs::remove_file(&path);
    }
}
