//! Per-axis sensitivity: how much does each swept axis move performance,
//! holding every other axis fixed?
//!
//! For an axis `A`, the records are grouped by `(benchmark, all labels
//! except A's)`.  Within each group the configurations differ only in `A`,
//! so `max(cycles) / min(cycles)` is the swing attributable to `A` for that
//! slice of the design space.  The summary reports the mean and worst swing
//! across groups — the axes that matter most for the workload rise to the
//! top.

use std::collections::BTreeMap;

use crate::spec::SweepPoint;
use crate::store::RunRecord;

/// Sensitivity summary of one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSensitivity {
    pub axis: String,
    /// Groups with at least two distinct values of this axis.
    pub groups: usize,
    /// Mean of max/min cycle ratios across groups (1.0 = no effect).
    pub mean_swing: f64,
    /// Largest max/min cycle ratio seen in any group.
    pub max_swing: f64,
}

/// Compute the per-axis sensitivity of `records` over the design `points`.
/// Axes are returned sorted by `mean_swing` descending.  Failed-check
/// records are excluded.  Records are joined to points by their
/// content-derived run key (never by display name); duplicate keys count
/// once and unmatched records are ignored, as in
/// [`crate::pareto::pareto_report`].
pub fn sensitivity(points: &[SweepPoint], records: &[RunRecord]) -> Vec<AxisSensitivity> {
    let axes: Vec<String> = match points.first() {
        Some(p) => p.labels.iter().map(|(a, _)| a.clone()).collect(),
        None => return Vec::new(),
    };

    // Join each record to its point index (shared policy: content-keyed,
    // failed checks dropped, duplicate keys count once).
    let matched = crate::store::matched_records(points, records);

    let mut out = Vec::new();
    for axis in &axes {
        // group key -> cycles of the group's members.
        let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for &(i, r) in &matched {
            let mut key = format!("bench={}", r.benchmark);
            for (a, v) in points[i].labels.iter() {
                if a != axis {
                    key.push_str(&format!(";{a}={v}"));
                }
            }
            groups.entry(key).or_default().push(r.cycles);
        }
        let mut swings = Vec::new();
        for cycles in groups.values() {
            if cycles.len() < 2 {
                continue;
            }
            let max = *cycles.iter().max().unwrap() as f64;
            let min = *cycles.iter().min().unwrap() as f64;
            if min > 0.0 {
                swings.push(max / min);
            }
        }
        if swings.is_empty() {
            continue;
        }
        let mean = swings.iter().sum::<f64>() / swings.len() as f64;
        let max = swings.iter().cloned().fold(f64::MIN, f64::max);
        out.push(AxisSensitivity {
            axis: axis.clone(),
            groups: swings.len(),
            mean_swing: mean,
            max_swing: max,
        });
    }
    out.sort_by(|a, b| b.mean_swing.partial_cmp(&a.mean_swing).unwrap());
    out
}

/// Render the summary as a text table.
pub fn render_sensitivity(rows: &[AxisSensitivity]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>12} {:>12}\n",
        "axis", "groups", "mean swing", "max swing"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8} {:>11.3}x {:>11.3}x\n",
            r.axis, r.groups, r.mean_swing, r.max_swing
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, SweepSpec};

    #[test]
    fn detects_the_axis_that_drives_cycles() {
        // lanes ∈ {1, 4} doubles performance; dram ∈ {100, 500} does nothing
        // (synthetic records).
        let points = SweepSpec::new()
            .axis(Axis::vector_lanes(&[1, 4]))
            .axis(Axis::mem_latency(&[100, 500]))
            .expand()
            .points;
        let mut records = Vec::new();
        for p in &points {
            let lanes = p.machine.vector_lanes;
            records.push(RunRecord {
                key: crate::store::run_key(
                    vmv_kernels::Benchmark::GsmDec,
                    vmv_core::variant_for(&p.machine),
                    &p.machine,
                    p.model,
                ),
                config: p.name.clone(),
                benchmark: "GSM_DEC".to_string(),
                variant: "vector".to_string(),
                model: "Realistic".to_string(),
                cycles: if lanes == 1 { 2000 } else { 1000 },
                stall_cycles: 0,
                operations: 1,
                micro_ops: 1,
                vector_cycles: 0,
                check_ok: true,
            });
        }
        let s = sensitivity(&points, &records);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].axis, "vector_lanes");
        assert!((s[0].mean_swing - 2.0).abs() < 1e-9);
        assert_eq!(s[0].groups, 2, "one group per dram value");
        assert_eq!(s[1].axis, "mem_latency");
        assert!((s[1].mean_swing - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(sensitivity(&[], &[]).is_empty());
        let points = SweepSpec::new()
            .axis(Axis::vector_lanes(&[1, 2]))
            .expand()
            .points;
        assert!(sensitivity(&points, &[]).is_empty());
    }
}
