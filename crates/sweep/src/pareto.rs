//! Pareto analysis: performance (total cycles across the swept benchmarks)
//! against an abstract hardware-cost model, and the frontier of designs no
//! other design beats on both.

use vmv_machine::MachineConfig;

use crate::spec::SweepPoint;
use crate::store::RunRecord;

/// Abstract hardware cost of a configuration, in arbitrary "area units".
///
/// The model only has to be *monotone* in every resource so the Pareto
/// frontier is meaningful — the weights are rough relative areas in the
/// spirit of the paper's argument (§4.2/§6) that a 2-issue vector machine is
/// much cheaper than an 8-issue superscalar of similar media performance:
///
/// * issue slots (decode/bypass grow superlinearly: `0.75·w·log2(w)`),
/// * functional units (int 1, µSIMD 1.5, vector unit 2 plus 0.75 per lane),
/// * cache ports (L1 port 1, L2 vector port 0.5 plus 0.25 per element),
/// * register-file bits (1 unit per 2 Kbit, vector registers at MAX_VL
///   elements of 64 bits),
/// * cache capacity (1 unit per 16 KB of L1, per 64 KB of L2, per 256 KB of
///   L3).
pub fn hardware_cost(m: &MachineConfig) -> f64 {
    let w = m.issue_width as f64;
    let issue = 0.75 * w * w.log2().max(1.0);
    let units = m.int_units as f64
        + 1.5 * m.simd_units as f64
        + m.vector_units as f64 * (2.0 + 0.75 * m.vector_lanes as f64);
    let ports = m.l1_ports as f64 + m.l2_ports as f64 * (0.5 + 0.25 * m.l2_port_elems as f64);
    let reg_bits = (m.regs.int as f64 + m.regs.simd as f64) * 64.0
        + m.regs.vec as f64 * vmv_isa::MAX_VL as f64 * 64.0
        + m.regs.acc as f64 * 128.0;
    let regs = reg_bits / 2048.0;
    let caches = m.memory.l1_size as f64 / (16.0 * 1024.0)
        + m.memory.l2_size as f64 / (64.0 * 1024.0)
        + m.memory.l3_size as f64 / (256.0 * 1024.0);
    issue + units + ports + regs + caches
}

/// One design point in cost/cycles space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    pub name: String,
    pub cost: f64,
    /// Total cycles across every benchmark recorded for this design.
    pub cycles: u64,
    /// Benchmarks aggregated into `cycles`.
    pub benchmarks: usize,
    pub on_frontier: bool,
}

/// Indices of the non-dominated points of `(cost, cycles)` pairs.  A point
/// is dominated if another is no worse on both axes and strictly better on
/// at least one.
pub fn frontier_indices(points: &[(f64, u64)]) -> Vec<usize> {
    let mut out = Vec::new();
    'candidate: for (i, &(cost_i, cyc_i)) in points.iter().enumerate() {
        for (j, &(cost_j, cyc_j)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let no_worse = cost_j <= cost_i && cyc_j <= cyc_i;
            let better = cost_j < cost_i || cyc_j < cyc_i;
            if no_worse && better {
                continue 'candidate;
            }
        }
        out.push(i);
    }
    out
}

/// Aggregate records per design point and mark the Pareto frontier.
/// Records are joined to points by their content-derived run key (never by
/// display name), so records written under older point names still count;
/// duplicate keys (e.g. `cat`-merged shard files) count once; records whose
/// keys match none of `points` are ignored.
/// Entries are sorted by cost ascending (ties by name) so the frontier
/// reads as a cost/performance curve.  Only points with at least one
/// *functionally correct* record participate; a point missing some
/// benchmarks still appears (its `benchmarks` count says how many) but is
/// never marked `on_frontier` — its cycle total is incomparable to fully
/// measured points, so the frontier is computed only over the points with
/// the maximum benchmark coverage.
pub fn pareto_report(points: &[SweepPoint], records: &[RunRecord]) -> Vec<ParetoEntry> {
    let mut cycles = vec![0u64; points.len()];
    let mut benchmarks = vec![0usize; points.len()];
    for (i, r) in crate::store::matched_records(points, records) {
        cycles[i] += r.cycles;
        benchmarks[i] += 1;
    }
    let mut entries: Vec<ParetoEntry> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if benchmarks[i] > 0 {
            entries.push(ParetoEntry {
                name: p.name.clone(),
                cost: hardware_cost(&p.machine),
                cycles: cycles[i],
                benchmarks: benchmarks[i],
                on_frontier: false,
            });
        }
    }
    // Only fully measured points compete for the frontier: a point that
    // failed some benchmarks has an artificially low cycle total.
    let full_coverage = entries.iter().map(|e| e.benchmarks).max().unwrap_or(0);
    let complete: Vec<usize> = (0..entries.len())
        .filter(|&i| entries[i].benchmarks == full_coverage)
        .collect();
    let coords: Vec<(f64, u64)> = complete
        .iter()
        .map(|&i| (entries[i].cost, entries[i].cycles))
        .collect();
    for i in frontier_indices(&coords) {
        entries[complete[i]].on_frontier = true;
    }
    entries.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap()
            .then_with(|| a.name.cmp(&b.name))
    });
    entries
}

/// Render the report as a text table ("*" marks the frontier).
pub fn render_pareto(entries: &[ParetoEntry], max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<2} {:<40} {:>10} {:>14} {:>7}\n",
        "", "design point", "cost", "cycles", "benchs"
    ));
    let frontier = entries.iter().filter(|e| e.on_frontier).count();
    for e in entries.iter().take(max_rows) {
        out.push_str(&format!(
            "{:<2} {:<40} {:>10.1} {:>14} {:>7}\n",
            if e.on_frontier { "*" } else { "" },
            e.name,
            e.cost,
            e.cycles,
            e.benchmarks
        ));
    }
    if entries.len() > max_rows {
        out.push_str(&format!("   ... {} more rows\n", entries.len() - max_rows));
    }
    out.push_str(&format!(
        "{} design points, {} on the cost/cycles Pareto frontier\n",
        entries.len(),
        frontier
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_machine::presets;

    #[test]
    fn frontier_on_a_hand_built_set() {
        // (cost, cycles): A(1,100) B(2,90) C(2,80) D(3,80) E(0.5,200)
        // A: nothing cheaper&faster -> frontier.
        // B: dominated by C (same cost, fewer cycles).
        // C: frontier.  D: dominated by C (cheaper, same cycles).
        // E: cheapest -> frontier.
        let pts = vec![(1.0, 100u64), (2.0, 90), (2.0, 80), (3.0, 80), (0.5, 200)];
        assert_eq!(frontier_indices(&pts), vec![0, 2, 4]);
    }

    #[test]
    fn duplicate_points_both_survive() {
        // Identical coordinates dominate each other weakly but not strictly.
        let pts = vec![(1.0, 100u64), (1.0, 100)];
        assert_eq!(frontier_indices(&pts), vec![0, 1]);
    }

    #[test]
    fn cost_model_is_monotone_in_resources() {
        let base = presets::vector1(2);
        let cost = hardware_cost(&base);
        let mut more_lanes = base.clone();
        more_lanes.vector_lanes = 8;
        let mut more_cache = base.clone();
        more_cache.memory.l2_size *= 2;
        let mut wider = presets::vector1(4);
        wider.vector_units = base.vector_units;
        assert!(hardware_cost(&more_lanes) > cost);
        assert!(hardware_cost(&more_cache) > cost);
        assert!(hardware_cost(&wider) > cost);
        // The paper's cost argument: 2-issue Vector2 is far cheaper than an
        // 8-issue µSIMD machine.
        assert!(hardware_cost(&presets::vector2(2)) < hardware_cost(&presets::usimd(8)));
    }

    #[test]
    fn report_aggregates_and_sorts_by_cost() {
        use crate::spec::{Axis, SweepSpec};
        use crate::store::run_key;
        use vmv_kernels::Benchmark;

        let points = SweepSpec::new()
            .axis(Axis::vector_units(&[1, 2]))
            .expand()
            .points;
        let mut records = Vec::new();
        for (i, p) in points.iter().enumerate() {
            for bench in [Benchmark::GsmDec, Benchmark::GsmEnc] {
                records.push(RunRecord {
                    key: run_key(
                        bench,
                        vmv_core::variant_for(&p.machine),
                        &p.machine,
                        p.model,
                    ),
                    // Records are joined by key, so an outdated display
                    // name must not matter.
                    config: format!("old-name-{i}"),
                    benchmark: bench.name().to_string(),
                    variant: "vector".to_string(),
                    model: "Realistic".to_string(),
                    cycles: 1000 * (i as u64 + 1),
                    stall_cycles: 0,
                    operations: 10,
                    micro_ops: 40,
                    vector_cycles: 500,
                    check_ok: true,
                });
            }
        }
        // A duplicate key (merged shard files) must count once, and a
        // record whose key matches no point must be ignored.
        records.push(records[0].clone());
        records.push(RunRecord {
            key: "0000000000000000".to_string(),
            cycles: 1_000_000,
            ..records[0].clone()
        });
        // A failed-check record must not contribute either.
        records.push(RunRecord {
            check_ok: false,
            cycles: 1,
            ..records[2].clone()
        });
        let report = pareto_report(&points, &records);
        assert_eq!(report.len(), 2);
        assert!(report[0].cost < report[1].cost);
        assert_eq!(
            report.iter().map(|e| e.cycles).collect::<Vec<_>>(),
            vec![2000, 4000]
        );
        assert!(report.iter().all(|e| e.benchmarks == 2));
        // Cheap-and-fast here: vu1 dominates vu2 (frontier of one).
        assert!(report[0].on_frontier);
        assert!(!report[1].on_frontier);

        // A partially measured point (one benchmark missing) must never win
        // the frontier on its artificially low total, even when cheaper.
        // records[1..4] = point 0's GSM_ENC only, plus both of point 1's.
        let partial = pareto_report(&points, &records[1..4]);
        assert_eq!(partial[0].benchmarks, 1, "vu1 lost its GSM_DEC record");
        assert!(
            !partial[0].on_frontier,
            "incomplete point must not dominate"
        );
        assert!(partial[1].on_frontier, "the fully measured point wins");
    }
}
