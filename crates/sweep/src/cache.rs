//! Compile memoization: each benchmark program is scheduled **once** per
//! unique `(benchmark, ISA variant, schedule-relevant machine fields)` and
//! the resulting [`Prepared`] (static schedule + memory image + checks) is
//! shared across every run that only varies memory-system parameters or the
//! memory model.
//!
//! A sweep over cache geometries or memory latencies therefore pays the
//! scheduler exactly once per architecture point, no matter how many memory
//! variants it simulates.
//!
//! The shared [`Prepared`] also memoizes the **execution trace**: the first
//! run of a cached entry executes and records, and every later memory
//! variant replays that trace against a fresh memory hierarchy
//! (see `vmv_sim::replay`), skipping functional execution entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vmv_core::{prepare, ExperimentError, Prepared};
use vmv_kernels::{Benchmark, IsaVariant};
use vmv_machine::MachineConfig;

use crate::fingerprint::schedule_fingerprint;

/// Cache key: benchmark, the ISA variant it is compiled in, and the
/// schedule-relevant machine fields.
pub type CacheKey = (Benchmark, IsaVariant, String);

/// One cache slot.  The per-slot mutex serialises compilation of the *same*
/// key (so a key is scheduled exactly once even under contention) while
/// distinct keys compile fully in parallel.
type Slot = Arc<Mutex<Option<Result<Arc<Prepared>, String>>>>;

/// Thread-safe compile cache.
pub struct CompileCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Certify each freshly compiled schedule with the static verifier
    /// (`vmv_verify::verify_compiled`) before caching it.
    verify: bool,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache {
            slots: Mutex::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            // Every dev/test sweep certifies its schedules for free; release
            // sweeps opt in via `sweep --verify`.
            verify: cfg!(debug_assertions),
        }
    }
}

/// Counters exposed for reporting and for the exactly-one-schedule tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from an already-compiled entry.
    pub hits: u64,
    /// Lookups that had to run the scheduler (== number of schedules).
    pub misses: u64,
}

impl CompileCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Force schedule certification on (or off) regardless of build profile.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// The key this cache files `(benchmark, machine)` under.
    pub fn key_for(benchmark: Benchmark, machine: &MachineConfig) -> CacheKey {
        (
            benchmark,
            vmv_core::variant_for(machine),
            schedule_fingerprint(machine),
        )
    }

    /// Fetch the compiled program for `(benchmark, machine)`, scheduling it
    /// on a miss.  Concurrent requests for the same key block until the
    /// first finishes; errors are cached too (a machine that cannot compile
    /// a benchmark fails fast on every retry).
    pub fn get_or_compile(
        &self,
        benchmark: Benchmark,
        machine: &MachineConfig,
    ) -> Result<Arc<Prepared>, ExperimentError> {
        let key = Self::key_for(benchmark, machine);
        let slot: Slot = {
            let mut slots = self.slots.lock().unwrap();
            slots.entry(key).or_default().clone()
        };
        let mut guard = slot.lock().unwrap();
        match &*guard {
            Some(Ok(prepared)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                vmv_obs::incr(vmv_obs::Counter::CacheHits);
                Ok(Arc::clone(prepared))
            }
            Some(Err(msg)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                vmv_obs::incr(vmv_obs::Counter::CacheHits);
                Err(ExperimentError::Compile(msg.clone()))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vmv_obs::incr(vmv_obs::Counter::CacheMisses);
                let result = prepare(benchmark, machine).map(Arc::new).and_then(|p| {
                    if self.verify {
                        let diags =
                            vmv_verify::verify_compiled(&p.compiled.program, &p.lowered, machine);
                        if vmv_verify::has_errors(&diags) {
                            let joined = diags
                                .iter()
                                .map(|d| d.to_string())
                                .collect::<Vec<_>>()
                                .join("; ");
                            return Err(ExperimentError::Compile(format!(
                                "schedule failed static verification: {joined}"
                            )));
                        }
                    }
                    Ok(p)
                });
                *guard = Some(match &result {
                    Ok(prepared) => Ok(Arc::clone(prepared)),
                    Err(e) => Err(e.to_string()),
                });
                result
            }
        }
    }

    /// Current hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct keys ever compiled (or attempted).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_machine::presets;

    #[test]
    fn memory_variants_share_one_schedule() {
        let cache = CompileCache::new();
        let base = presets::vector2(2);
        let mut big_l2 = base.clone();
        big_l2.memory.l2_size *= 4;
        let mut slow_dram = base.clone();
        slow_dram.memory.mem_latency = 100;

        for machine in [&base, &big_l2, &slow_dram, &base] {
            cache.get_or_compile(Benchmark::GsmDec, machine).unwrap();
        }
        let c = cache.counters();
        assert_eq!(c.misses, 1, "one schedule for four memory-variant lookups");
        assert_eq!(c.hits, 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memory_variants_share_one_trace() {
        use vmv_mem::MemoryModel;
        let cache = CompileCache::new();
        let machine = presets::vector2(2);
        let prepared = cache.get_or_compile(Benchmark::GsmDec, &machine).unwrap();
        assert!(
            !prepared.has_trace(),
            "nothing recorded before the first run"
        );

        // First run executes and records; the second memory variant replays
        // the same trace and must agree bit-for-bit with a fresh execution.
        let perfect = vmv_core::simulate(&prepared, &machine, MemoryModel::Perfect).unwrap();
        assert!(prepared.has_trace(), "first run records the trace");
        let replayed = vmv_core::simulate(&prepared, &machine, MemoryModel::Realistic).unwrap();
        let executed =
            vmv_core::simulate_fresh(&prepared, &machine, MemoryModel::Realistic).unwrap();
        assert_eq!(replayed.stats, executed.stats);
        assert_ne!(
            perfect.stats.cycles(),
            replayed.stats.cycles(),
            "the memory model must still matter under replay"
        );

        // The cache hands out the same Arc, so the trace rides along.
        let again = cache.get_or_compile(Benchmark::GsmDec, &machine).unwrap();
        assert!(again.has_trace());
    }

    #[test]
    fn schedule_relevant_changes_recompile() {
        let cache = CompileCache::new();
        let base = presets::vector2(2);
        let mut wide = base.clone();
        wide.vector_lanes = 8;
        cache.get_or_compile(Benchmark::GsmDec, &base).unwrap();
        cache.get_or_compile(Benchmark::GsmDec, &wide).unwrap();
        cache.get_or_compile(Benchmark::GsmEnc, &base).unwrap();
        assert_eq!(cache.counters().misses, 3);
    }

    #[test]
    fn concurrent_lookups_schedule_exactly_once() {
        let cache = CompileCache::new();
        let machine = presets::usimd(2);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_compile(Benchmark::GsmDec, &machine).unwrap();
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.misses, 1, "eight concurrent lookups, one schedule");
        assert_eq!(c.hits, 7);
    }
}
