//! Canonical, content-derived fingerprints of machine configurations.
//!
//! Three textual fingerprints exist in the crate:
//!
//! * the **schedule fingerprint** covers exactly the fields the static
//!   scheduler reads (ISA family, issue width, functional units, lanes,
//!   cache ports, register files, operation latencies, chaining) — the
//!   compile-memoization key;
//! * the **full fingerprint** additionally covers the memory-hierarchy
//!   parameters — together with benchmark, variant and memory model it
//!   derives the stable run key of the result store;
//! * the **spec fingerprint** ([`crate::specfile::SpecFile::fingerprint`])
//!   hashes a whole experiment definition (canonical axes + constraints)
//!   via the same [`fnv1a64`] — the identity a result store's header line
//!   carries.
//!
//! The configuration *name* is deliberately excluded from both: renaming a
//! configuration must never change what is cached or re-run.

use vmv_machine::{IsaSupport, MachineConfig};

fn isa_tag(isa: IsaSupport) -> &'static str {
    match isa {
        IsaSupport::Vliw => "vliw",
        IsaSupport::Usimd => "usimd",
        IsaSupport::Vector => "vector",
    }
}

/// The schedule-relevant machine fields as a canonical string.
pub fn schedule_fingerprint(m: &MachineConfig) -> String {
    let l = &m.latencies;
    format!(
        "isa={};iw={};iu={};su={};vu={};lanes={};l1p={};l2p={};l2pe={};\
         regs={},{},{},{};lat={},{},{},{},{},{},{},{},{},{},{};chain={}",
        isa_tag(m.isa),
        m.issue_width,
        m.int_units,
        m.simd_units,
        m.vector_units,
        m.vector_lanes,
        m.l1_ports,
        m.l2_ports,
        m.l2_port_elems,
        m.regs.int,
        m.regs.simd,
        m.regs.vec,
        m.regs.acc,
        l.int_alu,
        l.int_mul,
        l.int_div,
        l.load_l1,
        l.store,
        l.branch,
        l.simd_alu,
        l.simd_mul,
        l.vec_alu,
        l.vec_mul,
        l.vec_mem,
        m.chaining,
    )
}

/// Schedule fingerprint plus the memory-hierarchy parameters.
pub fn full_fingerprint(m: &MachineConfig) -> String {
    let mem = &m.memory;
    format!(
        "{};mem=l1:{},{},{},{};l2:{},{},{},{},{};l3:{},{},{},{};dram:{}",
        schedule_fingerprint(m),
        mem.l1_size,
        mem.l1_assoc,
        mem.l1_line,
        mem.l1_latency,
        mem.l2_size,
        mem.l2_assoc,
        mem.l2_line,
        mem.l2_latency,
        mem.l2_banks,
        mem.l3_size,
        mem.l3_assoc,
        mem.l3_line,
        mem.l3_latency,
        mem.mem_latency,
    )
}

/// 64-bit FNV-1a hash, the stable content hash behind run keys.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_machine::presets;

    #[test]
    fn name_does_not_affect_fingerprints() {
        let a = presets::vector2(2);
        let mut b = a.clone();
        b.name = "renamed".to_string();
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        assert_eq!(full_fingerprint(&a), full_fingerprint(&b));
    }

    #[test]
    fn memory_parameters_only_affect_the_full_fingerprint() {
        let a = presets::vector2(2);
        let mut b = a.clone();
        b.memory.l2_size *= 2;
        b.memory.mem_latency = 100;
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        assert_ne!(full_fingerprint(&a), full_fingerprint(&b));
    }

    #[test]
    fn schedule_relevant_fields_change_the_schedule_fingerprint() {
        let a = presets::vector2(2);
        for mutate in [
            (|m: &mut vmv_machine::MachineConfig| m.vector_lanes = 8) as fn(&mut _),
            |m| m.issue_width = 4,
            |m| m.latencies.vec_mem = 9,
            |m| m.chaining = false,
            |m| m.regs.vec = 64,
        ] {
            let mut b = a.clone();
            mutate(&mut b);
            assert_ne!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: a silent change to the hash would orphan existing stores.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
