//! The JSONL result store: one run per line, each with a stable
//! content-derived key, so interrupted or extended sweeps resume
//! incrementally — runs whose keys are already on disk are skipped.
//!
//! The key hashes the benchmark, ISA variant, memory model and the *full*
//! machine fingerprint (every architectural and memory parameter, but not
//! the display name): the same design point always maps to the same key, on
//! any machine, in any session.

use std::collections::HashSet;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use vmv_kernels::{Benchmark, IsaVariant};
use vmv_machine::MachineConfig;
use vmv_mem::MemoryModel;

use crate::fingerprint::{fnv1a64, full_fingerprint};
use crate::json::{Json, JsonError};

/// Stable content-derived key of one run (16 hex digits).
pub fn run_key(
    benchmark: Benchmark,
    variant: IsaVariant,
    machine: &MachineConfig,
    model: MemoryModel,
) -> String {
    let canonical = format!(
        "{}|{}|{:?}|{}",
        benchmark.name(),
        variant.name(),
        model,
        full_fingerprint(machine)
    );
    format!("{:016x}", fnv1a64(canonical.as_bytes()))
}

/// One persisted run: the measurement columns every analysis pass needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    pub key: String,
    /// Design-point name (display only; never part of the key).
    pub config: String,
    pub benchmark: String,
    pub variant: String,
    pub model: String,
    pub cycles: u64,
    pub stall_cycles: u64,
    pub operations: u64,
    pub micro_ops: u64,
    /// Cycles spent in the vector regions.
    pub vector_cycles: u64,
    /// Whether every golden-output check passed.
    pub check_ok: bool,
}

impl RunRecord {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("key".into(), Json::str(&self.key)),
            ("config".into(), Json::str(&self.config)),
            ("benchmark".into(), Json::str(&self.benchmark)),
            ("variant".into(), Json::str(&self.variant)),
            ("model".into(), Json::str(&self.model)),
            ("cycles".into(), Json::u64(self.cycles)),
            ("stall_cycles".into(), Json::u64(self.stall_cycles)),
            ("operations".into(), Json::u64(self.operations)),
            ("micro_ops".into(), Json::u64(self.micro_ops)),
            ("vector_cycles".into(), Json::u64(self.vector_cycles)),
            ("check_ok".into(), Json::Bool(self.check_ok)),
        ])
    }

    pub fn from_json(v: &Json) -> Option<RunRecord> {
        Some(RunRecord {
            key: v.get("key")?.as_str()?.to_string(),
            config: v.get("config")?.as_str()?.to_string(),
            benchmark: v.get("benchmark")?.as_str()?.to_string(),
            variant: v.get("variant")?.as_str()?.to_string(),
            model: v.get("model")?.as_str()?.to_string(),
            cycles: v.get("cycles")?.as_u64()?,
            stall_cycles: v.get("stall_cycles")?.as_u64()?,
            operations: v.get("operations")?.as_u64()?,
            micro_ops: v.get("micro_ops")?.as_u64()?,
            vector_cycles: v.get("vector_cycles")?.as_u64()?,
            check_ok: v.get("check_ok")?.as_bool()?,
        })
    }
}

/// Map every run key of `points × benchmarks` to the index of its design
/// point.  The analyses use this to join stored records to points by
/// *content* — display names can change between sweeps without orphaning
/// records.
pub fn point_key_index(
    points: &[crate::spec::SweepPoint],
    benchmarks: &[Benchmark],
) -> std::collections::HashMap<String, usize> {
    let mut map = std::collections::HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let variant = vmv_core::variant_for(&p.machine);
        for &benchmark in benchmarks {
            map.insert(run_key(benchmark, variant, &p.machine, p.model), i);
        }
    }
    map
}

/// Join `records` to `points` by content-derived run key (over all six
/// benchmarks): failed-check records are dropped, duplicate keys (e.g.
/// `cat`-merged shard files) count once (first occurrence wins), and
/// records matching none of `points` are ignored.  Returns `(point index,
/// record)` pairs — the single join policy shared by the Pareto and
/// sensitivity analyses.
pub fn matched_records<'r>(
    points: &[crate::spec::SweepPoint],
    records: &'r [RunRecord],
) -> Vec<(usize, &'r RunRecord)> {
    let key_index = point_key_index(points, &Benchmark::ALL);
    let mut seen = std::collections::HashSet::new();
    records
        .iter()
        .filter(|r| r.check_ok)
        .filter_map(|r| key_index.get(&r.key).map(|&i| (i, r)))
        .filter(|(_, r)| seen.insert(r.key.as_str()))
        .collect()
}

/// The self-describing first line of a spec-driven JSONL store: the name,
/// content fingerprint and full canonical serialization of the spec that
/// produced the records.  Readers that only want records can ignore it (it
/// has no `key` field, so [`RunRecord::from_json`] rejects it), but any tool
/// holding just the file can recover *what experiment it answers*.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreHeader {
    /// Spec display name.
    pub name: String,
    /// Semantic content hash of the spec (16 hex digits).
    pub fingerprint: String,
    /// Canonical JSON of the spec itself.
    pub spec: Json,
}

/// Schema version tag of the header line.
const SPEC_HEADER_VERSION: u64 = 1;

impl StoreHeader {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("spec_header".into(), Json::u64(SPEC_HEADER_VERSION)),
            ("name".into(), Json::str(&self.name)),
            ("fingerprint".into(), Json::str(&self.fingerprint)),
            ("spec".into(), self.spec.clone()),
        ])
    }

    pub fn from_json(v: &Json) -> Option<StoreHeader> {
        // An unknown version tag means unknown field semantics: treat the
        // line as opaque (the store reads as header-less) rather than
        // mis-parsing it as v1.
        v.get("spec_header")?
            .as_u64()
            .filter(|&version| version == SPEC_HEADER_VERSION)?;
        Some(StoreHeader {
            name: v.get("name")?.as_str()?.to_string(),
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            spec: v.get("spec")?.clone(),
        })
    }
}

/// Classification of one raw store line — the single reader shared by
/// [`ResultStore`] (whose bulk readers silently skip everything that is not
/// a record) and diagnosing consumers like `vmv-report`'s loader (which
/// reports line numbers and reasons for everything else).
///
/// A line is tried as a record first, then as a header: the two shapes are
/// disjoint (records carry `key`, headers carry `spec_header`), so the
/// order only matters for pathological lines carrying both, which read as
/// records — the interpretation that keeps data.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreLine {
    /// Empty or whitespace-only.
    Blank,
    /// A v1 spec header (meaningful only as the first line of a file).
    Header(StoreHeader),
    /// A well-formed run record.
    Record(RunRecord),
    /// Valid JSON, but neither a v1 header nor a complete run record
    /// (e.g. a future header version, or a record missing fields).
    Unrecognized(Json),
    /// Not valid JSON at all (e.g. a torn final line from a crash).
    Malformed(JsonError),
}

/// Classify one line of a JSONL result store.
pub fn classify_store_line(line: &str) -> StoreLine {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return StoreLine::Blank;
    }
    match Json::parse(trimmed) {
        Err(e) => {
            vmv_obs::incr(vmv_obs::Counter::StoreLinesMalformed);
            StoreLine::Malformed(e)
        }
        Ok(v) => {
            if let Some(r) = RunRecord::from_json(&v) {
                StoreLine::Record(r)
            } else if let Some(h) = StoreHeader::from_json(&v) {
                StoreLine::Header(h)
            } else {
                vmv_obs::incr(vmv_obs::Counter::StoreLinesUnrecognized);
                StoreLine::Unrecognized(v)
            }
        }
    }
}

/// Outcome of one [`ResultStore::merge_from`] invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeStats {
    /// Records already in the destination store before the merge.
    pub existing: usize,
    /// Shard records examined.
    pub scanned: usize,
    /// Records appended to the destination.
    pub merged: usize,
    /// Shard records skipped because their key was already present.
    pub duplicates: usize,
    /// The spec header the destination ended up carrying: its own
    /// (configured or on disk), else the first shard header seen.
    pub reference_header: Option<StoreHeader>,
    /// `(shard path, its header)` for every shard whose spec fingerprint
    /// disagrees with the reference (records are still merged — keys are
    /// content-derived — but the mixture is worth a warning).
    pub mismatched_shards: Vec<(PathBuf, StoreHeader)>,
}

/// Outcome of one [`ResultStore::compact`] invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Records surviving compaction (one per distinct key, sorted).
    pub kept: usize,
    /// Superseded duplicates dropped.
    pub dropped: usize,
}

/// An append-only JSON Lines file of [`RunRecord`]s, optionally prefixed by
/// a [`StoreHeader`] line describing the spec that produced it.
pub struct ResultStore {
    path: PathBuf,
    /// Header written as the first line when this store creates its file.
    header: Option<StoreHeader>,
}

impl ResultStore {
    /// Open (or lazily create on first append) the store at `path`.
    pub fn open(path: impl AsRef<Path>) -> ResultStore {
        ResultStore {
            path: path.as_ref().to_path_buf(),
            header: None,
        }
    }

    /// Open a store that will stamp `header` as its first line when it
    /// creates (or first writes into an empty) file — the self-describing
    /// form every spec-driven sweep uses.
    pub fn with_header(path: impl AsRef<Path>, header: StoreHeader) -> ResultStore {
        ResultStore {
            path: path.as_ref().to_path_buf(),
            header: Some(header),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The spec header on disk, if the file exists and starts with one.
    /// Only the first line is read.
    pub fn read_header(&self) -> std::io::Result<Option<StoreHeader>> {
        let file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut first = String::new();
        std::io::BufReader::new(file).read_line(&mut first)?;
        Ok(match classify_store_line(&first) {
            StoreLine::Header(h) => Some(h),
            _ => None,
        })
    }

    /// All run keys already persisted.  A missing file is an empty store;
    /// unparsable lines are skipped (a torn final line from an interrupted
    /// run must not poison the store).
    pub fn completed_keys(&self) -> std::io::Result<HashSet<String>> {
        Ok(self.load()?.into_iter().map(|r| r.key).collect())
    }

    /// Load every well-formed record.
    pub fn load(&self) -> std::io::Result<Vec<RunRecord>> {
        let file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        for line in std::io::BufReader::new(file).lines() {
            if let StoreLine::Record(r) = classify_store_line(&line?) {
                records.push(r);
            }
        }
        Ok(records)
    }

    /// Merge shard stores into this one: every record whose run key is not
    /// yet present (in this store or an earlier shard) is appended, in shard
    /// order.  The first record seen for a key wins — the same policy as
    /// [`matched_records`] — so merging is idempotent and order-stable.
    ///
    /// This is the multi-machine sharding story: each worker sweeps into its
    /// own JSONL file, and `merge` unions them by content-derived key.
    /// Spec headers travel with the merge: the destination's own header wins
    /// (configured via [`ResultStore::with_header`] or already on disk);
    /// an empty destination adopts the first shard header it sees; every
    /// shard whose header fingerprint disagrees with that reference is
    /// listed in [`MergeStats::mismatched_shards`] (its records still merge —
    /// keys are content-derived — but the mixture deserves a warning).
    pub fn merge_from(&self, shards: &[impl AsRef<Path>]) -> std::io::Result<MergeStats> {
        let mut seen = self.completed_keys()?;
        let existing = seen.len();
        let mut stats = MergeStats {
            existing,
            ..MergeStats::default()
        };
        stats.reference_header = match self.read_header()? {
            Some(on_disk) => Some(on_disk),
            None => self.header.clone(),
        };
        for shard in shards {
            let shard_store = ResultStore::open(shard.as_ref());
            if let Some(shard_header) = shard_store.read_header()? {
                match &stats.reference_header {
                    Some(r) if r.fingerprint != shard_header.fingerprint => stats
                        .mismatched_shards
                        .push((shard.as_ref().to_path_buf(), shard_header)),
                    Some(_) => {}
                    None => stats.reference_header = Some(shard_header),
                }
            }
            let mut fresh = Vec::new();
            for record in shard_store.load()? {
                stats.scanned += 1;
                if seen.insert(record.key.clone()) {
                    fresh.push(record);
                } else {
                    stats.duplicates += 1;
                }
            }
            stats.merged += fresh.len();
            // Append through a store carrying the reference header, so an
            // empty destination is stamped before its first record.
            ResultStore {
                path: self.path.clone(),
                header: stats.reference_header.clone(),
            }
            .append(&fresh)?;
        }
        vmv_obs::add(
            vmv_obs::Counter::StoreDuplicateKeys,
            stats.duplicates as u64,
        );
        Ok(stats)
    }

    /// Compact the store in place: drop superseded duplicate keys (the first
    /// record for a key is authoritative, matching the [`matched_records`]
    /// join policy; later duplicates — e.g. from `cat`-merged shards — are
    /// dropped) and rewrite the file sorted by run key.  A spec header on
    /// disk (or configured on this store) is preserved as the first line.
    /// The rewrite goes through a temporary file and an atomic rename, so a
    /// crash mid-compact never loses the store.
    pub fn compact(&self) -> std::io::Result<CompactStats> {
        let header = match self.read_header()? {
            Some(on_disk) => Some(on_disk),
            None => self.header.clone(),
        };
        let records = self.load()?;
        let scanned = records.len();
        let mut seen = HashSet::new();
        let mut kept: Vec<RunRecord> = records
            .into_iter()
            .filter(|r| seen.insert(r.key.clone()))
            .collect();
        kept.sort_by(|a, b| a.key.cmp(&b.key));

        let mut buf = String::new();
        if let Some(h) = &header {
            buf.push_str(&h.to_json().render());
            buf.push('\n');
        }
        for r in &kept {
            buf.push_str(&r.to_json().render());
            buf.push('\n');
        }
        let mut tmp = self.path.clone();
        let file_name = tmp
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_string());
        tmp.set_file_name(format!("{file_name}.compact.tmp"));
        std::fs::write(&tmp, buf.as_bytes())?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(CompactStats {
            kept: kept.len(),
            dropped: scanned - kept.len(),
        })
    }

    /// Append records as JSON Lines (one `write` per batch, flushed).
    pub fn append(&self, records: &[RunRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut buf = String::new();
        if file.metadata()?.len() == 0 {
            // First write into this file: stamp the spec header line.
            if let Some(h) = &self.header {
                buf.push_str(&h.to_json().render());
                buf.push('\n');
            }
        } else if !ends_with_newline(&file)? {
            // A torn final line (interrupted earlier run) must not swallow
            // the first new record: re-open on a fresh line.
            buf.push('\n');
        }
        for r in records {
            buf.push_str(&r.to_json().render());
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        file.flush()?;
        vmv_obs::add(vmv_obs::Counter::StoreRecordsAppended, records.len() as u64);
        Ok(())
    }
}

/// Whether the file is empty or its last byte is `\n`.
fn ends_with_newline(file: &std::fs::File) -> std::io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::Start(len - 1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] == b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_machine::presets;

    fn record(key: &str, cycles: u64) -> RunRecord {
        RunRecord {
            key: key.to_string(),
            config: "2w +Vector2".to_string(),
            benchmark: "GSM_DEC".to_string(),
            variant: "vector".to_string(),
            model: "Realistic".to_string(),
            cycles,
            stall_cycles: 17,
            operations: 1000,
            micro_ops: 4000,
            vector_cycles: cycles / 2,
            check_ok: true,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "vmv_sweep_store_{tag}_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn run_keys_are_stable_and_content_derived() {
        let m = presets::vector2(2);
        let k1 = run_key(
            Benchmark::GsmDec,
            IsaVariant::Vector,
            &m,
            MemoryModel::Realistic,
        );
        let k2 = run_key(
            Benchmark::GsmDec,
            IsaVariant::Vector,
            &m,
            MemoryModel::Realistic,
        );
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 16);

        // The display name must not matter; real parameters must.
        let mut renamed = m.clone();
        renamed.name = "anything".to_string();
        assert_eq!(
            run_key(
                Benchmark::GsmDec,
                IsaVariant::Vector,
                &renamed,
                MemoryModel::Realistic
            ),
            k1
        );
        let mut bigger = m.clone();
        bigger.memory.l2_size *= 2;
        assert_ne!(
            run_key(
                Benchmark::GsmDec,
                IsaVariant::Vector,
                &bigger,
                MemoryModel::Realistic
            ),
            k1
        );
        assert_ne!(
            run_key(
                Benchmark::GsmDec,
                IsaVariant::Vector,
                &m,
                MemoryModel::Perfect
            ),
            k1
        );
        assert_ne!(
            run_key(
                Benchmark::GsmEnc,
                IsaVariant::Vector,
                &m,
                MemoryModel::Realistic
            ),
            k1
        );
    }

    #[test]
    fn jsonl_roundtrip_preserves_records_and_keys() {
        let path = temp_path("roundtrip");
        let store = ResultStore::open(&path);
        assert!(
            store.completed_keys().unwrap().is_empty(),
            "missing file = empty store"
        );

        let records = vec![
            record("aaaa000011112222", 123),
            record("bbbb000011112222", 456),
        ];
        store.append(&records).unwrap();
        store.append(&[record("cccc000011112222", 789)]).unwrap();

        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[0], records[0]);
        assert_eq!(loaded[2].cycles, 789);

        let keys = store.completed_keys().unwrap();
        assert!(keys.contains("aaaa000011112222"));
        assert!(keys.contains("cccc000011112222"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_unions_shards_by_key_first_occurrence_wins() {
        let dest_path = temp_path("merge_dest");
        let shard_a = temp_path("merge_a");
        let shard_b = temp_path("merge_b");
        let dest = ResultStore::open(&dest_path);
        dest.append(&[record("aaaa000011112222", 1)]).unwrap();
        ResultStore::open(&shard_a)
            .append(&[
                record("aaaa000011112222", 999), // duplicate of dest: skipped
                record("bbbb000011112222", 2),
            ])
            .unwrap();
        ResultStore::open(&shard_b)
            .append(&[
                record("bbbb000011112222", 888), // duplicate of shard_a: skipped
                record("cccc000011112222", 3),
            ])
            .unwrap();

        let stats = dest.merge_from(&[&shard_a, &shard_b]).unwrap();
        assert_eq!(stats.existing, 1);
        assert_eq!(stats.scanned, 4);
        assert_eq!(stats.merged, 2);
        assert_eq!(stats.duplicates, 2);

        let records = dest.load().unwrap();
        assert_eq!(records.len(), 3);
        // First occurrence won everywhere.
        assert_eq!(records[0].cycles, 1);
        assert_eq!(records[1].cycles, 2);
        assert_eq!(records[2].cycles, 3);

        // Merging again is a no-op.
        let again = dest.merge_from(&[&shard_a, &shard_b]).unwrap();
        assert_eq!(again.merged, 0);
        assert_eq!(again.duplicates, 4);
        assert_eq!(dest.load().unwrap().len(), 3);
        for p in [&dest_path, &shard_a, &shard_b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn compact_drops_duplicates_and_sorts_by_key() {
        let path = temp_path("compact");
        let store = ResultStore::open(&path);
        store
            .append(&[
                record("cccc000011112222", 3),
                record("aaaa000011112222", 1),
                record("cccc000011112222", 777), // superseded duplicate
                record("bbbb000011112222", 2),
            ])
            .unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.kept, 3);
        assert_eq!(stats.dropped, 1);

        let records = store.load().unwrap();
        let keys: Vec<_> = records.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(
            keys,
            vec!["aaaa000011112222", "bbbb000011112222", "cccc000011112222"]
        );
        // The first record for the duplicate key survived.
        assert_eq!(records[2].cycles, 3);

        // Compacting an already-compact store changes nothing.
        let stats = store.compact().unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 3,
                dropped: 0
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_of_missing_store_is_an_empty_store() {
        let path = temp_path("compact_missing");
        let store = ResultStore::open(&path);
        let stats = store.compact().unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 0,
                dropped: 0
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    fn header(fingerprint: &str) -> StoreHeader {
        StoreHeader {
            name: "test_spec".to_string(),
            fingerprint: fingerprint.to_string(),
            spec: Json::Obj(vec![("axes".into(), Json::Arr(vec![]))]),
        }
    }

    #[test]
    fn header_is_stamped_once_and_invisible_to_record_readers() {
        let path = temp_path("header");
        let store = ResultStore::with_header(&path, header("00ff00ff00ff00ff"));
        assert_eq!(
            store.read_header().unwrap(),
            None,
            "missing file: no header"
        );
        store.append(&[record("aaaa000011112222", 1)]).unwrap();
        store.append(&[record("bbbb000011112222", 2)]).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header + two records");
        assert!(text.starts_with("{\"spec_header\":1,"));
        assert_eq!(
            text.matches("spec_header").count(),
            1,
            "the header is stamped exactly once"
        );

        // Record readers never see it; header readers round-trip it.
        assert_eq!(store.load().unwrap().len(), 2);
        assert_eq!(store.completed_keys().unwrap().len(), 2);
        let back = store.read_header().unwrap().unwrap();
        assert_eq!(back, header("00ff00ff00ff00ff"));
        // A header-less open of the same path still reads everything.
        let plain = ResultStore::open(&path);
        assert_eq!(plain.load().unwrap().len(), 2);
        assert_eq!(plain.read_header().unwrap().unwrap().name, "test_spec");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_header_versions_read_as_headerless() {
        let path = temp_path("header_version");
        std::fs::write(
            &path,
            "{\"spec_header\":2,\"name\":\"future\",\"fingerprint\":\"00\",\"spec\":{}}\n",
        )
        .unwrap();
        let store = ResultStore::open(&path);
        assert_eq!(
            store.read_header().unwrap(),
            None,
            "a future header version must not be mis-parsed as v1"
        );
        assert!(store.load().unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_preserves_the_header() {
        let path = temp_path("compact_header");
        let store = ResultStore::with_header(&path, header("1111222233334444"));
        store
            .append(&[
                record("cccc000011112222", 3),
                record("aaaa000011112222", 1),
                record("cccc000011112222", 777),
            ])
            .unwrap();
        // Compact through a plain open: the on-disk header must survive.
        let stats = ResultStore::open(&path).compact().unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 2,
                dropped: 1
            }
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"spec_header\":1,"), "{text}");
        assert_eq!(
            ResultStore::open(&path).read_header().unwrap().unwrap(),
            header("1111222233334444")
        );
        assert_eq!(ResultStore::open(&path).load().unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_adopts_headers_and_counts_spec_mismatches() {
        let dest_path = temp_path("merge_header_dest");
        let shard_a = temp_path("merge_header_a");
        let shard_b = temp_path("merge_header_b");
        ResultStore::with_header(&shard_a, header("aaaaaaaaaaaaaaaa"))
            .append(&[record("aaaa000011112222", 1)])
            .unwrap();
        ResultStore::with_header(&shard_b, header("bbbbbbbbbbbbbbbb"))
            .append(&[record("bbbb000011112222", 2)])
            .unwrap();

        // An empty destination adopts the first shard's header; the second
        // shard then disagrees with it.
        let dest = ResultStore::open(&dest_path);
        let stats = dest.merge_from(&[&shard_a, &shard_b]).unwrap();
        assert_eq!(stats.merged, 2);
        assert_eq!(
            stats.reference_header.as_ref().unwrap().fingerprint,
            "aaaaaaaaaaaaaaaa"
        );
        assert_eq!(stats.mismatched_shards.len(), 1);
        assert_eq!(stats.mismatched_shards[0].0, shard_b);
        assert_eq!(stats.mismatched_shards[0].1.fingerprint, "bbbbbbbbbbbbbbbb");
        assert_eq!(
            dest.read_header().unwrap().unwrap().fingerprint,
            "aaaaaaaaaaaaaaaa"
        );
        assert_eq!(dest.load().unwrap().len(), 2);

        // Same-spec shards merge silently.
        let clean_path = temp_path("merge_header_clean");
        let clean = ResultStore::with_header(&clean_path, header("aaaaaaaaaaaaaaaa"));
        let stats = clean.merge_from(&[&shard_a]).unwrap();
        assert!(stats.mismatched_shards.is_empty());
        assert_eq!(
            clean.read_header().unwrap().unwrap().fingerprint,
            "aaaaaaaaaaaaaaaa"
        );
        for p in [&dest_path, &shard_a, &shard_b, &clean_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn classify_distinguishes_every_line_shape() {
        let r = record("aaaa000011112222", 5);
        assert_eq!(
            classify_store_line(&r.to_json().render()),
            StoreLine::Record(r)
        );
        let h = header("00ff00ff00ff00ff");
        assert_eq!(
            classify_store_line(&h.to_json().render()),
            StoreLine::Header(h)
        );
        assert_eq!(classify_store_line("   \t "), StoreLine::Blank);
        assert!(matches!(
            classify_store_line("{\"key\":\"trunc"),
            StoreLine::Malformed(_)
        ));
        // Valid JSON that is neither shape: a future header version and a
        // record missing its measurement columns.
        assert!(matches!(
            classify_store_line("{\"spec_header\":2,\"name\":\"future\"}"),
            StoreLine::Unrecognized(_)
        ));
        assert!(matches!(
            classify_store_line("{\"key\":\"aaaa000011112222\"}"),
            StoreLine::Unrecognized(_)
        ));
    }

    #[test]
    fn torn_lines_are_skipped_and_do_not_swallow_appends() {
        let path = temp_path("torn");
        let store = ResultStore::open(&path);
        store.append(&[record("aaaa000011112222", 1)]).unwrap();
        // Simulate a crash mid-write.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"key\":\"trunc").unwrap();
        }
        assert_eq!(store.load().unwrap().len(), 1);
        // An append after the torn line must start on a fresh line, so the
        // new record is recognised as completed on the next load.
        store.append(&[record("bbbb000011112222", 2)]).unwrap();
        let keys = store.completed_keys().unwrap();
        assert!(keys.contains("aaaa000011112222"));
        assert!(keys.contains("bbbb000011112222"));
        let _ = std::fs::remove_file(&path);
    }
}
