//! The JSONL result store: one run per line, each with a stable
//! content-derived key, so interrupted or extended sweeps resume
//! incrementally — runs whose keys are already on disk are skipped.
//!
//! The key hashes the benchmark, ISA variant, memory model and the *full*
//! machine fingerprint (every architectural and memory parameter, but not
//! the display name): the same design point always maps to the same key, on
//! any machine, in any session.

use std::collections::HashSet;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use vmv_kernels::{Benchmark, IsaVariant};
use vmv_machine::MachineConfig;
use vmv_mem::MemoryModel;

use crate::fingerprint::{fnv1a64, full_fingerprint};
use crate::json::Json;

/// Stable content-derived key of one run (16 hex digits).
pub fn run_key(
    benchmark: Benchmark,
    variant: IsaVariant,
    machine: &MachineConfig,
    model: MemoryModel,
) -> String {
    let canonical = format!(
        "{}|{}|{:?}|{}",
        benchmark.name(),
        variant.name(),
        model,
        full_fingerprint(machine)
    );
    format!("{:016x}", fnv1a64(canonical.as_bytes()))
}

/// One persisted run: the measurement columns every analysis pass needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    pub key: String,
    /// Design-point name (display only; never part of the key).
    pub config: String,
    pub benchmark: String,
    pub variant: String,
    pub model: String,
    pub cycles: u64,
    pub stall_cycles: u64,
    pub operations: u64,
    pub micro_ops: u64,
    /// Cycles spent in the vector regions.
    pub vector_cycles: u64,
    /// Whether every golden-output check passed.
    pub check_ok: bool,
}

impl RunRecord {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("key".into(), Json::str(&self.key)),
            ("config".into(), Json::str(&self.config)),
            ("benchmark".into(), Json::str(&self.benchmark)),
            ("variant".into(), Json::str(&self.variant)),
            ("model".into(), Json::str(&self.model)),
            ("cycles".into(), Json::u64(self.cycles)),
            ("stall_cycles".into(), Json::u64(self.stall_cycles)),
            ("operations".into(), Json::u64(self.operations)),
            ("micro_ops".into(), Json::u64(self.micro_ops)),
            ("vector_cycles".into(), Json::u64(self.vector_cycles)),
            ("check_ok".into(), Json::Bool(self.check_ok)),
        ])
    }

    pub fn from_json(v: &Json) -> Option<RunRecord> {
        Some(RunRecord {
            key: v.get("key")?.as_str()?.to_string(),
            config: v.get("config")?.as_str()?.to_string(),
            benchmark: v.get("benchmark")?.as_str()?.to_string(),
            variant: v.get("variant")?.as_str()?.to_string(),
            model: v.get("model")?.as_str()?.to_string(),
            cycles: v.get("cycles")?.as_u64()?,
            stall_cycles: v.get("stall_cycles")?.as_u64()?,
            operations: v.get("operations")?.as_u64()?,
            micro_ops: v.get("micro_ops")?.as_u64()?,
            vector_cycles: v.get("vector_cycles")?.as_u64()?,
            check_ok: v.get("check_ok")?.as_bool()?,
        })
    }
}

/// Map every run key of `points × benchmarks` to the index of its design
/// point.  The analyses use this to join stored records to points by
/// *content* — display names can change between sweeps without orphaning
/// records.
pub fn point_key_index(
    points: &[crate::spec::SweepPoint],
    benchmarks: &[Benchmark],
) -> std::collections::HashMap<String, usize> {
    let mut map = std::collections::HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let variant = vmv_core::variant_for(&p.machine);
        for &benchmark in benchmarks {
            map.insert(run_key(benchmark, variant, &p.machine, p.model), i);
        }
    }
    map
}

/// Join `records` to `points` by content-derived run key (over all six
/// benchmarks): failed-check records are dropped, duplicate keys (e.g.
/// `cat`-merged shard files) count once (first occurrence wins), and
/// records matching none of `points` are ignored.  Returns `(point index,
/// record)` pairs — the single join policy shared by the Pareto and
/// sensitivity analyses.
pub fn matched_records<'r>(
    points: &[crate::spec::SweepPoint],
    records: &'r [RunRecord],
) -> Vec<(usize, &'r RunRecord)> {
    let key_index = point_key_index(points, &Benchmark::ALL);
    let mut seen = std::collections::HashSet::new();
    records
        .iter()
        .filter(|r| r.check_ok)
        .filter_map(|r| key_index.get(&r.key).map(|&i| (i, r)))
        .filter(|(_, r)| seen.insert(r.key.as_str()))
        .collect()
}

/// An append-only JSON Lines file of [`RunRecord`]s.
pub struct ResultStore {
    path: PathBuf,
}

impl ResultStore {
    /// Open (or lazily create on first append) the store at `path`.
    pub fn open(path: impl AsRef<Path>) -> ResultStore {
        ResultStore {
            path: path.as_ref().to_path_buf(),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All run keys already persisted.  A missing file is an empty store;
    /// unparsable lines are skipped (a torn final line from an interrupted
    /// run must not poison the store).
    pub fn completed_keys(&self) -> std::io::Result<HashSet<String>> {
        Ok(self.load()?.into_iter().map(|r| r.key).collect())
    }

    /// Load every well-formed record.
    pub fn load(&self) -> std::io::Result<Vec<RunRecord>> {
        let file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        for line in std::io::BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(v) = Json::parse(&line) {
                if let Some(r) = RunRecord::from_json(&v) {
                    records.push(r);
                }
            }
        }
        Ok(records)
    }

    /// Append records as JSON Lines (one `write` per batch, flushed).
    pub fn append(&self, records: &[RunRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut buf = String::new();
        // A torn final line (interrupted earlier run) must not swallow the
        // first new record: re-open on a fresh line.
        if !ends_with_newline(&file)? {
            buf.push('\n');
        }
        for r in records {
            buf.push_str(&r.to_json().render());
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        file.flush()
    }
}

/// Whether the file is empty or its last byte is `\n`.
fn ends_with_newline(file: &std::fs::File) -> std::io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::Start(len - 1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] == b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_machine::presets;

    fn record(key: &str, cycles: u64) -> RunRecord {
        RunRecord {
            key: key.to_string(),
            config: "2w +Vector2".to_string(),
            benchmark: "GSM_DEC".to_string(),
            variant: "vector".to_string(),
            model: "Realistic".to_string(),
            cycles,
            stall_cycles: 17,
            operations: 1000,
            micro_ops: 4000,
            vector_cycles: cycles / 2,
            check_ok: true,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "vmv_sweep_store_{tag}_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn run_keys_are_stable_and_content_derived() {
        let m = presets::vector2(2);
        let k1 = run_key(
            Benchmark::GsmDec,
            IsaVariant::Vector,
            &m,
            MemoryModel::Realistic,
        );
        let k2 = run_key(
            Benchmark::GsmDec,
            IsaVariant::Vector,
            &m,
            MemoryModel::Realistic,
        );
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 16);

        // The display name must not matter; real parameters must.
        let mut renamed = m.clone();
        renamed.name = "anything".to_string();
        assert_eq!(
            run_key(
                Benchmark::GsmDec,
                IsaVariant::Vector,
                &renamed,
                MemoryModel::Realistic
            ),
            k1
        );
        let mut bigger = m.clone();
        bigger.memory.l2_size *= 2;
        assert_ne!(
            run_key(
                Benchmark::GsmDec,
                IsaVariant::Vector,
                &bigger,
                MemoryModel::Realistic
            ),
            k1
        );
        assert_ne!(
            run_key(
                Benchmark::GsmDec,
                IsaVariant::Vector,
                &m,
                MemoryModel::Perfect
            ),
            k1
        );
        assert_ne!(
            run_key(
                Benchmark::GsmEnc,
                IsaVariant::Vector,
                &m,
                MemoryModel::Realistic
            ),
            k1
        );
    }

    #[test]
    fn jsonl_roundtrip_preserves_records_and_keys() {
        let path = temp_path("roundtrip");
        let store = ResultStore::open(&path);
        assert!(
            store.completed_keys().unwrap().is_empty(),
            "missing file = empty store"
        );

        let records = vec![
            record("aaaa000011112222", 123),
            record("bbbb000011112222", 456),
        ];
        store.append(&records).unwrap();
        store.append(&[record("cccc000011112222", 789)]).unwrap();

        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[0], records[0]);
        assert_eq!(loaded[2].cycles, 789);

        let keys = store.completed_keys().unwrap();
        assert!(keys.contains("aaaa000011112222"));
        assert!(keys.contains("cccc000011112222"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_lines_are_skipped_and_do_not_swallow_appends() {
        let path = temp_path("torn");
        let store = ResultStore::open(&path);
        store.append(&[record("aaaa000011112222", 1)]).unwrap();
        // Simulate a crash mid-write.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"key\":\"trunc").unwrap();
        }
        assert_eq!(store.load().unwrap().len(), 1);
        // An append after the torn line must start on a fresh line, so the
        // new record is recognised as completed on the next load.
        store.append(&[record("bbbb000011112222", 2)]).unwrap();
        let keys = store.completed_keys().unwrap();
        assert!(keys.contains("aaaa000011112222"));
        assert!(keys.contains("bbbb000011112222"));
        let _ = std::fs::remove_file(&path);
    }
}
