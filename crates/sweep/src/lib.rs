//! # vmv-sweep — parallel design-space exploration
//!
//! The paper evaluates ten hand-picked configurations (Table 2).  This
//! crate turns the reproduction into an exploration engine:
//!
//! * [`SweepSpec`] declares parameter **axes** over
//!   [`vmv_machine::MachineConfig`] (issue width, vector units, lanes, port
//!   widths, cache geometry, latencies, chaining, memory model) plus
//!   constraint predicates, and expands the cartesian product into named,
//!   deduplicated design points — structural axes go through the Table 2
//!   scaling rules of `vmv_machine::gen`, so every point is a plausible
//!   machine;
//! * [`SpecFile`] is the **declarative** form of the same thing: axes
//!   ([`AxisSpec`]) and constraints ([`ConstraintSpec`]) as serializable
//!   values, parsed from (and canonically re-emitted to) JSON, content-
//!   hashed ([`SpecFile::fingerprint`]) and lowered onto the closure
//!   machinery — an experiment is a checked-in `.json` file, and every
//!   spec-driven result store opens with a [`StoreHeader`] line naming the
//!   spec that produced it;
//! * [`run_sweep`] executes `points × benchmarks` on a work-stealing thread
//!   pool, with a [`CompileCache`] keyed by `(benchmark, ISA variant,
//!   schedule-relevant machine fields)` so each program is **scheduled once**
//!   and re-simulated across every memory variation;
//! * [`ResultStore`] streams each run as a JSON Line with a stable
//!   content-derived [`run_key`], so re-invocations **skip completed runs**
//!   and extend the same file; shard files from distributed sweeps union by
//!   key (`merge_from`), and `compact` drops superseded duplicates and
//!   rewrites the store sorted by key;
//! * [`pareto_report`] (cycles vs. an abstract hardware-cost model) and
//!   [`sensitivity`] (per-axis performance swing) summarise the result set.
//!
//! ```no_run
//! use vmv_sweep::{Axis, ExecOptions, ResultStore, SweepSpec};
//!
//! let expansion = SweepSpec::new()
//!     .axis(Axis::issue_width(&[2, 4]))
//!     .axis(Axis::vector_lanes(&[2, 4, 8]))
//!     .axis(Axis::mem_latency(&[100, 500]))
//!     .constraint("lanes fit the port", |m, _| m.vector_lanes >= m.l2_port_elems / 2)
//!     .expand();
//! let store = ResultStore::open("sweep_results.jsonl");
//! let report =
//!     vmv_sweep::run_sweep(&expansion.points, &ExecOptions::default(), Some(&store)).unwrap();
//! println!("{} runs, {} schedules", report.records.len(), report.cache.misses);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod check;
pub mod executor;
pub mod fingerprint;
pub mod pareto;
pub mod profiles;
pub mod sensitivity;
pub mod spec;
pub mod specfile;
pub mod store;

pub use cache::{CacheCounters, CompileCache};
pub use check::{check_spec, lint, SpecCheck};
pub use executor::{run_sweep, ExecOptions, SweepReport};
pub use fingerprint::{fnv1a64, full_fingerprint, schedule_fingerprint};
// The hand-rolled JSON module moved down to `vmv-obs` (telemetry snapshots
// need it below the sweep layer); re-export it so every existing
// `vmv_sweep::json::...` path keeps working unchanged.
pub use pareto::{frontier_indices, hardware_cost, pareto_report, render_pareto, ParetoEntry};
pub use profiles::{
    default_dir as default_profile_dir, load_all as load_all_profiles, load_profile, parse_profile,
    profile_json, write_profile, DocBlock, DocBundle, DocEvent, DocOp, DocRegion, ProfileDoc,
    ProfileMeta, PROFILE_SCHEMA,
};
pub use sensitivity::{render_sensitivity, sensitivity, AxisSensitivity};
pub use spec::{
    parse_shard, shard_points, Axis, AxisValue, Draft, Expansion, SweepPoint, SweepSpec,
};
pub use specfile::{AxisSpec, ConstraintSpec, LoweredSpec, SpecDefaults, SpecError, SpecFile};
pub use store::{
    classify_store_line, matched_records, point_key_index, run_key, CompactStats, MergeStats,
    ResultStore, RunRecord, StoreHeader, StoreLine,
};
pub use vmv_obs::json;
pub use vmv_obs::json::{Json, JsonError};
