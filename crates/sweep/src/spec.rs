//! Declarative sweep specifications: parameter axes over [`MachineConfig`]
//! (and the memory model), constraint predicates, and expansion of the
//! cartesian product into named, deduplicated design points.
//!
//! An axis mutates a [`Draft`] — the structural machine parameters
//! ([`GenParams`]), the memory-hierarchy parameters, the latency table and
//! the memory model.  Structural axes (ISA, issue width, vector units,
//! lanes, port width) feed the Table 2 scaling rules of
//! [`vmv_machine::gen`], so dependent resources (register files, cache
//! ports, functional units) stay consistent at every point — the sweep
//! explores *plausible* machines, not arbitrary field combinations.

use std::collections::HashSet;
use std::sync::Arc;

use vmv_machine::{gen, GenParams, IsaSupport, LatencyTable, MachineConfig, MemoryParams};
use vmv_mem::MemoryModel;

use crate::fingerprint::full_fingerprint;

/// The mutable state an axis value applies itself to.
#[derive(Debug, Clone, Copy)]
pub struct Draft {
    pub gen: GenParams,
    pub memory: MemoryParams,
    pub latencies: LatencyTable,
    pub model: MemoryModel,
}

impl Default for Draft {
    fn default() -> Self {
        Draft {
            gen: GenParams::default(),
            memory: MemoryParams::default(),
            latencies: LatencyTable::default(),
            model: MemoryModel::Realistic,
        }
    }
}

/// The mutation an axis value applies to a [`Draft`].
pub type Apply = Arc<dyn Fn(&mut Draft) + Send + Sync>;
type Predicate = Arc<dyn Fn(&MachineConfig, MemoryModel) -> bool + Send + Sync>;

/// One value of an axis: a short label (used in point names and sensitivity
/// reports) plus the mutation it applies.
#[derive(Clone)]
pub struct AxisValue {
    pub label: String,
    apply: Apply,
}

/// A named sweep axis.
#[derive(Clone)]
pub struct Axis {
    pub name: String,
    pub values: Vec<AxisValue>,
}

impl Axis {
    /// A custom axis from `(label, mutation)` pairs.
    pub fn custom(name: &str, values: Vec<(String, Apply)>) -> Axis {
        Axis {
            name: name.to_string(),
            values: values
                .into_iter()
                .map(|(label, apply)| AxisValue { label, apply })
                .collect(),
        }
    }

    fn from_fn<T: Copy + Send + Sync + 'static>(
        name: &str,
        values: &[T],
        label: impl Fn(T) -> String,
        apply: impl Fn(T, &mut Draft) + Send + Sync + Copy + 'static,
    ) -> Axis {
        Axis {
            name: name.to_string(),
            values: values
                .iter()
                .map(|&v| AxisValue {
                    label: label(v),
                    apply: Arc::new(move |d: &mut Draft| apply(v, d)),
                })
                .collect(),
        }
    }

    /// ISA family (`vliw`, `usimd`, `vector`).
    pub fn isa(values: &[IsaSupport]) -> Axis {
        Axis::from_fn(
            "isa",
            values,
            |v| {
                match v {
                    IsaSupport::Vliw => "vliw",
                    IsaSupport::Usimd => "usimd",
                    IsaSupport::Vector => "vector",
                }
                .to_string()
            },
            |v, d| d.gen.isa = v,
        )
    }

    /// Issue width (power of two, 2–16).
    pub fn issue_width(values: &[usize]) -> Axis {
        Axis::from_fn(
            "issue_width",
            values,
            |v| format!("{v}w"),
            |v, d| d.gen.issue_width = v,
        )
    }

    /// Number of vector functional units.
    pub fn vector_units(values: &[usize]) -> Axis {
        Axis::from_fn(
            "vector_units",
            values,
            |v| format!("vu{v}"),
            |v, d| d.gen.vector_units = v,
        )
    }

    /// Parallel lanes per vector unit.
    pub fn vector_lanes(values: &[u32]) -> Axis {
        Axis::from_fn(
            "vector_lanes",
            values,
            |v| format!("ln{v}"),
            |v, d| d.gen.vector_lanes = v,
        )
    }

    /// Width of the L2 vector-cache port in 64-bit elements.
    pub fn l2_port_elems(values: &[u32]) -> Axis {
        Axis::from_fn(
            "l2_port_elems",
            values,
            |v| format!("pe{v}"),
            |v, d| d.gen.l2_port_elems = v,
        )
    }

    /// L1 data-cache size in bytes.
    pub fn l1_size(values: &[usize]) -> Axis {
        Axis::from_fn(
            "l1_size",
            values,
            |v| format!("l1:{}K", v / 1024),
            |v, d| d.memory.l1_size = v,
        )
    }

    /// L2 vector-cache size in bytes.
    pub fn l2_size(values: &[usize]) -> Axis {
        Axis::from_fn(
            "l2_size",
            values,
            |v| format!("l2:{}K", v / 1024),
            |v, d| d.memory.l2_size = v,
        )
    }

    /// L1 data-cache associativity (ways).
    pub fn l1_assoc(values: &[usize]) -> Axis {
        Axis::from_fn(
            "l1_assoc",
            values,
            |v| format!("l1a{v}"),
            |v, d| d.memory.l1_assoc = v,
        )
    }

    /// L2 vector-cache associativity (ways).
    pub fn l2_assoc(values: &[usize]) -> Axis {
        Axis::from_fn(
            "l2_assoc",
            values,
            |v| format!("l2a{v}"),
            |v, d| d.memory.l2_assoc = v,
        )
    }

    /// L1 line size in bytes.
    pub fn l1_line(values: &[usize]) -> Axis {
        Axis::from_fn(
            "l1_line",
            values,
            |v| format!("l1ln{v}"),
            |v, d| d.memory.l1_line = v,
        )
    }

    /// L2 vector-cache line size in bytes.
    pub fn l2_line(values: &[usize]) -> Axis {
        Axis::from_fn(
            "l2_line",
            values,
            |v| format!("l2ln{v}"),
            |v, d| d.memory.l2_line = v,
        )
    }

    /// Number of interleaved banks in the L2 vector cache.
    pub fn l2_banks(values: &[usize]) -> Axis {
        Axis::from_fn(
            "l2_banks",
            values,
            |v| format!("bk{v}"),
            |v, d| d.memory.l2_banks = v,
        )
    }

    /// L2 hit latency in cycles (kept in lock-step with the scheduler's
    /// assumed vector-memory latency, as in the paper's Fig. 4 example).
    pub fn l2_latency(values: &[u32]) -> Axis {
        Axis::from_fn(
            "l2_latency",
            values,
            |v| format!("l2lat{v}"),
            |v, d| {
                d.memory.l2_latency = v;
                d.latencies.vec_mem = v;
            },
        )
    }

    /// Main-memory latency in cycles.
    pub fn mem_latency(values: &[u32]) -> Axis {
        Axis::from_fn(
            "mem_latency",
            values,
            |v| format!("dram{v}"),
            |v, d| d.memory.mem_latency = v,
        )
    }

    /// Vector chaining on/off (the §3.3 ablation; overrides the ISA-family
    /// default via [`GenParams::chaining`]).
    pub fn chaining(values: &[bool]) -> Axis {
        Axis::from_fn(
            "chaining",
            values,
            |v| if v { "chain" } else { "nochain" }.to_string(),
            |v, d| d.gen.chaining = Some(v),
        )
    }

    /// Memory model (perfect / realistic).
    pub fn memory_model(values: &[MemoryModel]) -> Axis {
        Axis::from_fn(
            "memory_model",
            values,
            |v| {
                match v {
                    MemoryModel::Perfect => "perfect",
                    MemoryModel::Realistic => "realistic",
                }
                .to_string()
            },
            |v, d| d.model = v,
        )
    }
}

/// One expanded design point: a concrete machine, a memory model, and the
/// axis labels it was built from.
#[derive(Clone)]
pub struct SweepPoint {
    /// Stable human-readable name ("vector/4w/vu2/ln4/…").
    pub name: String,
    pub machine: MachineConfig,
    pub model: MemoryModel,
    /// `(axis name, value label)` in axis order, for sensitivity analysis.
    pub labels: Vec<(String, String)>,
}

/// Summary of an expansion: the surviving points plus what was filtered.
pub struct Expansion {
    pub points: Vec<SweepPoint>,
    /// Raw cartesian-product size before constraints and deduplication.
    pub raw: usize,
    /// Points rejected by a constraint predicate.
    pub rejected: usize,
    /// Points dropped because an identical (machine, model) already existed.
    pub duplicates: usize,
}

/// A declarative sweep specification.
#[derive(Clone, Default)]
pub struct SweepSpec {
    axes: Vec<Axis>,
    constraints: Vec<(String, Predicate)>,
}

impl SweepSpec {
    /// A sweep starting from the paper's 2-issue Vector1 draft; every axis
    /// not declared keeps its default value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an axis.  Axes apply in declaration order; later axes win when
    /// two touch the same field.
    pub fn axis(mut self, axis: Axis) -> Self {
        assert!(
            !axis.values.is_empty(),
            "axis '{}' has no values",
            axis.name
        );
        assert!(
            !self.axes.iter().any(|a| a.name == axis.name),
            "duplicate axis '{}'",
            axis.name
        );
        self.axes.push(axis);
        self
    }

    /// Add a named constraint; points where the predicate returns `false`
    /// are dropped during expansion.
    pub fn constraint(
        mut self,
        name: &str,
        pred: impl Fn(&MachineConfig, MemoryModel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.constraints.push((name.to_string(), Arc::new(pred)));
        self
    }

    /// Number of points the cartesian product would produce before
    /// constraints and deduplication.
    pub fn raw_size(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expand the cartesian product into named, deduplicated, constraint-
    /// filtered design points.  Expansion is deterministic: points appear in
    /// odometer order over the axes as declared.
    pub fn expand(&self) -> Expansion {
        let raw = self.raw_size();
        let mut points = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut rejected = 0usize;
        let mut duplicates = 0usize;

        // Odometer over axis value indices (last axis spins fastest).
        let mut idx = vec![0usize; self.axes.len()];
        'outer: loop {
            let mut draft = Draft::default();
            let mut labels = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(&idx) {
                let value = &axis.values[i];
                (value.apply)(&mut draft);
                labels.push((axis.name.clone(), value.label.clone()));
            }

            // Memory axes feed the generator so geometry travels with the
            // structural parameters; latency overrides apply on top.
            draft.gen.memory = draft.memory;
            let mut machine = gen::generate(&draft.gen);
            machine.latencies = draft.latencies;
            let name = if labels.is_empty() {
                machine.name.clone()
            } else {
                labels
                    .iter()
                    .map(|(_, l)| l.as_str())
                    .collect::<Vec<_>>()
                    .join("/")
            };
            machine.name = name.clone();

            if self
                .constraints
                .iter()
                .all(|(_, pred)| pred(&machine, draft.model))
            {
                let fingerprint = format!("{}|{:?}", full_fingerprint(&machine), draft.model);
                if seen.insert(fingerprint) {
                    points.push(SweepPoint {
                        name,
                        machine,
                        model: draft.model,
                        labels,
                    });
                } else {
                    duplicates += 1;
                }
            } else {
                rejected += 1;
            }

            // Advance the odometer.
            for pos in (0..idx.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < self.axes[pos].values.len() {
                    continue 'outer;
                }
                idx[pos] = 0;
            }
            break;
        }
        Expansion {
            points,
            raw,
            rejected,
            duplicates,
        }
    }
}

/// Deterministic shard assignment for distributed sweeps: keep every design
/// point whose index in the deduplicated expansion is congruent to `shard`
/// modulo `count`.  Expansion order is deterministic (odometer order), so
/// separate machines running the same spec with `--shard 0/4 … 3/4` produce
/// disjoint, collectively exhaustive point sets whose result files compose
/// with `merge_from` / `sweep --merge`.
pub fn shard_points(points: &[SweepPoint], shard: usize, count: usize) -> Vec<SweepPoint> {
    assert!(count >= 1, "shard count must be at least 1");
    assert!(shard < count, "shard index {shard} out of range 0..{count}");
    points
        .iter()
        .enumerate()
        .filter(|(i, _)| i % count == shard)
        .map(|(_, p)| p.clone())
        .collect()
}

/// Parse an `I/N` shard assignment with `0 <= I < N` — the one parser behind
/// the CLI `--shard` flag and the spec-file `defaults.shard` field.
pub fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let err = || format!("expected a shard assignment I/N with 0 <= I < N, got '{s}'");
    let (i, n) = s.split_once('/').ok_or_else(err)?;
    let i: usize = i.trim().parse().map_err(|_| err())?;
    let n: usize = n.trim().parse().map_err(|_| err())?;
    if n >= 1 && i < n {
        Ok((i, n))
    } else {
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_spec() -> SweepSpec {
        SweepSpec::new()
            .axis(Axis::issue_width(&[2, 4]))
            .axis(Axis::vector_units(&[1, 2]))
            .axis(Axis::vector_lanes(&[2, 4, 8]))
    }

    #[test]
    fn expansion_is_the_cartesian_product() {
        let e = lane_spec().expand();
        assert_eq!(e.raw, 2 * 2 * 3);
        assert_eq!(e.points.len(), 12);
        assert_eq!(e.rejected, 0);
        assert_eq!(e.duplicates, 0);
        // Odometer order: last axis fastest.
        assert_eq!(e.points[0].name, "2w/vu1/ln2");
        assert_eq!(e.points[1].name, "2w/vu1/ln4");
        assert_eq!(e.points[11].name, "4w/vu2/ln8");
        // Structural scaling applied: the 4-issue points get Table 2's
        // larger register files.
        assert_eq!(e.points[0].machine.regs.vec, 20);
        assert_eq!(e.points[11].machine.regs.vec, 32);
    }

    #[test]
    fn names_are_unique_and_labels_match_axes() {
        let e = lane_spec().expand();
        let names: HashSet<_> = e.points.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), e.points.len());
        for p in &e.points {
            assert_eq!(p.labels.len(), 3);
            assert_eq!(p.labels[0].0, "issue_width");
            assert_eq!(p.labels[2].0, "vector_lanes");
        }
    }

    #[test]
    fn constraints_filter_points() {
        let e = lane_spec()
            .constraint("at most 4 total lane-units", |m, _| {
                m.vector_units as u32 * m.vector_lanes <= 4
            })
            .expand();
        // Surviving combos: vu1×{2,4}, vu2×{2} per width.
        assert_eq!(e.points.len(), 2 * 3);
        assert_eq!(e.rejected, 12 - 6);
        assert!(e
            .points
            .iter()
            .all(|p| p.machine.vector_units as u32 * p.machine.vector_lanes <= 4));
    }

    #[test]
    fn identical_configurations_are_deduplicated() {
        // Two axes that produce the same machine for every combination:
        // lanes {4, 4} via different labels.
        let spec = SweepSpec::new().axis(Axis::custom(
            "lanes",
            vec![
                (
                    "a".to_string(),
                    Arc::new(|d: &mut Draft| d.gen.vector_lanes = 4) as _,
                ),
                (
                    "b".to_string(),
                    Arc::new(|d: &mut Draft| d.gen.vector_lanes = 4) as _,
                ),
            ],
        ));
        let e = spec.expand();
        assert_eq!(e.raw, 2);
        assert_eq!(e.points.len(), 1);
        assert_eq!(e.duplicates, 1);
    }

    #[test]
    fn memory_axes_do_not_change_the_schedule_relevant_fields() {
        let e = SweepSpec::new()
            .axis(Axis::l2_size(&[128 * 1024, 256 * 1024]))
            .axis(Axis::mem_latency(&[100, 500]))
            .expand();
        assert_eq!(e.points.len(), 4);
        let first = crate::fingerprint::schedule_fingerprint(&e.points[0].machine);
        for p in &e.points {
            assert_eq!(crate::fingerprint::schedule_fingerprint(&p.machine), first);
        }
    }

    #[test]
    fn cache_geometry_axes_vary_memory_without_touching_the_schedule() {
        let e = SweepSpec::new()
            .axis(Axis::l1_assoc(&[2, 4]))
            .axis(Axis::l2_assoc(&[4, 8]))
            .axis(Axis::l1_line(&[32, 64]))
            .axis(Axis::l2_line(&[64, 128]))
            .axis(Axis::l2_banks(&[2, 4]))
            .expand();
        assert_eq!(e.points.len(), 32);
        assert_eq!(e.duplicates, 0, "every geometry must be a distinct point");
        let schedule = crate::fingerprint::schedule_fingerprint(&e.points[0].machine);
        let mut geometries = HashSet::new();
        for p in &e.points {
            assert_eq!(
                crate::fingerprint::schedule_fingerprint(&p.machine),
                schedule,
                "geometry axes must never force a reschedule"
            );
            let m = &p.machine.memory;
            geometries.insert((m.l1_assoc, m.l2_assoc, m.l1_line, m.l2_line, m.l2_banks));
        }
        assert_eq!(geometries.len(), 32);
        assert_eq!(e.points[0].labels[0].0, "l1_assoc");
        assert_eq!(e.points[0].labels[4].0, "l2_banks");
    }

    #[test]
    fn geometry_axes_travel_through_the_generator() {
        // The memory parameters reach gen::generate itself, so a direct
        // GenParams user sees the same machine as the sweep expansion.
        let e = SweepSpec::new()
            .axis(Axis::l2_banks(&[8]))
            .axis(Axis::l1_line(&[64]))
            .expand();
        let from_spec = &e.points[0].machine;
        let mut params = vmv_machine::GenParams::default();
        params.memory.l2_banks = 8;
        params.memory.l1_line = 64;
        let direct = gen::generate(&params);
        assert_eq!(direct.memory, from_spec.memory);
        assert_eq!(direct.memory.l2_banks, 8);
    }

    #[test]
    fn chaining_axis_toggles_the_schedule_relevant_flag() {
        let e = SweepSpec::new()
            .axis(Axis::chaining(&[true, false]))
            .expand();
        assert_eq!(e.points.len(), 2);
        assert!(e.points[0].machine.chaining);
        assert!(!e.points[1].machine.chaining);
        assert_eq!(e.points[0].name, "chain");
        assert_eq!(e.points[1].name, "nochain");
        // Chaining changes what the scheduler may overlap, so the two points
        // must not share a compile-cache entry.
        assert_ne!(
            crate::fingerprint::schedule_fingerprint(&e.points[0].machine),
            crate::fingerprint::schedule_fingerprint(&e.points[1].machine)
        );
    }

    #[test]
    fn shards_partition_the_expansion() {
        let points = lane_spec().expand().points;
        let n = 3;
        let mut union: Vec<String> = Vec::new();
        let mut sizes = Vec::new();
        for shard in 0..n {
            let part = shard_points(&points, shard, n);
            sizes.push(part.len());
            union.extend(part.iter().map(|p| p.name.clone()));
        }
        // Disjoint and collectively exhaustive, in deterministic order.
        let all: Vec<String> = points.iter().map(|p| p.name.clone()).collect();
        let mut sorted_union = union.clone();
        sorted_union.sort();
        let mut sorted_all = all.clone();
        sorted_all.sort();
        assert_eq!(sorted_union, sorted_all);
        assert_eq!(union.len(), points.len());
        // Balanced to within one point.
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Deterministic: same call, same result.
        assert_eq!(
            shard_points(&points, 1, n)
                .iter()
                .map(|p| p.name.clone())
                .collect::<Vec<_>>(),
            shard_points(&points, 1, n)
                .iter()
                .map(|p| p.name.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic]
    fn shard_index_out_of_range_panics() {
        let points = lane_spec().expand().points;
        shard_points(&points, 2, 2);
    }

    #[test]
    fn empty_spec_expands_to_the_default_draft() {
        let e = SweepSpec::new().expand();
        assert_eq!(e.points.len(), 1);
        assert_eq!(e.points[0].model, MemoryModel::Realistic);
        assert_eq!(e.points[0].machine.vector_units, 1);
    }
}
