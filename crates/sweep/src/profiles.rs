//! Persisted cycle-attribution profiles: the `vmv-profile/1` schema.
//!
//! `sweep --profile` writes one canonical-JSON document per run key into a
//! profile directory next to the result store (by default
//! `<store>.profiles/<key>.json`).  Each document carries the full
//! [`vmv_sim::Profile`] of that run — per-cause cycle totals, per-region /
//! per-block breakdowns, the worst bundles and blamed producer ops, and
//! the capped bundle-issue timeline — plus enough run metadata to render a
//! report without re-opening the store.
//!
//! The document is written with [`Json::render`] (single line, insertion-
//! ordered keys), so byte-identical inputs produce byte-identical files
//! and the golden tests can pin them.  Parsing is name-keyed and ignores
//! unknown fields, the same backward-compatibility rule as `vmv-metrics/1`.

use std::io;
use std::path::{Path, PathBuf};

use vmv_obs::json::Json;
use vmv_sim::Profile;
// Re-exported so profile consumers (vmv-report) get the cause taxonomy and
// lane names from the same place they get the documents.
pub use vmv_sim::{Cause, LANE_NAMES, N_CAUSES, N_STALLS, STALL_BASE};

/// Schema tag of a persisted profile document.
pub const PROFILE_SCHEMA: &str = "vmv-profile/1";

/// Run metadata stamped into a profile document (mirrors the store row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileMeta {
    pub key: String,
    pub config: String,
    pub benchmark: String,
    pub variant: String,
    pub model: String,
}

/// Default profile directory for a store: `<store path>.profiles`.
pub fn default_dir(store_path: &Path) -> PathBuf {
    let mut os = store_path.as_os_str().to_os_string();
    os.push(".profiles");
    PathBuf::from(os)
}

/// File a run key's profile lives in.  Keys are 16 hex digits
/// ([`crate::store::run_key`]), so the name needs no escaping.
pub fn path_for(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json"))
}

fn causes_obj(causes: &[u64; N_CAUSES]) -> Json {
    Json::Obj(
        Cause::ALL
            .iter()
            .map(|c| (c.name().to_string(), Json::u64(causes[*c as usize])))
            .collect(),
    )
}

fn stalls_obj(stalls: &[u64; N_STALLS]) -> Json {
    Json::Obj(
        Cause::ALL[STALL_BASE..]
            .iter()
            .zip(stalls)
            .map(|(c, &v)| (c.name().to_string(), Json::u64(v)))
            .collect(),
    )
}

/// The canonical JSON document of one run's profile.
pub fn profile_json(meta: &ProfileMeta, profile: &Profile) -> Json {
    let regions = profile
        .regions
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("id".into(), Json::u64(r.id as u64)),
                ("name".into(), Json::str(&r.name)),
                ("causes".into(), causes_obj(&r.causes)),
            ])
        })
        .collect();
    // Blocks that never ran and bundles that never issued attribute zero
    // cycles by construction; dropping them keeps documents proportional
    // to the *executed* program without breaking the sum-exactly checks.
    let blocks = profile
        .blocks
        .iter()
        .filter(|b| b.visits > 0)
        .map(|b| {
            Json::Obj(vec![
                ("block".into(), Json::u64(b.block as u64)),
                ("region".into(), Json::u64(b.region as u64)),
                ("visits".into(), Json::u64(b.visits)),
                ("causes".into(), causes_obj(&b.causes)),
            ])
        })
        .collect();
    let bundles = profile
        .bundles
        .iter()
        .filter(|b| b.issues > 0)
        .map(|b| {
            Json::Obj(vec![
                ("bundle".into(), Json::u64(b.bundle as u64)),
                ("block".into(), Json::u64(b.block as u64)),
                ("lane".into(), Json::u64(b.lane as u64)),
                ("class".into(), Json::str(b.class.name())),
                ("issues".into(), Json::u64(b.issues)),
                ("stalls".into(), stalls_obj(&b.stalls)),
            ])
        })
        .collect();
    let ops = profile
        .ops
        .iter()
        .filter(|o| o.stalls.iter().any(|&v| v > 0))
        .map(|o| {
            Json::Obj(vec![
                ("op".into(), Json::u64(o.op as u64)),
                ("bundle".into(), Json::u64(o.bundle as u64)),
                ("opcode".into(), Json::str(&o.opcode)),
                ("stalls".into(), stalls_obj(&o.stalls)),
            ])
        })
        .collect();
    let timeline = profile
        .timeline
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("bundle".into(), Json::u64(e.bundle as u64)),
                ("base".into(), Json::u64(e.base)),
                ("stall".into(), Json::u64(e.stall)),
                (
                    "cause".into(),
                    Json::str(Cause::ALL[e.cause as usize].name()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str(PROFILE_SCHEMA)),
        ("key".into(), Json::str(&meta.key)),
        ("config".into(), Json::str(&meta.config)),
        ("benchmark".into(), Json::str(&meta.benchmark)),
        ("variant".into(), Json::str(&meta.variant)),
        ("model".into(), Json::str(&meta.model)),
        ("cycles".into(), Json::u64(profile.total_cycles())),
        ("stall_cycles".into(), Json::u64(profile.stall_cycles())),
        ("causes".into(), causes_obj(&profile.causes)),
        ("regions".into(), Json::Arr(regions)),
        ("blocks".into(), Json::Arr(blocks)),
        ("bundles".into(), Json::Arr(bundles)),
        ("ops".into(), Json::Arr(ops)),
        ("timeline".into(), Json::Arr(timeline)),
        ("events_seen".into(), Json::u64(profile.events_seen)),
    ])
}

/// Write one profile into `dir` (created on demand), returning the path.
pub fn write_profile(dir: &Path, meta: &ProfileMeta, profile: &Profile) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = path_for(dir, &meta.key);
    let mut text = profile_json(meta, profile).render();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// A parsed `vmv-profile/1` document (the report-side view).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDoc {
    pub meta: ProfileMeta,
    pub cycles: u64,
    pub stall_cycles: u64,
    pub causes: [u64; N_CAUSES],
    pub regions: Vec<DocRegion>,
    pub blocks: Vec<DocBlock>,
    pub bundles: Vec<DocBundle>,
    pub ops: Vec<DocOp>,
    pub timeline: Vec<DocEvent>,
    pub events_seen: u64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct DocRegion {
    pub id: u32,
    pub name: String,
    pub causes: [u64; N_CAUSES],
}

#[derive(Debug, Clone, PartialEq)]
pub struct DocBlock {
    pub block: u32,
    pub region: u32,
    pub visits: u64,
    pub causes: [u64; N_CAUSES],
}

#[derive(Debug, Clone, PartialEq)]
pub struct DocBundle {
    pub bundle: u32,
    pub block: u32,
    pub lane: u8,
    pub class: String,
    pub issues: u64,
    pub stalls: [u64; N_STALLS],
}

#[derive(Debug, Clone, PartialEq)]
pub struct DocOp {
    pub op: u32,
    pub bundle: u32,
    pub opcode: String,
    pub stalls: [u64; N_STALLS],
}

#[derive(Debug, Clone, PartialEq)]
pub struct DocEvent {
    pub bundle: u32,
    pub base: u64,
    pub stall: u64,
    pub cause: String,
}

impl ProfileDoc {
    /// Total stall cycles of one parsed stall object, across all causes.
    pub fn stall_total(stalls: &[u64; N_STALLS]) -> u64 {
        stalls.iter().sum()
    }
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn parse_causes(v: &Json, key: &str) -> Result<[u64; N_CAUSES], String> {
    let obj = v.get(key).ok_or_else(|| format!("missing {key:?}"))?;
    let mut out = [0u64; N_CAUSES];
    for c in Cause::ALL {
        // Name-keyed and defaulting to 0: a newer writer may add causes
        // this reader ignores, and an older file may lack newer ones.
        out[c as usize] = obj.get(c.name()).and_then(Json::as_u64).unwrap_or(0);
    }
    Ok(out)
}

fn parse_stalls(v: &Json, key: &str) -> Result<[u64; N_STALLS], String> {
    let obj = v.get(key).ok_or_else(|| format!("missing {key:?}"))?;
    let mut out = [0u64; N_STALLS];
    for (i, c) in Cause::ALL[STALL_BASE..].iter().enumerate() {
        out[i] = obj.get(c.name()).and_then(Json::as_u64).unwrap_or(0);
    }
    Ok(out)
}

fn arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    match v.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(format!("missing array field {key:?}")),
    }
}

/// Parse one `vmv-profile/1` document.
pub fn parse_profile(text: &str) -> Result<ProfileDoc, String> {
    let v = Json::parse(text).map_err(|e| format!("profile JSON: {e:?}"))?;
    let schema = get_str(&v, "schema")?;
    if schema != PROFILE_SCHEMA {
        return Err(format!("unsupported profile schema {schema:?}"));
    }
    let meta = ProfileMeta {
        key: get_str(&v, "key")?,
        config: get_str(&v, "config")?,
        benchmark: get_str(&v, "benchmark")?,
        variant: get_str(&v, "variant")?,
        model: get_str(&v, "model")?,
    };
    let mut regions = Vec::new();
    for r in arr(&v, "regions")? {
        regions.push(DocRegion {
            id: get_u64(r, "id")? as u32,
            name: get_str(r, "name")?,
            causes: parse_causes(r, "causes")?,
        });
    }
    let mut blocks = Vec::new();
    for b in arr(&v, "blocks")? {
        blocks.push(DocBlock {
            block: get_u64(b, "block")? as u32,
            region: get_u64(b, "region")? as u32,
            visits: get_u64(b, "visits")?,
            causes: parse_causes(b, "causes")?,
        });
    }
    let mut bundles = Vec::new();
    for b in arr(&v, "bundles")? {
        bundles.push(DocBundle {
            bundle: get_u64(b, "bundle")? as u32,
            block: get_u64(b, "block")? as u32,
            lane: get_u64(b, "lane")? as u8,
            class: get_str(b, "class")?,
            issues: get_u64(b, "issues")?,
            stalls: parse_stalls(b, "stalls")?,
        });
    }
    let mut ops = Vec::new();
    for o in arr(&v, "ops")? {
        ops.push(DocOp {
            op: get_u64(o, "op")? as u32,
            bundle: get_u64(o, "bundle")? as u32,
            opcode: get_str(o, "opcode")?,
            stalls: parse_stalls(o, "stalls")?,
        });
    }
    let mut timeline = Vec::new();
    for e in arr(&v, "timeline")? {
        timeline.push(DocEvent {
            bundle: get_u64(e, "bundle")? as u32,
            base: get_u64(e, "base")?,
            stall: get_u64(e, "stall")?,
            cause: get_str(e, "cause")?,
        });
    }
    Ok(ProfileDoc {
        meta,
        cycles: get_u64(&v, "cycles")?,
        stall_cycles: get_u64(&v, "stall_cycles")?,
        causes: parse_causes(&v, "causes")?,
        regions,
        blocks,
        bundles,
        ops,
        timeline,
        events_seen: get_u64(&v, "events_seen")?,
    })
}

/// Load and parse the profile of `key` from `dir`.
pub fn load_profile(dir: &Path, key: &str) -> Result<ProfileDoc, String> {
    let path = path_for(dir, key);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_profile(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load every profile in `dir`, sorted by key.
pub fn load_all(dir: &Path) -> Result<Vec<ProfileDoc>, String> {
    let mut docs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        docs.push(parse_profile(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    docs.sort_by(|a, b| a.meta.key.cmp(&b.meta.key));
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmv_kernels::Benchmark;
    use vmv_machine::presets;
    use vmv_mem::MemoryModel;

    fn demo_profile() -> (ProfileMeta, Profile) {
        let machine = presets::vector2(2);
        let prepared = vmv_core::prepare(Benchmark::GsmDec, &machine).unwrap();
        let (outcome, profile) =
            vmv_core::simulate_profiled(&prepared, &machine, MemoryModel::Realistic).unwrap();
        profile.check_against(&outcome.stats).unwrap();
        let meta = ProfileMeta {
            key: crate::store::run_key(
                Benchmark::GsmDec,
                vmv_core::variant_for(&machine),
                &machine,
                MemoryModel::Realistic,
            ),
            config: machine.name.clone(),
            benchmark: Benchmark::GsmDec.name().to_string(),
            variant: outcome.variant.name().to_string(),
            model: format!("{:?}", MemoryModel::Realistic),
        };
        (meta, profile)
    }

    #[test]
    fn profile_document_round_trips() {
        let (meta, profile) = demo_profile();
        let text = profile_json(&meta, &profile).render();
        let doc = parse_profile(&text).unwrap();
        assert_eq!(doc.meta, meta);
        assert_eq!(doc.cycles, profile.total_cycles());
        assert_eq!(doc.stall_cycles, profile.stall_cycles());
        assert_eq!(doc.causes, profile.causes);
        assert_eq!(doc.timeline.len(), profile.timeline.len());
        assert_eq!(doc.events_seen, profile.events_seen);
        // The document's cause totals still satisfy the sum-exactly
        // contract after the round trip.
        assert_eq!(doc.causes.iter().sum::<u64>(), doc.cycles);
        assert_eq!(
            doc.causes[STALL_BASE..].iter().sum::<u64>(),
            doc.stall_cycles
        );
        // Rendering is canonical: a second render is byte-identical.
        assert_eq!(text, profile_json(&meta, &profile).render());
    }

    #[test]
    fn unknown_fields_and_causes_are_ignored() {
        let (meta, profile) = demo_profile();
        let mut text = profile_json(&meta, &profile).render();
        // Splice an unknown top-level field and an unknown cause name in:
        // a vmv-profile/1 reader must ignore both.
        text = text.replacen("{\"schema\"", "{\"future_field\":42,\"schema\"", 1);
        text = text.replacen("{\"issue\":", "{\"warp_drive\":7,\"issue\":", 1);
        let doc = parse_profile(&text).unwrap();
        assert_eq!(doc.causes, profile.causes);
    }

    #[test]
    fn default_dir_appends_profiles_suffix() {
        let dir = default_dir(Path::new("results/sweep.jsonl"));
        assert_eq!(dir, PathBuf::from("results/sweep.jsonl.profiles"));
    }
}
