//! Serializable sweep specifications: the **data** counterpart of the
//! closure-based [`SweepSpec`] builder.
//!
//! A [`SpecFile`] holds named axes ([`AxisSpec`]) and named constraints
//! ([`ConstraintSpec`]) as plain values, so an experiment is a checked-in
//! JSON file instead of a Rust binary.  Lowering ([`SpecFile::lower`])
//! produces the existing [`Axis`]/closure machinery, so expansion,
//! deduplication, sharding and the compile cache are untouched — the two
//! APIs can never diverge in semantics.
//!
//! The canonical serialization ([`SpecFile::canonical`]) is deterministic
//! (fixed key order, compact rendering), which makes the content hash
//! ([`SpecFile::fingerprint`]) well-defined: two spec files describing the
//! same experiment hash identically regardless of formatting.  The
//! fingerprint covers only the *semantic* parts (axes + constraints) — the
//! display name and the execution defaults (threads, shard, output path)
//! can change without orphaning existing result stores.
//!
//! ```text
//! {
//!   "name": "latency_tolerance",
//!   "axes": [
//!     {"axis": "chaining", "values": [true, false]},
//!     {"axis": "mem_latency", "values": [100, 300, 500]},
//!     {"axis": "benchmarks", "values": ["GSM_DEC", "GSM_ENC"]}
//!   ],
//!   "constraints": [{"constraint": "lane_budget", "max": 32}],
//!   "defaults": {"threads": 2, "out": "latency.jsonl"}
//! }
//! ```

use vmv_kernels::Benchmark;
use vmv_machine::{gen, IsaSupport};
use vmv_mem::MemoryModel;

use crate::fingerprint::fnv1a64;
use crate::json::{Json, JsonError};
use crate::pareto::hardware_cost;
use crate::spec::{parse_shard, Axis, SweepSpec};

/// One serializable sweep axis: a machine/memory knob plus the values to
/// sweep, or the benchmark subset to run at every design point.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisSpec {
    /// ISA family (`"vliw"`, `"usimd"`, `"vector"`).
    Isa(Vec<IsaSupport>),
    /// Issue width (must be one of [`gen::GEN_WIDTHS`]).
    IssueWidth(Vec<usize>),
    /// Number of vector functional units.
    VectorUnits(Vec<usize>),
    /// Parallel lanes per vector unit.
    VectorLanes(Vec<u32>),
    /// Width of the L2 vector-cache port in 64-bit elements.
    L2PortElems(Vec<u32>),
    /// L1 data-cache size in bytes.
    L1Size(Vec<usize>),
    /// L2 vector-cache size in bytes.
    L2Size(Vec<usize>),
    /// L1 associativity (ways).
    L1Assoc(Vec<usize>),
    /// L2 associativity (ways).
    L2Assoc(Vec<usize>),
    /// L1 line size in bytes.
    L1Line(Vec<usize>),
    /// L2 line size in bytes.
    L2Line(Vec<usize>),
    /// Interleaved L2 banks.
    L2Banks(Vec<usize>),
    /// L2 hit latency in cycles (kept in lock-step with the scheduler's
    /// assumed vector-memory latency).
    L2Latency(Vec<u32>),
    /// Main-memory latency in cycles.
    MemLatency(Vec<u32>),
    /// Memory model (`"perfect"`, `"realistic"`).
    MemoryModel(Vec<MemoryModel>),
    /// Vector chaining on/off (the §3.3 ablation).
    Chaining(Vec<bool>),
    /// Benchmark subset to run at every design point.  Not a cartesian
    /// dimension: it selects the jobs, not the machine.
    Benchmarks(Vec<Benchmark>),
}

/// Axis names in the order `--print-spec` documents them.
const AXIS_NAMES: &[&str] = &[
    "isa",
    "issue_width",
    "vector_units",
    "vector_lanes",
    "l2_port_elems",
    "l1_size",
    "l2_size",
    "l1_assoc",
    "l2_assoc",
    "l1_line",
    "l2_line",
    "l2_banks",
    "l2_latency",
    "mem_latency",
    "memory_model",
    "chaining",
    "benchmarks",
];

impl AxisSpec {
    /// The axis name as it appears in spec files (and in point labels).
    pub fn name(&self) -> &'static str {
        match self {
            AxisSpec::Isa(_) => "isa",
            AxisSpec::IssueWidth(_) => "issue_width",
            AxisSpec::VectorUnits(_) => "vector_units",
            AxisSpec::VectorLanes(_) => "vector_lanes",
            AxisSpec::L2PortElems(_) => "l2_port_elems",
            AxisSpec::L1Size(_) => "l1_size",
            AxisSpec::L2Size(_) => "l2_size",
            AxisSpec::L1Assoc(_) => "l1_assoc",
            AxisSpec::L2Assoc(_) => "l2_assoc",
            AxisSpec::L1Line(_) => "l1_line",
            AxisSpec::L2Line(_) => "l2_line",
            AxisSpec::L2Banks(_) => "l2_banks",
            AxisSpec::L2Latency(_) => "l2_latency",
            AxisSpec::MemLatency(_) => "mem_latency",
            AxisSpec::MemoryModel(_) => "memory_model",
            AxisSpec::Chaining(_) => "chaining",
            AxisSpec::Benchmarks(_) => "benchmarks",
        }
    }

    /// Number of values declared on this axis.
    pub fn len(&self) -> usize {
        match self {
            AxisSpec::Isa(v) => v.len(),
            AxisSpec::IssueWidth(v) => v.len(),
            AxisSpec::VectorUnits(v) => v.len(),
            AxisSpec::VectorLanes(v) => v.len(),
            AxisSpec::L2PortElems(v) => v.len(),
            AxisSpec::L1Size(v) => v.len(),
            AxisSpec::L2Size(v) => v.len(),
            AxisSpec::L1Assoc(v) => v.len(),
            AxisSpec::L2Assoc(v) => v.len(),
            AxisSpec::L1Line(v) => v.len(),
            AxisSpec::L2Line(v) => v.len(),
            AxisSpec::L2Banks(v) => v.len(),
            AxisSpec::L2Latency(v) => v.len(),
            AxisSpec::MemLatency(v) => v.len(),
            AxisSpec::MemoryModel(v) => v.len(),
            AxisSpec::Chaining(v) => v.len(),
            AxisSpec::Benchmarks(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical JSON: `{"axis": <name>, "values": [...]}`.
    pub fn to_json(&self) -> Json {
        fn nums<T: Copy + Into<f64>>(values: &[T]) -> Json {
            Json::Arr(values.iter().map(|&v| Json::num(v)).collect())
        }
        fn sizes(values: &[usize]) -> Json {
            Json::Arr(values.iter().map(|&v| Json::u64(v as u64)).collect())
        }
        let values = match self {
            AxisSpec::Isa(v) => Json::Arr(v.iter().map(|&i| Json::str(isa_name(i))).collect()),
            AxisSpec::IssueWidth(v)
            | AxisSpec::VectorUnits(v)
            | AxisSpec::L1Size(v)
            | AxisSpec::L2Size(v)
            | AxisSpec::L1Assoc(v)
            | AxisSpec::L2Assoc(v)
            | AxisSpec::L1Line(v)
            | AxisSpec::L2Line(v)
            | AxisSpec::L2Banks(v) => sizes(v),
            AxisSpec::VectorLanes(v)
            | AxisSpec::L2PortElems(v)
            | AxisSpec::L2Latency(v)
            | AxisSpec::MemLatency(v) => nums(v),
            AxisSpec::MemoryModel(v) => {
                Json::Arr(v.iter().map(|&m| Json::str(model_name(m))).collect())
            }
            AxisSpec::Chaining(v) => Json::Arr(v.iter().map(|&b| Json::Bool(b)).collect()),
            AxisSpec::Benchmarks(v) => Json::Arr(v.iter().map(|&b| Json::str(b.name())).collect()),
        };
        Json::Obj(vec![
            ("axis".into(), Json::str(self.name())),
            ("values".into(), values),
        ])
    }

    /// Parse one `{"axis": ..., "values": [...]}` object.  `context` is the
    /// position in the axes array, for error messages.
    fn from_json(v: &Json, context: usize) -> Result<AxisSpec, SpecError> {
        let obj_err = |msg: String| SpecError {
            message: format!("axes[{context}]: {msg}"),
        };
        let name = v
            .get("axis")
            .and_then(Json::as_str)
            .ok_or_else(|| obj_err("expected an object with an \"axis\" name field".into()))?;
        let range_values;
        let values: &[Json] = match v.get("values") {
            Some(Json::Arr(items)) => items,
            Some(range @ Json::Obj(_)) => {
                range_values = expand_range(name, range)?;
                &range_values
            }
            _ => {
                return Err(obj_err(format!(
                    "axis '{name}' needs a \"values\" array or a \
                     {{\"from\": .., \"to\": .., \"step\": ..}} range"
                )))
            }
        };
        let val_err = |i: usize, what: &str, got: &Json| SpecError {
            message: format!(
                "axis '{name}', value {}: expected {what}, got {}",
                i + 1,
                got.render()
            ),
        };
        fn ints<T: TryFrom<u64>>(
            values: &[Json],
            what: &str,
            err: &impl Fn(usize, &str, &Json) -> SpecError,
        ) -> Result<Vec<T>, SpecError> {
            values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    v.as_u64()
                        .filter(|&n| n > 0)
                        .and_then(|n| T::try_from(n).ok())
                        .ok_or_else(|| err(i, what, v))
                })
                .collect()
        }
        let spec = match name {
            "isa" => AxisSpec::Isa(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.as_str()
                            .and_then(isa_from_name)
                            .ok_or_else(|| val_err(i, "one of \"vliw\", \"usimd\", \"vector\"", v))
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "issue_width" => {
                let widths: Vec<usize> = ints(values, "a positive integer issue width", &val_err)?;
                if let Some(w) = widths.iter().find(|w| !gen::GEN_WIDTHS.contains(w)) {
                    return Err(SpecError {
                        message: format!(
                            "axis 'issue_width': unsupported width {w} (supported: {:?})",
                            gen::GEN_WIDTHS
                        ),
                    });
                }
                AxisSpec::IssueWidth(widths)
            }
            "vector_units" => AxisSpec::VectorUnits(ints(values, "a positive integer", &val_err)?),
            "vector_lanes" => AxisSpec::VectorLanes(ints(values, "a positive integer", &val_err)?),
            "l2_port_elems" => AxisSpec::L2PortElems(ints(values, "a positive integer", &val_err)?),
            "l1_size" => AxisSpec::L1Size(ints(values, "a size in bytes", &val_err)?),
            "l2_size" => AxisSpec::L2Size(ints(values, "a size in bytes", &val_err)?),
            "l1_assoc" => AxisSpec::L1Assoc(ints(values, "a positive way count", &val_err)?),
            "l2_assoc" => AxisSpec::L2Assoc(ints(values, "a positive way count", &val_err)?),
            "l1_line" => AxisSpec::L1Line(ints(values, "a line size in bytes", &val_err)?),
            "l2_line" => AxisSpec::L2Line(ints(values, "a line size in bytes", &val_err)?),
            "l2_banks" => AxisSpec::L2Banks(ints(values, "a positive bank count", &val_err)?),
            "l2_latency" => AxisSpec::L2Latency(ints(values, "a latency in cycles", &val_err)?),
            "mem_latency" => AxisSpec::MemLatency(ints(values, "a latency in cycles", &val_err)?),
            "memory_model" => AxisSpec::MemoryModel(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.as_str()
                            .and_then(model_from_name)
                            .ok_or_else(|| val_err(i, "\"perfect\" or \"realistic\"", v))
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "chaining" => AxisSpec::Chaining(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v.as_bool().ok_or_else(|| val_err(i, "true or false", v)))
                    .collect::<Result<_, _>>()?,
            ),
            "benchmarks" => AxisSpec::Benchmarks(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.as_str().and_then(Benchmark::from_name).ok_or_else(|| {
                            let known: Vec<&str> =
                                Benchmark::ALL.iter().map(|b| b.name()).collect();
                            SpecError {
                                message: format!(
                                    "axis 'benchmarks', value {}: unknown benchmark {} \
                                     (known: {})",
                                    i + 1,
                                    v.render(),
                                    known.join(", ")
                                ),
                            }
                        })
                    })
                    .collect::<Result<_, _>>()?,
            ),
            unknown => {
                return Err(SpecError {
                    message: format!(
                        "axes[{context}]: unknown axis '{unknown}' (known axes: {})",
                        AXIS_NAMES.join(", ")
                    ),
                })
            }
        };
        if spec.is_empty() {
            return Err(SpecError {
                message: format!("axis '{name}' has no values"),
            });
        }
        Ok(spec)
    }

    /// Lower onto the closure-based expansion machinery.  `None` for the
    /// `benchmarks` pseudo-axis, which selects jobs rather than mutating the
    /// machine draft.  Crate-visible so the spec lint can enumerate the
    /// declared value labels without re-implementing the label scheme.
    pub(crate) fn lower(&self) -> Option<Axis> {
        match self {
            AxisSpec::Isa(v) => Some(Axis::isa(v)),
            AxisSpec::IssueWidth(v) => Some(Axis::issue_width(v)),
            AxisSpec::VectorUnits(v) => Some(Axis::vector_units(v)),
            AxisSpec::VectorLanes(v) => Some(Axis::vector_lanes(v)),
            AxisSpec::L2PortElems(v) => Some(Axis::l2_port_elems(v)),
            AxisSpec::L1Size(v) => Some(Axis::l1_size(v)),
            AxisSpec::L2Size(v) => Some(Axis::l2_size(v)),
            AxisSpec::L1Assoc(v) => Some(Axis::l1_assoc(v)),
            AxisSpec::L2Assoc(v) => Some(Axis::l2_assoc(v)),
            AxisSpec::L1Line(v) => Some(Axis::l1_line(v)),
            AxisSpec::L2Line(v) => Some(Axis::l2_line(v)),
            AxisSpec::L2Banks(v) => Some(Axis::l2_banks(v)),
            AxisSpec::L2Latency(v) => Some(Axis::l2_latency(v)),
            AxisSpec::MemLatency(v) => Some(Axis::mem_latency(v)),
            AxisSpec::MemoryModel(v) => Some(Axis::memory_model(v)),
            AxisSpec::Chaining(v) => Some(Axis::chaining(v)),
            AxisSpec::Benchmarks(_) => None,
        }
    }
}

/// Axes whose values are plain positive integers, and therefore accept the
/// `{"from": .., "to": .., "step": ..}` range shorthand in place of an
/// explicit `values` array.
const RANGE_AXES: &[&str] = &[
    "issue_width",
    "vector_units",
    "vector_lanes",
    "l2_port_elems",
    "l1_size",
    "l2_size",
    "l1_assoc",
    "l2_assoc",
    "l1_line",
    "l2_line",
    "l2_banks",
    "l2_latency",
    "mem_latency",
];

/// Expand the range shorthand into an explicit ascending value list:
/// `from, from+step, ...` up to and including `to` when the step lands on
/// it (`step` defaults to 1).  The canonical serialization always re-emits
/// the explicit array, so a range spec and its hand-written expansion
/// canonicalize — and fingerprint — identically.
fn expand_range(name: &str, range: &Json) -> Result<Vec<Json>, SpecError> {
    let err = |msg: String| SpecError {
        message: format!("axis '{name}': {msg}"),
    };
    if !RANGE_AXES.contains(&name) {
        return Err(err(format!(
            "range values apply only to integer axes ({})",
            RANGE_AXES.join(", ")
        )));
    }
    let fields = match range {
        Json::Obj(fields) => fields,
        _ => unreachable!("caller matched an object"),
    };
    for (key, _) in fields {
        if !matches!(key.as_str(), "from" | "to" | "step") {
            return Err(err(format!(
                "unknown range key '{key}' (known: from, to, step)"
            )));
        }
    }
    let int_field = |key: &str| -> Result<Option<u64>, SpecError> {
        match range.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().filter(|&n| n > 0).map(Some).ok_or_else(|| {
                err(format!(
                    "range \"{key}\" must be a positive integer, got {}",
                    v.render()
                ))
            }),
        }
    };
    let missing =
        || err("a range needs \"from\" and \"to\" (and an optional \"step\", default 1)".into());
    let from = int_field("from")?.ok_or_else(missing)?;
    let to = int_field("to")?.ok_or_else(missing)?;
    let step = int_field("step")?.unwrap_or(1);
    if from > to {
        return Err(err(format!(
            "range \"from\" ({from}) must not exceed \"to\" ({to})"
        )));
    }
    let count = (to - from) / step + 1;
    if count > 4096 {
        return Err(err(format!(
            "range expands to {count} values (max 4096); raise \"step\""
        )));
    }
    Ok((0..count).map(|i| Json::u64(from + i * step)).collect())
}

/// One serializable, named constraint.  Lowering produces the same predicate
/// closures the builder API takes.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintSpec {
    /// Total lane budget: `vector_units × vector_lanes <= max`.
    LaneBudget { max: u32 },
    /// Abstract hardware-cost ceiling over [`hardware_cost`].
    MaxCost { max: f64 },
    /// Keep only Vector-ISA design points (useful when a structural axis
    /// also generates scalar machines).
    VectorIsaOnly,
}

const CONSTRAINT_NAMES: &[&str] = &["lane_budget", "max_cost", "vector_isa_only"];

impl ConstraintSpec {
    pub fn name(&self) -> &'static str {
        match self {
            ConstraintSpec::LaneBudget { .. } => "lane_budget",
            ConstraintSpec::MaxCost { .. } => "max_cost",
            ConstraintSpec::VectorIsaOnly => "vector_isa_only",
        }
    }

    /// Canonical JSON: `{"constraint": <name>, ...parameters}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("constraint".into(), Json::str(self.name()))];
        match self {
            ConstraintSpec::LaneBudget { max } => fields.push(("max".into(), Json::num(*max))),
            ConstraintSpec::MaxCost { max } => fields.push(("max".into(), Json::Num(*max))),
            ConstraintSpec::VectorIsaOnly => {}
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json, context: usize) -> Result<ConstraintSpec, SpecError> {
        let err = |msg: String| SpecError {
            message: format!("constraints[{context}]: {msg}"),
        };
        let name = v
            .get("constraint")
            .and_then(Json::as_str)
            .ok_or_else(|| err("expected an object with a \"constraint\" name field".into()))?;
        let max_field = |what: &str| {
            v.get("max")
                .and_then(Json::as_f64)
                .ok_or_else(|| err(format!("'{name}' needs a numeric \"max\" {what}")))
        };
        match name {
            "lane_budget" => {
                let max = max_field("lane budget")?;
                if max < 1.0 || max.fract() != 0.0 || max > u32::MAX as f64 {
                    return Err(err(format!(
                        "'lane_budget' max must be a positive integer, got {max}"
                    )));
                }
                Ok(ConstraintSpec::LaneBudget { max: max as u32 })
            }
            "max_cost" => Ok(ConstraintSpec::MaxCost {
                max: max_field("cost ceiling")?,
            }),
            "vector_isa_only" => Ok(ConstraintSpec::VectorIsaOnly),
            unknown => Err(err(format!(
                "unknown constraint '{unknown}' (known constraints: {})",
                CONSTRAINT_NAMES.join(", ")
            ))),
        }
    }

    /// Attach this constraint to a [`SweepSpec`] under its display name.
    fn lower(&self, spec: SweepSpec) -> SweepSpec {
        match *self {
            ConstraintSpec::LaneBudget { max } => spec.constraint(
                &format!("lane budget: units x lanes <= {max}"),
                move |m, _| m.vector_units as u32 * m.vector_lanes <= max,
            ),
            ConstraintSpec::MaxCost { max } => spec
                .constraint(&format!("hardware cost <= {max}"), move |m, _| {
                    hardware_cost(m) <= max
                }),
            ConstraintSpec::VectorIsaOnly => spec.constraint("vector ISA only", |m, _| {
                matches!(m.isa, IsaSupport::Vector)
            }),
        }
    }
}

/// Execution defaults a spec file may carry.  Command-line flags override
/// them; none participates in the spec fingerprint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecDefaults {
    /// Worker threads (0 = one per core, capped at 16).
    pub threads: Option<usize>,
    /// `(shard index, shard count)` for distributed sweeps.
    pub shard: Option<(usize, usize)>,
    /// Result-store path.
    pub out: Option<String>,
}

impl SpecDefaults {
    fn is_empty(&self) -> bool {
        *self == SpecDefaults::default()
    }

    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(threads) = self.threads {
            fields.push(("threads".into(), Json::u64(threads as u64)));
        }
        if let Some((i, n)) = self.shard {
            fields.push(("shard".into(), Json::str(format!("{i}/{n}"))));
        }
        if let Some(out) = &self.out {
            fields.push(("out".into(), Json::str(out)));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<SpecDefaults, SpecError> {
        let fields = match v {
            Json::Obj(fields) => fields,
            _ => {
                return Err(SpecError {
                    message: "\"defaults\" must be an object".into(),
                })
            }
        };
        let mut defaults = SpecDefaults::default();
        for (key, value) in fields {
            match key.as_str() {
                "threads" => {
                    defaults.threads = Some(value.as_u64().ok_or_else(|| SpecError {
                        message: format!(
                            "defaults.threads must be a non-negative integer, got {}",
                            value.render()
                        ),
                    })? as usize)
                }
                "shard" => {
                    let parsed = parse_shard(value.as_str().unwrap_or_default());
                    defaults.shard = Some(parsed.map_err(|_| SpecError {
                        message: format!(
                            "defaults.shard must be \"I/N\" with 0 <= I < N, got {}",
                            value.render()
                        ),
                    })?);
                }
                "out" => {
                    defaults.out = Some(
                        value
                            .as_str()
                            .ok_or_else(|| SpecError {
                                message: format!(
                                    "defaults.out must be a path string, got {}",
                                    value.render()
                                ),
                            })?
                            .to_string(),
                    )
                }
                unknown => {
                    return Err(SpecError {
                        message: format!(
                            "defaults: unknown key '{unknown}' (known: threads, shard, out)"
                        ),
                    })
                }
            }
        }
        Ok(defaults)
    }
}

/// Error parsing or validating a spec file, with an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}
impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError {
            message: format!("not valid JSON: {e}"),
        }
    }
}

/// A [`SpecFile`] lowered onto the execution machinery: the closure-based
/// [`SweepSpec`] plus the benchmark subset its jobs run.
pub struct LoweredSpec {
    pub spec: SweepSpec,
    pub benchmarks: Vec<Benchmark>,
}

/// A complete declarative sweep specification, loadable from (and
/// canonically serializable back to) JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecFile {
    /// Display name (store headers, reports).  Not part of the fingerprint.
    pub name: String,
    /// Axes in declaration order (the odometer order of the expansion).
    pub axes: Vec<AxisSpec>,
    /// Constraint predicates applied during expansion.
    pub constraints: Vec<ConstraintSpec>,
    /// Execution defaults (overridden by command-line flags).
    pub defaults: SpecDefaults,
}

impl SpecFile {
    /// Parse a spec file from JSON text and validate it.
    pub fn parse(text: &str) -> Result<SpecFile, SpecError> {
        SpecFile::from_json(&Json::parse(text)?)
    }

    /// Parse from an already-parsed JSON value and validate it.
    pub fn from_json(v: &Json) -> Result<SpecFile, SpecError> {
        let fields = match v {
            Json::Obj(fields) => fields,
            _ => {
                return Err(SpecError {
                    message: "a spec file must be a JSON object".into(),
                })
            }
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "name" | "axes" | "constraints" | "defaults") {
                return Err(SpecError {
                    message: format!(
                        "unknown top-level key '{key}' (known: name, axes, constraints, defaults)"
                    ),
                });
            }
        }
        let name = match v.get("name") {
            Some(n) => n
                .as_str()
                .ok_or_else(|| SpecError {
                    message: format!("\"name\" must be a string, got {}", n.render()),
                })?
                .to_string(),
            None => "unnamed".to_string(),
        };
        let axes = match v.get("axes") {
            Some(Json::Arr(items)) => items
                .iter()
                .enumerate()
                .map(|(i, a)| AxisSpec::from_json(a, i))
                .collect::<Result<Vec<_>, _>>()?,
            Some(other) => {
                return Err(SpecError {
                    message: format!("\"axes\" must be an array, got {}", other.render()),
                })
            }
            None => Vec::new(),
        };
        let constraints = match v.get("constraints") {
            Some(Json::Arr(items)) => items
                .iter()
                .enumerate()
                .map(|(i, c)| ConstraintSpec::from_json(c, i))
                .collect::<Result<Vec<_>, _>>()?,
            Some(other) => {
                return Err(SpecError {
                    message: format!("\"constraints\" must be an array, got {}", other.render()),
                })
            }
            None => Vec::new(),
        };
        let defaults = match v.get("defaults") {
            Some(d) => SpecDefaults::from_json(d)?,
            None => SpecDefaults::default(),
        };
        let spec = SpecFile {
            name,
            axes,
            constraints,
            defaults,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation shared by [`SpecFile::from_json`] and
    /// [`SpecFile::lower`] (the fields are public, so programmatic
    /// construction is re-checked at lowering time).
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut seen = std::collections::HashSet::new();
        for axis in &self.axes {
            if !seen.insert(axis.name()) {
                return Err(SpecError {
                    message: format!(
                        "duplicate axis '{}' (each axis may appear once; merge its value lists)",
                        axis.name()
                    ),
                });
            }
            if axis.is_empty() {
                return Err(SpecError {
                    message: format!("axis '{}' has no values", axis.name()),
                });
            }
        }
        Ok(())
    }

    /// The canonical JSON form: fixed key order, empty sections omitted.
    /// `parse(canonical.render())` is the identity, and formatting
    /// variations of the same spec canonicalize identically.
    pub fn canonical(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::str(&self.name)),
            (
                "axes".into(),
                Json::Arr(self.axes.iter().map(AxisSpec::to_json).collect()),
            ),
        ];
        if !self.constraints.is_empty() {
            fields.push((
                "constraints".into(),
                Json::Arr(
                    self.constraints
                        .iter()
                        .map(ConstraintSpec::to_json)
                        .collect(),
                ),
            ));
        }
        if !self.defaults.is_empty() {
            fields.push(("defaults".into(), self.defaults.to_json()));
        }
        Json::Obj(fields)
    }

    /// The semantic content the fingerprint hashes: axes and constraints
    /// only.  Renaming a spec or changing its execution defaults must not
    /// orphan existing result stores.
    fn semantic(&self) -> Json {
        let mut fields = vec![(
            "axes".into(),
            Json::Arr(self.axes.iter().map(AxisSpec::to_json).collect()),
        )];
        if !self.constraints.is_empty() {
            fields.push((
                "constraints".into(),
                Json::Arr(
                    self.constraints
                        .iter()
                        .map(ConstraintSpec::to_json)
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }

    /// Stable content hash of the experiment definition (16 hex digits):
    /// FNV-1a over the canonical rendering of the axes and constraints.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(self.semantic().render().as_bytes()))
    }

    /// The self-describing header a result store produced by this spec
    /// carries as its first line.
    pub fn store_header(&self) -> crate::store::StoreHeader {
        crate::store::StoreHeader {
            name: self.name.clone(),
            fingerprint: self.fingerprint(),
            spec: self.canonical(),
        }
    }

    /// Lower onto the closure-based machinery: every machine/memory axis
    /// becomes an [`Axis`] (in declaration order), constraints become named
    /// predicates, and the `benchmarks` pseudo-axis becomes the job subset
    /// (all six when absent).
    pub fn lower(&self) -> Result<LoweredSpec, SpecError> {
        self.validate()?;
        let mut spec = SweepSpec::new();
        let mut benchmarks: Option<Vec<Benchmark>> = None;
        for axis in &self.axes {
            match axis.lower() {
                Some(lowered) => spec = spec.axis(lowered),
                None => {
                    if let AxisSpec::Benchmarks(subset) = axis {
                        benchmarks = Some(subset.clone());
                    }
                }
            }
        }
        for constraint in &self.constraints {
            spec = constraint.lower(spec);
        }
        Ok(LoweredSpec {
            spec,
            benchmarks: benchmarks.unwrap_or_else(|| Benchmark::ALL.to_vec()),
        })
    }

    /// The built-in demonstration sweep (`sweep --demo`): 120 raw points —
    /// issue width × vector units × lanes × L2 size × DRAM latency — 112
    /// after the lane-budget constraint, GSM pair only.
    pub fn demo() -> SpecFile {
        SpecFile {
            name: "demo".to_string(),
            axes: vec![
                AxisSpec::IssueWidth(vec![2, 4]),
                AxisSpec::VectorUnits(vec![1, 2, 4]),
                AxisSpec::VectorLanes(vec![1, 2, 4, 8, 16]),
                AxisSpec::L2Size(vec![128 * 1024, 256 * 1024]),
                AxisSpec::MemLatency(vec![100, 500]),
                AxisSpec::Benchmarks(vec![Benchmark::GsmDec, Benchmark::GsmEnc]),
            ],
            constraints: vec![ConstraintSpec::LaneBudget { max: 32 }],
            defaults: SpecDefaults {
                threads: None,
                shard: None,
                out: Some("sweep_results.jsonl".to_string()),
            },
        }
    }
}

fn isa_name(isa: IsaSupport) -> &'static str {
    match isa {
        IsaSupport::Vliw => "vliw",
        IsaSupport::Usimd => "usimd",
        IsaSupport::Vector => "vector",
    }
}

fn isa_from_name(name: &str) -> Option<IsaSupport> {
    match name {
        "vliw" => Some(IsaSupport::Vliw),
        "usimd" => Some(IsaSupport::Usimd),
        "vector" => Some(IsaSupport::Vector),
        _ => None,
    }
}

fn model_name(model: MemoryModel) -> &'static str {
    match model {
        MemoryModel::Perfect => "perfect",
        MemoryModel::Realistic => "realistic",
    }
}

fn model_from_name(name: &str) -> Option<MemoryModel> {
    match name {
        "perfect" => Some(MemoryModel::Perfect),
        "realistic" => Some(MemoryModel::Realistic),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_spec_round_trips_through_canonical_json() {
        let demo = SpecFile::demo();
        let compact = demo.canonical().render();
        let pretty = demo.canonical().render_pretty();
        for text in [compact.as_str(), pretty.as_str()] {
            let back = SpecFile::parse(text).unwrap();
            assert_eq!(back, demo);
            assert_eq!(back.canonical().render(), compact);
            assert_eq!(back.fingerprint(), demo.fingerprint());
        }
    }

    #[test]
    fn fingerprint_ignores_name_and_defaults_but_not_axes() {
        let demo = SpecFile::demo();
        let mut renamed = demo.clone();
        renamed.name = "renamed".to_string();
        renamed.defaults = SpecDefaults {
            threads: Some(7),
            shard: Some((1, 4)),
            out: Some("elsewhere.jsonl".to_string()),
        };
        assert_eq!(renamed.fingerprint(), demo.fingerprint());

        let mut widened = demo.clone();
        widened.axes[0] = AxisSpec::IssueWidth(vec![2, 4, 8]);
        assert_ne!(widened.fingerprint(), demo.fingerprint());

        let mut unconstrained = demo.clone();
        unconstrained.constraints.clear();
        assert_ne!(unconstrained.fingerprint(), demo.fingerprint());
    }

    #[test]
    fn lowering_matches_the_builder_api_exactly() {
        // The hand-built demo spec of the pre-declarative sweep binary.
        let handwritten = SweepSpec::new()
            .axis(Axis::issue_width(&[2, 4]))
            .axis(Axis::vector_units(&[1, 2, 4]))
            .axis(Axis::vector_lanes(&[1, 2, 4, 8, 16]))
            .axis(Axis::l2_size(&[128 * 1024, 256 * 1024]))
            .axis(Axis::mem_latency(&[100, 500]))
            .constraint("lane budget: units x lanes <= 32", |m, _| {
                m.vector_units as u32 * m.vector_lanes <= 32
            })
            .expand();
        let lowered = SpecFile::demo().lower().unwrap();
        assert_eq!(
            lowered.benchmarks,
            vec![Benchmark::GsmDec, Benchmark::GsmEnc]
        );
        let e = lowered.spec.expand();
        assert_eq!(e.raw, handwritten.raw);
        assert_eq!(e.rejected, handwritten.rejected);
        assert_eq!(e.points.len(), handwritten.points.len());
        for (a, b) in e.points.iter().zip(&handwritten.points) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.model, b.model);
            assert_eq!(
                crate::fingerprint::full_fingerprint(&a.machine),
                crate::fingerprint::full_fingerprint(&b.machine)
            );
        }
    }

    #[test]
    fn every_axis_variant_round_trips() {
        let spec = SpecFile {
            name: "everything".to_string(),
            axes: vec![
                AxisSpec::Isa(vec![
                    IsaSupport::Vliw,
                    IsaSupport::Usimd,
                    IsaSupport::Vector,
                ]),
                AxisSpec::IssueWidth(vec![2, 16]),
                AxisSpec::VectorUnits(vec![1, 2]),
                AxisSpec::VectorLanes(vec![4]),
                AxisSpec::L2PortElems(vec![4, 8]),
                AxisSpec::L1Size(vec![16 * 1024]),
                AxisSpec::L2Size(vec![256 * 1024]),
                AxisSpec::L1Assoc(vec![2, 4]),
                AxisSpec::L2Assoc(vec![4]),
                AxisSpec::L1Line(vec![32]),
                AxisSpec::L2Line(vec![64, 128]),
                AxisSpec::L2Banks(vec![2, 4]),
                AxisSpec::L2Latency(vec![5, 9]),
                AxisSpec::MemLatency(vec![100]),
                AxisSpec::MemoryModel(vec![MemoryModel::Perfect, MemoryModel::Realistic]),
                AxisSpec::Chaining(vec![true, false]),
                AxisSpec::Benchmarks(Benchmark::ALL.to_vec()),
            ],
            constraints: vec![
                ConstraintSpec::LaneBudget { max: 32 },
                ConstraintSpec::MaxCost { max: 250.5 },
                ConstraintSpec::VectorIsaOnly,
            ],
            defaults: SpecDefaults {
                threads: Some(0),
                shard: Some((0, 2)),
                out: Some("everything.jsonl".to_string()),
            },
        };
        let text = spec.canonical().render();
        let back = SpecFile::parse(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.canonical().render(), text);
    }

    #[test]
    fn constraints_lower_to_working_predicates() {
        let spec = SpecFile {
            name: "constrained".to_string(),
            axes: vec![
                AxisSpec::Isa(vec![IsaSupport::Usimd, IsaSupport::Vector]),
                AxisSpec::VectorLanes(vec![2, 4, 8]),
            ],
            constraints: vec![
                ConstraintSpec::VectorIsaOnly,
                ConstraintSpec::LaneBudget { max: 4 },
            ],
            defaults: SpecDefaults::default(),
        };
        let e = spec.lower().unwrap().spec.expand();
        assert!(e.rejected > 0);
        for p in &e.points {
            assert!(matches!(p.machine.isa, IsaSupport::Vector));
            assert!(p.machine.vector_units as u32 * p.machine.vector_lanes <= 4);
        }
    }

    #[test]
    fn range_sugar_expands_to_the_explicit_list() {
        let sugared = SpecFile::parse(
            r#"{"axes": [{"axis": "mem_latency",
                          "values": {"from": 100, "to": 500, "step": 200}}]}"#,
        )
        .unwrap();
        let explicit =
            SpecFile::parse(r#"{"axes": [{"axis": "mem_latency", "values": [100, 300, 500]}]}"#)
                .unwrap();
        assert_eq!(sugared, explicit);
        assert_eq!(sugared.fingerprint(), explicit.fingerprint());
        // Canonicalization re-emits the explicit array, and round-trips.
        let canonical = sugared.canonical().render();
        assert!(canonical.contains("[100,300,500]"), "{canonical}");
        assert_eq!(SpecFile::parse(&canonical).unwrap(), sugared);

        // A step that overshoots `to` stops at the last in-range value;
        // step defaults to 1.
        let overshoot = SpecFile::parse(
            r#"{"axes": [{"axis": "vector_lanes", "values": {"from": 1, "to": 6, "step": 4}}]}"#,
        )
        .unwrap();
        assert_eq!(overshoot.axes[0], AxisSpec::VectorLanes(vec![1, 5]));
        let dense =
            SpecFile::parse(r#"{"axes": [{"axis": "l2_banks", "values": {"from": 2, "to": 4}}]}"#)
                .unwrap();
        assert_eq!(dense.axes[0], AxisSpec::L2Banks(vec![2, 3, 4]));
    }

    #[test]
    fn range_sugar_still_applies_per_axis_validation() {
        // issue_width ranges pass through the supported-width check.
        let err = SpecFile::parse(
            r#"{"axes": [{"axis": "issue_width", "values": {"from": 2, "to": 8, "step": 2}}]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("unsupported width 6"), "{err}");
    }

    #[test]
    fn range_errors_are_actionable() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"axes": [{"axis": "isa", "values": {"from": 1, "to": 2}}]}"#,
                "range values apply only to integer axes",
            ),
            (
                r#"{"axes": [{"axis": "mem_latency", "values": {"from": 500, "to": 100}}]}"#,
                "\"from\" (500) must not exceed \"to\" (100)",
            ),
            (
                r#"{"axes": [{"axis": "mem_latency", "values": {"from": 1, "to": 9, "step": 0}}]}"#,
                "range \"step\" must be a positive integer, got 0",
            ),
            (
                r#"{"axes": [{"axis": "mem_latency", "values": {"from": 1, "to": 9, "by": 2}}]}"#,
                "unknown range key 'by' (known: from, to, step)",
            ),
            (
                r#"{"axes": [{"axis": "mem_latency", "values": {"from": 1}}]}"#,
                "a range needs \"from\" and \"to\"",
            ),
            (
                r#"{"axes": [{"axis": "mem_latency", "values": {"from": 1, "to": 100000}}]}"#,
                "max 4096",
            ),
            (
                r#"{"axes": [{"axis": "mem_latency", "values": 7}]}"#,
                "needs a \"values\" array or a {\"from\"",
            ),
        ];
        for (text, needle) in cases {
            let err = SpecFile::parse(text).expect_err(text);
            assert!(
                err.message.contains(needle),
                "error for {text:?} should mention {needle:?}, got: {}",
                err.message
            );
        }
    }

    #[test]
    fn parse_errors_are_actionable() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"axes": [{"axis": "l4_size", "values": [1]}]}"#,
                "unknown axis 'l4_size'",
            ),
            (
                r#"{"axes": [{"axis": "issue_width", "values": [2, "four"]}]}"#,
                "axis 'issue_width', value 2",
            ),
            (
                r#"{"axes": [{"axis": "issue_width", "values": [6]}]}"#,
                "unsupported width 6",
            ),
            (
                r#"{"axes": [{"axis": "vector_lanes", "values": [4]},
                            {"axis": "vector_lanes", "values": [8]}]}"#,
                "duplicate axis 'vector_lanes'",
            ),
            (
                r#"{"axes": [{"axis": "vector_lanes", "values": []}]}"#,
                "axis 'vector_lanes' has no values",
            ),
            (
                r#"{"axes": [{"axis": "benchmarks", "values": ["GSM"]}]}"#,
                "unknown benchmark \"GSM\"",
            ),
            (
                r#"{"constraints": [{"constraint": "budget"}]}"#,
                "unknown constraint 'budget'",
            ),
            (
                r#"{"constraints": [{"constraint": "lane_budget"}]}"#,
                "needs a numeric \"max\"",
            ),
            (
                r#"{"defaults": {"shard": "3/2"}}"#,
                "defaults.shard must be \"I/N\"",
            ),
            (r#"{"sweeps": []}"#, "unknown top-level key 'sweeps'"),
            (r#"[1, 2]"#, "must be a JSON object"),
            (r#"{"axes": "#, "not valid JSON"),
        ];
        for (text, needle) in cases {
            let err = SpecFile::parse(text).expect_err(text);
            assert!(
                err.message.contains(needle),
                "error for {text:?} should mention {needle:?}, got: {}",
                err.message
            );
            // Every message names known alternatives or the offending value.
        }
    }

    #[test]
    fn unknown_axis_error_lists_the_known_axes() {
        let err = SpecFile::parse(r#"{"axes": [{"axis": "nope", "values": [1]}]}"#).unwrap_err();
        for name in AXIS_NAMES {
            assert!(
                err.message.contains(name),
                "missing {name}: {}",
                err.message
            );
        }
    }

    #[test]
    fn benchmarks_axis_defaults_to_all_six() {
        let lowered = SpecFile::parse(r#"{"axes": [{"axis": "vector_lanes", "values": [2]}]}"#)
            .unwrap()
            .lower()
            .unwrap();
        assert_eq!(lowered.benchmarks, Benchmark::ALL.to_vec());
    }
}
