//! Spec-file lint and pre-flight checking (`sweep --check`, `verify --spec`):
//! parse + expand + compile + certify, without executing a single cycle.
//!
//! The lint pass reports spec mistakes the parser cannot see — constraint
//! sets that reject every design point, axis values that survive no
//! constraint (dead weight in the file), and expansions that collapse onto
//! duplicate machines.  The check pass then compiles every distinct
//! schedule the spec can reach and certifies each with the static verifier
//! (`vmv_verify::verify_compiled`), so a checked-in spec is known to
//! execute before any sweep time is spent on it.

use std::collections::HashSet;

use vmv_verify::{has_errors, Check, Diagnostic};

use crate::cache::CompileCache;
use crate::specfile::SpecFile;

/// Outcome of [`check_spec`].
pub struct SpecCheck {
    /// Lint findings plus any compile/certification failures.
    pub diagnostics: Vec<Diagnostic>,
    /// Design points the spec expands to (after constraints and dedup).
    pub points: usize,
    /// Distinct schedules compiled and certified.
    pub schedules: usize,
}

/// Lint a spec file without compiling anything.  The spec is expanded
/// twice — once as declared and once with the constraints stripped — and
/// every declared axis value is checked for *liveness*: a value that
/// survives in no design point is either **dead** (the constraints reject
/// every point using it) or **redundant** (every point using it collapses
/// onto a point of an earlier value, e.g. a `vector_lanes` axis on a
/// scalar-only sweep).  A value that is merely redundant *under some*
/// settings of the other axes (the idiomatic cross-ISA sweep) still
/// survives somewhere and is not flagged — the expansion's silent
/// deduplication exists precisely for that shape.
pub fn lint(spec: &SpecFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let lowered = match spec.lower() {
        Ok(l) => l,
        Err(e) => {
            diags.push(Diagnostic::error(Check::Spec, "spec", e.to_string()));
            return diags;
        }
    };
    let expansion = lowered.spec.expand();
    if expansion.points.is_empty() {
        diags.push(Diagnostic::error(
            Check::Spec,
            "constraints",
            format!(
                "the constraints reject all {} design points; the sweep is unsatisfiable",
                expansion.raw
            ),
        ));
        return diags;
    }

    // Labels that survive in the constrained expansion, and in the
    // constraint-free universe (to tell "dead" apart from "redundant").
    let live: HashSet<&(String, String)> = expansion
        .points
        .iter()
        .flat_map(|p| p.labels.iter())
        .collect();
    let universe_points = if spec.constraints.is_empty() {
        Vec::new()
    } else {
        let mut unconstrained = spec.clone();
        unconstrained.constraints.clear();
        match unconstrained.lower() {
            Ok(l) => l.spec.expand().points,
            Err(_) => Vec::new(),
        }
    };
    let universe_live: HashSet<&(String, String)> = universe_points
        .iter()
        .flat_map(|p| p.labels.iter())
        .collect();

    for (k, axis_spec) in spec.axes.iter().enumerate() {
        let Some(axis) = axis_spec.lower() else {
            continue; // the benchmarks pseudo-axis selects jobs, not machines
        };
        for value in &axis.values {
            let key = (axis.name.clone(), value.label.clone());
            if live.contains(&key) {
                continue;
            }
            let message = if universe_live.contains(&key) {
                format!(
                    "value '{}' of axis '{}' is dead: every design point \
                     using it is rejected by the constraints",
                    value.label, axis.name
                )
            } else {
                format!(
                    "value '{}' of axis '{}' is redundant: every design point \
                     using it duplicates a point of an earlier value",
                    value.label, axis.name
                )
            };
            diags.push(Diagnostic::warning(
                Check::Spec,
                format!("axes[{k}]"),
                message,
            ));
        }
    }
    diags
}

/// Lint a spec, then compile and certify every distinct schedule it can
/// reach — one compile per `(benchmark, ISA variant, schedule fingerprint)`
/// key, shared across all memory-only variants, exactly as a real sweep
/// would share them.
pub fn check_spec(spec: &SpecFile) -> SpecCheck {
    let mut diagnostics = lint(spec);
    let mut points = 0;
    let mut schedules = 0;
    if !has_errors(&diagnostics) {
        if let Ok(lowered) = spec.lower() {
            let expansion = lowered.spec.expand();
            points = expansion.points.len();
            let mut cache = CompileCache::new();
            cache.set_verify(true);
            let mut seen = HashSet::new();
            for point in &expansion.points {
                for &benchmark in &lowered.benchmarks {
                    if !seen.insert(CompileCache::key_for(benchmark, &point.machine)) {
                        continue;
                    }
                    if let Err(e) = cache.get_or_compile(benchmark, &point.machine) {
                        diagnostics.push(Diagnostic::error(
                            Check::Spec,
                            format!("point '{}', benchmark {}", point.name, benchmark.name()),
                            e.to_string(),
                        ));
                    }
                }
            }
            schedules = cache.counters().misses as usize;
        }
    }
    SpecCheck {
        diagnostics,
        points,
        schedules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specfile::{AxisSpec, ConstraintSpec};
    use vmv_verify::Severity;

    #[test]
    fn demo_spec_is_clean() {
        let check = check_spec(&SpecFile::demo());
        assert!(
            check.diagnostics.is_empty(),
            "demo spec must lint and certify clean: {:?}",
            check.diagnostics
        );
        assert!(check.points > 0);
        assert!(check.schedules > 0);
    }

    #[test]
    fn unsatisfiable_constraints_are_an_error() {
        let mut spec = SpecFile::demo();
        spec.constraints = vec![ConstraintSpec::MaxCost { max: 0.0 }];
        let diags = lint(&spec);
        assert!(has_errors(&diags));
        assert!(
            diags[0].to_string().contains("unsatisfiable"),
            "{}",
            diags[0]
        );
    }

    #[test]
    fn dead_axis_values_are_flagged() {
        let mut spec = SpecFile::demo();
        // A lane budget of 8 kills every point of the lanes-16 value
        // (vector_units >= 1), and of vector_units=4 with lanes > 2, but
        // lanes 16 is dead outright.
        spec.constraints = vec![ConstraintSpec::LaneBudget { max: 8 }];
        let diags = lint(&spec);
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Warning && d.message.contains("is dead"))
            .collect();
        assert!(
            dead.iter()
                .any(|d| d.location == "axes[2]" && d.message.contains("'ln16'")),
            "expected the 16-lane value to be dead: {dead:?}"
        );
    }

    #[test]
    fn fully_redundant_values_warn() {
        // vector_lanes is meaningless on a scalar VLIW machine: every lane
        // value beyond the first collapses onto the same machine.
        let spec = SpecFile {
            name: "dup".into(),
            axes: vec![
                AxisSpec::Isa(vec![vmv_machine::IsaSupport::Vliw]),
                AxisSpec::VectorLanes(vec![2, 4, 8]),
            ],
            constraints: vec![],
            defaults: Default::default(),
        };
        let diags = lint(&spec);
        let redundant: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Warning && d.message.contains("redundant"))
            .collect();
        assert_eq!(redundant.len(), 2, "{diags:?}");
        assert!(redundant[0].message.contains("'ln4'"), "{}", redundant[0]);
        assert!(redundant[1].message.contains("'ln8'"), "{}", redundant[1]);
    }

    #[test]
    fn conditionally_redundant_values_stay_quiet() {
        // vector_units matters on the vector ISA even though the usimd
        // points collapse — the idiomatic cross-ISA sweep must lint clean.
        let spec = SpecFile {
            name: "cross".into(),
            axes: vec![
                AxisSpec::Isa(vec![
                    vmv_machine::IsaSupport::Usimd,
                    vmv_machine::IsaSupport::Vector,
                ]),
                AxisSpec::VectorUnits(vec![1, 2]),
            ],
            constraints: vec![],
            defaults: Default::default(),
        };
        let diags = lint(&spec);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
