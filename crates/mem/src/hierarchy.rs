//! The three-level memory hierarchy of paper §4.2:
//!
//! * L1: 16 KB, 4-way data cache, 1-cycle latency, scalar / µSIMD accesses;
//! * L2: 256 KB two-bank interleaved *vector cache*, 5 cycles; vector
//!   accesses bypass the L1 and go straight to this level through one wide
//!   (4 × 64-bit) port;
//! * L3: 1 MB cache, 12 cycles;
//! * main memory: 500 cycles.
//!
//! Coherence between the L1 and the vector cache uses an exclusive-bit plus
//! inclusion policy: a vector access invalidates any overlapping L1 lines
//! (pushing dirty data down), and a scalar miss naturally finds
//! vector-written data in the L2.
//!
//! The hierarchy is a *timing* model — data contents live in the simulator's
//! flat memory.  Two modes exist: `Perfect` (every access hits, paper §5.1)
//! and `Realistic` (tags are simulated and misses pay the full latency).

use crate::cache::{Cache, LookupResult};
use crate::lines::{self, LineWalk};
use crate::vector_cache::VectorCache;
use vmv_machine::MemoryParams;

/// Memory simulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// All accesses hit in their target cache level, but still pay that
    /// level's latency (and vector accesses still pay the element-transfer
    /// time through the L2 port).
    Perfect,
    /// Full tag simulation of the three cache levels.
    Realistic,
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
}

/// Timing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Total latency in cycles until the last element is available.
    pub latency: u32,
    /// Cycles beyond what the compiler assumed when scheduling (the
    /// processor stalls for this long, paper §3.3/§4.2).
    pub stall_cycles: u32,
}

/// Aggregate statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    pub scalar_loads: u64,
    pub scalar_stores: u64,
    pub vector_loads: u64,
    pub vector_stores: u64,
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub l3_hits: u64,
    pub l3_misses: u64,
    pub coherence_invalidations: u64,
    pub unit_stride_vector_accesses: u64,
    pub strided_vector_accesses: u64,
    pub total_stall_cycles: u64,
}

impl MemStats {
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            1.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Fold this run's totals into the process-wide telemetry recorder.
    /// Called once per completed simulation (not per access), so the
    /// hierarchy's hot path stays atomic-free.
    pub fn record_obs(&self) {
        if !vmv_obs::enabled() {
            return;
        }
        use vmv_obs::Counter;
        vmv_obs::add(Counter::MemScalarLoads, self.scalar_loads);
        vmv_obs::add(Counter::MemScalarStores, self.scalar_stores);
        vmv_obs::add(Counter::MemVectorLoads, self.vector_loads);
        vmv_obs::add(Counter::MemVectorStores, self.vector_stores);
        vmv_obs::add(Counter::MemL1Hits, self.l1_hits);
        vmv_obs::add(Counter::MemL1Misses, self.l1_misses);
        vmv_obs::add(Counter::MemL2Hits, self.l2_hits);
        vmv_obs::add(Counter::MemL2Misses, self.l2_misses);
        vmv_obs::add(Counter::MemL3Hits, self.l3_hits);
        vmv_obs::add(Counter::MemL3Misses, self.l3_misses);
        vmv_obs::add(
            Counter::MemCoherenceInvalidations,
            self.coherence_invalidations,
        );
    }
}

/// Memoized touched-line walks shared across hierarchies.
///
/// Batched trace replay prices the *same* recorded access against K cache
/// states back to back.  The touched-line set of an irregular stride depends
/// only on `(base, stride, elems, line_size)` — never on cache contents — so
/// one naive walk can serve every variant whose line geometry matches.  The
/// scratch lives outside the hierarchy precisely so K hierarchies can borrow
/// it in turn while each is stepped mutably.
#[derive(Debug, Default)]
pub struct SharedAccessScratch {
    /// Access the memoized walks belong to: (base, stride, elems).
    key: Option<(u64, i64, u32)>,
    /// One cached walk per distinct line size seen for the current access.
    walks: Vec<(u64, Vec<u64>)>,
    /// Recycled line buffers from previous accesses.
    spare: Vec<Vec<u64>>,
}

impl SharedAccessScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// The touched lines of the access for `line_size`-byte lines, computing
    /// and memoizing the naive walk on first request.
    fn lines(&mut self, base: u64, stride_bytes: i64, elems: u32, line_size: u64) -> &[u64] {
        if self.key != Some((base, stride_bytes, elems)) {
            self.key = Some((base, stride_bytes, elems));
            self.spare.extend(self.walks.drain(..).map(|(_, v)| v));
        }
        if let Some(i) = self.walks.iter().position(|w| w.0 == line_size) {
            return &self.walks[i].1;
        }
        let mut buf = self.spare.pop().unwrap_or_default();
        lines::collect_naive(base, stride_bytes, elems, line_size, &mut buf);
        self.walks.push((line_size, buf));
        &self.walks.last().expect("just pushed").1
    }
}

/// Which level served one cache-line lookup of a scalar access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    L1,
    L2,
    L3,
    Mem,
}

/// The timing-relevant *events* of one access, captured from the hierarchy
/// that simulated it.  Tag behaviour depends only on the access stream and
/// the cache geometry — never on the latency parameters — so any
/// [`MemoryHierarchy::tag_equivalent`] hierarchy can price the echoed
/// events against its own latencies ([`MemoryHierarchy::apply_echo`])
/// without walking its own tags, and land on exactly the timing and
/// [`MemStats`] the real access would have produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessEcho {
    Scalar {
        kind: AccessKind,
        /// Serving level of the first (and, when the access straddles a
        /// line boundary, the second) L1 line.
        first: ServedBy,
        second: Option<ServedBy>,
    },
    Vector {
        kind: AccessKind,
        unit_stride: bool,
        elems: u32,
        /// L2-port transfer time (bank and port geometry, not latency).
        transfer_cycles: u32,
        /// Missed L2 lines refilled from the L3 / from main memory.
        l3_fetches: u32,
        mem_fetches: u32,
        /// L1 lines invalidated for coherence.
        invalidations: u64,
    },
}

impl ServedBy {
    /// Depth rank: L1 < L2 < L3 < Mem.
    fn depth(self) -> u8 {
        match self {
            ServedBy::L1 => 0,
            ServedBy::L2 => 1,
            ServedBy::L3 => 2,
            ServedBy::Mem => 3,
        }
    }
}

impl AccessEcho {
    /// The deepest level this access touched — the level whose latency
    /// dominates the access, used by the cycle-attribution profiler to
    /// classify waits on the producing operation.  Vector accesses always
    /// reach at least the L2 (they bypass the L1 by construction).
    pub fn deepest(&self) -> ServedBy {
        match *self {
            AccessEcho::Scalar { first, second, .. } => match second {
                Some(s) if s.depth() > first.depth() => s,
                _ => first,
            },
            AccessEcho::Vector {
                l3_fetches,
                mem_fetches,
                ..
            } => {
                if mem_fetches > 0 {
                    ServedBy::Mem
                } else if l3_fetches > 0 {
                    ServedBy::L3
                } else {
                    ServedBy::L2
                }
            }
        }
    }
}

/// Refill source of one L2 line of a vector access.
enum LineFill {
    Hit,
    FromL3,
    FromMem,
}

/// The memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    model: MemoryModel,
    params: MemoryParams,
    l1: Cache,
    l2: VectorCache,
    l3: Cache,
    /// Width of the L2 vector port in 64-bit elements.
    port_elems: u32,
    /// Reusable touched-line scratch for irregular vector strides (cleared
    /// per access, never reallocated once grown).
    scratch: Vec<u64>,
    pub stats: MemStats,
}

impl MemoryHierarchy {
    pub fn new(model: MemoryModel, params: MemoryParams, l2_port_elems: u32) -> Self {
        MemoryHierarchy {
            model,
            params,
            l1: Cache::new("L1", params.l1_size, params.l1_assoc, params.l1_line),
            l2: VectorCache::new(
                params.l2_size,
                params.l2_assoc,
                params.l2_line,
                params.l2_banks,
                l2_port_elems.max(1),
            ),
            l3: Cache::new("L3", params.l3_size, params.l3_assoc, params.l3_line),
            port_elems: l2_port_elems.max(1),
            scratch: Vec::with_capacity(32),
            stats: MemStats::default(),
        }
    }

    /// Construct a hierarchy straight from a machine configuration.
    pub fn for_machine(model: MemoryModel, machine: &vmv_machine::MachineConfig) -> Self {
        Self::new(model, machine.memory, machine.l2_port_elems.max(1))
    }

    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// Latency the *compiler* assumes for a scalar access: an L1 hit.
    pub fn scheduled_scalar_latency(&self) -> u32 {
        self.params.l1_latency
    }

    /// Latency the *compiler* assumes for a vector access of `elems`
    /// elements: an L2 hit with unit stride (paper §3.3: the compiler
    /// schedules all vector memory operations as stride-one L2 hits).
    pub fn scheduled_vector_latency(&self, elems: u32) -> u32 {
        self.params.l2_latency + elems.div_ceil(self.port_elems).saturating_sub(1)
    }

    // ----------------------------------------------------------- accesses

    /// Simulate a scalar (or µSIMD 64-bit) access of `size` bytes.
    pub fn scalar_access(&mut self, addr: u64, size: usize, kind: AccessKind) -> AccessTiming {
        self.scalar_access_echoed(addr, size, kind).0
    }

    /// [`Self::scalar_access`], additionally capturing the access's
    /// [`AccessEcho`] for replaying against tag-equivalent hierarchies.
    pub fn scalar_access_echoed(
        &mut self,
        addr: u64,
        size: usize,
        kind: AccessKind,
    ) -> (AccessTiming, AccessEcho) {
        match kind {
            AccessKind::Load => self.stats.scalar_loads += 1,
            AccessKind::Store => self.stats.scalar_stores += 1,
        }
        let scheduled = self.scheduled_scalar_latency();
        if self.model == MemoryModel::Perfect {
            self.stats.l1_hits += 1;
            return (
                AccessTiming {
                    latency: scheduled,
                    stall_cycles: 0,
                },
                AccessEcho::Scalar {
                    kind,
                    first: ServedBy::L1,
                    second: None,
                },
            );
        }

        let write = kind == AccessKind::Store;
        // An access can straddle a line boundary; charge the worst line.
        let last = addr + size.max(1) as u64 - 1;
        let first_block = self.l1.block_addr(addr);
        let last_block = self.l1.block_addr(last);
        let (mut latency, first) = self.scalar_line_access(first_block, write);
        let mut second = None;
        if last_block != first_block {
            let (lat2, served2) = self.scalar_line_access(last_block, write);
            latency = latency.max(lat2);
            second = Some(served2);
        }
        let stall = latency.saturating_sub(scheduled);
        self.stats.total_stall_cycles += stall as u64;
        (
            AccessTiming {
                latency,
                stall_cycles: stall,
            },
            AccessEcho::Scalar {
                kind,
                first,
                second,
            },
        )
    }

    fn scalar_line_access(&mut self, blk: u64, write: bool) -> (u32, ServedBy) {
        match self.l1.access(blk, write) {
            LookupResult::Hit => {
                self.stats.l1_hits += 1;
                (self.params.l1_latency, ServedBy::L1)
            }
            LookupResult::Miss => {
                self.stats.l1_misses += 1;
                // Miss in L1: look up the L2 (the vector cache also serves
                // scalar refills), then the L3, then main memory.
                let (below, served) = match self.l2.scalar_access(blk, false) {
                    LookupResult::Hit => {
                        self.stats.l2_hits += 1;
                        (self.params.l2_latency, ServedBy::L2)
                    }
                    LookupResult::Miss => {
                        self.stats.l2_misses += 1;
                        let filled = match self.l3.access(blk, false) {
                            LookupResult::Hit => {
                                self.stats.l3_hits += 1;
                                (self.params.l3_latency, ServedBy::L3)
                            }
                            LookupResult::Miss => {
                                self.stats.l3_misses += 1;
                                self.l3.fill(blk, false);
                                (self.params.mem_latency, ServedBy::Mem)
                            }
                        };
                        self.l2.fill(blk, false);
                        filled
                    }
                };
                let out = self.l1.fill(blk, write);
                if let Some(wb) = out.writeback {
                    // Write-back of a dirty L1 line into the (inclusive) L2.
                    self.l2.fill(wb, true);
                }
                (self.params.l1_latency + below, served)
            }
        }
    }

    /// Invalidate one L1 line for vector/scalar coherence (exclusive-bit
    /// policy): dirty data is pushed down into the inclusive L2.
    #[inline]
    fn invalidate_l1(&mut self, blk: u64) {
        if let Some(dirty) = self.l1.invalidate(blk) {
            self.l2.fill(dirty, true);
        }
        self.stats.coherence_invalidations += 1;
    }

    /// Probe + fill one L2 line of a vector access.  Returns where the line
    /// was refilled from and the L3/memory latency charged for fetching it.
    #[inline]
    fn l2_line_access(&mut self, blk: u64, write: bool) -> (LineFill, u32) {
        match self.l2.access_line(blk, write) {
            LookupResult::Hit => (LineFill::Hit, 0),
            LookupResult::Miss => {
                let (fill, below) = match self.l3.access(blk, false) {
                    LookupResult::Hit => {
                        self.stats.l3_hits += 1;
                        (LineFill::FromL3, self.params.l3_latency)
                    }
                    LookupResult::Miss => {
                        self.stats.l3_misses += 1;
                        self.l3.fill(blk, false);
                        (LineFill::FromMem, self.params.mem_latency)
                    }
                };
                self.l2.fill(blk, write);
                (fill, below)
            }
        }
    }

    /// Probe all three cache levels for `addr` without disturbing LRU state
    /// or statistics (diagnostics and tests).
    pub fn probe(&self, addr: u64) -> [LookupResult; 3] {
        [
            self.l1.probe(addr),
            self.l2.probe(addr),
            self.l3.probe(addr),
        ]
    }

    /// Simulate a vector access of `elems` 64-bit elements starting at
    /// `base`, separated by `stride_bytes`.  Vector accesses bypass the L1
    /// and access the L2 vector cache directly.
    pub fn vector_access(
        &mut self,
        base: u64,
        stride_bytes: i64,
        elems: u32,
        kind: AccessKind,
    ) -> AccessTiming {
        self.vector_access_impl(base, stride_bytes, elems, kind, None)
            .0
    }

    /// [`Self::vector_access`] with an external memoized line-walk scratch,
    /// for stepping several hierarchies through the same access stream
    /// (batched trace replay).  Timing and statistics are bit-identical to
    /// `vector_access`; only the irregular-stride walk is shared.
    pub fn vector_access_shared(
        &mut self,
        base: u64,
        stride_bytes: i64,
        elems: u32,
        kind: AccessKind,
        scratch: &mut SharedAccessScratch,
    ) -> AccessTiming {
        self.vector_access_impl(base, stride_bytes, elems, kind, Some(scratch))
            .0
    }

    /// [`Self::vector_access_shared`], additionally capturing the access's
    /// [`AccessEcho`] for replaying against tag-equivalent hierarchies.
    pub fn vector_access_echoed(
        &mut self,
        base: u64,
        stride_bytes: i64,
        elems: u32,
        kind: AccessKind,
        scratch: &mut SharedAccessScratch,
    ) -> (AccessTiming, AccessEcho) {
        self.vector_access_impl(base, stride_bytes, elems, kind, Some(scratch))
    }

    fn vector_access_impl(
        &mut self,
        base: u64,
        stride_bytes: i64,
        elems: u32,
        kind: AccessKind,
        shared: Option<&mut SharedAccessScratch>,
    ) -> (AccessTiming, AccessEcho) {
        match kind {
            AccessKind::Load => self.stats.vector_loads += 1,
            AccessKind::Store => self.stats.vector_stores += 1,
        }
        let elems = elems.max(1);
        let scheduled = self.scheduled_vector_latency(elems);
        if stride_bytes == 8 {
            self.stats.unit_stride_vector_accesses += 1;
        } else {
            self.stats.strided_vector_accesses += 1;
        }

        if self.model == MemoryModel::Perfect {
            // All vector accesses hit in the L2 but still pay the transfer
            // time (paper §5.1); non-unit strides still transfer one element
            // per cycle.
            let transfer = if stride_bytes == 8 {
                elems.div_ceil(self.port_elems)
            } else {
                elems
            };
            let latency = self.params.l2_latency + transfer - 1;
            let stall = latency.saturating_sub(scheduled);
            self.stats.total_stall_cycles += stall as u64;
            self.stats.l2_hits += 1;
            return (
                AccessTiming {
                    latency,
                    stall_cycles: stall,
                },
                AccessEcho::Vector {
                    kind,
                    unit_stride: stride_bytes == 8,
                    elems,
                    transfer_cycles: transfer,
                    l3_fetches: 0,
                    mem_fetches: 0,
                    invalidations: 0,
                },
            );
        }

        // One fused pass over the touched L2 lines: for each line, first
        // invalidate the L1 lines of the access span that precede the end of
        // that L2 line (exclusive-bit coherence, dirty data pushed down),
        // then probe the L2 tag, and on a miss charge the L3/memory latency
        // of the *actual* missed line address.  Missed lines are fetched
        // back to back; each pays the L3 latency (or the memory latency when
        // it also misses in L3).
        let write = kind == AccessKind::Store;
        let unit_stride = stride_bytes == 8;
        let l1_line = self.params.l1_line as u64;
        let l2_line = self.params.l2_line as u64;
        let l1_mask = !(l1_line - 1);
        let invals_before = self.stats.coherence_invalidations;
        let mut lines_touched = 0u32;
        let mut l3_fetches = 0u32;
        let mut mem_fetches = 0u32;
        let mut miss_penalty = 0u32;

        match lines::classify(base, stride_bytes, elems, l2_line) {
            // Small stride: both the L1 and the L2 touched-line sets are
            // contiguous ranges over the same byte span; the L1 walk rides
            // along on a cursor inside the L2 walk.
            Some(LineWalk::Contiguous { first, last, .. })
                if stride_bytes.unsigned_abs() <= l1_line || elems == 1 || stride_bytes == 0 =>
            {
                let (lo, hi) = lines::span(base, stride_bytes, elems)
                    .expect("classify succeeded, span exists");
                let mut l1_cur = lo & l1_mask;
                let l1_last = hi & l1_mask;
                let mut blk = first;
                loop {
                    // Saturating: a span ending at the top line of the
                    // address space must not wrap the segment bound.
                    let seg_end = blk.saturating_add(l2_line);
                    while l1_cur < seg_end && l1_cur <= l1_last {
                        self.invalidate_l1(l1_cur);
                        l1_cur += l1_line;
                    }
                    lines_touched += 1;
                    let (fill, penalty) = self.l2_line_access(blk, write);
                    match fill {
                        LineFill::Hit => {}
                        LineFill::FromL3 => l3_fetches += 1,
                        LineFill::FromMem => mem_fetches += 1,
                    }
                    miss_penalty += penalty;
                    if blk >= last {
                        break;
                    }
                    blk += l2_line;
                }
            }
            // Far line-aligned stride: one L2 line per element; the L1
            // lines of each 8-byte element span follow a monotone cursor
            // (elements may share an L1 line when it is larger than the
            // stride).
            Some(LineWalk::Arithmetic { step, count, .. }) => {
                let mut a = base;
                let mut l1_cur = 0u64;
                for _ in 0..count {
                    let mut cur = l1_cur.max(a & l1_mask);
                    let hi1 = (a + 7) & l1_mask;
                    while cur <= hi1 {
                        self.invalidate_l1(cur);
                        cur += l1_line;
                    }
                    l1_cur = l1_cur.max(cur);
                    lines_touched += 1;
                    let (fill, penalty) = self.l2_line_access(a & !(l2_line - 1), write);
                    match fill {
                        LineFill::Hit => {}
                        LineFill::FromL3 => l3_fetches += 1,
                        LineFill::FromMem => mem_fetches += 1,
                    }
                    miss_penalty += penalty;
                    a += step;
                }
            }
            // Irregular (line-straddling odd strides, far negative strides,
            // address wraparound): two short naive walks through the
            // reusable scratch buffer.
            _ => match shared {
                // Batched replay: the walk is memoized per (access, line
                // size), so only the first of K variants pays for it.
                Some(memo) => {
                    for &blk in memo.lines(base, stride_bytes, elems, l1_line) {
                        self.invalidate_l1(blk);
                    }
                    for &blk in memo.lines(base, stride_bytes, elems, l2_line) {
                        lines_touched += 1;
                        let (fill, penalty) = self.l2_line_access(blk, write);
                        match fill {
                            LineFill::Hit => {}
                            LineFill::FromL3 => l3_fetches += 1,
                            LineFill::FromMem => mem_fetches += 1,
                        }
                        miss_penalty += penalty;
                    }
                }
                None => {
                    let mut scratch = std::mem::take(&mut self.scratch);
                    lines::collect_naive(base, stride_bytes, elems, l1_line, &mut scratch);
                    for &blk in &scratch {
                        self.invalidate_l1(blk);
                    }
                    lines::collect_naive(base, stride_bytes, elems, l2_line, &mut scratch);
                    for &blk in &scratch {
                        lines_touched += 1;
                        let (fill, penalty) = self.l2_line_access(blk, write);
                        match fill {
                            LineFill::Hit => {}
                            LineFill::FromL3 => l3_fetches += 1,
                            LineFill::FromMem => mem_fetches += 1,
                        }
                        miss_penalty += penalty;
                    }
                    self.scratch = scratch;
                }
            },
        }

        self.l2.record_vector_access(unit_stride, lines_touched);
        if l3_fetches + mem_fetches > 0 {
            self.stats.l2_misses += 1;
        } else {
            self.stats.l2_hits += 1;
        }

        let transfer_cycles = self.l2.transfer_cycles(unit_stride, elems);
        let latency = self.params.l2_latency + transfer_cycles - 1 + miss_penalty;
        let stall = latency.saturating_sub(scheduled);
        self.stats.total_stall_cycles += stall as u64;
        (
            AccessTiming {
                latency,
                stall_cycles: stall,
            },
            AccessEcho::Vector {
                kind,
                unit_stride,
                elems,
                transfer_cycles,
                l3_fetches,
                mem_fetches,
                invalidations: self.stats.coherence_invalidations - invals_before,
            },
        )
    }

    /// True when `other` produces the *same tag behaviour* as `self` on
    /// every access stream: same model, cache geometry and port width.
    /// Latency parameters are free to differ — they only scale the pricing
    /// — so an [`AccessEcho`] captured on one hierarchy can be
    /// [`applied`](Self::apply_echo) to any tag-equivalent other.
    pub fn tag_equivalent(&self, other: &Self) -> bool {
        tag_equivalent_configs(
            (self.model, &self.params, self.port_elems),
            (other.model, &other.params, other.port_elems),
        )
    }

    /// Price an echoed access against this hierarchy's latency parameters,
    /// updating [`MemStats`] exactly as the real access would have.  The
    /// echo must come from a [`tag_equivalent`](Self::tag_equivalent)
    /// hierarchy stepped through the same access stream; this hierarchy's
    /// own tags are *not* maintained, so after the first `apply_echo` it
    /// must only ever be priced through further echoes.
    pub fn apply_echo(&mut self, echo: &AccessEcho) -> AccessTiming {
        price_echo(&self.params, self.port_elems, &mut self.stats, echo)
    }

    /// Statistics of the three cache levels (L1, L2, L3).
    pub fn cache_stats(&self) -> [crate::cache::CacheStats; 3] {
        [self.l1.stats, self.l2.stats(), self.l3.stats]
    }
}

/// [`MemoryHierarchy::tag_equivalent`] over raw `(model, params, port)`
/// configurations, for callers that classify variants *before* paying for
/// hierarchy construction.
pub fn tag_equivalent_configs(
    (model_a, a, port_a): (MemoryModel, &MemoryParams, u32),
    (model_b, b, port_b): (MemoryModel, &MemoryParams, u32),
) -> bool {
    model_a == model_b
        && port_a.max(1) == port_b.max(1)
        && a.l1_size == b.l1_size
        && a.l1_assoc == b.l1_assoc
        && a.l1_line == b.l1_line
        && a.l2_size == b.l2_size
        && a.l2_assoc == b.l2_assoc
        && a.l2_line == b.l2_line
        && a.l2_banks == b.l2_banks
        && a.l3_size == b.l3_size
        && a.l3_assoc == b.l3_assoc
        && a.l3_line == b.l3_line
}

/// A latency-parameters-only echo pricer: prices [`AccessEcho`]es exactly
/// like [`MemoryHierarchy::apply_echo`] but carries **no tag state** — it
/// costs nothing to construct, where a full hierarchy allocates and zeroes
/// every cache level's tag arrays.  Batched trace replay builds one real
/// hierarchy per tag-equivalence class and one pricer per follower.
#[derive(Debug, Clone)]
pub struct EchoPricer {
    params: MemoryParams,
    port_elems: u32,
    pub stats: MemStats,
}

impl EchoPricer {
    pub fn new(params: MemoryParams, l2_port_elems: u32) -> Self {
        EchoPricer {
            params,
            port_elems: l2_port_elems.max(1),
            stats: MemStats::default(),
        }
    }

    /// Construct a pricer straight from a machine configuration.
    pub fn for_machine(machine: &vmv_machine::MachineConfig) -> Self {
        Self::new(machine.memory, machine.l2_port_elems)
    }

    /// Price an echoed access; see [`MemoryHierarchy::apply_echo`].
    pub fn apply_echo(&mut self, echo: &AccessEcho) -> AccessTiming {
        price_echo(&self.params, self.port_elems, &mut self.stats, echo)
    }
}

/// The one shared echo-pricing rule behind [`MemoryHierarchy::apply_echo`]
/// and [`EchoPricer::apply_echo`].
fn price_echo(
    params: &MemoryParams,
    port_elems: u32,
    stats: &mut MemStats,
    echo: &AccessEcho,
) -> AccessTiming {
    match *echo {
        AccessEcho::Scalar {
            kind,
            first,
            second,
        } => {
            match kind {
                AccessKind::Load => stats.scalar_loads += 1,
                AccessKind::Store => stats.scalar_stores += 1,
            }
            let mut latency = price_echo_line(params, stats, first);
            if let Some(served) = second {
                latency = latency.max(price_echo_line(params, stats, served));
            }
            let stall = latency.saturating_sub(params.l1_latency);
            stats.total_stall_cycles += stall as u64;
            AccessTiming {
                latency,
                stall_cycles: stall,
            }
        }
        AccessEcho::Vector {
            kind,
            unit_stride,
            elems,
            transfer_cycles,
            l3_fetches,
            mem_fetches,
            invalidations,
        } => {
            match kind {
                AccessKind::Load => stats.vector_loads += 1,
                AccessKind::Store => stats.vector_stores += 1,
            }
            if unit_stride {
                stats.unit_stride_vector_accesses += 1;
            } else {
                stats.strided_vector_accesses += 1;
            }
            stats.coherence_invalidations += invalidations;
            if l3_fetches + mem_fetches > 0 {
                stats.l2_misses += 1;
            } else {
                stats.l2_hits += 1;
            }
            stats.l3_hits += l3_fetches as u64;
            stats.l3_misses += mem_fetches as u64;
            let latency = params.l2_latency + transfer_cycles - 1
                + l3_fetches * params.l3_latency
                + mem_fetches * params.mem_latency;
            // The compiler schedules vector accesses as stride-one L2 hits.
            let scheduled = params.l2_latency + elems.div_ceil(port_elems.max(1)).saturating_sub(1);
            let stall = latency.saturating_sub(scheduled);
            stats.total_stall_cycles += stall as u64;
            AccessTiming {
                latency,
                stall_cycles: stall,
            }
        }
    }
}

/// Stats and latency of one echoed scalar-line lookup.
fn price_echo_line(params: &MemoryParams, stats: &mut MemStats, served: ServedBy) -> u32 {
    match served {
        ServedBy::L1 => {
            stats.l1_hits += 1;
            params.l1_latency
        }
        ServedBy::L2 => {
            stats.l1_misses += 1;
            stats.l2_hits += 1;
            params.l1_latency + params.l2_latency
        }
        ServedBy::L3 => {
            stats.l1_misses += 1;
            stats.l2_misses += 1;
            stats.l3_hits += 1;
            params.l1_latency + params.l3_latency
        }
        ServedBy::Mem => {
            stats.l1_misses += 1;
            stats.l2_misses += 1;
            stats.l3_misses += 1;
            params.l1_latency + params.mem_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realistic() -> MemoryHierarchy {
        MemoryHierarchy::new(MemoryModel::Realistic, MemoryParams::default(), 4)
    }

    #[test]
    fn perfect_scalar_access_is_one_cycle() {
        let mut m = MemoryHierarchy::new(MemoryModel::Perfect, MemoryParams::default(), 4);
        let t = m.scalar_access(0x1234, 4, AccessKind::Load);
        assert_eq!(t.latency, 1);
        assert_eq!(t.stall_cycles, 0);
    }

    #[test]
    fn realistic_scalar_cold_miss_then_hit() {
        let mut m = realistic();
        let miss = m.scalar_access(0x1000, 4, AccessKind::Load);
        assert!(
            miss.latency >= 500,
            "cold miss goes to main memory: {}",
            miss.latency
        );
        assert!(miss.stall_cycles > 0);
        let hit = m.scalar_access(0x1004, 4, AccessKind::Load);
        assert_eq!(hit.latency, 1);
        assert_eq!(hit.stall_cycles, 0);
        assert_eq!(m.stats.l1_misses, 1);
        assert_eq!(m.stats.l1_hits, 1);
    }

    #[test]
    fn perfect_vector_access_pays_transfer_time() {
        let mut m = MemoryHierarchy::new(MemoryModel::Perfect, MemoryParams::default(), 4);
        // 16 elements, unit stride: 5 + 16/4 - 1 = 8 cycles, no stall (the
        // compiler assumed the same).
        let t = m.vector_access(0x0, 8, 16, AccessKind::Load);
        assert_eq!(t.latency, 8);
        assert_eq!(t.stall_cycles, 0);
        // Non-unit stride: 5 + 16 - 1 = 20 cycles, 12 cycles of stall.
        let t = m.vector_access(0x0, 640, 16, AccessKind::Load);
        assert_eq!(t.latency, 20);
        assert_eq!(t.stall_cycles, 12);
    }

    #[test]
    fn realistic_vector_access_hits_after_warmup() {
        let mut m = realistic();
        let cold = m.vector_access(0x4000, 8, 16, AccessKind::Load);
        assert!(cold.stall_cycles > 0);
        let warm = m.vector_access(0x4000, 8, 16, AccessKind::Load);
        assert_eq!(warm.stall_cycles, 0);
        assert_eq!(warm.latency, m.scheduled_vector_latency(16));
    }

    #[test]
    fn vector_access_invalidates_l1_for_coherence() {
        let mut m = realistic();
        // Bring a line into L1 with a scalar store (dirty).
        m.scalar_access(0x8000, 8, AccessKind::Store);
        assert_eq!(m.stats.l1_misses, 1);
        // A vector load overlapping that line must invalidate it.
        m.vector_access(0x8000, 8, 8, AccessKind::Load);
        assert!(m.stats.coherence_invalidations > 0);
        // The next scalar access to the line misses again in L1.
        let t = m.scalar_access(0x8000, 8, AccessKind::Load);
        assert!(t.latency > 1);
    }

    #[test]
    fn scheduled_latencies_match_compiler_assumptions() {
        let m = realistic();
        assert_eq!(m.scheduled_scalar_latency(), 1);
        assert_eq!(m.scheduled_vector_latency(16), 5 + 3);
        assert_eq!(m.scheduled_vector_latency(8), 5 + 1);
        assert_eq!(m.scheduled_vector_latency(4), 5);
        assert_eq!(m.scheduled_vector_latency(1), 5);
    }

    #[test]
    fn strided_miss_penalty_charges_the_actual_missed_lines() {
        // Regression: the miss-penalty loop used to look up `base + i *
        // l2_line` in the L3 instead of the addresses of the lines the
        // strided access actually missed, so the L3 warmed a contiguous
        // region the access never touched.
        let mut m = realistic();
        let stride = 4 * m.params.l2_line as i64; // well beyond one L2 line
        let elems = 8u32;
        let cold = m.vector_access(0x40000, stride, elems, AccessKind::Load);
        // Every element is on its own cold line: each pays the full memory
        // latency.
        assert_eq!(m.stats.l3_misses, elems as u64);
        assert_eq!(
            cold.latency,
            m.params.l2_latency + elems - 1 + elems * m.params.mem_latency
        );
        // The L3 now holds the *actual* strided lines...
        for i in 0..elems as u64 {
            let addr = 0x40000 + i * stride as u64;
            assert_eq!(
                m.probe(addr)[2],
                LookupResult::Hit,
                "actual line {i} must be in L3"
            );
        }
        // ...and not the contiguous region the old code would have fetched
        // (lines 1..4 lie strictly between the first two strided lines).
        for i in 1..4u64 {
            let addr = 0x40000 + i * m.params.l2_line as u64;
            assert_eq!(
                m.probe(addr)[2],
                LookupResult::Miss,
                "contiguous line {i} must not be in L3"
            );
        }
        // A re-run hits in the L2 and pays no penalty.
        let warm = m.vector_access(0x40000, stride, elems, AccessKind::Load);
        assert_eq!(warm.latency, m.params.l2_latency + elems - 1);
    }

    #[test]
    fn line_straddling_odd_stride_uses_the_scratch_fallback() {
        // Stride 200 with 64-byte lines: neither contiguous nor
        // line-aligned; the irregular path must behave like the naive walk.
        let mut m = realistic();
        let mut expect = Vec::new();
        crate::lines::collect_naive(0x1003C, 200, 16, m.params.l2_line as u64, &mut expect);
        m.vector_access(0x1003C, 200, 16, AccessKind::Load);
        assert_eq!(m.stats.l3_misses, expect.len() as u64);
        for &blk in &expect {
            assert_eq!(m.probe(blk)[1], LookupResult::Hit, "L2 holds {blk:#x}");
        }
        let warm = m.vector_access(0x1003C, 200, 16, AccessKind::Load);
        assert_eq!(warm.latency, m.scheduled_vector_latency(16).max(5 + 16 - 1));
        assert_eq!(m.stats.l2_hits, 1);
    }

    #[test]
    fn shared_scratch_vector_access_is_bit_identical() {
        // Drive two clones of the same hierarchy through an access mix that
        // exercises all three walk arms (contiguous, arithmetic, irregular);
        // the shared-scratch path must produce identical timing and stats.
        let accesses: [(u64, i64, u32, AccessKind); 6] = [
            (0x1000, 8, 16, AccessKind::Load),          // contiguous
            (0x40000, 4 * 64, 8, AccessKind::Store),    // arithmetic
            (0x1003C, 200, 16, AccessKind::Load),       // irregular
            (0x1003C, 200, 16, AccessKind::Store),      // irregular, memo reuse
            (0x1000, 8, 16, AccessKind::Load),          // warm contiguous
            (u64::MAX - 64, -200, 9, AccessKind::Load), // wraparound fallback
        ];
        for model in [MemoryModel::Perfect, MemoryModel::Realistic] {
            let mut plain = MemoryHierarchy::new(model, MemoryParams::default(), 4);
            let mut shared = plain.clone();
            let mut memo = SharedAccessScratch::new();
            for &(base, stride, elems, kind) in &accesses {
                let a = plain.vector_access(base, stride, elems, kind);
                let b = shared.vector_access_shared(base, stride, elems, kind, &mut memo);
                assert_eq!(a, b, "{model:?} {base:#x} stride {stride}");
            }
            assert_eq!(plain.stats, shared.stats);
            assert_eq!(plain.cache_stats(), shared.cache_stats());
        }
    }

    #[test]
    fn echo_pricing_matches_real_accesses_on_tag_equivalent_followers() {
        // A follower differing ONLY in latency parameters must land on
        // exactly the timing and stats of a real access when priced through
        // the leader's echoes — for scalar and vector accesses, hits and
        // misses, straddles, coherence invalidations and irregular strides.
        let slow = MemoryParams {
            l1_latency: 3,
            l2_latency: 11,
            l3_latency: 40,
            mem_latency: 900,
            ..MemoryParams::default()
        };
        for model in [MemoryModel::Perfect, MemoryModel::Realistic] {
            let mut leader = MemoryHierarchy::new(model, MemoryParams::default(), 4);
            let mut echoed = MemoryHierarchy::new(model, slow, 4);
            let mut pricer = EchoPricer::new(slow, 4);
            let mut real = echoed.clone();
            assert!(leader.tag_equivalent(&echoed));
            let mut memo = SharedAccessScratch::new();

            // Scalar mix: cold miss, warm hit, line straddle, store.
            for (addr, size, kind) in [
                (0x1000u64, 8usize, AccessKind::Load),
                (0x1004, 4, AccessKind::Load),
                (0x101E, 8, AccessKind::Load),
                (0x2000, 8, AccessKind::Store),
            ] {
                let (_, echo) = leader.scalar_access_echoed(addr, size, kind);
                let fast = echoed.apply_echo(&echo);
                let slow = real.scalar_access(addr, size, kind);
                assert_eq!(fast, slow, "{model:?} scalar {addr:#x}");
                assert_eq!(pricer.apply_echo(&echo), slow);
            }
            // Vector mix: cold, warm, strided, irregular, store over a
            // dirty scalar line (coherence).
            for (base, stride, elems, kind) in [
                (0x4000u64, 8i64, 16u32, AccessKind::Load),
                (0x4000, 8, 16, AccessKind::Load),
                (0x40000, 4 * 64, 8, AccessKind::Load),
                (0x1003C, 200, 16, AccessKind::Load),
                (0x2000, 8, 8, AccessKind::Store),
            ] {
                let (_, echo) = leader.vector_access_echoed(base, stride, elems, kind, &mut memo);
                let fast = echoed.apply_echo(&echo);
                let slow = real.vector_access(base, stride, elems, kind);
                assert_eq!(fast, slow, "{model:?} vector {base:#x} stride {stride}");
                assert_eq!(pricer.apply_echo(&echo), slow);
            }
            assert_eq!(echoed.stats, real.stats, "{model:?} stats must agree");
            assert_eq!(
                pricer.stats, real.stats,
                "{model:?} pricer stats must agree"
            );
        }
    }

    #[test]
    fn tag_equivalence_requires_matching_geometry_and_model() {
        let base = MemoryHierarchy::new(MemoryModel::Realistic, MemoryParams::default(), 4);
        let slow = MemoryParams {
            mem_latency: 900,
            ..MemoryParams::default()
        };
        assert!(base.tag_equivalent(&MemoryHierarchy::new(MemoryModel::Realistic, slow, 4)));
        let big_l2 = MemoryParams {
            l2_size: MemoryParams::default().l2_size * 2,
            ..MemoryParams::default()
        };
        assert!(!base.tag_equivalent(&MemoryHierarchy::new(MemoryModel::Realistic, big_l2, 4)));
        assert!(!base.tag_equivalent(&MemoryHierarchy::new(
            MemoryModel::Perfect,
            MemoryParams::default(),
            4
        )));
        assert!(!base.tag_equivalent(&MemoryHierarchy::new(
            MemoryModel::Realistic,
            MemoryParams::default(),
            2
        )));
    }

    #[test]
    fn stats_accumulate() {
        let mut m = realistic();
        m.scalar_access(0x0, 4, AccessKind::Load);
        m.scalar_access(0x100, 4, AccessKind::Store);
        m.vector_access(0x200, 8, 8, AccessKind::Load);
        m.vector_access(0x300, 8, 8, AccessKind::Store);
        assert_eq!(m.stats.scalar_loads, 1);
        assert_eq!(m.stats.scalar_stores, 1);
        assert_eq!(m.stats.vector_loads, 1);
        assert_eq!(m.stats.vector_stores, 1);
        assert!(m.stats.total_stall_cycles > 0);
    }
}
