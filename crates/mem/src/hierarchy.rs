//! The three-level memory hierarchy of paper §4.2:
//!
//! * L1: 16 KB, 4-way data cache, 1-cycle latency, scalar / µSIMD accesses;
//! * L2: 256 KB two-bank interleaved *vector cache*, 5 cycles; vector
//!   accesses bypass the L1 and go straight to this level through one wide
//!   (4 × 64-bit) port;
//! * L3: 1 MB cache, 12 cycles;
//! * main memory: 500 cycles.
//!
//! Coherence between the L1 and the vector cache uses an exclusive-bit plus
//! inclusion policy: a vector access invalidates any overlapping L1 lines
//! (pushing dirty data down), and a scalar miss naturally finds
//! vector-written data in the L2.
//!
//! The hierarchy is a *timing* model — data contents live in the simulator's
//! flat memory.  Two modes exist: `Perfect` (every access hits, paper §5.1)
//! and `Realistic` (tags are simulated and misses pay the full latency).

use crate::cache::{Cache, LookupResult};
use crate::vector_cache::VectorCache;
use vmv_machine::MemoryParams;

/// Memory simulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// All accesses hit in their target cache level, but still pay that
    /// level's latency (and vector accesses still pay the element-transfer
    /// time through the L2 port).
    Perfect,
    /// Full tag simulation of the three cache levels.
    Realistic,
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
}

/// Timing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Total latency in cycles until the last element is available.
    pub latency: u32,
    /// Cycles beyond what the compiler assumed when scheduling (the
    /// processor stalls for this long, paper §3.3/§4.2).
    pub stall_cycles: u32,
}

/// Aggregate statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    pub scalar_loads: u64,
    pub scalar_stores: u64,
    pub vector_loads: u64,
    pub vector_stores: u64,
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub l3_hits: u64,
    pub l3_misses: u64,
    pub coherence_invalidations: u64,
    pub unit_stride_vector_accesses: u64,
    pub strided_vector_accesses: u64,
    pub total_stall_cycles: u64,
}

impl MemStats {
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            1.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }
}

/// The memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    model: MemoryModel,
    params: MemoryParams,
    l1: Cache,
    l2: VectorCache,
    l3: Cache,
    /// Width of the L2 vector port in 64-bit elements.
    port_elems: u32,
    pub stats: MemStats,
}

impl MemoryHierarchy {
    pub fn new(model: MemoryModel, params: MemoryParams, l2_port_elems: u32) -> Self {
        MemoryHierarchy {
            model,
            params,
            l1: Cache::new("L1", params.l1_size, params.l1_assoc, params.l1_line),
            l2: VectorCache::new(
                params.l2_size,
                params.l2_assoc,
                params.l2_line,
                params.l2_banks,
                l2_port_elems.max(1),
            ),
            l3: Cache::new("L3", params.l3_size, params.l3_assoc, params.l3_line),
            port_elems: l2_port_elems.max(1),
            stats: MemStats::default(),
        }
    }

    /// Construct a hierarchy straight from a machine configuration.
    pub fn for_machine(model: MemoryModel, machine: &vmv_machine::MachineConfig) -> Self {
        Self::new(model, machine.memory, machine.l2_port_elems.max(1))
    }

    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// Latency the *compiler* assumes for a scalar access: an L1 hit.
    pub fn scheduled_scalar_latency(&self) -> u32 {
        self.params.l1_latency
    }

    /// Latency the *compiler* assumes for a vector access of `elems`
    /// elements: an L2 hit with unit stride (paper §3.3: the compiler
    /// schedules all vector memory operations as stride-one L2 hits).
    pub fn scheduled_vector_latency(&self, elems: u32) -> u32 {
        self.params.l2_latency + elems.div_ceil(self.port_elems).saturating_sub(1)
    }

    // ----------------------------------------------------------- accesses

    /// Simulate a scalar (or µSIMD 64-bit) access of `size` bytes.
    pub fn scalar_access(&mut self, addr: u64, size: usize, kind: AccessKind) -> AccessTiming {
        match kind {
            AccessKind::Load => self.stats.scalar_loads += 1,
            AccessKind::Store => self.stats.scalar_stores += 1,
        }
        let scheduled = self.scheduled_scalar_latency();
        if self.model == MemoryModel::Perfect {
            self.stats.l1_hits += 1;
            return AccessTiming {
                latency: scheduled,
                stall_cycles: 0,
            };
        }

        let write = kind == AccessKind::Store;
        // An access can straddle a line boundary; charge the worst line.
        let mut latency = 0;
        let last = addr + size.max(1) as u64 - 1;
        let mut lines = vec![self.l1.block_addr(addr)];
        let last_block = self.l1.block_addr(last);
        if last_block != lines[0] {
            lines.push(last_block);
        }
        for blk in lines {
            latency = latency.max(self.scalar_line_access(blk, write));
        }
        let stall = latency.saturating_sub(scheduled);
        self.stats.total_stall_cycles += stall as u64;
        AccessTiming {
            latency,
            stall_cycles: stall,
        }
    }

    fn scalar_line_access(&mut self, blk: u64, write: bool) -> u32 {
        match self.l1.access(blk, write) {
            LookupResult::Hit => {
                self.stats.l1_hits += 1;
                self.params.l1_latency
            }
            LookupResult::Miss => {
                self.stats.l1_misses += 1;
                // Miss in L1: look up the L2 (the vector cache also serves
                // scalar refills), then the L3, then main memory.
                let below = match self.l2.scalar_access(blk, false) {
                    LookupResult::Hit => {
                        self.stats.l2_hits += 1;
                        self.params.l2_latency
                    }
                    LookupResult::Miss => {
                        self.stats.l2_misses += 1;
                        let l3lat = match self.l3.access(blk, false) {
                            LookupResult::Hit => {
                                self.stats.l3_hits += 1;
                                self.params.l3_latency
                            }
                            LookupResult::Miss => {
                                self.stats.l3_misses += 1;
                                self.l3.fill(blk, false);
                                self.params.mem_latency
                            }
                        };
                        self.l2.fill(blk, false);
                        l3lat
                    }
                };
                let out = self.l1.fill(blk, write);
                if let Some(wb) = out.writeback {
                    // Write-back of a dirty L1 line into the (inclusive) L2.
                    self.l2.fill(wb, true);
                }
                self.params.l1_latency + below
            }
        }
    }

    /// Simulate a vector access of `elems` 64-bit elements starting at
    /// `base`, separated by `stride_bytes`.  Vector accesses bypass the L1
    /// and access the L2 vector cache directly.
    pub fn vector_access(
        &mut self,
        base: u64,
        stride_bytes: i64,
        elems: u32,
        kind: AccessKind,
    ) -> AccessTiming {
        match kind {
            AccessKind::Load => self.stats.vector_loads += 1,
            AccessKind::Store => self.stats.vector_stores += 1,
        }
        let elems = elems.max(1);
        let scheduled = self.scheduled_vector_latency(elems);
        if stride_bytes == 8 {
            self.stats.unit_stride_vector_accesses += 1;
        } else {
            self.stats.strided_vector_accesses += 1;
        }

        if self.model == MemoryModel::Perfect {
            // All vector accesses hit in the L2 but still pay the transfer
            // time (paper §5.1); non-unit strides still transfer one element
            // per cycle.
            let transfer = if stride_bytes == 8 {
                elems.div_ceil(self.port_elems)
            } else {
                elems
            };
            let latency = self.params.l2_latency + transfer - 1;
            let stall = latency.saturating_sub(scheduled);
            self.stats.total_stall_cycles += stall as u64;
            self.stats.l2_hits += 1;
            return AccessTiming {
                latency,
                stall_cycles: stall,
            };
        }

        // Coherence: invalidate overlapping L1 lines (exclusive-bit policy).
        let write = kind == AccessKind::Store;
        let line = self.params.l1_line as u64;
        let span_first = base;
        let span_last = (base as i64 + stride_bytes * (elems as i64 - 1)) as u64 + 7;
        let (lo, hi) = if span_first <= span_last {
            (span_first, span_last)
        } else {
            (span_last, span_first)
        };
        // Only walk the span when it is reasonably small (strided accesses
        // over a whole image would otherwise invalidate line by line over a
        // huge range; restrict to the lines actually touched).
        let mut touched = Vec::new();
        for i in 0..elems {
            let a = (base as i64 + stride_bytes * i as i64) as u64;
            for cand in [a / line * line, (a + 7) / line * line] {
                if !touched.contains(&cand) {
                    touched.push(cand);
                }
            }
        }
        let _ = (lo, hi);
        for blk in touched {
            if let Some(dirty) = self.l1.invalidate(blk) {
                self.l2.fill(dirty, true);
            }
            self.stats.coherence_invalidations += 1;
        }

        let outcome = self.l2.vector_access(base, stride_bytes, elems, write);
        let miss_penalty: u32 = if outcome.lines_missed > 0 {
            // Fetch the missed lines from the L3 / memory.  Lines are fetched
            // back to back; each missing line pays the L3 latency (or the
            // memory latency when it also misses in L3).
            let mut penalty = 0;
            for i in 0..outcome.lines_missed {
                let blk = base + i as u64 * self.params.l2_line as u64;
                penalty += match self.l3.access(blk, false) {
                    LookupResult::Hit => {
                        self.stats.l3_hits += 1;
                        self.params.l3_latency
                    }
                    LookupResult::Miss => {
                        self.stats.l3_misses += 1;
                        self.l3.fill(blk, false);
                        self.params.mem_latency
                    }
                };
            }
            penalty
        } else {
            0
        };
        if outcome.lines_missed > 0 {
            self.stats.l2_misses += 1;
        } else {
            self.stats.l2_hits += 1;
        }

        let latency = self.params.l2_latency + outcome.transfer_cycles - 1 + miss_penalty;
        let stall = latency.saturating_sub(scheduled);
        self.stats.total_stall_cycles += stall as u64;
        AccessTiming {
            latency,
            stall_cycles: stall,
        }
    }

    /// Statistics of the three cache levels (L1, L2, L3).
    pub fn cache_stats(&self) -> [crate::cache::CacheStats; 3] {
        [self.l1.stats, self.l2.stats(), self.l3.stats]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realistic() -> MemoryHierarchy {
        MemoryHierarchy::new(MemoryModel::Realistic, MemoryParams::default(), 4)
    }

    #[test]
    fn perfect_scalar_access_is_one_cycle() {
        let mut m = MemoryHierarchy::new(MemoryModel::Perfect, MemoryParams::default(), 4);
        let t = m.scalar_access(0x1234, 4, AccessKind::Load);
        assert_eq!(t.latency, 1);
        assert_eq!(t.stall_cycles, 0);
    }

    #[test]
    fn realistic_scalar_cold_miss_then_hit() {
        let mut m = realistic();
        let miss = m.scalar_access(0x1000, 4, AccessKind::Load);
        assert!(
            miss.latency >= 500,
            "cold miss goes to main memory: {}",
            miss.latency
        );
        assert!(miss.stall_cycles > 0);
        let hit = m.scalar_access(0x1004, 4, AccessKind::Load);
        assert_eq!(hit.latency, 1);
        assert_eq!(hit.stall_cycles, 0);
        assert_eq!(m.stats.l1_misses, 1);
        assert_eq!(m.stats.l1_hits, 1);
    }

    #[test]
    fn perfect_vector_access_pays_transfer_time() {
        let mut m = MemoryHierarchy::new(MemoryModel::Perfect, MemoryParams::default(), 4);
        // 16 elements, unit stride: 5 + 16/4 - 1 = 8 cycles, no stall (the
        // compiler assumed the same).
        let t = m.vector_access(0x0, 8, 16, AccessKind::Load);
        assert_eq!(t.latency, 8);
        assert_eq!(t.stall_cycles, 0);
        // Non-unit stride: 5 + 16 - 1 = 20 cycles, 12 cycles of stall.
        let t = m.vector_access(0x0, 640, 16, AccessKind::Load);
        assert_eq!(t.latency, 20);
        assert_eq!(t.stall_cycles, 12);
    }

    #[test]
    fn realistic_vector_access_hits_after_warmup() {
        let mut m = realistic();
        let cold = m.vector_access(0x4000, 8, 16, AccessKind::Load);
        assert!(cold.stall_cycles > 0);
        let warm = m.vector_access(0x4000, 8, 16, AccessKind::Load);
        assert_eq!(warm.stall_cycles, 0);
        assert_eq!(warm.latency, m.scheduled_vector_latency(16));
    }

    #[test]
    fn vector_access_invalidates_l1_for_coherence() {
        let mut m = realistic();
        // Bring a line into L1 with a scalar store (dirty).
        m.scalar_access(0x8000, 8, AccessKind::Store);
        assert_eq!(m.stats.l1_misses, 1);
        // A vector load overlapping that line must invalidate it.
        m.vector_access(0x8000, 8, 8, AccessKind::Load);
        assert!(m.stats.coherence_invalidations > 0);
        // The next scalar access to the line misses again in L1.
        let t = m.scalar_access(0x8000, 8, AccessKind::Load);
        assert!(t.latency > 1);
    }

    #[test]
    fn scheduled_latencies_match_compiler_assumptions() {
        let m = realistic();
        assert_eq!(m.scheduled_scalar_latency(), 1);
        assert_eq!(m.scheduled_vector_latency(16), 5 + 3);
        assert_eq!(m.scheduled_vector_latency(8), 5 + 1);
        assert_eq!(m.scheduled_vector_latency(4), 5);
        assert_eq!(m.scheduled_vector_latency(1), 5);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = realistic();
        m.scalar_access(0x0, 4, AccessKind::Load);
        m.scalar_access(0x100, 4, AccessKind::Store);
        m.vector_access(0x200, 8, 8, AccessKind::Load);
        m.vector_access(0x300, 8, 8, AccessKind::Store);
        assert_eq!(m.stats.scalar_loads, 1);
        assert_eq!(m.stats.scalar_stores, 1);
        assert_eq!(m.stats.vector_loads, 1);
        assert_eq!(m.stats.vector_stores, 1);
        assert!(m.stats.total_stall_cycles > 0);
    }
}
